#!/usr/bin/env python3
"""splint — the StoryPivot repo linter.

Enforces project conventions the compiler cannot, over src/ tests/ bench/
examples/ (and tools/ headers if any appear):

  banned-function   rand(), sprintf(), vsprintf(), strcpy() anywhere;
                    argless time(nullptr)/time(NULL)/time(0) in library
                    code (src/) — pass timestamps in, or use util/rng.h
                    for randomness so runs stay deterministic.
  include-guard     headers use #ifndef STORYPIVOT_<PATH>_H_ where <PATH>
                    is the file path without the leading "src/", upper-
                    cased, with separators mapped to "_".
  using-namespace   no `using namespace` at any scope in headers.
  stdout-in-lib     no std::cout / std::cerr in src/ libraries; use
                    util/logging.h (SP_LOG) so verbosity stays
                    controllable.
  raw-file-write    no std::ofstream / std::fstream / fopen() anywhere
                    but src/util/fs.cc — every write must go through
                    util/fs.h so its atomic-replace and fsync guarantees
                    (DESIGN.md §10) hold repo-wide.
  build-artifact    no committed build trees or object/cache files.
  full-scan         no partitions() full-story scans outside src/core/
                    and src/search/ — route story lookups through
                    StoryQuery (which uses the search index) so O(all
                    stories) walks stay contained in the two layers that
                    own them. Tests are exempt.
  deep-clone        no deep Clone() calls in src/serve/ — the read path
                    captures through the COW Freeze()/Capture() path
                    (O(delta), DESIGN.md §15); the deep-copy baseline in
                    read_snapshot.cc carries an explicit allow.
  cross-shard       no shard(i) reach-through outside src/shard/ — the
                    coordinator's per-shard accessor exists for the shard
                    layer itself (and tests/benches/examples); production
                    code goes through the ShardedEngine surface so shard
                    placement stays an implementation detail (DESIGN.md
                    §16).
  raw-sync          no raw std::mutex / std::lock_guard /
                    std::unique_lock / std::condition_variable (or their
                    shared/timed/recursive cousins) outside
                    src/util/sync.{h,cc} — use the annotated Mutex /
                    MutexLock / CondVar wrappers so Clang's thread-safety
                    analysis and tools/lockcheck.py see every lock
                    (DESIGN.md §13).

A finding can be suppressed on its line with:  // splint: allow(<rule>)

Usage:
  tools/splint.py [--root REPO_ROOT] [PATH ...]

Exits 0 when clean, 1 when findings exist, 2 on usage errors. Add new
rules as functions returning (line_number, rule, message) tuples and
register them in FILE_CHECKS.
"""

import argparse
import os
import re
import subprocess
import sys

DEFAULT_SCAN_DIRS = ["src", "tests", "bench", "examples"]
SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

ALLOW_RE = re.compile(r"//\s*splint:\s*allow\(([a-z-]+)\)")
LINE_COMMENT_RE = re.compile(r"^\s*//")

BANNED_EVERYWHERE = [
    (re.compile(r"(?<![A-Za-z0-9_:.>])rand\s*\("), "banned-function",
     "rand() is banned; use util/rng.h (deterministic, seedable)"),
    (re.compile(r"(?<![A-Za-z0-9_])(?:v)?sprintf\s*\("), "banned-function",
     "sprintf()/vsprintf() are banned; use StrFormat() or snprintf()"),
    (re.compile(r"(?<![A-Za-z0-9_])strcpy\s*\("), "banned-function",
     "strcpy() is banned; use std::string"),
]

BANNED_WRITERS = [
    (re.compile(r"std::w?o?fstream\b"), "raw-file-write",
     "std::ofstream/std::fstream are banned; write through util/fs.h "
     "(atomic WriteStringToFile or AppendFile)"),
    (re.compile(r"(?<![A-Za-z0-9_])fopen\s*\("), "raw-file-write",
     "fopen() is banned; write through util/fs.h "
     "(atomic WriteStringToFile or AppendFile)"),
]

BANNED_IN_SRC = [
    (re.compile(r"(?<![A-Za-z0-9_])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "banned-function",
     "argless time() is banned in library code; take a Timestamp "
     "parameter so behaviour is reproducible"),
    (re.compile(r"std::c(?:out|err)\b"), "stdout-in-lib",
     "std::cout/std::cerr are banned in src/; use SP_LOG from "
     "util/logging.h"),
]

BUILD_ARTIFACT_RES = [
    re.compile(r"(^|/)build[^/]*/"),
    re.compile(r"\.(o|obj|a|so|gcda|gcno)$"),
    re.compile(r"(^|/)CMakeCache\.txt$"),
    re.compile(r"(^|/)CMakeFiles/"),
    re.compile(r"(^|/)compile_commands\.json$"),
    re.compile(r"(^|/)CTestTestfile\.cmake$"),
    re.compile(r"(^|/)cmake_install\.cmake$"),
]


def expected_guard(relpath):
    """STORYPIVOT_<PATH>_H_ for a header path relative to the repo root.

    The leading "src/" is dropped (library headers are included as
    "core/engine.h"), other directories keep their prefix.
    """
    path = relpath
    if path.startswith("src/"):
        path = path[len("src/"):]
    stem = re.sub(r"\.(h|hpp)$", "", path)
    return "STORYPIVOT_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def line_allows(line, rule):
    match = ALLOW_RE.search(line)
    return match is not None and match.group(1) == rule


def check_banned(relpath, lines):
    in_src = relpath.startswith("src/")
    rules = list(BANNED_EVERYWHERE) + (BANNED_IN_SRC if in_src else [])
    # util/fs.cc is the one place allowed to touch the OS write APIs —
    # it is what everything else is told to use instead.
    if relpath != "src/util/fs.cc":
        rules += BANNED_WRITERS
    # logging/status/strings own the stderr fallback path that everything
    # else is told to use instead.
    exempt_stdout = relpath in (
        "src/util/logging.cc", "src/util/logging.h",
        "src/util/status.cc", "src/util/strings.cc",
    )
    for number, line in enumerate(lines, start=1):
        if LINE_COMMENT_RE.match(line):
            continue
        for pattern, rule, message in rules:
            if rule == "stdout-in-lib" and exempt_stdout:
                continue
            if pattern.search(line) and not line_allows(line, rule):
                yield number, rule, message


def check_include_guard(relpath, lines):
    if not relpath.endswith((".h", ".hpp")):
        return
    guard = expected_guard(relpath)
    ifndef_re = re.compile(r"^#ifndef\s+(\S+)")
    for number, line in enumerate(lines, start=1):
        match = ifndef_re.match(line)
        if not match:
            continue
        if line_allows(line, "include-guard"):
            return
        found = match.group(1)
        if found != guard:
            yield number, "include-guard", (
                "include guard %s does not match expected %s"
                % (found, guard))
        elif number >= len(lines) or \
                not lines[number].startswith("#define %s" % guard):
            yield number + 1, "include-guard", (
                "#ifndef %s must be followed by #define %s"
                % (guard, guard))
        return
    yield 1, "include-guard", "header has no include guard (%s)" % guard


def check_using_namespace(relpath, lines):
    if not relpath.endswith((".h", ".hpp")):
        return
    pattern = re.compile(r"^\s*using\s+namespace\b")
    for number, line in enumerate(lines, start=1):
        if pattern.match(line) and not line_allows(line, "using-namespace"):
            yield number, "using-namespace", (
                "`using namespace` in a header leaks into every includer")


RAW_SYNC_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")

# The annotated wrappers themselves are built on the raw primitives.
RAW_SYNC_EXEMPT = ("src/util/sync.h", "src/util/sync.cc")


def check_raw_sync(relpath, lines):
    """Raw std:: synchronization primitives are invisible to Clang's
    thread-safety analysis and to tools/lockcheck.py; everything must go
    through the annotated wrappers in util/sync.h (DESIGN.md §13)."""
    if relpath in RAW_SYNC_EXEMPT:
        return
    for number, line in enumerate(lines, start=1):
        if LINE_COMMENT_RE.match(line):
            continue
        if RAW_SYNC_RE.search(line) and not line_allows(line, "raw-sync"):
            yield number, "raw-sync", (
                "raw std:: sync primitive; use Mutex/MutexLock/CondVar "
                "from util/sync.h so the thread-safety analysis and "
                "lockcheck see the lock")


FULL_SCAN_RE = re.compile(r"(?:->|\.)\s*partitions\s*\(\s*\)")


def check_full_scan(relpath, lines):
    """partitions() walks every story of every source; only the core and
    search layers may pay that cost (everything else goes through
    StoryQuery / SearchEngine, which are index-backed and k-bounded)."""
    if relpath.startswith(("src/core/", "src/search/", "tests/")):
        return
    for number, line in enumerate(lines, start=1):
        if LINE_COMMENT_RE.match(line):
            continue
        if FULL_SCAN_RE.search(line) and not line_allows(line, "full-scan"):
            yield number, "full-scan", (
                "partitions() full-story scan outside src/core//src/search/;"
                " use StoryQuery/SearchEngine, or annotate why the full walk"
                " is required")


DEEP_CLONE_RE = re.compile(r"(?:->|\.)\s*Clone\s*\(\s*\)")


def check_deep_clone(relpath, lines):
    """Clone() deep-copies an entire COW structure (O(corpus)); the
    serving read path must capture via Freeze()/Capture() instead so
    publishes stay O(ops-since-last-publish) (DESIGN.md §15). The only
    legitimate serve-layer caller is the measured deep-copy baseline,
    which carries an explicit allow."""
    if not relpath.startswith("src/serve/"):
        return
    for number, line in enumerate(lines, start=1):
        if LINE_COMMENT_RE.match(line):
            continue
        if DEEP_CLONE_RE.search(line) and not line_allows(line, "deep-clone"):
            yield number, "deep-clone", (
                "deep Clone() in src/serve/; capture through the COW "
                "Freeze()/Capture() path (O(delta)), or annotate why a "
                "full copy is required")


CROSS_SHARD_RE = re.compile(r"(?:->|\.)\s*shard\s*\(")


def check_cross_shard(relpath, lines):
    """shard(i) reaches through the coordinator into one shard's private
    engine; production code outside src/shard/ must stay on the
    ShardedEngine surface (routed mutations, scatter-gather Search,
    CompositeSnapshot capture) so shard placement remains an
    implementation detail (DESIGN.md §16). Tests, benches and examples
    are exempt — they exist to poke at individual shards."""
    if not relpath.startswith("src/") or relpath.startswith("src/shard/"):
        return
    for number, line in enumerate(lines, start=1):
        if LINE_COMMENT_RE.match(line):
            continue
        if CROSS_SHARD_RE.search(line) and \
                not line_allows(line, "cross-shard"):
            yield number, "cross-shard", (
                "direct shard(i) access outside src/shard/; go through "
                "the ShardedEngine surface, or annotate why reaching "
                "into one shard is required")


FILE_CHECKS = [check_banned, check_include_guard, check_using_namespace,
               check_full_scan, check_raw_sync, check_deep_clone,
               check_cross_shard]


def check_build_artifacts(root):
    """Flags committed files that belong to a build tree."""
    try:
        output = subprocess.run(
            ["git", "ls-files"], cwd=root, capture_output=True, text=True,
            check=True).stdout
    except (OSError, subprocess.CalledProcessError):
        return  # Not a git checkout (e.g. a tarball); nothing to check.
    for tracked in output.splitlines():
        for pattern in BUILD_ARTIFACT_RES:
            if pattern.search(tracked):
                yield tracked, 0, "build-artifact", (
                    "build artifact is committed; remove it and rely on "
                    ".gitignore")
                break


def iter_source_files(root, paths):
    for path in paths:
        absolute = os.path.join(root, path)
        if os.path.isfile(absolute):
            yield path
            continue
        for directory, _, names in sorted(os.walk(absolute)):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTENSIONS):
                    full = os.path.join(directory, name)
                    yield os.path.relpath(full, root)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories relative to the root "
                             "(default: %s)" % " ".join(DEFAULT_SCAN_DIRS))
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or [d for d in DEFAULT_SCAN_DIRS
                           if os.path.isdir(os.path.join(root, d))]
    # An explicit path that doesn't exist is a caller error (a typo would
    # otherwise silently lint nothing and report success).
    for path in args.paths or ():
        if not os.path.exists(os.path.join(root, path)):
            print("splint: no such file or directory: %s" % path,
                  file=sys.stderr)
            return 2

    findings = []
    for relpath in iter_source_files(root, paths):
        relpath = relpath.replace(os.sep, "/")
        try:
            with open(os.path.join(root, relpath),
                      encoding="utf-8", errors="replace") as handle:
                lines = handle.read().splitlines()
        except OSError as error:
            print("splint: cannot read %s: %s" % (relpath, error),
                  file=sys.stderr)
            return 2
        for check in FILE_CHECKS:
            for number, rule, message in check(relpath, lines) or ():
                findings.append((relpath, number, rule, message))

    findings.extend(check_build_artifacts(root))

    for relpath, number, rule, message in findings:
        print("%s:%d: [%s] %s" % (relpath, number, rule, message))
    if findings:
        print("splint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
