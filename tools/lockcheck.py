#!/usr/bin/env python3
"""lockcheck — the StoryPivot lock-order linter (DESIGN.md §13).

Clang's thread-safety analysis is per-function: it proves that guarded
state is only touched under its lock, but it cannot see a DEADLOCK-shaped
bug — two locks taken in opposite orders on two code paths. lockcheck
closes that gap with a declared, machine-checked lock hierarchy:

  1. DECLARATIONS. Every `Mutex` / `SerialSection` declaration in src/
     must carry an annotation on the line above it (or its own line):

         // lockcheck: name=<dotted-id> [after=<id>[,<id>...]] [role]

     `name` is the lock's repo-unique identity (convention:
     `Class.member_` or `file.Scope.var`). `after=A` declares "this lock
     may be acquired while A is held" — i.e. A precedes it in the
     hierarchy. `role` marks a zero-cost SerialSection phantom
     capability (asserted, never acquired). A Mutex/SerialSection
     declaration WITHOUT an annotation is an error: new shared state
     must state its place in the hierarchy (DESIGN.md §13 rule R2).

  2. ACYCLICITY. The declared `after` edges must form a DAG. A cycle
     means the declared hierarchy itself permits deadlock, before any
     code runs. The passing run prints a valid total order.

  3. ACQUISITION SITES. Every `MutexLock guard(expr);` and explicit
     `expr.Lock()` in src/ is extracted, resolved to a declared lock by
     its variable name, and checked: a site that acquires lock I while
     lock O is (lexically) still held is legal only when the hierarchy
     declares O before I (directly or transitively). The nesting check
     is a lexical brace-scope approximation — deferred lambdas count as
     if they ran in place, which over-approximates (safe direction:
     false positives, suppressible with `// lockcheck: allow(nested)`
     on the acquiring line, never false negatives for straight-line
     code).

SerialSection roles participate in (1) and (2) — their names are
reserved and their `after` edges checked — but have no acquisition
sites: they are asserted, not locked, so they can never deadlock.

Usage:
  tools/lockcheck.py [--root REPO_ROOT] [--verbose] [PATH ...]
  tools/lockcheck.py --self-test

Exits 0 when clean, 1 when findings exist, 2 on usage errors.
"""

import argparse
import os
import re
import sys

DEFAULT_SCAN_DIRS = ["src"]
SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

# The wrapper library itself declares/locks the raw primitives.
EXEMPT_FILES = ("src/util/sync.h", "src/util/sync.cc")

ANNOTATION_RE = re.compile(
    r"//\s*lockcheck:\s*name=(?P<name>[A-Za-z_][\w.]*)"
    r"(?:\s+after=(?P<after>[A-Za-z_][\w.]*(?:,[A-Za-z_][\w.]*)*))?"
    r"(?P<role>\s+role)?\s*$")
DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?P<kind>Mutex|SerialSection)\s+"
    r"(?P<var>[A-Za-z_]\w*)\s*;")
SCOPED_ACQUIRE_RE = re.compile(
    r"\bMutexLock\s+[A-Za-z_]\w*\s*\((?P<expr>[^()]+)\)")
DIRECT_ACQUIRE_RE = re.compile(
    r"(?P<expr>[A-Za-z_][\w.>-]*)\s*(?:\.|->)\s*Lock\s*\(\s*\)")
ALLOW_NESTED_RE = re.compile(r"//\s*lockcheck:\s*allow\(nested\)")
LINE_COMMENT_RE = re.compile(r"^\s*//")


class Lock:
    def __init__(self, name, kind, is_role, after, site):
        self.name = name
        self.kind = kind
        self.is_role = is_role
        self.after = after  # Names that may be held when this is acquired.
        self.site = site    # "file:line" of the declaration.


def strip_comment(line):
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def base_var(expr):
    """`state.mu` -> `mu`, `this->mu_` -> `mu_`: the declared member the
    acquisition expression bottoms out in."""
    return re.split(r"\.|->", expr.strip())[-1].strip().rstrip("()")


def scan_file(relpath, lines, locks, acquisitions, findings):
    """Collects declarations and acquisition sites from one file."""
    pending = None  # Annotation waiting for its declaration line.
    held = []       # Stack of (lock name, brace depth at acquisition).
    depth = 0
    for number, line in enumerate(lines, start=1):
        annotation = ANNOTATION_RE.search(line)
        decl = DECL_RE.match(line)
        if annotation and not decl:
            pending = (annotation, number)
        elif decl:
            name_match = annotation or (pending[0] if pending else None)
            if name_match is None:
                findings.append((relpath, number, (
                    "%s `%s` has no `// lockcheck: name=...` annotation; "
                    "every lock must declare its place in the hierarchy "
                    "(DESIGN.md §13 rule R2)"
                    % (decl.group("kind"), decl.group("var")))))
            else:
                name = name_match.group("name")
                after = (name_match.group("after") or "")
                after = [a for a in after.split(",") if a]
                is_role = bool(name_match.group("role"))
                if is_role != (decl.group("kind") == "SerialSection"):
                    findings.append((relpath, number, (
                        "lock `%s`: the `role` marker must be present "
                        "exactly for SerialSection declarations" % name)))
                if name in locks:
                    findings.append((relpath, number, (
                        "duplicate lock name `%s` (first declared at %s)"
                        % (name, locks[name].site))))
                else:
                    locks[name] = Lock(name, decl.group("kind"), is_role,
                                       after, "%s:%d" % (relpath, number))
                    locks[name].var = decl.group("var")
            pending = None
        elif pending is not None and not LINE_COMMENT_RE.match(line):
            findings.append((relpath, pending[1],
                             "dangling lockcheck annotation: the next "
                             "code line is not a Mutex/SerialSection "
                             "declaration"))
            pending = None

        # Braces, acquisitions and releases are processed in the order
        # they appear ON the line, so `{ MutexLock l(mu); }` scopes
        # correctly. A scoped guard is held until its enclosing scope
        # closes (depth drops below the depth it was taken at); a direct
        # Lock() is held until the matching Unlock() or scope close.
        code = strip_comment(line)
        allow = bool(ALLOW_NESTED_RE.search(line))
        events = [(m.start(), "brace", ch)
                  for m, ch in ((m, m.group()) for m in
                                re.finditer(r"[{}]", code))]
        events += [(m.start(), "acquire", m.group("expr"))
                   for m in SCOPED_ACQUIRE_RE.finditer(code)]
        events += [(m.start(), "acquire", m.group("expr"))
                   for m in DIRECT_ACQUIRE_RE.finditer(code)]
        events += [(m.start(), "release", m.group("expr"))
                   for m in re.finditer(
                       r"(?P<expr>[A-Za-z_][\w.>-]*)\s*(?:\.|->)\s*"
                       r"Unlock\s*\(\s*\)", code)]
        for _, kind, payload in sorted(events):
            if kind == "brace":
                depth += 1 if payload == "{" else -1
                while held and depth < held[-1][1]:
                    held.pop()
            elif kind == "acquire":
                acquisitions.append((relpath, number, payload,
                                     list(held), allow))
                held.append((payload, depth))
            else:  # release
                for i in range(len(held) - 1, -1, -1):
                    if base_var(held[i][0]) == base_var(payload):
                        held.pop(i)
                        break


def resolve(expr, locks, relpath):
    """Acquisition expression -> declared lock, by base variable name.
    Ties between same-named members (e.g. several classes each with a
    `mu_`) are broken by declaration proximity: a lock declared in the
    same file wins, then one declared in the matching header/source
    pair (`foo.cc` resolves against `foo.h`)."""
    var = base_var(expr)
    matches = [l for l in locks.values() if l.var == var]
    if len(matches) > 1:
        same_file = [l for l in matches if l.site.startswith(relpath + ":")]
        if not same_file:
            stem = os.path.splitext(relpath)[0]
            same_file = [
                l for l in matches
                if os.path.splitext(l.site.rsplit(":", 1)[0])[0] == stem]
        matches = same_file or matches
    return matches[0] if len(matches) == 1 else None


def check(files, verbose=False, out=sys.stdout):
    """files: list of (relpath, lines). Returns list of findings."""
    locks, acquisitions, findings = {}, [], []
    for relpath, lines in files:
        scan_file(relpath, lines, locks, acquisitions, findings)

    # Acyclicity of the declared hierarchy (edges: after -> lock).
    graph = {name: [] for name in locks}
    for lock in locks.values():
        for prior in lock.after:
            if prior not in locks:
                findings.append((lock.site.split(":")[0],
                                 int(lock.site.split(":")[1]),
                                 "lock `%s`: after=%s names an undeclared "
                                 "lock" % (lock.name, prior)))
            else:
                graph[prior].append(lock.name)

    order, state = [], {}  # state: 1 = visiting, 2 = done.

    def visit(node, path):
        state[node] = 1
        for succ in graph[node]:
            if state.get(succ) == 1:
                cycle = path[path.index(succ):] + [succ] \
                    if succ in path else [node, succ]
                findings.append((locks[succ].site.split(":")[0],
                                 int(locks[succ].site.split(":")[1]),
                                 "lock hierarchy cycle: %s"
                                 % " -> ".join(cycle)))
            elif state.get(succ) != 2:
                visit(succ, path + [succ])
        state[node] = 2
        order.append(node)

    for name in sorted(graph):
        if state.get(name) != 2:
            visit(name, [name])

    def reaches(src, dst):
        stack, seen = [src], set()
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
        return False

    # Acquisition sites: resolvable, and nested only along declared edges.
    for relpath, number, expr, held, allowed in acquisitions:
        inner = resolve(expr, locks, relpath)
        if inner is None:
            findings.append((relpath, number,
                             "acquisition of `%s` does not resolve to a "
                             "uniquely annotated lock" % expr.strip()))
            continue
        if allowed:
            continue
        for held_expr, _ in held:
            outer = resolve(held_expr, locks, relpath)
            if outer is None or outer.name == inner.name:
                continue  # Unresolvable outer already reported at its site.
            if not reaches(outer.name, inner.name):
                findings.append((relpath, number, (
                    "acquires `%s` while `%s` is held, but the hierarchy "
                    "does not declare `after=%s` (directly or "
                    "transitively) on `%s`"
                    % (inner.name, outer.name, outer.name, inner.name))))

    if verbose and not findings:
        roles = sum(1 for l in locks.values() if l.is_role)
        print("lockcheck: %d lock(s) (%d mutex, %d role), "
              "%d acquisition site(s), hierarchy acyclic"
              % (len(locks), len(locks) - roles, roles, len(acquisitions)),
              file=out)
        print("lockcheck: valid order: %s"
              % " -> ".join(reversed(order)), file=out)
    return findings


# --- Self test ---------------------------------------------------------------

SELF_TEST_CASES = [
    ("valid nested order passes", 0, """
// lockcheck: name=A
Mutex a_mu;
// lockcheck: name=B after=A
Mutex b_mu;
void f() {
  MutexLock outer(a_mu);
  MutexLock inner(b_mu);
}
"""),
    ("declared cycle is a finding", 1, """
// lockcheck: name=A after=B
Mutex a_mu;
// lockcheck: name=B after=A
Mutex b_mu;
"""),
    ("undeclared nested acquisition is a finding", 1, """
// lockcheck: name=A
Mutex a_mu;
// lockcheck: name=B
Mutex b_mu;
void f() {
  MutexLock outer(a_mu);
  MutexLock inner(b_mu);
}
"""),
    ("reverse-order acquisition against declared edge is a finding", 1, """
// lockcheck: name=A
Mutex a_mu;
// lockcheck: name=B after=A
Mutex b_mu;
void f() {
  MutexLock outer(b_mu);
  MutexLock inner(a_mu);
}
"""),
    ("unannotated Mutex is a finding", 1, """
Mutex naked_mu;
"""),
    ("role marker required for SerialSection", 1, """
// lockcheck: name=R
SerialSection serial_;
"""),
    ("transitive edge suffices", 0, """
// lockcheck: name=A
Mutex a_mu;
// lockcheck: name=B after=A
Mutex b_mu;
// lockcheck: name=C after=B
Mutex c_mu;
void f() {
  MutexLock outer(a_mu);
  MutexLock inner(c_mu);
}
"""),
    ("sequential (non-nested) acquisitions pass", 0, """
// lockcheck: name=A
Mutex a_mu;
// lockcheck: name=B
Mutex b_mu;
void f() {
  { MutexLock one(a_mu); }
  { MutexLock two(b_mu); }
}
"""),
    ("direct Lock() call is a site too", 1, """
// lockcheck: name=A
Mutex a_mu;
// lockcheck: name=B
Mutex b_mu;
void f() {
  MutexLock outer(a_mu);
  b_mu.Lock();
}
"""),
    ("allow(nested) suppresses the nesting check", 0, """
// lockcheck: name=A
Mutex a_mu;
// lockcheck: name=B
Mutex b_mu;
void f() {
  MutexLock outer(a_mu);
  MutexLock inner(b_mu);  // lockcheck: allow(nested)
}
"""),
]

# Multi-file fixtures: (title, want_findings, [(relpath, source), ...]).
SELF_TEST_MULTIFILE_CASES = [
    ("same-named members resolve via the header/source pair", 0, [
        ("a.h", """
// lockcheck: name=A.mu_
Mutex mu_;
"""),
        ("b.h", """
// lockcheck: name=B.mu_
Mutex mu_;
"""),
        ("a.cc", """
void f() {
  MutexLock lock(mu_);
}
"""),
    ]),
    ("same-named members with no owning pair stay ambiguous", 1, [
        ("a.h", """
// lockcheck: name=A.mu_
Mutex mu_;
"""),
        ("b.h", """
// lockcheck: name=B.mu_
Mutex mu_;
"""),
        ("c.cc", """
void f() {
  MutexLock lock(mu_);
}
"""),
    ]),
]


def self_test():
    failures = 0
    cases = [(title, want, [("fixture.cc", source.splitlines())])
             for title, want, source in SELF_TEST_CASES]
    cases += [(title, want, [(p, s.splitlines()) for p, s in files])
              for title, want, files in SELF_TEST_MULTIFILE_CASES]
    for title, want_findings, files in cases:
        findings = check(files)
        got = 1 if findings else 0
        status = "ok" if got == want_findings else "FAIL"
        if got != want_findings:
            failures += 1
            for relpath, number, message in findings:
                print("    %s:%d: %s" % (relpath, number, message))
        print("%-4s %s" % (status, title))
    if failures:
        print("lockcheck --self-test: %d case(s) failed" % failures,
              file=sys.stderr)
        return 1
    print("lockcheck --self-test: %d case(s) passed" % len(cases))
    return 0


def iter_source_files(root, paths):
    for path in paths:
        absolute = os.path.join(root, path)
        if os.path.isfile(absolute):
            yield path
            continue
        for directory, _, names in sorted(os.walk(absolute)):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTENSIONS):
                    full = os.path.join(directory, name)
                    yield os.path.relpath(full, root)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded fixture cases and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="print the lock inventory and a valid order")
    parser.add_argument("paths", nargs="*",
                        help="files or directories relative to the root "
                             "(default: %s)" % " ".join(DEFAULT_SCAN_DIRS))
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or [d for d in DEFAULT_SCAN_DIRS
                           if os.path.isdir(os.path.join(root, d))]
    for path in args.paths or ():
        if not os.path.exists(os.path.join(root, path)):
            print("lockcheck: no such file or directory: %s" % path,
                  file=sys.stderr)
            return 2

    files = []
    for relpath in iter_source_files(root, paths):
        relpath = relpath.replace(os.sep, "/")
        if relpath in EXEMPT_FILES:
            continue
        try:
            with open(os.path.join(root, relpath),
                      encoding="utf-8", errors="replace") as handle:
                files.append((relpath, handle.read().splitlines()))
        except OSError as error:
            print("lockcheck: cannot read %s: %s" % (relpath, error),
                  file=sys.stderr)
            return 2

    findings = check(files, verbose=True)
    for relpath, number, message in findings:
        print("%s:%d: [lockcheck] %s" % (relpath, number, message))
    if findings:
        print("lockcheck: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
