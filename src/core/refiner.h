#ifndef STORYPIVOT_CORE_REFINER_H_
#define STORYPIVOT_CORE_REFINER_H_

#include <cstdint>
#include <vector>

#include "core/aligner.h"
#include "core/similarity.h"
#include "core/story_set.h"
#include "storage/snippet_store.h"

namespace storypivot {

/// Knobs of the story-refinement step (Fig. 1d).
struct RefinementConfig {
  /// A snippet is relocated when the target story scores at least this
  /// much higher than its current story.
  double margin = 0.05;
  /// Snippet-pair counterpart detection thresholds (reused from alignment
  /// semantics): similarity and time tolerance for cross-source
  /// counterparts.
  double pair_threshold = 0.45;
  Timestamp pair_tolerance = 3 * kSecondsPerDay;
  /// After relocations, stories that lost snippets are checked for
  /// connectivity and split into connected components when they fall
  /// apart.
  bool split_check = true;
  /// Connectivity edges require at least this similarity...
  double split_edge_threshold = 0.25;
  /// ...within this time distance.
  Timestamp split_edge_window = 14 * kSecondsPerDay;
};

/// What a refinement pass did.
struct RefinementStats {
  int snippets_moved = 0;
  int stories_created = 0;
  int stories_split = 0;
  uint64_t conflicts_examined = 0;
};

/// Resolves conflicts between story identification and story alignment:
/// when a snippet's cross-source counterpart lives in a *different*
/// integrated story, identification likely mis-assigned one of them
/// (Fig. 1: v14 sits in c11 although its counterpart's story aligned into
/// c'3). The refiner relocates such snippets into the same-source story of
/// the counterpart's integrated story when the similarity margin supports
/// it, propagating alignment decisions back into the per-source story
/// sets (§2.3).
class StoryRefiner {
 public:
  StoryRefiner(const SimilarityModel* model, RefinementConfig config)
      : model_(model), config_(config) {}

  StoryRefiner(const StoryRefiner&) = delete;
  StoryRefiner& operator=(const StoryRefiner&) = delete;

  /// Runs one refinement pass over all partitions, using `alignment` as
  /// the evidence. Mutates the per-source story sets. The alignment result
  /// becomes stale afterwards; callers re-align if they need fresh
  /// integrated stories.
  RefinementStats Refine(const std::vector<StorySet*>& partitions,
                         const AlignmentResult& alignment,
                         const SnippetStore& store,
                         StoryId* next_story_id) const;

  /// Splits `story_id` into connected components under the configured
  /// edge threshold/window if it is no longer connected. Returns the
  /// number of additional stories created (0 when still connected).
  int SplitIfDisconnected(StorySet* partition, StoryId story_id,
                          const SnippetStore& store,
                          StoryId* next_story_id) const;

  const RefinementConfig& config() const { return config_; }

 private:
  const SimilarityModel* model_;
  RefinementConfig config_;
};

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_REFINER_H_
