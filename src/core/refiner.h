#ifndef STORYPIVOT_CORE_REFINER_H_
#define STORYPIVOT_CORE_REFINER_H_

#include <cstdint>
#include <vector>

#include "core/aligner.h"
#include "core/similarity.h"
#include "core/story_set.h"
#include "storage/snippet_store.h"

namespace storypivot {

/// Knobs of the story-refinement step (Fig. 1d).
struct RefinementConfig {
  /// A snippet is relocated when the target story scores at least this
  /// much higher than its current story.
  double margin = 0.05;
  /// Snippet-pair counterpart detection thresholds (reused from alignment
  /// semantics): similarity and time tolerance for cross-source
  /// counterparts.
  double pair_threshold = 0.45;
  Timestamp pair_tolerance = 3 * kSecondsPerDay;
  /// After relocations, stories that lost snippets are checked for
  /// connectivity and split into connected components when they fall
  /// apart.
  bool split_check = true;
  /// Connectivity edges require at least this similarity...
  double split_edge_threshold = 0.25;
  /// ...within this time distance.
  Timestamp split_edge_window = 14 * kSecondsPerDay;
};

/// What a refinement pass did.
struct RefinementStats {
  int snippets_moved = 0;
  int stories_created = 0;
  int stories_split = 0;
  uint64_t conflicts_examined = 0;
};

/// An exact record of the primitive story-set mutations one refinement
/// pass EXECUTED (skipped candidate moves are not recorded), in
/// execution order, with every assigned story id explicit. Replaying a
/// journal against partitions in the pre-refinement state reproduces
/// the post-refinement state bit for bit — without re-running any
/// similarity scoring. The sharded engine relies on this: the
/// coordinator refines frozen copies once, then ships each shard the
/// journal entries for its own sources (entries touch only their own
/// partition and carry explicit ids, so per-shard subsequences replay
/// independently). See StoryPivotEngine::ApplyRefinementJournal.
struct RefinementJournal {
  /// One executed relocation: `snippet` left story `from` for story
  /// `to` (freshly created by this move when `created`).
  struct Move {
    SourceId source = 0;
    SnippetId snippet = 0;
    StoryId from = kInvalidStoryId;
    StoryId to = kInvalidStoryId;
    bool created = false;
  };
  /// One executed split of `story` into `components`, which received
  /// `assigned` ids (assigned[0] == story; components pre-sorted by
  /// earliest member id, exactly as executed).
  struct Split {
    SourceId source = 0;
    StoryId story = kInvalidStoryId;
    std::vector<std::vector<SnippetId>> components;
    std::vector<StoryId> assigned;
  };
  struct Entry {
    enum class Kind : uint8_t { kMove = 0, kSplit = 1 };
    Kind kind = Kind::kMove;
    Move move;
    Split split;
  };
  std::vector<Entry> entries;
};

/// Resolves conflicts between story identification and story alignment:
/// when a snippet's cross-source counterpart lives in a *different*
/// integrated story, identification likely mis-assigned one of them
/// (Fig. 1: v14 sits in c11 although its counterpart's story aligned into
/// c'3). The refiner relocates such snippets into the same-source story of
/// the counterpart's integrated story when the similarity margin supports
/// it, propagating alignment decisions back into the per-source story
/// sets (§2.3).
class StoryRefiner {
 public:
  StoryRefiner(const SimilarityModel* model, RefinementConfig config)
      : model_(model), config_(config) {}

  StoryRefiner(const StoryRefiner&) = delete;
  StoryRefiner& operator=(const StoryRefiner&) = delete;

  /// Runs one refinement pass over all partitions, using `alignment` as
  /// the evidence. Mutates the per-source story sets. The alignment result
  /// becomes stale afterwards; callers re-align if they need fresh
  /// integrated stories. When `journal` is non-null, every executed
  /// primitive is appended to it (see RefinementJournal).
  RefinementStats Refine(const std::vector<StorySet*>& partitions,
                         const AlignmentResult& alignment,
                         const SnippetStore& store,
                         StoryId* next_story_id,
                         RefinementJournal* journal = nullptr) const;

  /// Splits `story_id` into connected components under the configured
  /// edge threshold/window if it is no longer connected. Returns the
  /// number of additional stories created (0 when still connected).
  /// An executed split is appended to `journal` when non-null.
  int SplitIfDisconnected(StorySet* partition, StoryId story_id,
                          const SnippetStore& store,
                          StoryId* next_story_id,
                          RefinementJournal* journal = nullptr) const;

  const RefinementConfig& config() const { return config_; }

 private:
  const SimilarityModel* model_;
  RefinementConfig config_;
};

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_REFINER_H_
