#ifndef STORYPIVOT_CORE_ALIGNER_H_
#define STORYPIVOT_CORE_ALIGNER_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/similarity.h"
#include "core/story_set.h"
#include "model/ids.h"
#include "storage/snippet_store.h"

namespace storypivot {

class ThreadPool;

/// Knobs of the story-alignment phase (§2.3).
struct AlignmentConfig {
  /// Two stories align when content-similarity x temporal-affinity
  /// reaches this. Alignment is transitive (union-find), so the threshold
  /// is deliberately higher than the identification assign threshold —
  /// a low value lets one mixed story chain unrelated clusters together.
  double align_threshold = 0.40;
  /// Temporal tolerance between story spans, in seconds. Larger than the
  /// identification window ("more tolerance in the temporal alignment of
  /// stories", §4.1).
  Timestamp temporal_tolerance = 14 * kSecondsPerDay;
  /// Two snippets from different sources are counterparts (the snippet
  /// "aligns" the stories) when their similarity reaches this...
  double pair_threshold = 0.45;
  /// ...and their event timestamps are within this many seconds.
  Timestamp pair_tolerance = 3 * kSecondsPerDay;
  /// Allow story-sketch LSH to generate candidate story pairs instead of
  /// comparing all cross-source pairs. LSH only activates above
  /// `lsh_min_stories` — for small inputs all-pairs is cheap and exact,
  /// and LSH recall is poor for pairs whose set-Jaccard sits below its
  /// S-curve even when the blended similarity clears the threshold.
  bool use_lsh = true;
  /// Minimum story count before the LSH path activates.
  size_t lsh_min_stories = 500;
  /// Above this many stories, all-pairs comparison is refused and LSH is
  /// used regardless of `use_lsh`.
  size_t all_pairs_limit = 4000;
  /// Allow two stories of the same source to land in one integrated
  /// story. The paper keeps same-source stories separate (refinement, not
  /// alignment, fixes same-source mistakes), so this defaults to false.
  bool allow_same_source_merge = false;
  /// MinHash size for story sketches.
  size_t sketch_hashes = 64;
  /// Incremental alignment only: story-pair scores depend on corpus IDF,
  /// which drifts as documents arrive. When the document count has moved
  /// by more than this fraction since the last full rebuild, the
  /// incremental aligner rebuilds its whole graph so stale decisions are
  /// re-taken under current statistics.
  double idf_drift_rebuild = 0.10;
};

/// The role a snippet plays inside an integrated story (§2.3): it either
/// *aligns* stories (it has a counterpart in another source) or *enriches*
/// the story (source-exclusive background material).
enum class SnippetRole { kAligning, kEnriching };

/// One integrated story C': per-source member stories plus a merged view.
struct IntegratedStory {
  StoryId id = kInvalidStoryId;
  /// The per-source stories that were aligned into this story.
  std::vector<std::pair<SourceId, StoryId>> members;
  /// Merged aggregates over all member stories (for overview rendering).
  Story merged;
};

/// Output of one alignment run.
struct AlignmentResult {
  std::vector<IntegratedStory> stories;
  /// Snippet -> index into `stories`.
  std::unordered_map<SnippetId, size_t> integrated_of;
  /// Per-snippet role classification.
  std::unordered_map<SnippetId, SnippetRole> roles;
  /// Best cross-source counterpart of each *aligning* snippet.
  std::unordered_map<SnippetId, SnippetId> counterpart;
  /// (source, story) -> index into `stories`.
  std::unordered_map<uint64_t, size_t> member_index;
  /// Story pairs actually scored (work indicator for the benches).
  uint64_t num_pairs_scored = 0;

  /// Integrated story containing per-source story (source, id), or
  /// SIZE_MAX.
  size_t IndexOfMember(SourceId source, StoryId id) const;
};

/// Fills `result->roles` and `result->counterpart` for every snippet of
/// every integrated story in `result`: a snippet is *aligning* when a
/// sufficiently similar snippet from another source exists in the same
/// integrated story within the pair tolerance, else *enriching* (§2.3).
/// Shared by the batch and incremental aligners. With a non-null `pool`,
/// integrated stories are classified concurrently (each story's snippets
/// belong to it alone, so the per-story maps are disjoint) and merged in
/// story order — the result is identical to the serial path.
void ClassifySnippetRoles(const SimilarityModel& model,
                          const AlignmentConfig& config,
                          const SnippetStore& store,
                          AlignmentResult* result,
                          ThreadPool* pool = nullptr);

/// Classifies a single integrated story's snippets into `roles` /
/// `counterpart` (see ClassifySnippetRoles). Exposed so the incremental
/// aligner can re-classify only the clusters that changed.
void ClassifyIntegratedStory(const SimilarityModel& model,
                             const AlignmentConfig& config,
                             const SnippetStore& store,
                             const IntegratedStory& story,
                             std::unordered_map<SnippetId, SnippetRole>* roles,
                             std::unordered_map<SnippetId, SnippetId>*
                                 counterpart);

/// Aligns the per-source story sets across sources into integrated
/// stories. Stories that align nowhere survive as singleton integrated
/// stories ("even if a story cannot be aligned ... it is still going to be
/// present in the result set", §2.3).
class StoryAligner {
 public:
  StoryAligner(const SimilarityModel* model, AlignmentConfig config)
      : model_(model), config_(config) {}

  StoryAligner(const StoryAligner&) = delete;
  StoryAligner& operator=(const StoryAligner&) = delete;

  /// Runs alignment over `partitions`. Integrated ids are drawn from
  /// `next_story_id`. With a non-null `pool`, story-pair scoring (and
  /// snippet-role classification) fans out across the pool; candidate
  /// pairs are enumerated in a fixed order and edges applied in that
  /// order, so the result is bit-identical to the serial path for every
  /// thread count (see DESIGN.md §9).
  AlignmentResult Align(const std::vector<const StorySet*>& partitions,
                        const SnippetStore& store, StoryId* next_story_id,
                        ThreadPool* pool = nullptr) const;

  const AlignmentConfig& config() const { return config_; }

  /// Combined story-pair score: content similarity gated by temporal
  /// affinity of the story spans.
  double StoryPairScore(const Story& a, const Story& b) const;

 private:
  const SimilarityModel* model_;
  AlignmentConfig config_;
};

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_ALIGNER_H_
