#include "core/identifier.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace storypivot {

StoryId StoryIdentifier::PlaceWithCandidates(
    const Snippet& snippet, const std::vector<SnippetId>& candidates,
    StorySet* stories, const SnippetStore& store, StoryId* next_story_id) {
  SP_CHECK(stories != nullptr);
  SP_CHECK(next_story_id != nullptr);
  const SimilarityConfig& sim = model_->config();

  // Best member-snippet similarity per story.
  std::unordered_map<StoryId, double> best_member;
  for (SnippetId cid : candidates) {
    if (cid == snippet.id) continue;
    StoryId story_id = stories->StoryOf(cid);
    if (story_id == kInvalidStoryId) continue;
    const Snippet* candidate = store.Find(cid);
    if (candidate == nullptr) continue;
    double s = model_->SnippetSimilarity(snippet, *candidate);
    auto [it, inserted] = best_member.emplace(story_id, s);
    if (!inserted && s > it->second) it->second = s;
  }

  // Blend with the story-centroid score and find the best story plus the
  // set of stories the snippet bridges above the merge threshold.
  StoryId best_story = kInvalidStoryId;
  double best_score = 0.0;
  std::vector<StoryId> merge_set;
  for (const auto& [story_id, member_score] : best_member) {
    const Story* story = stories->FindStory(story_id);
    SP_CHECK(story != nullptr);
    double centroid_score = sim.centroid_blend > 0.0
                                ? model_->SnippetStorySimilarity(snippet,
                                                                 *story)
                                : 0.0;
    double score = (1.0 - sim.centroid_blend) * member_score +
                   sim.centroid_blend * centroid_score;
    if (score > best_score ||
        (score == best_score && story_id < best_story)) {
      best_score = score;
      best_story = story_id;
    }
    if (score >= sim.merge_threshold) merge_set.push_back(story_id);
  }

  if (best_story == kInvalidStoryId || best_score < sim.assign_threshold) {
    StoryId id = (*next_story_id)++;
    stories->CreateStory(id);
    stories->AddSnippetToStory(snippet, id);
    return id;
  }

  if (merge_set.size() >= 2) {
    // The snippet bridges several stories strongly: merge them
    // (incremental story construction, §2.2). The best story survives.
    std::vector<StoryId> ordered;
    ordered.push_back(best_story);
    for (StoryId id : merge_set) {
      if (id != best_story) ordered.push_back(id);
    }
    best_story = stories->MergeStories(ordered);
  }
  stories->AddSnippetToStory(snippet, best_story);
  return best_story;
}

StoryId CompleteIdentifier::Identify(const Snippet& snippet,
                                     StorySet* stories,
                                     const SnippetStore& store,
                                     const SnippetSketchIndex* sketches,
                                     StoryId* next_story_id) {
  (void)sketches;
  std::vector<SnippetId> candidates;
  if (config_.prune_with_entities) {
    candidates = stories->entity_index().Candidates(snippet.entities);
  } else {
    candidates.reserve(stories->snippet_times().size());
    stories->snippet_times().ForEach(
        [&candidates](Timestamp, SnippetId id) { candidates.push_back(id); });
  }
  return PlaceWithCandidates(snippet, candidates, stories, store,
                             next_story_id);
}

StoryId TemporalIdentifier::Identify(const Snippet& snippet,
                                     StorySet* stories,
                                     const SnippetStore& store,
                                     const SnippetSketchIndex* sketches,
                                     StoryId* next_story_id) {
  const Timestamp lo = snippet.timestamp - config_.window;
  const Timestamp hi = snippet.timestamp + config_.window;
  std::vector<SnippetId> candidates;

  if (config_.use_sketch_candidates && sketches != nullptr) {
    // LSH candidates filtered down to the window.
    MinHashSignature probe = MinHashSignature::FromContent(
        snippet.entities, snippet.keywords, sketches->num_hashes);
    for (uint64_t raw : sketches->lsh.Query(probe)) {
      SnippetId cid = static_cast<SnippetId>(raw);
      const Snippet* c = store.Find(cid);
      if (c == nullptr) continue;
      if (c->timestamp < lo || c->timestamp > hi) continue;
      candidates.push_back(cid);
    }
  } else if (config_.prune_with_entities) {
    std::vector<SnippetId> window_ids =
        stories->snippet_times().IdsInWindow(lo, hi);
    std::vector<SnippetId> entity_ids =
        stories->entity_index().Candidates(snippet.entities);
    std::sort(window_ids.begin(), window_ids.end());
    std::sort(entity_ids.begin(), entity_ids.end());
    std::set_intersection(window_ids.begin(), window_ids.end(),
                          entity_ids.begin(), entity_ids.end(),
                          std::back_inserter(candidates));
  } else {
    candidates = stories->snippet_times().IdsInWindow(lo, hi);
  }
  return PlaceWithCandidates(snippet, candidates, stories, store,
                             next_story_id);
}

std::unique_ptr<StoryIdentifier> MakeIdentifier(IdentificationMode mode,
                                                const SimilarityModel* model,
                                                IdentifierConfig config) {
  switch (mode) {
    case IdentificationMode::kComplete:
      return std::make_unique<CompleteIdentifier>(model, config);
    case IdentificationMode::kTemporal:
      return std::make_unique<TemporalIdentifier>(model, config);
  }
  std::abort();
}

}  // namespace storypivot
