#include "core/story_set.h"

#include <algorithm>

#include "util/logging.h"

namespace storypivot {

Story& StorySet::CreateStory(StoryId id) {
  auto [it, inserted] = stories_.emplace(id, Story(id));
  SP_CHECK(inserted);
  return it->second;
}

void StorySet::AddSnippetToStory(const Snippet& snippet, StoryId story_id) {
  auto it = stories_.find(story_id);
  SP_CHECK(it != stories_.end());
  SP_CHECK(!story_of_.contains(snippet.id));
  it->second.AddSnippet(snippet);
  story_of_[snippet.id] = story_id;
  snippet_times_.Insert(snippet.timestamp, snippet.id);
  entity_index_.Add(snippet.id, snippet.entities);
}

void StorySet::RemoveSnippet(const Snippet& snippet,
                             const SnippetStore& store) {
  auto assign_it = story_of_.find(snippet.id);
  SP_CHECK(assign_it != story_of_.end());
  StoryId story_id = assign_it->second;
  auto story_it = stories_.find(story_id);
  SP_CHECK(story_it != stories_.end());
  Story& story = story_it->second;

  // Collect survivors for aggregate recomputation.
  std::vector<const Snippet*> survivors;
  survivors.reserve(story.size());
  for (SnippetId sid : story.snippets()) {
    if (sid == snippet.id) continue;
    const Snippet* s = store.Find(sid);
    SP_CHECK(s != nullptr);
    survivors.push_back(s);
  }
  story.RemoveSnippet(snippet, survivors);
  story_of_.erase(assign_it);
  // The snippet was assigned, so the temporal index must know it.
  SP_CHECK(snippet_times_.Erase(snippet.timestamp, snippet.id));
  entity_index_.Remove(snippet.id);
  if (story.empty()) stories_.erase(story_it);
}

StoryId StorySet::MergeStories(const std::vector<StoryId>& ids) {
  SP_CHECK(ids.size() >= 2);
  StoryId survivor_id = ids.front();
  auto survivor_it = stories_.find(survivor_id);
  SP_CHECK(survivor_it != stories_.end());
  Story& survivor = survivor_it->second;
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i] == survivor_id) continue;
    auto it = stories_.find(ids[i]);
    SP_CHECK(it != stories_.end());
    for (SnippetId sid : it->second.snippets()) {
      story_of_[sid] = survivor_id;
    }
    survivor.MergeFrom(it->second);
    stories_.erase(it);
  }
  return survivor_id;
}

std::vector<StoryId> StorySet::SplitStory(
    StoryId story_id, const std::vector<std::vector<SnippetId>>& components,
    const SnippetStore& store, StoryId* next_story_id) {
  SP_CHECK(next_story_id != nullptr);
  auto it = stories_.find(story_id);
  SP_CHECK(it != stories_.end());
  SP_CHECK(!components.empty());

  size_t total = 0;
  for (const auto& c : components) total += c.size();
  SP_CHECK(total == it->second.size());

  std::vector<StoryId> out;
  if (components.size() == 1) {
    out.push_back(story_id);
    return out;
  }
  stories_.erase(it);
  for (size_t c = 0; c < components.size(); ++c) {
    StoryId id = (c == 0) ? story_id : (*next_story_id)++;
    Story& story = CreateStory(id);
    for (SnippetId sid : components[c]) {
      const Snippet* snippet = store.Find(sid);
      SP_CHECK(snippet != nullptr);
      story.AddSnippet(*snippet);
      story_of_[sid] = id;
    }
    out.push_back(id);
  }
  return out;
}

StoryId StorySet::StoryOf(SnippetId id) const {
  auto it = story_of_.find(id);
  return it == story_of_.end() ? kInvalidStoryId : it->second;
}

const Story* StorySet::FindStory(StoryId id) const {
  auto it = stories_.find(id);
  return it == stories_.end() ? nullptr : &it->second;
}

std::vector<StoryId> StorySet::StoriesInWindow(Timestamp lo,
                                               Timestamp hi) const {
  std::vector<StoryId> out;
  snippet_times_.ForEachInWindow(lo, hi,
                                 [&](Timestamp, SnippetId sid) {
                                   auto it = story_of_.find(sid);
                                   if (it != story_of_.end()) {
                                     out.push_back(it->second);
                                   }
                                 });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

StorySet StorySet::Clone() const {
  StorySet copy(source_);
  copy.stories_ = stories_;
  copy.story_of_ = story_of_;
  copy.snippet_times_ = snippet_times_;
  copy.entity_index_ = entity_index_.Clone();
  return copy;
}

}  // namespace storypivot
