#include "core/story_set.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace storypivot {

Story& StorySet::CreateStory(StoryId id) {
  auto [story, inserted] = stories_.Emplace(id, Story(id));
  SP_CHECK(inserted);
  return *story;
}

void StorySet::AddSnippetToStory(const Snippet& snippet, StoryId story_id) {
  Story* story = stories_.FindMutable(story_id);
  SP_CHECK(story != nullptr);
  SP_CHECK(!story_of_.contains(snippet.id));
  story->AddSnippet(snippet);
  story_of_.Emplace(snippet.id, story_id);
  snippet_times_.Insert(snippet.timestamp, snippet.id);
  entity_index_.Add(snippet.id, snippet.entities);
}

void StorySet::RemoveSnippet(const Snippet& snippet,
                             const SnippetStore& store) {
  const StoryId* assigned = story_of_.Find(snippet.id);
  SP_CHECK(assigned != nullptr);
  const StoryId story_id = *assigned;
  Story* story = stories_.FindMutable(story_id);
  SP_CHECK(story != nullptr);

  // Collect survivors for aggregate recomputation.
  std::vector<const Snippet*> survivors;
  survivors.reserve(story->size());
  for (SnippetId sid : story->snippets()) {
    if (sid == snippet.id) continue;
    const Snippet* s = store.Find(sid);
    SP_CHECK(s != nullptr);
    survivors.push_back(s);
  }
  story->RemoveSnippet(snippet, survivors);
  const bool story_empty = story->empty();
  story_of_.Erase(snippet.id);
  // The snippet was assigned, so the temporal index must know it.
  SP_CHECK(snippet_times_.Erase(snippet.timestamp, snippet.id));
  entity_index_.Remove(snippet.id);
  if (story_empty) stories_.Erase(story_id);
}

StoryId StorySet::MergeStories(const std::vector<StoryId>& ids) {
  SP_CHECK(ids.size() >= 2);
  const StoryId survivor_id = ids.front();
  SP_CHECK(stories_.contains(survivor_id));
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i] == survivor_id) continue;
    // Copy the victim out before erasing it: map mutations relocate
    // entries, so holding references across Erase is not an option.
    const Story* found = stories_.Find(ids[i]);
    SP_CHECK(found != nullptr);
    Story victim = *found;
    stories_.Erase(ids[i]);
    for (SnippetId sid : victim.snippets()) {
      *story_of_.FindMutable(sid) = survivor_id;
    }
    Story* survivor = stories_.FindMutable(survivor_id);
    survivor->MergeFrom(victim);
  }
  return survivor_id;
}

std::vector<StoryId> StorySet::SplitStory(
    StoryId story_id, const std::vector<std::vector<SnippetId>>& components,
    const SnippetStore& store, StoryId* next_story_id) {
  SP_CHECK(next_story_id != nullptr);
  SP_CHECK(!components.empty());
  std::vector<StoryId> ids;
  ids.reserve(components.size());
  ids.push_back(story_id);
  // A single-component "split" is a no-op and consumes no ids, matching
  // the early return in SplitStoryWithIds.
  for (size_t c = 1; c < components.size(); ++c) {
    ids.push_back((*next_story_id)++);
  }
  return SplitStoryWithIds(story_id, components, store, ids);
}

std::vector<StoryId> StorySet::SplitStoryWithIds(
    StoryId story_id, const std::vector<std::vector<SnippetId>>& components,
    const SnippetStore& store, const std::vector<StoryId>& ids) {
  const Story* existing = stories_.Find(story_id);
  SP_CHECK(existing != nullptr);
  SP_CHECK(!components.empty());
  SP_CHECK(ids.size() == components.size());
  SP_CHECK(ids.front() == story_id);

  size_t total = 0;
  for (const auto& c : components) total += c.size();
  SP_CHECK(total == existing->size());

  std::vector<StoryId> out = ids;
  if (components.size() == 1) return out;
  stories_.Erase(story_id);
  for (size_t c = 0; c < components.size(); ++c) {
    StoryId id = out[c];
    Story& story = CreateStory(id);
    for (SnippetId sid : components[c]) {
      const Snippet* snippet = store.Find(sid);
      SP_CHECK(snippet != nullptr);
      story.AddSnippet(*snippet);
      *story_of_.FindMutable(sid) = id;
    }
  }
  return out;
}

StoryId StorySet::StoryOf(SnippetId id) const {
  const StoryId* story = story_of_.Find(id);
  return story == nullptr ? kInvalidStoryId : *story;
}

const Story* StorySet::FindStory(StoryId id) const {
  return stories_.Find(id);
}

std::vector<StoryId> StorySet::StoriesInWindow(Timestamp lo,
                                               Timestamp hi) const {
  std::vector<StoryId> out;
  snippet_times_.ForEachInWindow(lo, hi,
                                 [&](Timestamp, SnippetId sid) {
                                   const StoryId* story = story_of_.Find(sid);
                                   if (story != nullptr) {
                                     out.push_back(*story);
                                   }
                                 });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

StorySet StorySet::Freeze() const {
  StorySet frozen(source_);
  frozen.stories_ = stories_;            // O(1) structural shares.
  frozen.story_of_ = story_of_;
  frozen.snippet_times_ = snippet_times_;
  frozen.entity_index_ = entity_index_.Freeze();
  return frozen;
}

StorySet StorySet::Clone() const {
  StorySet copy(source_);
  copy.stories_ = stories_.Materialize();
  copy.story_of_ = story_of_.Materialize();
  copy.snippet_times_ = snippet_times_.Materialize();
  copy.entity_index_ = entity_index_.Clone();
  return copy;
}

}  // namespace storypivot
