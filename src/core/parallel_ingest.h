#ifndef STORYPIVOT_CORE_PARALLEL_INGEST_H_
#define STORYPIVOT_CORE_PARALLEL_INGEST_H_

#include <vector>

#include "core/identifier.h"
#include "core/story_set.h"
#include "model/ids.h"
#include "model/snippet.h"
#include "storage/snippet_store.h"
#include "util/thread_pool.h"

namespace storypivot {

/// One per-source unit of parallel story identification: the snippets of
/// one source (already inserted into the snippet store, in arrival
/// order), the partition and sketch index they mutate, and a private,
/// pre-reserved block of story ids.
struct IngestShard {
  SourceId source = kInvalidSourceId;
  StorySet* partition = nullptr;
  /// Sketch index of the source; nullptr when sketches are disabled.
  SnippetSketchIndex* sketches = nullptr;
  /// The shard's snippets in arrival order (pointers into the store).
  std::vector<const Snippet*> snippets;
  /// First id of the shard's story-id block. The block spans
  /// [story_id_begin, story_id_begin + snippets.size()): one id per
  /// snippet is the worst case (every snippet opens a new story), and
  /// block assignment depends only on the batch contents, so ids are
  /// identical for every thread count. Unused ids are simply skipped.
  StoryId story_id_begin = 0;
};

/// What identifying one shard produced.
struct IngestShardResult {
  /// Story each snippet landed in, parallel to IngestShard::snippets.
  std::vector<StoryId> assigned;
  /// Wall-clock this shard spent in identification. Accumulated
  /// per-shard (per-thread) and summed into EngineStats serially.
  double identify_time_ms = 0.0;
};

/// Fans per-source story identification out across a thread pool (§2.2 is
/// per-source, hence embarrassingly parallel across sources). Each shard
/// runs its source's snippets through StoryIdentifier::Identify
/// sequentially — identification order within a source is part of the
/// algorithm — while distinct sources proceed concurrently.
///
/// Shards own disjoint mutable state (their partition, sketch index and
/// story-id block); the snippet store and document-frequency table are
/// frozen for the duration of the run (all writes happen in the engine's
/// serial ingest prologue). The identifier must be re-entrant: it may
/// not keep per-call mutable state (both built-in identifiers qualify).
/// Results are therefore bit-identical for every thread count.
class ParallelIngestor {
 public:
  /// `pool` may be nullptr for the serial path.
  ParallelIngestor(StoryIdentifier* identifier, ThreadPool* pool)
      : identifier_(identifier), pool_(pool) {}

  ParallelIngestor(const ParallelIngestor&) = delete;
  ParallelIngestor& operator=(const ParallelIngestor&) = delete;

  /// Identifies every shard's snippets; one task per shard. Shards must
  /// reference distinct sources. Results are indexed like `shards`.
  std::vector<IngestShardResult> Run(const std::vector<IngestShard>& shards,
                                     const SnippetStore& store) const;

 private:
  void RunShard(const IngestShard& shard, const SnippetStore& store,
                IngestShardResult* result) const;

  StoryIdentifier* identifier_;
  ThreadPool* pool_;
};

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_PARALLEL_INGEST_H_
