#include "core/refiner.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace storypivot {
namespace {

struct TimedSnippet {
  Timestamp ts = 0;
  const Snippet* snippet = nullptr;
  size_t partition_index = 0;
};

}  // namespace

RefinementStats StoryRefiner::Refine(const std::vector<StorySet*>& partitions,
                                     const AlignmentResult& alignment,
                                     const SnippetStore& store,
                                     StoryId* next_story_id,
                                     RefinementJournal* journal) const {
  SP_CHECK(next_story_id != nullptr);
  RefinementStats stats;

  // Global time-ordered view of all snippets across sources.
  std::vector<TimedSnippet> all;
  std::unordered_map<SourceId, size_t> partition_of_source;
  for (size_t p = 0; p < partitions.size(); ++p) {
    SP_CHECK(partitions[p] != nullptr);
    partition_of_source[partitions[p]->source()] = p;
    partitions[p]->snippet_times().ForEach([&](Timestamp ts, SnippetId sid) {
      const Snippet* s = store.Find(sid);
      SP_CHECK(s != nullptr);
      all.push_back({ts, s, p});
    });
  }
  std::sort(all.begin(), all.end(),
            [](const TimedSnippet& a, const TimedSnippet& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              return a.snippet->id < b.snippet->id;
            });

  // Best cross-source counterpart per snippet, searched globally (not just
  // within one integrated story — that is exactly how mis-assignments are
  // discovered).
  std::unordered_map<SnippetId, SnippetId> best_counterpart;
  std::unordered_map<SnippetId, double> best_score;
  for (size_t i = 0; i < all.size(); ++i) {
    const Snippet& a = *all[i].snippet;
    for (size_t j = i + 1; j < all.size(); ++j) {
      const Snippet& b = *all[j].snippet;
      if (b.timestamp - a.timestamp > config_.pair_tolerance) break;
      if (a.source == b.source) continue;
      double s = model_->SnippetSimilarity(a, b);
      if (s < config_.pair_threshold) continue;
      auto update = [&](const Snippet& x, const Snippet& y) {
        auto [it, inserted] = best_score.emplace(x.id, s);
        if (inserted || s > it->second) {
          it->second = s;
          best_counterpart[x.id] = y.id;
        }
      };
      update(a, b);
      update(b, a);
    }
  }

  // Leave-one-out affinity of a snippet to a story.
  auto affinity = [&](const Snippet& v, const Story& story,
                      bool member) -> double {
    double denom = static_cast<double>(story.size()) - (member ? 1.0 : 0.0);
    if (denom <= 0.0) return 0.0;
    text::TermVector ents = story.entities();
    text::TermVector kws = story.keywords();
    if (member) {
      ents.Subtract(v.entities);
      kws.Subtract(v.keywords);
    }
    text::TermVector scaled;
    scaled.Merge(ents, 1.0 / denom);
    const SimilarityConfig& sim = model_->config();
    return sim.entity_weight * v.entities.WeightedJaccard(scaled) +
           sim.keyword_weight * model_->IdfCosine(v.keywords, kws);
  };

  // Decide all relocations against the *original* assignment, then apply.
  struct Move {
    SnippetId snippet;
    size_t partition_index;
    StoryId from;
    StoryId to;  // kInvalidStoryId => create a new story.
  };
  std::vector<Move> moves;
  constexpr size_t kNone = std::numeric_limits<size_t>::max();

  for (const TimedSnippet& item : all) {
    const Snippet& v = *item.snippet;
    auto cp_it = best_counterpart.find(v.id);
    if (cp_it == best_counterpart.end()) continue;
    const Snippet* u = store.Find(cp_it->second);
    SP_CHECK(u != nullptr);

    auto v_int = alignment.integrated_of.find(v.id);
    auto u_int = alignment.integrated_of.find(u->id);
    if (v_int == alignment.integrated_of.end() ||
        u_int == alignment.integrated_of.end()) {
      continue;
    }
    if (v_int->second == u_int->second) continue;  // Already consistent.
    ++stats.conflicts_examined;

    StorySet* partition = partitions[item.partition_index];
    StoryId current_id = partition->StoryOf(v.id);
    if (current_id == kInvalidStoryId) continue;
    const Story* current = partition->FindStory(current_id);
    SP_CHECK(current != nullptr);
    double current_score = affinity(v, *current, /*member=*/true);

    // Candidate targets: same-source stories inside the counterpart's
    // integrated story.
    const IntegratedStory& target_cluster =
        alignment.stories[u_int->second];
    StoryId best_target = kInvalidStoryId;
    double target_score = 0.0;
    for (const auto& [src, story_id] : target_cluster.members) {
      if (src != v.source) continue;
      const Story* candidate = partition->FindStory(story_id);
      if (candidate == nullptr) continue;
      double s = affinity(v, *candidate, /*member=*/false);
      if (s > target_score) {
        target_score = s;
        best_target = story_id;
      }
    }

    if (best_target != kInvalidStoryId &&
        target_score > current_score + config_.margin) {
      moves.push_back({v.id, item.partition_index, current_id, best_target});
    } else if (best_target == kInvalidStoryId && current->size() > 1) {
      // No same-source story exists over there. If the snippet fits its
      // counterpart's cluster much better than its own story, break it
      // out into a fresh story, which the next alignment run will attach
      // to the right cluster.
      double cluster_score =
          affinity(v, target_cluster.merged, /*member=*/false);
      if (cluster_score > current_score + config_.margin) {
        moves.push_back(
            {v.id, item.partition_index, current_id, kInvalidStoryId});
      }
    }
    (void)kNone;
  }

  // Apply moves.
  std::unordered_set<StoryId> dirty;
  std::vector<std::pair<size_t, StoryId>> dirty_stories;
  for (const Move& move : moves) {
    StorySet* partition = partitions[move.partition_index];
    const Snippet* v = store.Find(move.snippet);
    SP_CHECK(v != nullptr);
    // The source story may have changed (earlier move); re-check
    // membership.
    if (partition->StoryOf(v->id) != move.from) continue;
    StoryId to = move.to;
    if (to != kInvalidStoryId && partition->FindStory(to) == nullptr) {
      continue;  // Target vanished (merged/emptied) — skip.
    }
    partition->RemoveSnippet(*v, store);
    const bool created = to == kInvalidStoryId;
    if (created) {
      to = (*next_story_id)++;
      partition->CreateStory(to);
      ++stats.stories_created;
    }
    partition->AddSnippetToStory(*v, to);
    ++stats.snippets_moved;
    if (journal != nullptr) {
      RefinementJournal::Entry entry;
      entry.kind = RefinementJournal::Entry::Kind::kMove;
      entry.move = {partition->source(), v->id, move.from, to, created};
      journal->entries.push_back(std::move(entry));
    }
    if (dirty.insert(move.from).second) {
      dirty_stories.push_back({move.partition_index, move.from});
    }
  }

  // Split-check stories that lost members.
  if (config_.split_check) {
    for (const auto& [p, story_id] : dirty_stories) {
      if (partitions[p]->FindStory(story_id) == nullptr) continue;
      int created = SplitIfDisconnected(partitions[p], story_id, store,
                                        next_story_id, journal);
      if (created > 0) {
        ++stats.stories_split;
        stats.stories_created += created;
      }
    }
  }
  return stats;
}

int StoryRefiner::SplitIfDisconnected(StorySet* partition, StoryId story_id,
                                      const SnippetStore& store,
                                      StoryId* next_story_id,
                                      RefinementJournal* journal) const {
  const Story* story = partition->FindStory(story_id);
  SP_CHECK(story != nullptr);
  if (story->size() <= 1) return 0;

  std::vector<const Snippet*> members;
  members.reserve(story->size());
  for (SnippetId sid : story->snippets()) {
    const Snippet* s = store.Find(sid);
    SP_CHECK(s != nullptr);
    members.push_back(s);
  }
  std::sort(members.begin(), members.end(),
            [](const Snippet* a, const Snippet* b) {
              if (a->timestamp != b->timestamp) {
                return a->timestamp < b->timestamp;
              }
              return a->id < b->id;
            });

  // Union-find over members; edges = similar within the edge window.
  std::vector<size_t> parent(members.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      if (members[j]->timestamp - members[i]->timestamp >
          config_.split_edge_window) {
        break;
      }
      if (find(i) == find(j)) continue;
      if (model_->SnippetSimilarity(*members[i], *members[j]) >=
          config_.split_edge_threshold) {
        parent[find(i)] = find(j);
      }
    }
  }

  std::unordered_map<size_t, std::vector<SnippetId>> components;
  for (size_t i = 0; i < members.size(); ++i) {
    components[find(i)].push_back(members[i]->id);
  }
  if (components.size() <= 1) return 0;

  std::vector<std::vector<SnippetId>> parts;
  parts.reserve(components.size());
  for (auto& [root, ids] : components) parts.push_back(std::move(ids));
  // Deterministic order: by earliest member id.
  std::sort(parts.begin(), parts.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  std::vector<StoryId> assigned =
      partition->SplitStory(story_id, parts, store, next_story_id);
  if (journal != nullptr) {
    RefinementJournal::Entry entry;
    entry.kind = RefinementJournal::Entry::Kind::kSplit;
    entry.split = {partition->source(), story_id, parts, std::move(assigned)};
    journal->entries.push_back(std::move(entry));
  }
  return static_cast<int>(parts.size() - 1);
}

}  // namespace storypivot
