#include "core/query.h"

#include <algorithm>
#include <utility>

#include "text/query_canonicalize.h"
#include "util/logging.h"

namespace storypivot {

StoryQuery::StoryQuery(const StoryPivotEngine* engine) : engine_(engine) {
  SP_CHECK(engine != nullptr);
}

StoryOverview StoryQuery::Overview(const Story& story, bool integrated,
                                   size_t top_k) const {
  StoryOverview out;
  out.id = story.id();
  out.integrated = integrated;
  for (SourceId source : story.sources()) {
    out.source_names.push_back(engine_->SourceName(source));
  }
  for (const auto& [term, count] : story.entities().TopK(top_k)) {
    out.top_entities.push_back(
        {engine_->entity_vocabulary().TermOf(term), count});
  }
  for (const auto& [term, count] : story.keywords().TopK(top_k)) {
    out.top_keywords.push_back(
        {engine_->keyword_vocabulary().TermOf(term), count});
  }
  out.start_time = story.start_time();
  out.end_time = story.end_time();
  out.num_snippets = story.size();
  return out;
}

namespace {
void SortBySizeDesc(std::vector<StoryOverview>& overviews) {
  std::sort(overviews.begin(), overviews.end(),
            [](const StoryOverview& a, const StoryOverview& b) {
              if (a.num_snippets != b.num_snippets) {
                return a.num_snippets > b.num_snippets;
              }
              return a.id < b.id;
            });
}
}  // namespace

template <typename Pred>
std::vector<StoryOverview> StoryQuery::CollectStories(
    Pred&& pred, size_t top_k, size_t max_results) const {
  std::vector<StoryOverview> out;
  for (const StorySet* partition : engine_->partitions()) {
    for (const auto& [id, story] : partition->stories()) {
      if (pred(story)) {
        out.push_back(Overview(story, /*integrated=*/false, top_k));
      }
    }
  }
  SortBySizeDesc(out);
  if (out.size() > max_results) out.resize(max_results);
  return out;
}

std::vector<StoryOverview> StoryQuery::MaterializeHits(
    std::vector<std::pair<SourceId, StoryId>> hits, size_t top_k,
    size_t max_results) const {
  // Order hits exactly like the scan path — size descending, story id
  // ascending (story ids are unique engine-wide, so the order is total)
  // — but materialize overview cards only for the max_results survivors.
  struct Hit {
    size_t num_snippets;
    StoryId id;
    SourceId source;
    const Story* story;
  };
  std::vector<Hit> ordered;
  ordered.reserve(hits.size());
  for (const auto& [source, story_id] : hits) {
    const StorySet* partition = engine_->partition(source);
    if (partition == nullptr) continue;
    const Story* story = partition->FindStory(story_id);
    if (story == nullptr) continue;
    ordered.push_back({story->size(), story_id, source, story});
  }
  auto by_size_desc = [](const Hit& a, const Hit& b) {
    if (a.num_snippets != b.num_snippets) {
      return a.num_snippets > b.num_snippets;
    }
    return a.id < b.id;
  };
  if (ordered.size() > max_results) {
    std::nth_element(ordered.begin(), ordered.begin() + max_results,
                     ordered.end(), by_size_desc);
    ordered.resize(max_results);
  }
  std::sort(ordered.begin(), ordered.end(), by_size_desc);
  std::vector<StoryOverview> out;
  out.reserve(ordered.size());
  for (const Hit& hit : ordered) {
    out.push_back(Overview(*hit.story, /*integrated=*/false, top_k));
  }
  return out;
}

std::vector<StoryOverview> StoryQuery::SourceStories(SourceId source,
                                                     size_t top_k) const {
  std::vector<StoryOverview> out;
  const StorySet* partition = engine_->partition(source);
  if (partition == nullptr) return out;
  for (const auto& [id, story] : partition->stories()) {
    out.push_back(Overview(story, /*integrated=*/false, top_k));
  }
  SortBySizeDesc(out);
  return out;
}

std::vector<StoryOverview> StoryQuery::IntegratedStories(
    size_t top_k) const {
  std::vector<StoryOverview> out;
  SP_CHECK(engine_->has_alignment());
  for (const IntegratedStory& integrated : engine_->alignment().stories) {
    out.push_back(Overview(integrated.merged, /*integrated=*/true, top_k));
  }
  SortBySizeDesc(out);
  return out;
}

std::vector<StoryOverview> StoryQuery::FindByEntity(
    std::string_view entity_name, size_t top_k, size_t max_results) const {
  // Canonicalize the query the way ingest canonicalized the text, so
  // alias queries ("MH17") resolve to the canonical entity they index.
  text::TermId term = text::CanonicalizeEntityQuery(
      engine_->gazetteer(), engine_->entity_vocabulary(), entity_name);
  if (term == text::kInvalidTermId) return {};
  if (use_index()) {
    return MaterializeHits(index_->StoriesWithEntity(term), top_k,
                           max_results);
  }
  return CollectStories(
      [term](const Story& story) {
        return story.entities().ValueOf(term) > 0.0;
      },
      top_k, max_results);
}

std::vector<StoryOverview> StoryQuery::FindByKeyword(
    std::string_view keyword, size_t top_k, size_t max_results) const {
  // Stem the query like ingested text: the keyword vocabulary stores
  // stems, so the surface form alone would silently miss.
  text::TermId term = text::CanonicalizeKeywordQuery(
      engine_->keyword_vocabulary(), keyword);
  if (term == text::kInvalidTermId) return {};
  if (use_index()) {
    return MaterializeHits(index_->StoriesWithKeyword(term), top_k,
                           max_results);
  }
  return CollectStories(
      [term](const Story& story) {
        return story.keywords().ValueOf(term) > 0.0;
      },
      top_k, max_results);
}

std::vector<StoryOverview> StoryQuery::FindByEventType(
    std::string_view event_type, size_t top_k, size_t max_results) const {
  if (use_index()) {
    return MaterializeHits(index_->StoriesWithEventType(event_type), top_k,
                           max_results);
  }
  // Event types live on snippets, not on story aggregates; scan the
  // stories' members.
  return CollectStories(
      [&](const Story& story) {
        for (SnippetId sid : story.snippets()) {
          const Snippet* snippet = engine_->store().Find(sid);
          if (snippet != nullptr && snippet->event_type == event_type) {
            return true;
          }
        }
        return false;
      },
      top_k, max_results);
}

std::vector<StoryOverview> StoryQuery::FindInTimeRange(
    Timestamp begin, Timestamp end, size_t top_k,
    size_t max_results) const {
  if (use_index()) {
    return MaterializeHits(index_->StoriesInTimeRange(begin, end), top_k,
                           max_results);
  }
  return CollectStories(
      [begin, end](const Story& story) {
        return story.start_time() <= end && story.end_time() >= begin;
      },
      top_k, max_results);
}

std::vector<SnippetView> StoryQuery::Snippets(const Story& story) const {
  std::vector<SnippetView> out;
  out.reserve(story.size());
  for (SnippetId sid : story.snippets()) {
    const Snippet* snippet = engine_->store().Find(sid);
    SP_CHECK(snippet != nullptr);
    out.push_back(View(*snippet));
  }
  return out;
}

EntityContext StoryQuery::Context(std::string_view entity_name,
                                  size_t top_k) const {
  EntityContext out;
  out.name = std::string(entity_name);
  if (kb_ != nullptr) {
    if (const text::KnowledgeEntry* entry = kb_->Find(entity_name)) {
      out.type = entry->type;
      out.description = entry->description;
    }
    for (const text::KnowledgeEntry* neighbor :
         kb_->Neighbors(entity_name)) {
      out.related.push_back(neighbor->name);
    }
  }
  out.stories = FindByEntity(entity_name, top_k);
  return out;
}

SnippetView StoryQuery::View(const Snippet& snippet) const {
  SnippetView out;
  out.id = snippet.id;
  out.source_name = engine_->SourceName(snippet.source);
  out.timestamp = snippet.timestamp;
  out.event_type = snippet.event_type;
  out.description = snippet.description;
  out.document_url = snippet.document_url;
  for (const auto& [term, count] : snippet.entities.entries()) {
    out.entities.push_back(engine_->entity_vocabulary().TermOf(term));
  }
  for (const auto& [term, count] : snippet.keywords.entries()) {
    out.keywords.push_back(engine_->keyword_vocabulary().TermOf(term));
  }
  return out;
}

}  // namespace storypivot
