#include "core/dedup.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "sketch/lsh_index.h"
#include "sketch/minhash.h"
#include "util/logging.h"

namespace storypivot {

std::vector<DuplicatePair> FindNearDuplicates(const StoryPivotEngine& engine,
                                              const DedupConfig& config) {
  // Sketch every snippet once.
  std::vector<const Snippet*> snippets;
  snippets.reserve(engine.store().size());
  engine.store().ForEach(
      [&](const Snippet& snippet) { snippets.push_back(&snippet); });
  std::sort(snippets.begin(), snippets.end(),
            [](const Snippet* a, const Snippet* b) { return a->id < b->id; });

  // Aggressive banding (more rows per band) since the duplicate threshold
  // is high: 8 bands x 16 rows catches J >= ~0.85 reliably.
  LshIndex lsh(8, 16);
  std::unordered_map<SnippetId, MinHashSignature> signatures;
  signatures.reserve(snippets.size());
  for (const Snippet* snippet : snippets) {
    MinHashSignature sig = MinHashSignature::FromContent(
        snippet->entities, snippet->keywords, config.sketch_hashes);
    lsh.Insert(snippet->id, sig);
    signatures.emplace(snippet->id, std::move(sig));
  }

  std::vector<DuplicatePair> out;
  for (const Snippet* snippet : snippets) {
    const MinHashSignature& sig = signatures.at(snippet->id);
    for (uint64_t raw : lsh.Query(sig)) {
      SnippetId other_id = static_cast<SnippetId>(raw);
      if (other_id <= snippet->id) continue;  // Each pair once, a < b.
      const Snippet* other = engine.store().Find(other_id);
      SP_CHECK(other != nullptr);
      if (config.cross_source_only && other->source == snippet->source) {
        continue;
      }
      if (std::llabs(static_cast<long long>(other->timestamp -
                                            snippet->timestamp)) >
          config.time_tolerance) {
        continue;
      }
      double estimate = sig.EstimateJaccard(signatures.at(other_id));
      if (estimate < config.min_jaccard) continue;
      out.push_back({snippet->id, other_id, estimate});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DuplicatePair& x, const DuplicatePair& y) {
              if (x.similarity != y.similarity) {
                return x.similarity > y.similarity;
              }
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return out;
}

}  // namespace storypivot
