#ifndef STORYPIVOT_CORE_INCREMENTAL_H_
#define STORYPIVOT_CORE_INCREMENTAL_H_

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/aligner.h"
#include "core/similarity.h"
#include "core/story_set.h"
#include "sketch/lsh_index.h"
#include "sketch/minhash.h"
#include "storage/snippet_store.h"

namespace storypivot {

/// Incrementally maintained cross-source story alignment (§2.4: "story
/// identification and alignment need to be dynamically integrated and
/// realized efficiently as to provide users with live information on
/// ongoing stories").
///
/// The aligner keeps a persistent alignment graph: one node per
/// (source, story) with its MinHash sketch and time span, and one edge per
/// story pair whose alignment score clears the threshold. When stories
/// change, only the *dirty* nodes re-score their candidate edges; the
/// integrated stories are the connected components of the maintained
/// graph. Pair scoring — the expensive part — is thus proportional to the
/// change, not to the corpus.
class IncrementalAligner {
 public:
  IncrementalAligner(const SimilarityModel* model, AlignmentConfig config);

  IncrementalAligner(const IncrementalAligner&) = delete;
  IncrementalAligner& operator=(const IncrementalAligner&) = delete;

  /// Applies the given story-level changes and returns a fresh alignment
  /// result. `dirty` lists (source, story) pairs whose content changed
  /// since the last Update; stories that appeared or vanished are
  /// discovered automatically by diffing against `partitions`. On the
  /// first call (or after Invalidate) everything is treated as dirty.
  AlignmentResult Update(
      const std::vector<const StorySet*>& partitions,
      const SnippetStore& store,
      const std::vector<std::pair<SourceId, StoryId>>& dirty,
      StoryId* next_story_id);

  /// Drops all maintained state; the next Update recomputes from scratch.
  void Invalidate();

  /// Pair scores evaluated over the aligner's lifetime (work indicator).
  uint64_t pairs_scored() const { return pairs_scored_; }

  /// Clusters whose snippet-role classification was reused from the
  /// previous update (vs recomputed), over the aligner's lifetime.
  uint64_t role_cache_hits() const { return role_cache_hits_; }

  /// Current number of maintained story nodes.
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    SourceId source = kInvalidSourceId;
    StoryId story = kInvalidStoryId;
    MinHashSignature sketch;
    std::unordered_set<uint64_t> neighbors;
  };

  static uint64_t KeyOf(SourceId source, StoryId story) {
    return (static_cast<uint64_t>(source) << 48) ^ story;
  }

  /// Removes a node and its edges; no-op when absent.
  void RemoveNode(uint64_t key);

  /// (Re)inserts a node for the given story and scores its edges against
  /// candidates.
  void RefreshNode(SourceId source, StoryId story, const Story& content,
                   const std::unordered_map<SourceId, const StorySet*>&
                       partition_of);

  /// Cached role classification of one unchanged cluster.
  struct CachedRoles {
    std::vector<std::pair<SnippetId, SnippetRole>> roles;
    std::vector<std::pair<SnippetId, SnippetId>> counterparts;
  };

  const SimilarityModel* model_;
  StoryAligner scorer_;  // Reused for StoryPairScore.
  AlignmentConfig config_;
  std::unordered_map<uint64_t, Node> nodes_;
  /// Cluster-signature -> cached roles from the previous update.
  std::unordered_map<uint64_t, CachedRoles> role_cache_;
  uint64_t role_cache_hits_ = 0;
  LshIndex lsh_;
  uint64_t pairs_scored_ = 0;
  bool valid_ = false;
  /// Document count at the last full rebuild (IDF-drift detection).
  int64_t documents_at_full_rebuild_ = -1;
};

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_INCREMENTAL_H_
