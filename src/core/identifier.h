#ifndef STORYPIVOT_CORE_IDENTIFIER_H_
#define STORYPIVOT_CORE_IDENTIFIER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/similarity.h"
#include "core/story_set.h"
#include "model/snippet.h"
#include "sketch/lsh_index.h"
#include "sketch/minhash.h"
#include "storage/snippet_store.h"

namespace storypivot {

/// The two execution modes of story identification (Fig. 2).
enum class IdentificationMode {
  /// Compare the incoming snippet against every snippet of the source.
  kComplete,
  /// Compare only against snippets inside the sliding window [t-w, t+w].
  kTemporal,
};

/// Per-source MinHash/LSH accelerator over snippet sketches (§2.4).
/// Owned by the engine; identifiers only read it.
struct SnippetSketchIndex {
  explicit SnippetSketchIndex(size_t num_hashes = 64,
                              size_t bands = 16, size_t rows = 4)
      : num_hashes(num_hashes), lsh(bands, rows) {}

  size_t num_hashes;
  LshIndex lsh;
  std::unordered_map<SnippetId, MinHashSignature> signatures;
};

/// Mode-independent identification knobs.
struct IdentifierConfig {
  /// Half-width w of the temporal window, in seconds.
  Timestamp window = 7 * kSecondsPerDay;
  /// Restrict candidates to snippets sharing at least one entity with the
  /// probe (uses the partition's inverted index).
  bool prune_with_entities = false;
  /// Use the per-source snippet LSH index for candidate generation instead
  /// of scanning the window (requires the engine to maintain sketches).
  bool use_sketch_candidates = false;
};

/// Base class for incremental story identification. For every arriving
/// snippet, `Identify` either assigns it to its best-matching existing
/// story, merges stories the snippet bridges (incremental construction,
/// §2.2), or opens a new story around it.
class StoryIdentifier {
 public:
  StoryIdentifier(const SimilarityModel* model, IdentifierConfig config)
      : model_(model), config_(config) {}
  virtual ~StoryIdentifier() = default;

  StoryIdentifier(const StoryIdentifier&) = delete;
  StoryIdentifier& operator=(const StoryIdentifier&) = delete;

  /// Places `snippet` into `stories`; returns the story id it ended up in.
  /// `sketches` may be nullptr when sketch candidates are disabled.
  virtual StoryId Identify(const Snippet& snippet, StorySet* stories,
                           const SnippetStore& store,
                           const SnippetSketchIndex* sketches,
                           StoryId* next_story_id) = 0;

  const IdentifierConfig& config() const { return config_; }

 protected:
  /// Scores the candidate snippets' stories and performs the
  /// assign-or-merge-or-create step shared by both modes.
  StoryId PlaceWithCandidates(const Snippet& snippet,
                              const std::vector<SnippetId>& candidates,
                              StorySet* stories, const SnippetStore& store,
                              StoryId* next_story_id);

  const SimilarityModel* model_;
  IdentifierConfig config_;
};

/// Complete story identification (Fig. 2a): the baseline that compares the
/// snippet against all previously seen snippets of the source. Quadratic,
/// and prone to over-merging evolving stories.
class CompleteIdentifier : public StoryIdentifier {
 public:
  CompleteIdentifier(const SimilarityModel* model, IdentifierConfig config)
      : StoryIdentifier(model, config) {}

  StoryId Identify(const Snippet& snippet, StorySet* stories,
                   const SnippetStore& store,
                   const SnippetSketchIndex* sketches,
                   StoryId* next_story_id) override;
};

/// Temporal story identification (Fig. 2b): compares only against
/// snippets whose timestamp lies within [t - w, t + w], optionally pruned
/// further via the entity inverted index or snippet sketches.
class TemporalIdentifier : public StoryIdentifier {
 public:
  TemporalIdentifier(const SimilarityModel* model, IdentifierConfig config)
      : StoryIdentifier(model, config) {}

  StoryId Identify(const Snippet& snippet, StorySet* stories,
                   const SnippetStore& store,
                   const SnippetSketchIndex* sketches,
                   StoryId* next_story_id) override;
};

/// Factory for the configured mode.
std::unique_ptr<StoryIdentifier> MakeIdentifier(IdentificationMode mode,
                                                const SimilarityModel* model,
                                                IdentifierConfig config);

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_IDENTIFIER_H_
