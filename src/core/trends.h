#ifndef STORYPIVOT_CORE_TRENDS_H_
#define STORYPIVOT_CORE_TRENDS_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "model/time.h"

namespace storypivot {

/// Activity of one story over time: snippet counts per fixed-width time
/// bucket. The backbone of trend detection (§1: "applications ranging
/// from trend detection to economic analysis").
struct ActivitySeries {
  StoryId story = kInvalidStoryId;
  Timestamp origin = 0;       // Start of bucket 0.
  Timestamp bucket_width = kSecondsPerDay;
  std::vector<int> counts;    // Snippets whose event time falls in bucket i.

  /// Total snippets in the series.
  int Total() const;
  /// Count in the bucket containing `ts` (0 when out of range).
  int CountAt(Timestamp ts) const;
};

/// Trend-detection knobs.
struct TrendConfig {
  Timestamp bucket_width = kSecondsPerDay;
  /// A story is bursting when its rate over the last `recent_buckets`
  /// exceeds `burst_factor` x its long-run rate (and has at least
  /// `min_recent` snippets in the recent window).
  int recent_buckets = 7;
  double burst_factor = 2.0;
  int min_recent = 3;
};

/// One trending story at evaluation time.
struct TrendingStory {
  StoryId story = kInvalidStoryId;
  /// Snippets in the recent window.
  int recent_count = 0;
  /// recent rate / baseline rate (baseline = activity before the window);
  /// infinity-like values are clamped to 1000 for fresh stories.
  double burst_ratio = 0.0;
  /// True when the story first appeared inside the recent window.
  bool emerging = false;
};

/// Builds the per-bucket activity series of one (per-source or merged)
/// story from its member snippets' event timestamps.
ActivitySeries BuildActivitySeries(const StoryPivotEngine& engine,
                                   const Story& story,
                                   Timestamp bucket_width = kSecondsPerDay);

/// Finds integrated stories bursting at time `now` (typically the latest
/// arrival), ordered by burst ratio (descending, ties by recent count).
/// Requires a fresh alignment.
std::vector<TrendingStory> DetectTrendingStories(
    const StoryPivotEngine& engine, Timestamp now,
    const TrendConfig& config = {});

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_TRENDS_H_
