#ifndef STORYPIVOT_CORE_DEDUP_H_
#define STORYPIVOT_CORE_DEDUP_H_

#include <vector>

#include "core/engine.h"
#include "model/ids.h"

namespace storypivot {

/// A detected near-duplicate snippet pair (likely syndicated wire copy:
/// two sources publishing the same agency text).
struct DuplicatePair {
  SnippetId a = kInvalidSnippetId;
  SnippetId b = kInvalidSnippetId;
  /// Estimated Jaccard similarity of the combined term sets.
  double similarity = 0.0;
};

/// Near-duplicate detection knobs.
struct DedupConfig {
  /// Minimum estimated Jaccard to call two snippets duplicates.
  double min_jaccard = 0.85;
  /// Only consider pairs whose event timestamps are this close.
  Timestamp time_tolerance = 2 * kSecondsPerDay;
  /// Report cross-source pairs only (same-source repeats are usually
  /// corrections, not syndication).
  bool cross_source_only = true;
  /// MinHash size used for the scan.
  size_t sketch_hashes = 128;
};

/// Scans the engine's snippets for near-duplicates using MinHash + LSH —
/// the §2.4 sketches applied to syndication detection. News sources
/// frequently run identical agency copy; flagging those pairs lets
/// downstream consumers discount them when judging how independently a
/// story is corroborated. O(n) sketching plus LSH bucket verification.
///
/// Pairs are returned with a < b, sorted by descending similarity then
/// ids; each unordered pair appears once.
std::vector<DuplicatePair> FindNearDuplicates(const StoryPivotEngine& engine,
                                              const DedupConfig& config = {});

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_DEDUP_H_
