#ifndef STORYPIVOT_CORE_STORY_SET_H_
#define STORYPIVOT_CORE_STORY_SET_H_

#include <unordered_map>
#include <vector>

#include "model/ids.h"
#include "model/snippet.h"
#include "model/story.h"
#include "storage/inverted_index.h"
#include "storage/snippet_store.h"
#include "storage/temporal_index.h"

namespace storypivot {

/// The per-source story partition: the set of stories C_i identified for a
/// data source s_i (§2.1), plus the indexes story identification needs —
/// a temporal index over the source's snippets and an entity inverted
/// index for candidate pruning. Maintains the snippet -> story assignment
/// and keeps every Story's aggregates in sync through adds, removals,
/// merges and splits.
class StorySet {
 public:
  explicit StorySet(SourceId source) : source_(source) {}

  StorySet(const StorySet&) = delete;
  StorySet& operator=(const StorySet&) = delete;
  StorySet(StorySet&&) = default;
  StorySet& operator=(StorySet&&) = default;

  SourceId source() const { return source_; }

  /// Creates an empty story with the given id and returns it.
  Story& CreateStory(StoryId id);

  /// Adds `snippet` to story `story_id` (which must exist) and registers
  /// the snippet in the partition indexes.
  void AddSnippetToStory(const Snippet& snippet, StoryId story_id);

  /// Removes a snippet from its story and the indexes. Empty stories are
  /// deleted. Requires the snippet to be assigned.
  void RemoveSnippet(const Snippet& snippet, const SnippetStore& store);

  /// Merges all of `ids` (>= 2 stories) into the first one; the surviving
  /// story keeps the first id. Returns the surviving id.
  StoryId MergeStories(const std::vector<StoryId>& ids);

  /// Replaces `story_id` by one story per component. The first component
  /// keeps the original id, later ones get ids from `next_story_id`
  /// (incremented). `components` must exactly partition the story.
  std::vector<StoryId> SplitStory(StoryId story_id,
                                  const std::vector<std::vector<SnippetId>>&
                                      components,
                                  const SnippetStore& store,
                                  StoryId* next_story_id);

  /// Story containing `id`, or kInvalidStoryId.
  StoryId StoryOf(SnippetId id) const;

  /// Returns the story or nullptr.
  [[nodiscard]] const Story* FindStory(StoryId id) const;

  const std::unordered_map<StoryId, Story>& stories() const {
    return stories_;
  }

  /// All snippets of the source ordered by time.
  const TemporalIndex& snippet_times() const { return snippet_times_; }

  /// Entity -> snippet candidates.
  const InvertedIndex& entity_index() const { return entity_index_; }

  /// Distinct stories having at least one snippet in [lo, hi].
  std::vector<StoryId> StoriesInWindow(Timestamp lo, Timestamp hi) const;

  /// Number of snippets assigned in this partition.
  size_t num_snippets() const { return story_of_.size(); }

  /// Deep copy of the whole partition (stories, assignments and both
  /// indexes). Copying is disallowed to keep accidental copies out of
  /// the ingest path; snapshot capture (serve/ReadSnapshot, DESIGN.md
  /// §14) asks for one explicitly.
  [[nodiscard]] StorySet Clone() const;

 private:
  SourceId source_;
  std::unordered_map<StoryId, Story> stories_;
  std::unordered_map<SnippetId, StoryId> story_of_;
  TemporalIndex snippet_times_;
  InvertedIndex entity_index_;
};

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_STORY_SET_H_
