#ifndef STORYPIVOT_CORE_STORY_SET_H_
#define STORYPIVOT_CORE_STORY_SET_H_

#include <vector>

#include "cow/persistent_map.h"
#include "model/ids.h"
#include "model/snippet.h"
#include "model/story.h"
#include "storage/inverted_index.h"
#include "storage/snippet_store.h"
#include "storage/temporal_index.h"

namespace storypivot {

/// The per-source story partition: the set of stories C_i identified for a
/// data source s_i (§2.1), plus the indexes story identification needs —
/// a temporal index over the source's snippets and an entity inverted
/// index for candidate pruning. Maintains the snippet -> story assignment
/// and keeps every Story's aggregates in sync through adds, removals,
/// merges and splits.
///
/// All state is held in copy-on-write persistent structures, so Freeze()
/// produces an O(1) snapshot that later mutations cannot reach
/// (DESIGN.md §15). A side effect worth knowing: stories() iterates in a
/// content-deterministic order (a pure function of the id set), not
/// unordered_map's history-dependent order. Pointers returned by
/// FindStory()/CreateStory() are invalidated by any later mutation of
/// the partition, not just rehashes.
class StorySet {
 public:
  using StoryMap = cow::PersistentMap<StoryId, Story>;

  explicit StorySet(SourceId source) : source_(source) {}

  StorySet(const StorySet&) = delete;
  StorySet& operator=(const StorySet&) = delete;
  StorySet(StorySet&&) = default;
  StorySet& operator=(StorySet&&) = default;

  SourceId source() const { return source_; }

  /// Creates an empty story with the given id and returns it. The
  /// reference is valid only until the next mutation of this partition.
  Story& CreateStory(StoryId id);

  /// Adds `snippet` to story `story_id` (which must exist) and registers
  /// the snippet in the partition indexes.
  void AddSnippetToStory(const Snippet& snippet, StoryId story_id);

  /// Removes a snippet from its story and the indexes. Empty stories are
  /// deleted. Requires the snippet to be assigned.
  void RemoveSnippet(const Snippet& snippet, const SnippetStore& store);

  /// Merges all of `ids` (>= 2 stories) into the first one; the surviving
  /// story keeps the first id. Returns the surviving id.
  StoryId MergeStories(const std::vector<StoryId>& ids);

  /// Replaces `story_id` by one story per component. The first component
  /// keeps the original id, later ones get ids from `next_story_id`
  /// (incremented). `components` must exactly partition the story.
  std::vector<StoryId> SplitStory(StoryId story_id,
                                  const std::vector<std::vector<SnippetId>>&
                                      components,
                                  const SnippetStore& store,
                                  StoryId* next_story_id);

  /// Like SplitStory, but with CALLER-CHOSEN component ids
  /// (ids.size() == components.size(), ids[0] == story_id). Used when
  /// replaying a recorded split — the refinement journal carries the
  /// ids the original run assigned, so a replica reproduces them
  /// verbatim (see RefinementJournal).
  std::vector<StoryId> SplitStoryWithIds(
      StoryId story_id,
      const std::vector<std::vector<SnippetId>>& components,
      const SnippetStore& store, const std::vector<StoryId>& ids);

  /// Story containing `id`, or kInvalidStoryId.
  StoryId StoryOf(SnippetId id) const;

  /// Returns the story or nullptr.
  [[nodiscard]] const Story* FindStory(StoryId id) const;

  const StoryMap& stories() const { return stories_; }

  /// All snippets of the source ordered by time.
  const TemporalIndex& snippet_times() const { return snippet_times_; }

  /// Entity -> snippet candidates.
  const InvertedIndex& entity_index() const { return entity_index_; }

  /// Distinct stories having at least one snippet in [lo, hi].
  std::vector<StoryId> StoriesInWindow(Timestamp lo, Timestamp hi) const;

  /// Number of snippets assigned in this partition.
  size_t num_snippets() const { return story_of_.size(); }

  /// O(1) frozen copy sharing all state with this partition; immune to
  /// later writes (copy-on-write). Copying is still disallowed to keep
  /// accidental copies out of the ingest path — snapshot capture
  /// (serve/ReadSnapshot, DESIGN.md §15) asks for one explicitly.
  [[nodiscard]] StorySet Freeze() const;

  /// Honest deep copy of the whole partition (stories, assignments and
  /// both indexes), nothing shared. Kept for the deep-capture baseline.
  [[nodiscard]] StorySet Clone() const;

 private:
  SourceId source_;
  StoryMap stories_;
  cow::PersistentMap<SnippetId, StoryId> story_of_;
  TemporalIndex snippet_times_;
  InvertedIndex entity_index_;
};

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_STORY_SET_H_
