#include "core/incremental.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"
#include "util/logging.h"

namespace storypivot {

IncrementalAligner::IncrementalAligner(const SimilarityModel* model,
                                       AlignmentConfig config)
    : model_(model),
      scorer_(model, config),
      config_(config),
      lsh_(16, 4) {}

void IncrementalAligner::Invalidate() {
  nodes_.clear();
  lsh_ = LshIndex(16, 4);
  role_cache_.clear();
  valid_ = false;
}

void IncrementalAligner::RemoveNode(uint64_t key) {
  auto it = nodes_.find(key);
  if (it == nodes_.end()) return;
  for (uint64_t neighbor : it->second.neighbors) {
    auto n = nodes_.find(neighbor);
    if (n != nodes_.end()) n->second.neighbors.erase(key);
  }
  lsh_.Remove(key);
  nodes_.erase(it);
}

void IncrementalAligner::RefreshNode(
    SourceId source, StoryId story, const Story& content,
    const std::unordered_map<SourceId, const StorySet*>& partition_of) {
  uint64_t key = KeyOf(source, story);
  RemoveNode(key);

  Node node;
  node.source = source;
  node.story = story;
  node.sketch = MinHashSignature::FromContent(
      content.entities(), content.keywords(), config_.sketch_hashes);

  // Candidate generation mirrors the batch aligner's policy: all nodes for
  // small graphs, LSH above the activation floor.
  std::vector<uint64_t> candidates;
  const bool lsh_mode =
      (config_.use_lsh && nodes_.size() > config_.lsh_min_stories) ||
      nodes_.size() > config_.all_pairs_limit;
  if (lsh_mode) {
    candidates = lsh_.Query(node.sketch);
  } else {
    candidates.reserve(nodes_.size());
    for (const auto& [other_key, other] : nodes_) {
      candidates.push_back(other_key);
    }
  }

  for (uint64_t other_key : candidates) {
    auto other_it = nodes_.find(other_key);
    if (other_it == nodes_.end()) continue;
    const Node& other = other_it->second;
    if (!config_.allow_same_source_merge && other.source == source) {
      continue;
    }
    const StorySet* partition = partition_of.at(other.source);
    const Story* other_story = partition->FindStory(other.story);
    if (other_story == nullptr) continue;
    ++pairs_scored_;
    if (scorer_.StoryPairScore(content, *other_story) >=
        config_.align_threshold) {
      node.neighbors.insert(other_key);
      other_it->second.neighbors.insert(key);
    }
  }
  lsh_.Insert(key, node.sketch);
  nodes_.emplace(key, std::move(node));
}

AlignmentResult IncrementalAligner::Update(
    const std::vector<const StorySet*>& partitions, const SnippetStore& store,
    const std::vector<std::pair<SourceId, StoryId>>& dirty,
    StoryId* next_story_id) {
  SP_CHECK(next_story_id != nullptr);

  std::unordered_map<SourceId, const StorySet*> partition_of;
  for (const StorySet* partition : partitions) {
    SP_CHECK(partition != nullptr);
    partition_of[partition->source()] = partition;
  }

  // IDF drift check: pair scores taken under sufficiently different corpus
  // statistics are stale; rebuild the whole graph when the document count
  // moved past the configured fraction.
  const text::DocumentFrequency* df = model_->document_frequency();
  if (valid_ && df != nullptr && documents_at_full_rebuild_ >= 0) {
    double base = static_cast<double>(
        std::max<int64_t>(1, documents_at_full_rebuild_));
    double drift =
        std::abs(static_cast<double>(df->num_documents()) -
                 static_cast<double>(documents_at_full_rebuild_)) /
        base;
    if (drift > config_.idf_drift_rebuild) Invalidate();
  }
  const bool full_rebuild = !valid_;

  // Current story universe.
  std::unordered_set<uint64_t> current;
  for (const StorySet* partition : partitions) {
    for (const auto& [id, story] : partition->stories()) {
      if (!story.empty()) current.insert(KeyOf(partition->source(), id));
    }
  }

  // Vanished stories (merged away, emptied, or their source was removed).
  std::vector<uint64_t> vanished;
  for (const auto& [key, node] : nodes_) {
    if (!current.contains(key)) vanished.push_back(key);
  }
  for (uint64_t key : vanished) RemoveNode(key);
  // Nodes whose source no longer exists (RemoveSource) — also purge any
  // node whose partition is gone even if a same-keyed story reappeared.
  std::vector<uint64_t> orphaned;
  for (const auto& [key, node] : nodes_) {
    if (!partition_of.contains(node.source)) orphaned.push_back(key);
  }
  for (uint64_t key : orphaned) RemoveNode(key);

  // Work set: explicit dirty stories, plus stories we have never seen.
  std::vector<std::pair<SourceId, StoryId>> work;
  if (!valid_) {
    for (const StorySet* partition : partitions) {
      for (const auto& [id, story] : partition->stories()) {
        if (!story.empty()) work.push_back({partition->source(), id});
      }
    }
  } else {
    std::unordered_set<uint64_t> queued;
    for (const auto& [source, story] : dirty) {
      if (queued.insert(KeyOf(source, story)).second) {
        work.push_back({source, story});
      }
    }
    for (uint64_t key : current) {
      if (!nodes_.contains(key) && queued.insert(key).second) {
        work.push_back({static_cast<SourceId>(key >> 48),
                        static_cast<StoryId>(key & 0xffffffffffffull)});
      }
    }
  }
  // Deterministic processing order.
  std::sort(work.begin(), work.end());

  // Keys refreshed this round: their clusters' role classification is
  // stale and must be recomputed.
  std::unordered_set<uint64_t> refreshed;
  for (const auto& [source, story_id] : work) {
    refreshed.insert(KeyOf(source, story_id));
  }

  for (const auto& [source, story_id] : work) {
    auto partition_it = partition_of.find(source);
    if (partition_it == partition_of.end()) continue;
    const Story* story = partition_it->second->FindStory(story_id);
    if (story == nullptr || story->empty()) {
      RemoveNode(KeyOf(source, story_id));
      continue;
    }
    RefreshNode(source, story_id, *story, partition_of);
  }
  valid_ = true;
  if (full_rebuild && df != nullptr) {
    documents_at_full_rebuild_ = df->num_documents();
  }

  // Emit integrated stories: connected components of the alignment graph.
  AlignmentResult result;
  result.num_pairs_scored = pairs_scored_;
  std::unordered_set<uint64_t> visited;
  // Deterministic component order: iterate keys sorted.
  std::vector<uint64_t> keys;
  keys.reserve(nodes_.size());
  for (const auto& [key, node] : nodes_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  for (uint64_t seed : keys) {
    if (visited.contains(seed)) continue;
    IntegratedStory integrated;
    integrated.id = (*next_story_id)++;
    integrated.merged.set_id(integrated.id);
    std::vector<uint64_t> stack = {seed};
    visited.insert(seed);
    std::vector<uint64_t> component;
    while (!stack.empty()) {
      uint64_t key = stack.back();
      stack.pop_back();
      component.push_back(key);
      for (uint64_t neighbor : nodes_.at(key).neighbors) {
        if (visited.insert(neighbor).second) stack.push_back(neighbor);
      }
    }
    std::sort(component.begin(), component.end());
    size_t index = result.stories.size();
    for (uint64_t key : component) {
      const Node& node = nodes_.at(key);
      const Story* story =
          partition_of.at(node.source)->FindStory(node.story);
      SP_CHECK(story != nullptr);
      integrated.members.push_back({node.source, node.story});
      integrated.merged.MergeFrom(*story);
      result.member_index[key] = index;
      for (SnippetId sid : story->snippets()) {
        result.integrated_of[sid] = index;
      }
    }
    std::sort(integrated.members.begin(), integrated.members.end());
    result.stories.push_back(std::move(integrated));
  }

  // Role classification, with per-cluster reuse: a cluster whose member
  // set is unchanged and contains no refreshed story keeps its previous
  // roles (membership can only change through refreshed/dirty stories, so
  // this is sound up to IDF drift — which triggers full rebuilds above).
  std::unordered_map<uint64_t, CachedRoles> new_cache;
  for (const IntegratedStory& integrated : result.stories) {
    uint64_t signature = 0x5353u;
    bool touched = false;
    for (const auto& [source, story_id] : integrated.members) {
      uint64_t key = KeyOf(source, story_id);
      signature = HashCombine(signature, key);
      touched |= refreshed.contains(key);
    }
    CachedRoles entry;
    auto cached = role_cache_.find(signature);
    if (!touched && cached != role_cache_.end()) {
      entry = cached->second;
      ++role_cache_hits_;
    } else {
      std::unordered_map<SnippetId, SnippetRole> roles;
      std::unordered_map<SnippetId, SnippetId> counterparts;
      ClassifyIntegratedStory(*model_, config_, store, integrated, &roles,
                              &counterparts);
      entry.roles.assign(roles.begin(), roles.end());
      entry.counterparts.assign(counterparts.begin(), counterparts.end());
    }
    for (const auto& [sid, role] : entry.roles) result.roles[sid] = role;
    for (const auto& [sid, other] : entry.counterparts) {
      result.counterpart[sid] = other;
    }
    new_cache.emplace(signature, std::move(entry));
  }
  role_cache_ = std::move(new_cache);
  return result;
}

}  // namespace storypivot
