#include "core/trends.h"

#include <algorithm>

#include "util/logging.h"

namespace storypivot {

int ActivitySeries::Total() const {
  int total = 0;
  for (int c : counts) total += c;
  return total;
}

int ActivitySeries::CountAt(Timestamp ts) const {
  if (bucket_width <= 0 || ts < origin) return 0;
  size_t bucket = static_cast<size_t>((ts - origin) / bucket_width);
  if (bucket >= counts.size()) return 0;
  return counts[bucket];
}

ActivitySeries BuildActivitySeries(const StoryPivotEngine& engine,
                                   const Story& story,
                                   Timestamp bucket_width) {
  SP_CHECK(bucket_width > 0);
  ActivitySeries series;
  series.story = story.id();
  series.bucket_width = bucket_width;
  if (story.empty()) return series;
  // Align the origin to a bucket boundary for stable bucketing.
  series.origin = (story.start_time() / bucket_width) * bucket_width;
  if (story.start_time() < 0 && story.start_time() % bucket_width != 0) {
    series.origin -= bucket_width;
  }
  size_t buckets = static_cast<size_t>(
                       (story.end_time() - series.origin) / bucket_width) +
                   1;
  series.counts.assign(buckets, 0);
  for (SnippetId sid : story.snippets()) {
    const Snippet* snippet = engine.store().Find(sid);
    SP_CHECK(snippet != nullptr);
    size_t bucket = static_cast<size_t>(
        (snippet->timestamp - series.origin) / bucket_width);
    SP_CHECK(bucket < series.counts.size());
    ++series.counts[bucket];
  }
  return series;
}

std::vector<TrendingStory> DetectTrendingStories(
    const StoryPivotEngine& engine, Timestamp now,
    const TrendConfig& config) {
  SP_CHECK(engine.has_alignment());
  SP_CHECK(config.recent_buckets > 0);
  std::vector<TrendingStory> out;
  const Timestamp window = config.recent_buckets * config.bucket_width;
  const Timestamp recent_begin = now - window;

  for (const IntegratedStory& integrated : engine.alignment().stories) {
    const Story& story = integrated.merged;
    if (story.empty() || story.start_time() > now) continue;

    int recent = 0;
    int baseline_count = 0;
    for (SnippetId sid : story.snippets()) {
      const Snippet* snippet = engine.store().Find(sid);
      SP_CHECK(snippet != nullptr);
      if (snippet->timestamp > now) continue;
      if (snippet->timestamp > recent_begin) {
        ++recent;
      } else {
        ++baseline_count;
      }
    }
    if (recent < config.min_recent) continue;

    // Rates per bucket: recent window vs everything before it.
    double recent_rate =
        static_cast<double>(recent) / config.recent_buckets;
    Timestamp baseline_span = recent_begin - story.start_time();
    double burst_ratio;
    bool emerging = baseline_span <= 0 || baseline_count == 0;
    if (emerging) {
      burst_ratio = 1000.0;  // Fresh story: infinite burst, clamped.
    } else {
      double baseline_buckets = std::max<double>(
          1.0, static_cast<double>(baseline_span) / config.bucket_width);
      double baseline_rate = baseline_count / baseline_buckets;
      burst_ratio = baseline_rate <= 0 ? 1000.0
                                       : std::min(1000.0, recent_rate /
                                                              baseline_rate);
    }
    if (burst_ratio < config.burst_factor) continue;

    TrendingStory trending;
    trending.story = integrated.id;
    trending.recent_count = recent;
    trending.burst_ratio = burst_ratio;
    trending.emerging = emerging;
    out.push_back(trending);
  }
  std::sort(out.begin(), out.end(),
            [](const TrendingStory& a, const TrendingStory& b) {
              if (a.burst_ratio != b.burst_ratio) {
                return a.burst_ratio > b.burst_ratio;
              }
              if (a.recent_count != b.recent_count) {
                return a.recent_count > b.recent_count;
              }
              return a.story < b.story;
            });
  return out;
}

}  // namespace storypivot
