#include "core/snapshot.h"

#include <unordered_map>

#include "util/csv.h"
#include "util/logging.h"
#include "util/strings.h"

namespace storypivot {
namespace {

std::string EncodeTerms(const text::TermVector& terms) {
  std::string out;
  for (const auto& [term, count] : terms.entries()) {
    if (!out.empty()) out += ";";
    out += StrFormat("%u:%g", term, count);
  }
  return out;
}

Result<text::TermVector> DecodeTerms(std::string_view encoded) {
  std::vector<text::TermVector::Entry> entries;
  if (!encoded.empty()) {
    for (std::string_view item : Split(encoded, ';')) {
      size_t colon = item.find(':');
      int64_t term = 0;
      double count = 0;
      if (colon == std::string_view::npos ||
          !ParseInt64(item.substr(0, colon), &term) ||
          !ParseDouble(item.substr(colon + 1), &count)) {
        return Status::InvalidArgument("bad term encoding: " +
                                       std::string(item));
      }
      entries.push_back({static_cast<text::TermId>(term), count});
    }
  }
  return text::TermVector::FromEntries(std::move(entries));
}

}  // namespace

std::string SaveSnapshot(const StoryPivotEngine& engine) {
  DsvWriter writer('\t');
  writer.WriteRow({"#storypivot-snapshot", "v1"});
  // Sources: "S", old id, name.
  for (const SourceInfo& source : engine.sources()) {
    writer.WriteRow({"S", StrFormat("%u", source.id), source.name});
  }
  // Vocabularies in id order: "E"/"K", term.
  const text::Vocabulary& entities = engine.entity_vocabulary();
  for (text::TermId id = 0; id < entities.size(); ++id) {
    writer.WriteRow({"E", entities.TermOf(id)});
  }
  const text::Vocabulary& keywords = engine.keyword_vocabulary();
  for (text::TermId id = 0; id < keywords.size(); ++id) {
    writer.WriteRow({"K", keywords.TermOf(id)});
  }
  // Snippets with assignments: walk partitions so the story id is known.
  for (const StorySet* partition : engine.partitions()) {
    for (const auto& [ts, sid] : partition->snippet_times().entries()) {
      const Snippet* snippet = engine.store().Find(sid);
      SP_CHECK(snippet != nullptr);
      writer.WriteRow({
          "N",
          StrFormat("%llu", static_cast<unsigned long long>(snippet->id)),
          StrFormat("%u", snippet->source),
          StrFormat("%llu", static_cast<unsigned long long>(
                                partition->StoryOf(sid))),
          StrFormat("%lld", static_cast<long long>(snippet->timestamp)),
          StrFormat("%lld", static_cast<long long>(snippet->truth_story)),
          snippet->document_url,
          snippet->event_type,
          snippet->description,
          EncodeTerms(snippet->entities),
          EncodeTerms(snippet->keywords),
      });
    }
  }
  return writer.contents();
}

Status SaveSnapshotToFile(const StoryPivotEngine& engine,
                          const std::string& path) {
  return WriteStringToFile(path, SaveSnapshot(engine));
}

Result<std::unique_ptr<StoryPivotEngine>> LoadSnapshot(
    const std::string& contents, EngineConfig config) {
  DsvReader reader('\t');
  ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                   reader.Parse(contents));
  if (rows.empty() || rows[0].size() != 2 ||
      rows[0][0] != "#storypivot-snapshot" || rows[0][1] != "v1") {
    return Status::InvalidArgument("not a v1 storypivot snapshot");
  }

  auto engine = std::make_unique<StoryPivotEngine>(config);
  std::unordered_map<SourceId, SourceId> source_remap;

  for (size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    if (row.empty()) continue;
    const std::string& kind = row[0];
    auto bad = [&](const char* what) {
      return Status::InvalidArgument(
          StrFormat("snapshot row %zu: %s", r, what));
    };
    if (kind == "S") {
      if (row.size() != 3) return bad("source row needs 3 fields");
      int64_t old_id = 0;
      if (!ParseInt64(row[1], &old_id)) return bad("bad source id");
      source_remap[static_cast<SourceId>(old_id)] =
          engine->RegisterSource(row[2]);
    } else if (kind == "E" || kind == "K") {
      if (row.size() != 2) return bad("vocabulary row needs 2 fields");
      text::Vocabulary* vocab = kind == "E" ? engine->entity_vocabulary()
                                            : engine->keyword_vocabulary();
      vocab->Intern(row[1]);
    } else if (kind == "N") {
      if (row.size() != 11) return bad("snippet row needs 11 fields");
      Snippet snippet;
      int64_t id = 0, story = 0, ts = 0, truth = 0, source = 0;
      if (!ParseInt64(row[1], &id) || !ParseInt64(row[2], &source) ||
          !ParseInt64(row[3], &story) || !ParseInt64(row[4], &ts) ||
          !ParseInt64(row[5], &truth)) {
        return bad("bad numeric field");
      }
      snippet.id = static_cast<SnippetId>(id);
      auto remapped = source_remap.find(static_cast<SourceId>(source));
      if (remapped == source_remap.end()) return bad("unknown source");
      snippet.source = remapped->second;
      snippet.timestamp = ts;
      snippet.truth_story = truth;
      snippet.document_url = row[6];
      snippet.event_type = row[7];
      snippet.description = row[8];
      ASSIGN_OR_RETURN(snippet.entities, DecodeTerms(row[9]));
      ASSIGN_OR_RETURN(snippet.keywords, DecodeTerms(row[10]));
      RETURN_IF_ERROR(engine->AdoptAssignment(
          std::move(snippet), static_cast<StoryId>(story)));
    } else {
      return bad("unknown record kind");
    }
  }
  return engine;
}

Result<std::unique_ptr<StoryPivotEngine>> LoadSnapshotFromFile(
    const std::string& path, EngineConfig config) {
  ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return LoadSnapshot(contents, config);
}

}  // namespace storypivot
