#include "core/snapshot.h"

#include <algorithm>
#include <tuple>

#include "util/csv.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/strings.h"

namespace storypivot {
namespace {

std::string EncodeTerms(const text::TermVector& terms) {
  std::string out;
  for (const auto& [term, count] : terms.entries()) {
    if (!out.empty()) out += ";";
    out += StrFormat("%u:%g", term, count);
  }
  return out;
}

Result<text::TermVector> DecodeTerms(std::string_view encoded) {
  std::vector<text::TermVector::Entry> entries;
  if (!encoded.empty()) {
    for (std::string_view item : Split(encoded, ';')) {
      size_t colon = item.find(':');
      int64_t term = 0;
      double count = 0;
      if (colon == std::string_view::npos ||
          !ParseInt64(item.substr(0, colon), &term) ||
          !ParseDouble(item.substr(colon + 1), &count)) {
        return Status::InvalidArgument("bad term encoding: " +
                                       std::string(item));
      }
      entries.push_back({static_cast<text::TermId>(term), count});
    }
  }
  return text::TermVector::FromEntries(std::move(entries));
}

}  // namespace

std::string SaveSnapshot(const StoryPivotEngine& engine) {
  DsvWriter writer('\t');
  writer.WriteRow({"#storypivot-snapshot", "v2"});
  // Sources: "S", id (preserved verbatim on load), name.
  for (const SourceInfo& source : engine.sources()) {
    writer.WriteRow({"S", StrFormat("%u", source.id), source.name});
  }
  // Vocabularies in id order: "E"/"K", term.
  const text::Vocabulary& entities = engine.entity_vocabulary();
  for (text::TermId id = 0; id < entities.size(); ++id) {
    writer.WriteRow({"E", entities.TermOf(id)});
  }
  const text::Vocabulary& keywords = engine.keyword_vocabulary();
  for (text::TermId id = 0; id < keywords.size(); ++id) {
    writer.WriteRow({"K", keywords.TermOf(id)});
  }
  // Gazetteer aliases in registration order (v2): "G", entity id,
  // normalised alias. Without these, documents added after a checkpoint
  // restore would extract no entities.
  for (const auto& [entity, alias] : engine.gazetteer().aliases()) {
    writer.WriteRow({"G", StrFormat("%u", entity), alias});
  }
  // Snippets with assignments: walk partitions so the story id is known.
  for (const StorySet* partition : engine.partitions()) {
    partition->snippet_times().ForEach([&](Timestamp, SnippetId sid) {
      const Snippet* snippet = engine.store().Find(sid);
      SP_CHECK(snippet != nullptr);
      writer.WriteRow({
          "N",
          StrFormat("%llu", static_cast<unsigned long long>(snippet->id)),
          StrFormat("%u", snippet->source),
          StrFormat("%llu", static_cast<unsigned long long>(
                                partition->StoryOf(sid))),
          StrFormat("%lld", static_cast<long long>(snippet->timestamp)),
          StrFormat("%lld", static_cast<long long>(snippet->truth_story)),
          snippet->document_url,
          snippet->event_type,
          snippet->description,
          EncodeTerms(snippet->entities),
          EncodeTerms(snippet->keywords),
      });
    });
  }
  // Id counters (v2): "C", next source, next snippet, next story. Max+1
  // inference cannot reconstruct these once removals have left gaps, and
  // exact continuation of the id streams is what deterministic WAL replay
  // after a checkpoint restore depends on.
  const StoryPivotEngine::IdCounters counters = engine.id_counters();
  writer.WriteRow({
      "C",
      StrFormat("%u", counters.next_source),
      StrFormat("%llu", static_cast<unsigned long long>(counters.next_snippet)),
      StrFormat("%llu", static_cast<unsigned long long>(counters.next_story)),
  });
  return writer.contents();
}

Status SaveSnapshotToFile(const StoryPivotEngine& engine,
                          const std::string& path) {
  return WriteStringToFile(path, SaveSnapshot(engine));
}

Result<std::unique_ptr<StoryPivotEngine>> LoadSnapshot(
    const std::string& contents, EngineConfig config) {
  DsvReader reader('\t');
  ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                   reader.Parse(contents));
  if (rows.empty() || rows[0].size() != 2 ||
      rows[0][0] != "#storypivot-snapshot" ||
      (rows[0][1] != "v1" && rows[0][1] != "v2")) {
    return Status::InvalidArgument("not a v1/v2 storypivot snapshot");
  }

  auto engine = std::make_unique<StoryPivotEngine>(config);

  for (size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    if (row.empty()) continue;
    const std::string& kind = row[0];
    auto bad = [&](const char* what) {
      return Status::InvalidArgument(
          StrFormat("snapshot row %zu: %s", r, what));
    };
    if (kind == "S") {
      if (row.size() != 3) return bad("source row needs 3 fields");
      int64_t id = 0;
      if (!ParseInt64(row[1], &id) || id < 0 ||
          id >= static_cast<int64_t>(kInvalidSourceId)) {
        return bad("bad source id");
      }
      RETURN_IF_ERROR(
          engine->AdoptSource(static_cast<SourceId>(id), row[2]));
    } else if (kind == "G") {
      if (row.size() != 3) return bad("gazetteer row needs 3 fields");
      int64_t entity = 0;
      const StoryPivotEngine& built = *engine;
      if (!ParseInt64(row[1], &entity) || entity < 0 ||
          static_cast<size_t>(entity) >= built.entity_vocabulary().size()) {
        return bad("gazetteer entity id out of vocabulary range");
      }
      engine->gazetteer()->AddAlias(static_cast<text::TermId>(entity),
                                    row[2]);
    } else if (kind == "E" || kind == "K") {
      if (row.size() != 2) return bad("vocabulary row needs 2 fields");
      text::Vocabulary* vocab = kind == "E" ? engine->entity_vocabulary()
                                            : engine->keyword_vocabulary();
      vocab->Intern(row[1]);
    } else if (kind == "N") {
      if (row.size() != 11) return bad("snippet row needs 11 fields");
      Snippet snippet;
      int64_t id = 0, story = 0, ts = 0, truth = 0, source = 0;
      if (!ParseInt64(row[1], &id) || !ParseInt64(row[2], &source) ||
          !ParseInt64(row[3], &story) || !ParseInt64(row[4], &ts) ||
          !ParseInt64(row[5], &truth)) {
        return bad("bad numeric field");
      }
      snippet.id = static_cast<SnippetId>(id);
      snippet.source = static_cast<SourceId>(source);
      if (engine->partition(snippet.source) == nullptr) {
        return bad("unknown source");
      }
      snippet.timestamp = ts;
      snippet.truth_story = truth;
      snippet.document_url = row[6];
      snippet.event_type = row[7];
      snippet.description = row[8];
      ASSIGN_OR_RETURN(snippet.entities, DecodeTerms(row[9]));
      ASSIGN_OR_RETURN(snippet.keywords, DecodeTerms(row[10]));
      RETURN_IF_ERROR(engine->AdoptAssignment(
          std::move(snippet), static_cast<StoryId>(story)));
    } else if (kind == "C") {
      if (row.size() != 4) return bad("counter row needs 4 fields");
      int64_t source = 0, snippet = 0, story = 0;
      if (!ParseInt64(row[1], &source) || !ParseInt64(row[2], &snippet) ||
          !ParseInt64(row[3], &story) || source < 0 || snippet < 0 ||
          story < 0) {
        return bad("bad counter field");
      }
      StoryPivotEngine::IdCounters counters;
      counters.next_source = static_cast<SourceId>(source);
      counters.next_snippet = static_cast<SnippetId>(snippet);
      counters.next_story = static_cast<StoryId>(story);
      RETURN_IF_ERROR(engine->AdoptIdCounters(counters));
    } else {
      return bad("unknown record kind");
    }
  }
  return engine;
}

Result<std::unique_ptr<StoryPivotEngine>> LoadSnapshotFromFile(
    const std::string& path, EngineConfig config) {
  ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return LoadSnapshot(contents, config);
}

uint64_t EngineStateFingerprint(const StoryPivotEngine& engine) {
  return EngineStateFingerprint({&engine});
}

uint64_t EngineStateFingerprint(
    const std::vector<const StoryPivotEngine*>& engines) {
  // Sharded engines register every source on every shard but store each
  // source's snippets on exactly one, so concatenating per-engine triples
  // never yields duplicates: empty non-owner partitions contribute none.
  std::vector<std::tuple<SourceId, SnippetId, StoryId>> triples;
  for (const StoryPivotEngine* engine : engines) {
    SP_CHECK(engine != nullptr);
    for (const SourceInfo& info : engine->sources()) {
      const StorySet* partition = engine->partition(info.id);
      SP_CHECK(partition != nullptr);
      partition->snippet_times().ForEach([&](Timestamp, SnippetId sid) {
        triples.emplace_back(info.id, sid, partition->StoryOf(sid));
      });
    }
  }
  std::sort(triples.begin(), triples.end());
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& [source, snippet, story] : triples) {
    h = HashCombine(h, SplitMix64(source));
    h = HashCombine(h, SplitMix64(snippet));
    h = HashCombine(h, SplitMix64(story));
  }
  return h;
}

}  // namespace storypivot
