#include "core/engine.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/parallel_ingest.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace storypivot {

EngineConfig NewsProseEngineConfig() {
  EngineConfig config;
  config.identifier.window = 45 * kSecondsPerDay;
  config.similarity.assign_threshold = 0.18;
  config.similarity.merge_threshold = 0.40;
  config.alignment.align_threshold = 0.25;
  config.alignment.pair_threshold = 0.25;
  config.refinement.pair_threshold = 0.25;
  return config;
}

StoryPivotEngine::StoryPivotEngine(EngineConfig config)
    : config_(config),
      gazetteer_(&entity_vocab_),
      annotator_(&gazetteer_, &keyword_vocab_),
      similarity_(config_.similarity, &df_),
      identifier_(MakeIdentifier(config_.mode, &similarity_,
                                 config_.identifier)),
      aligner_(&similarity_, config_.alignment),
      incremental_aligner_(&similarity_, config_.alignment),
      refiner_(&similarity_, config_.refinement) {
  if (config_.identifier.use_sketch_candidates) {
    // Sketch-based candidate generation needs maintained sketches.
    config_.use_sketches = true;
  }
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
}

SourceId StoryPivotEngine::RegisterSource(const std::string& name) {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  SourceId id = next_source_id_++;
  sources_.push_back({id, name});
  partitions_.emplace(id, StorySet(id));
  if (config_.use_sketches) {
    sketches_.emplace(id, SnippetSketchIndex(config_.sketch_hashes));
  }
  stale_ = true;
  return id;
}

Status StoryPivotEngine::AdoptSource(SourceId id, const std::string& name) {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  if (id == kInvalidSourceId) {
    return Status::InvalidArgument("cannot adopt the invalid source id");
  }
  if (partitions_.contains(id)) {
    return Status::AlreadyExists(StrFormat("source %u", id));
  }
  sources_.push_back({id, name});
  partitions_.emplace(id, StorySet(id));
  if (config_.use_sketches) {
    sketches_.emplace(id, SnippetSketchIndex(config_.sketch_hashes));
  }
  next_source_id_ = std::max(next_source_id_, id + 1);
  stale_ = true;
  return Status::OK();
}

StoryPivotEngine::IdCounters StoryPivotEngine::id_counters() const {
  serial_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return {next_source_id_, store_.next_id(),
          next_story_id_.load(std::memory_order_relaxed)};
}

Status StoryPivotEngine::AdoptIdCounters(const IdCounters& counters) {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  if (counters.next_source < next_source_id_ ||
      counters.next_snippet < store_.next_id() ||
      counters.next_story < next_story_id_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("id counters may only move forward");
  }
  next_source_id_ = counters.next_source;
  store_.AdoptNextId(counters.next_snippet);
  next_story_id_.store(counters.next_story, std::memory_order_relaxed);
  return Status::OK();
}

Status StoryPivotEngine::RemoveSource(SourceId source) {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  auto it = partitions_.find(source);
  if (it == partitions_.end()) {
    return Status::NotFound(StrFormat("source %u", source));
  }
  // Remove all snippets of the source from the global structures.
  std::vector<SnippetId> ids;
  ids.reserve(it->second.snippet_times().size());
  it->second.snippet_times().ForEach(
      [&ids](Timestamp, SnippetId sid) { ids.push_back(sid); });
  for (SnippetId sid : ids) {
    const Snippet* snippet = store_.Find(sid);
    SP_CHECK(snippet != nullptr);
    df_.RemoveDocument(snippet->keywords);
    Snippet copy = *snippet;  // Remove() invalidates the pointer.
    SP_CHECK_OK(store_.Remove(sid));
    NotifyRemoved(copy);
    ++stats_.snippets_removed;
  }
  partitions_.erase(it);
  sketches_.erase(source);
  // Purge the erased source's dirty-story entries: they would dangle into
  // the next incremental Align() as {source, story} pairs whose partition
  // no longer exists. The incremental aligner discovers the vanished and
  // orphaned nodes itself by diffing against the partitions (and its IDF
  // drift check forces a full rebuild when the removal shifted corpus
  // statistics), so no blanket invalidation is needed.
  std::erase_if(dirty_stories_,
                [source](const std::pair<SourceId, StoryId>& dirty) {
                  return dirty.first == source;
                });
  std::erase_if(sources_,
                [source](const SourceInfo& s) { return s.id == source; });
  stale_ = true;
  return Status::OK();
}

const std::string& StoryPivotEngine::SourceName(SourceId source) const {
  static const std::string& unknown = *new std::string("<unknown>");
  for (const SourceInfo& info : sources_) {
    if (info.id == source) return info.name;
  }
  return unknown;
}

Status StoryPivotEngine::ImportVocabularies(
    const text::Vocabulary& entities, const text::Vocabulary& keywords) {
  auto import = [](const text::Vocabulary& from, text::Vocabulary* to) {
    for (text::TermId id = 0; id < from.size(); ++id) {
      text::TermId got = to->Intern(from.TermOf(id));
      if (got != id) {
        return Status::FailedPrecondition(StrFormat(
            "term '%s' maps to id %u, expected %u — import vocabularies "
            "before interning anything else",
            from.TermOf(id).c_str(), got, id));
      }
    }
    return Status::OK();
  };
  RETURN_IF_ERROR(import(entities, &entity_vocab_));
  return import(keywords, &keyword_vocab_);
}

Result<std::vector<SnippetId>> StoryPivotEngine::AddDocument(
    const Document& document) {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  if (!partitions_.contains(document.source)) {
    return Status::InvalidArgument(
        StrFormat("unregistered source %u", document.source));
  }
  std::vector<SnippetId> ids;
  // The title is the strongest topical signal of a document; annotate it
  // once and fold it into every paragraph excerpt with double weight
  // (standard title-boosting, and it keeps one document's excerpts — and
  // same-story headlines across documents — coherent).
  text::Annotation title = annotator_.Annotate(document.title);
  for (const std::string& paragraph : document.paragraphs) {
    text::Annotation annotation = annotator_.Annotate(paragraph);
    annotation.entities.Merge(title.entities, 2.0);
    annotation.keywords.Merge(title.keywords, 2.0);
    Snippet snippet;
    snippet.source = document.source;
    snippet.timestamp = document.timestamp;
    snippet.document_url = document.url;
    snippet.event_type = document.event_type;
    snippet.description = document.title;
    snippet.entities = std::move(annotation.entities);
    snippet.keywords = std::move(annotation.keywords);
    snippet.truth_story = document.truth_story;
    Result<SnippetId> id = AddSnippet(std::move(snippet));
    if (!id.ok()) {
      // All-or-nothing (§2.4 removal semantics apply to failed adds too):
      // a partially ingested document would leave orphan paragraphs that
      // no RemoveDocument(url) of the caller can see consistently, and
      // `documents_ingested` would undercount them forever.
      RollbackIngested(ids);
      return id.status();
    }
    ids.push_back(id.value());
  }
  ++stats_.documents_ingested;
  return ids;
}

void StoryPivotEngine::RollbackIngested(const std::vector<SnippetId>& ids) {
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    const Snippet* snippet = store_.Find(*it);
    SP_CHECK(snippet != nullptr);
    Snippet copy = *snippet;  // RemoveSnippetInternal invalidates the ptr.
    RemoveSnippetInternal(copy, /*split_check=*/true);
  }
}

Result<SnippetId> StoryPivotEngine::AddSnippet(Snippet snippet) {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  StorySet* partition = MutablePartition(snippet.source);
  if (partition == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unregistered source %u", snippet.source));
  }
  Result<SnippetId> inserted = store_.Insert(std::move(snippet));
  if (!inserted.ok()) return inserted.status();
  SnippetId id = inserted.value();
  const Snippet* stored = store_.Find(id);
  SP_CHECK(stored != nullptr);

  df_.AddDocument(stored->keywords);

  SnippetSketchIndex* sketch_index = nullptr;
  if (config_.use_sketches) {
    auto it = sketches_.find(stored->source);
    SP_CHECK(it != sketches_.end());
    sketch_index = &it->second;
  }

  WallTimer timer;
  StoryId cursor = next_story_id_.load(std::memory_order_relaxed);
  StoryId assigned = identifier_->Identify(*stored, partition, store_,
                                           sketch_index, &cursor);
  next_story_id_.store(cursor, std::memory_order_relaxed);
  stats_.identify_time_ms += timer.ElapsedMillis();
  if (config_.incremental_alignment) {
    dirty_stories_.push_back({stored->source, assigned});
  }

  if (sketch_index != nullptr) {
    MinHashSignature sig = MinHashSignature::FromContent(
        stored->entities, stored->keywords, sketch_index->num_hashes);
    sketch_index->lsh.Insert(id, sig);
    sketch_index->signatures.emplace(id, std::move(sig));
  }
  ++stats_.snippets_ingested;
  stale_ = true;
  NotifyAdded(*stored);
  return id;
}

Result<std::vector<SnippetId>> StoryPivotEngine::AddSnippets(
    std::vector<Snippet> snippets) {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  std::vector<SnippetId> ids;
  if (snippets.empty()) return ids;
  ids.reserve(snippets.size());
  for (const Snippet& snippet : snippets) {
    if (!partitions_.contains(snippet.source)) {
      return Status::InvalidArgument(
          StrFormat("unregistered source %u", snippet.source));
    }
  }

  // Phase 1 — serialized writes: insert every snippet into the store and
  // the document-frequency table in arrival order. Identification then
  // runs against corpus statistics that are frozen for the whole batch,
  // which is what makes phase 2 independent of source interleaving (and
  // of thread count). Rolls back on failure: the batch is all-or-nothing.
  std::vector<const Snippet*> stored;
  stored.reserve(snippets.size());
  for (Snippet& snippet : snippets) {
    Result<SnippetId> inserted = store_.Insert(std::move(snippet));
    if (!inserted.ok()) {
      for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
        const Snippet* undo = store_.Find(*it);
        SP_CHECK(undo != nullptr);
        df_.RemoveDocument(undo->keywords);
        SP_CHECK_OK(store_.Remove(*it));
      }
      return inserted.status();
    }
    ids.push_back(inserted.value());
    const Snippet* ptr = store_.Find(inserted.value());
    SP_CHECK(ptr != nullptr);
    df_.AddDocument(ptr->keywords);
    stored.push_back(ptr);
  }

  // Phase 2 — shard by source (ascending source id) and identify shards
  // concurrently. Each shard owns its partition, its sketch index, and a
  // private story-id block, so shards share no mutable state; block
  // layout depends only on the batch contents, keeping story ids
  // deterministic across thread counts.
  std::vector<IngestShard> shards;
  std::unordered_map<SourceId, size_t> shard_of;
  for (const Snippet* snippet : stored) {
    auto [it, inserted] = shard_of.emplace(snippet->source, shards.size());
    if (inserted) {
      IngestShard shard;
      shard.source = snippet->source;
      shard.partition = MutablePartition(snippet->source);
      SP_CHECK(shard.partition != nullptr);
      if (config_.use_sketches) {
        auto sketch_it = sketches_.find(snippet->source);
        SP_CHECK(sketch_it != sketches_.end());
        shard.sketches = &sketch_it->second;
      }
      shards.push_back(std::move(shard));
    }
    shards[it->second].snippets.push_back(snippet);
  }
  std::sort(shards.begin(), shards.end(),
            [](const IngestShard& a, const IngestShard& b) {
              return a.source < b.source;
            });
  const StoryId block_base = next_story_id_.load(std::memory_order_relaxed);
  StoryId offset = 0;
  for (IngestShard& shard : shards) {
    shard.story_id_begin = block_base + offset;
    offset += shard.snippets.size();
  }

  WallTimer timer;
  ParallelIngestor ingestor(identifier_.get(), pool_.get());
  std::vector<IngestShardResult> results = ingestor.Run(shards, store_);
  const double batch_wall_ms = timer.ElapsedMillis();

  // Serial epilogue: advance the id space past every shard's block and
  // merge per-shard outcomes in shard order (deterministic).
  next_story_id_.store(block_base + offset, std::memory_order_relaxed);
  double identify_ms = 0.0;
  for (size_t i = 0; i < shards.size(); ++i) {
    identify_ms += results[i].identify_time_ms;
    if (config_.incremental_alignment) {
      for (StoryId assigned : results[i].assigned) {
        dirty_stories_.push_back({shards[i].source, assigned});
      }
    }
  }
  // Report the larger of summed per-shard time and batch wall time: with
  // one thread they coincide; with several, the sum is the work done.
  stats_.identify_time_ms += std::max(identify_ms, batch_wall_ms);
  stats_.snippets_ingested += stored.size();
  stale_ = true;
  // Observer notifications happen in the serial epilogue, in arrival
  // order — identical for every thread count.
  for (const Snippet* snippet : stored) NotifyAdded(*snippet);
  return ids;
}

Result<SnippetId> StoryPivotEngine::AdoptAssignment(Snippet snippet,
                                                    StoryId story) {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  StorySet* partition = MutablePartition(snippet.source);
  if (partition == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unregistered source %u", snippet.source));
  }
  Result<SnippetId> inserted = store_.Insert(std::move(snippet));
  if (!inserted.ok()) return inserted.status();
  SnippetId id = inserted.value();
  const Snippet* stored = store_.Find(id);
  SP_CHECK(stored != nullptr);

  df_.AddDocument(stored->keywords);
  if (partition->FindStory(story) == nullptr) {
    partition->CreateStory(story);
  }
  partition->AddSnippetToStory(*stored, story);
  next_story_id_.store(
      std::max(next_story_id_.load(std::memory_order_relaxed), story + 1),
      std::memory_order_relaxed);

  if (config_.use_sketches) {
    auto it = sketches_.find(stored->source);
    SP_CHECK(it != sketches_.end());
    MinHashSignature sig = MinHashSignature::FromContent(
        stored->entities, stored->keywords, it->second.num_hashes);
    it->second.lsh.Insert(id, sig);
    it->second.signatures.emplace(id, std::move(sig));
  }
  if (config_.incremental_alignment) {
    dirty_stories_.push_back({stored->source, story});
  }
  ++stats_.snippets_ingested;
  stale_ = true;
  NotifyAdded(*stored);
  return id;
}

void StoryPivotEngine::ApplyDocumentFrequencyDelta(
    const std::vector<text::TermVector>& added,
    const std::vector<text::TermVector>& removed) {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  for (const text::TermVector& keywords : added) df_.AddDocument(keywords);
  for (const text::TermVector& keywords : removed) {
    df_.RemoveDocument(keywords);
  }
}

Status StoryPivotEngine::ApplyPlannedIngest(const PlannedIngest& plan) {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  // Upfront validation: a planned batch was already admitted globally, so
  // a local rejection means the plan (not the data) is wrong, and the
  // whole batch is refused before any state changes — no rollback path.
  std::unordered_set<SnippetId> batch_ids;
  for (const Snippet& snippet : plan.snippets) {
    if (!partitions_.contains(snippet.source)) {
      return Status::InvalidArgument(
          StrFormat("unregistered source %u", snippet.source));
    }
    if (snippet.id == kInvalidSnippetId) {
      return Status::InvalidArgument("planned snippet without an id");
    }
    if (store_.Find(snippet.id) != nullptr ||
        !batch_ids.insert(snippet.id).second) {
      return Status::AlreadyExists(StrFormat(
          "snippet %llu", static_cast<unsigned long long>(snippet.id)));
    }
  }
  std::unordered_map<SourceId, StoryId> block_of;
  for (const auto& [source, begin] : plan.story_blocks) {
    if (!block_of.emplace(source, begin).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate story block for source %u", source));
    }
  }
  for (const Snippet& snippet : plan.snippets) {
    if (!block_of.contains(snippet.source)) {
      return Status::InvalidArgument(
          StrFormat("no story block for source %u", snippet.source));
    }
  }

  // Phase 1 — serialized writes in arrival order, exactly like
  // AddSnippets: every own snippet enters the store and the DF table, and
  // the foreign snippets' keyword supports keep DF in global lockstep.
  std::vector<const Snippet*> stored;
  stored.reserve(plan.snippets.size());
  for (const Snippet& snippet : plan.snippets) {
    Result<SnippetId> inserted = store_.Insert(snippet);
    SP_CHECK_OK(inserted.status());  // Collisions rejected above.
    const Snippet* ptr = store_.Find(inserted.value());
    SP_CHECK(ptr != nullptr);
    df_.AddDocument(ptr->keywords);
    stored.push_back(ptr);
  }
  for (const text::TermVector& keywords : plan.foreign_keywords) {
    df_.AddDocument(keywords);
  }

  // Phase 2 — shard by source and identify concurrently, with the
  // PLANNED story-id blocks instead of locally computed ones: the plan's
  // block layout is the one an unsharded engine would have derived for
  // the full batch, which is what keeps assigned story ids identical.
  std::vector<IngestShard> shards;
  std::unordered_map<SourceId, size_t> shard_of;
  for (const Snippet* snippet : stored) {
    auto [it, inserted] = shard_of.emplace(snippet->source, shards.size());
    if (inserted) {
      IngestShard shard;
      shard.source = snippet->source;
      shard.partition = MutablePartition(snippet->source);
      SP_CHECK(shard.partition != nullptr);
      if (config_.use_sketches) {
        auto sketch_it = sketches_.find(snippet->source);
        SP_CHECK(sketch_it != sketches_.end());
        shard.sketches = &sketch_it->second;
      }
      shards.push_back(std::move(shard));
    }
    shards[it->second].snippets.push_back(snippet);
  }
  std::sort(shards.begin(), shards.end(),
            [](const IngestShard& a, const IngestShard& b) {
              return a.source < b.source;
            });
  for (IngestShard& shard : shards) {
    shard.story_id_begin = block_of.at(shard.source);
  }

  WallTimer timer;
  ParallelIngestor ingestor(identifier_.get(), pool_.get());
  std::vector<IngestShardResult> results = ingestor.Run(shards, store_);
  const double batch_wall_ms = timer.ElapsedMillis();

  double identify_ms = 0.0;
  for (size_t i = 0; i < shards.size(); ++i) {
    identify_ms += results[i].identify_time_ms;
    if (config_.incremental_alignment) {
      for (StoryId assigned : results[i].assigned) {
        dirty_stories_.push_back({shards[i].source, assigned});
      }
    }
  }
  stats_.identify_time_ms += std::max(identify_ms, batch_wall_ms);
  stats_.snippets_ingested += stored.size();
  // The plan's counters already account for the whole batch (including
  // foreign snippets and their story blocks), so adopt rather than infer.
  RETURN_IF_ERROR(AdoptIdCounters(plan.post));
  stale_ = true;
  for (const Snippet* snippet : stored) NotifyAdded(*snippet);
  return Status::OK();
}

Status StoryPivotEngine::ApplyRefinementJournal(
    const RefinementJournal& journal) {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  for (const RefinementJournal::Entry& entry : journal.entries) {
    switch (entry.kind) {
      case RefinementJournal::Entry::Kind::kMove: {
        const RefinementJournal::Move& move = entry.move;
        StorySet* partition = MutablePartition(move.source);
        if (partition == nullptr) {
          return Status::InvalidArgument(
              StrFormat("unregistered source %u", move.source));
        }
        const Snippet* snippet = store_.Find(move.snippet);
        if (snippet == nullptr ||
            partition->StoryOf(move.snippet) != move.from) {
          return Status::Internal(
              "refinement journal diverged from engine state");
        }
        if (!move.created && partition->FindStory(move.to) == nullptr) {
          return Status::Internal(
              "refinement journal diverged from engine state");
        }
        partition->RemoveSnippet(*snippet, store_);
        if (move.created) partition->CreateStory(move.to);
        partition->AddSnippetToStory(*snippet, move.to);
        next_story_id_.store(
            std::max(next_story_id_.load(std::memory_order_relaxed),
                     move.to + 1),
            std::memory_order_relaxed);
        break;
      }
      case RefinementJournal::Entry::Kind::kSplit: {
        const RefinementJournal::Split& split = entry.split;
        StorySet* partition = MutablePartition(split.source);
        if (partition == nullptr) {
          return Status::InvalidArgument(
              StrFormat("unregistered source %u", split.source));
        }
        if (partition->FindStory(split.story) == nullptr) {
          return Status::Internal(
              "refinement journal diverged from engine state");
        }
        partition->SplitStoryWithIds(split.story, split.components, store_,
                                     split.assigned);
        for (StoryId assigned : split.assigned) {
          next_story_id_.store(
              std::max(next_story_id_.load(std::memory_order_relaxed),
                       assigned + 1),
              std::memory_order_relaxed);
        }
        break;
      }
    }
  }
  stale_ = true;
  return Status::OK();
}

void StoryPivotEngine::RemoveSnippetInternal(const Snippet& snippet,
                                             bool split_check) {
  StorySet* partition = MutablePartition(snippet.source);
  SP_CHECK(partition != nullptr);
  StoryId story_id = partition->StoryOf(snippet.id);
  df_.RemoveDocument(snippet.keywords);
  if (config_.use_sketches) {
    auto it = sketches_.find(snippet.source);
    if (it != sketches_.end()) {
      it->second.lsh.Remove(snippet.id);
      it->second.signatures.erase(snippet.id);
    }
  }
  partition->RemoveSnippet(snippet, store_);
  if (config_.incremental_alignment && story_id != kInvalidStoryId) {
    dirty_stories_.push_back({snippet.source, story_id});
  }
  SnippetId id = snippet.id;
  SP_CHECK(store_.Remove(id).ok());
  NotifyRemoved(snippet);
  ++stats_.snippets_removed;
  if (split_check && story_id != kInvalidStoryId &&
      partition->FindStory(story_id) != nullptr) {
    StoryId cursor = next_story_id_.load(std::memory_order_relaxed);
    refiner_.SplitIfDisconnected(partition, story_id, store_, &cursor);
    next_story_id_.store(cursor, std::memory_order_relaxed);
  }
  stale_ = true;
}

Status StoryPivotEngine::RemoveDocument(const std::string& url) {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  std::vector<SnippetId> ids = store_.FindByDocument(url);
  if (ids.empty()) return Status::NotFound("document " + url);
  for (SnippetId id : ids) {
    const Snippet* snippet = store_.Find(id);
    SP_CHECK(snippet != nullptr);
    Snippet copy = *snippet;  // RemoveSnippetInternal invalidates the ptr.
    RemoveSnippetInternal(copy, /*split_check=*/true);
  }
  return Status::OK();
}

Status StoryPivotEngine::RemoveSnippet(SnippetId id) {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  const Snippet* snippet = store_.Find(id);
  if (snippet == nullptr) {
    return Status::NotFound(
        StrFormat("snippet %llu", static_cast<unsigned long long>(id)));
  }
  Snippet copy = *snippet;
  RemoveSnippetInternal(copy, /*split_check=*/true);
  return Status::OK();
}

const AlignmentResult& StoryPivotEngine::Align() {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  WallTimer timer;
  StoryId cursor = next_story_id_.load(std::memory_order_relaxed);
  if (config_.incremental_alignment) {
    alignment_ = incremental_aligner_.Update(partitions(), store_,
                                             dirty_stories_, &cursor);
    dirty_stories_.clear();
  } else {
    alignment_ =
        aligner_.Align(partitions(), store_, &cursor, pool_.get());
  }
  next_story_id_.store(cursor, std::memory_order_relaxed);
  stats_.align_time_ms += timer.ElapsedMillis();
  ++stats_.alignments_run;
  stale_ = false;
  return *alignment_;
}

const AlignmentResult& StoryPivotEngine::alignment() const {
  SP_CHECK(alignment_.has_value());
  return *alignment_;
}

RefinementStats StoryPivotEngine::Refine() {
  serial_.AssertInSection();  // Mutator: single-writer serial section.
  if (stale_ || !alignment_.has_value()) Align();
  std::vector<StorySet*> mutable_partitions;
  std::vector<SourceId> order;
  for (const SourceInfo& info : sources_) order.push_back(info.id);
  std::sort(order.begin(), order.end());
  for (SourceId source : order) {
    mutable_partitions.push_back(&partitions_.at(source));
  }
  WallTimer timer;
  StoryId cursor = next_story_id_.load(std::memory_order_relaxed);
  RefinementStats stats = refiner_.Refine(mutable_partitions, *alignment_,
                                          store_, &cursor);
  next_story_id_.store(cursor, std::memory_order_relaxed);
  stats_.refine_time_ms += timer.ElapsedMillis();
  ++stats_.refinements_run;
  if (config_.incremental_alignment) incremental_aligner_.Invalidate();
  stale_ = true;
  Align();
  return stats;
}

const StorySet* StoryPivotEngine::partition(SourceId source) const {
  auto it = partitions_.find(source);
  return it == partitions_.end() ? nullptr : &it->second;
}

std::vector<const StorySet*> StoryPivotEngine::partitions() const {
  std::vector<SourceId> order;
  for (const SourceInfo& info : sources_) order.push_back(info.id);
  std::sort(order.begin(), order.end());
  std::vector<const StorySet*> out;
  out.reserve(order.size());
  for (SourceId source : order) out.push_back(&partitions_.at(source));
  return out;
}

size_t StoryPivotEngine::TotalStories() const {
  size_t total = 0;
  for (const auto& [source, partition] : partitions_) {
    total += partition.stories().size();
  }
  return total;
}

StorySet* StoryPivotEngine::MutablePartition(SourceId source) {
  auto it = partitions_.find(source);
  return it == partitions_.end() ? nullptr : &it->second;
}

}  // namespace storypivot
