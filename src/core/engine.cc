#include "core/engine.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace storypivot {

EngineConfig NewsProseEngineConfig() {
  EngineConfig config;
  config.identifier.window = 45 * kSecondsPerDay;
  config.similarity.assign_threshold = 0.18;
  config.similarity.merge_threshold = 0.40;
  config.alignment.align_threshold = 0.25;
  config.alignment.pair_threshold = 0.25;
  config.refinement.pair_threshold = 0.25;
  return config;
}

StoryPivotEngine::StoryPivotEngine(EngineConfig config)
    : config_(config),
      gazetteer_(&entity_vocab_),
      annotator_(&gazetteer_, &keyword_vocab_),
      similarity_(config_.similarity, &df_),
      identifier_(MakeIdentifier(config_.mode, &similarity_,
                                 config_.identifier)),
      aligner_(&similarity_, config_.alignment),
      incremental_aligner_(&similarity_, config_.alignment),
      refiner_(&similarity_, config_.refinement) {
  if (config_.identifier.use_sketch_candidates) {
    // Sketch-based candidate generation needs maintained sketches.
    config_.use_sketches = true;
  }
}

SourceId StoryPivotEngine::RegisterSource(const std::string& name) {
  SourceId id = next_source_id_++;
  sources_.push_back({id, name});
  partitions_.emplace(id, StorySet(id));
  if (config_.use_sketches) {
    sketches_.emplace(id, SnippetSketchIndex(config_.sketch_hashes));
  }
  stale_ = true;
  return id;
}

Status StoryPivotEngine::RemoveSource(SourceId source) {
  auto it = partitions_.find(source);
  if (it == partitions_.end()) {
    return Status::NotFound(StrFormat("source %u", source));
  }
  // Remove all snippets of the source from the global structures.
  std::vector<SnippetId> ids;
  ids.reserve(it->second.snippet_times().size());
  for (const auto& [ts, sid] : it->second.snippet_times().entries()) {
    ids.push_back(sid);
  }
  for (SnippetId sid : ids) {
    const Snippet* snippet = store_.Find(sid);
    SP_CHECK(snippet != nullptr);
    df_.RemoveDocument(snippet->keywords);
    SP_CHECK_OK(store_.Remove(sid));
    ++stats_.snippets_removed;
  }
  partitions_.erase(it);
  sketches_.erase(source);
  if (config_.incremental_alignment) incremental_aligner_.Invalidate();
  std::erase_if(sources_,
                [source](const SourceInfo& s) { return s.id == source; });
  stale_ = true;
  return Status::OK();
}

const std::string& StoryPivotEngine::SourceName(SourceId source) const {
  static const std::string& unknown = *new std::string("<unknown>");
  for (const SourceInfo& info : sources_) {
    if (info.id == source) return info.name;
  }
  return unknown;
}

Status StoryPivotEngine::ImportVocabularies(
    const text::Vocabulary& entities, const text::Vocabulary& keywords) {
  auto import = [](const text::Vocabulary& from, text::Vocabulary* to) {
    for (text::TermId id = 0; id < from.size(); ++id) {
      text::TermId got = to->Intern(from.TermOf(id));
      if (got != id) {
        return Status::FailedPrecondition(StrFormat(
            "term '%s' maps to id %u, expected %u — import vocabularies "
            "before interning anything else",
            from.TermOf(id).c_str(), got, id));
      }
    }
    return Status::OK();
  };
  RETURN_IF_ERROR(import(entities, &entity_vocab_));
  return import(keywords, &keyword_vocab_);
}

Result<std::vector<SnippetId>> StoryPivotEngine::AddDocument(
    const Document& document) {
  if (!partitions_.contains(document.source)) {
    return Status::InvalidArgument(
        StrFormat("unregistered source %u", document.source));
  }
  std::vector<SnippetId> ids;
  // The title is the strongest topical signal of a document; annotate it
  // once and fold it into every paragraph excerpt with double weight
  // (standard title-boosting, and it keeps one document's excerpts — and
  // same-story headlines across documents — coherent).
  text::Annotation title = annotator_.Annotate(document.title);
  for (const std::string& paragraph : document.paragraphs) {
    text::Annotation annotation = annotator_.Annotate(paragraph);
    annotation.entities.Merge(title.entities, 2.0);
    annotation.keywords.Merge(title.keywords, 2.0);
    Snippet snippet;
    snippet.source = document.source;
    snippet.timestamp = document.timestamp;
    snippet.document_url = document.url;
    snippet.event_type = document.event_type;
    snippet.description = document.title;
    snippet.entities = std::move(annotation.entities);
    snippet.keywords = std::move(annotation.keywords);
    snippet.truth_story = document.truth_story;
    Result<SnippetId> id = AddSnippet(std::move(snippet));
    if (!id.ok()) return id.status();
    ids.push_back(id.value());
  }
  ++stats_.documents_ingested;
  return ids;
}

Result<SnippetId> StoryPivotEngine::AddSnippet(Snippet snippet) {
  StorySet* partition = MutablePartition(snippet.source);
  if (partition == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unregistered source %u", snippet.source));
  }
  Result<SnippetId> inserted = store_.Insert(std::move(snippet));
  if (!inserted.ok()) return inserted.status();
  SnippetId id = inserted.value();
  const Snippet* stored = store_.Find(id);
  SP_CHECK(stored != nullptr);

  df_.AddDocument(stored->keywords);

  SnippetSketchIndex* sketch_index = nullptr;
  if (config_.use_sketches) {
    auto it = sketches_.find(stored->source);
    SP_CHECK(it != sketches_.end());
    sketch_index = &it->second;
  }

  WallTimer timer;
  StoryId assigned = identifier_->Identify(*stored, partition, store_,
                                           sketch_index, &next_story_id_);
  stats_.identify_time_ms += timer.ElapsedMillis();
  if (config_.incremental_alignment) {
    dirty_stories_.push_back({stored->source, assigned});
  }

  if (sketch_index != nullptr) {
    MinHashSignature sig = MinHashSignature::FromContent(
        stored->entities, stored->keywords, sketch_index->num_hashes);
    sketch_index->lsh.Insert(id, sig);
    sketch_index->signatures.emplace(id, std::move(sig));
  }
  ++stats_.snippets_ingested;
  stale_ = true;
  return id;
}

Result<SnippetId> StoryPivotEngine::AdoptAssignment(Snippet snippet,
                                                    StoryId story) {
  StorySet* partition = MutablePartition(snippet.source);
  if (partition == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unregistered source %u", snippet.source));
  }
  Result<SnippetId> inserted = store_.Insert(std::move(snippet));
  if (!inserted.ok()) return inserted.status();
  SnippetId id = inserted.value();
  const Snippet* stored = store_.Find(id);
  SP_CHECK(stored != nullptr);

  df_.AddDocument(stored->keywords);
  if (partition->FindStory(story) == nullptr) {
    partition->CreateStory(story);
  }
  partition->AddSnippetToStory(*stored, story);
  next_story_id_ = std::max(next_story_id_, story + 1);

  if (config_.use_sketches) {
    auto it = sketches_.find(stored->source);
    SP_CHECK(it != sketches_.end());
    MinHashSignature sig = MinHashSignature::FromContent(
        stored->entities, stored->keywords, it->second.num_hashes);
    it->second.lsh.Insert(id, sig);
    it->second.signatures.emplace(id, std::move(sig));
  }
  if (config_.incremental_alignment) {
    dirty_stories_.push_back({stored->source, story});
  }
  ++stats_.snippets_ingested;
  stale_ = true;
  return id;
}

void StoryPivotEngine::RemoveSnippetInternal(const Snippet& snippet,
                                             bool split_check) {
  StorySet* partition = MutablePartition(snippet.source);
  SP_CHECK(partition != nullptr);
  StoryId story_id = partition->StoryOf(snippet.id);
  df_.RemoveDocument(snippet.keywords);
  if (config_.use_sketches) {
    auto it = sketches_.find(snippet.source);
    if (it != sketches_.end()) {
      it->second.lsh.Remove(snippet.id);
      it->second.signatures.erase(snippet.id);
    }
  }
  partition->RemoveSnippet(snippet, store_);
  if (config_.incremental_alignment && story_id != kInvalidStoryId) {
    dirty_stories_.push_back({snippet.source, story_id});
  }
  SnippetId id = snippet.id;
  SP_CHECK(store_.Remove(id).ok());
  ++stats_.snippets_removed;
  if (split_check && story_id != kInvalidStoryId &&
      partition->FindStory(story_id) != nullptr) {
    refiner_.SplitIfDisconnected(partition, story_id, store_,
                                 &next_story_id_);
  }
  stale_ = true;
}

Status StoryPivotEngine::RemoveDocument(const std::string& url) {
  std::vector<SnippetId> ids = store_.FindByDocument(url);
  if (ids.empty()) return Status::NotFound("document " + url);
  for (SnippetId id : ids) {
    const Snippet* snippet = store_.Find(id);
    SP_CHECK(snippet != nullptr);
    Snippet copy = *snippet;  // RemoveSnippetInternal invalidates the ptr.
    RemoveSnippetInternal(copy, /*split_check=*/true);
  }
  return Status::OK();
}

Status StoryPivotEngine::RemoveSnippet(SnippetId id) {
  const Snippet* snippet = store_.Find(id);
  if (snippet == nullptr) {
    return Status::NotFound(
        StrFormat("snippet %llu", static_cast<unsigned long long>(id)));
  }
  Snippet copy = *snippet;
  RemoveSnippetInternal(copy, /*split_check=*/true);
  return Status::OK();
}

const AlignmentResult& StoryPivotEngine::Align() {
  WallTimer timer;
  if (config_.incremental_alignment) {
    alignment_ = incremental_aligner_.Update(partitions(), store_,
                                             dirty_stories_,
                                             &next_story_id_);
    dirty_stories_.clear();
  } else {
    alignment_ = aligner_.Align(partitions(), store_, &next_story_id_);
  }
  stats_.align_time_ms += timer.ElapsedMillis();
  ++stats_.alignments_run;
  stale_ = false;
  return *alignment_;
}

const AlignmentResult& StoryPivotEngine::alignment() const {
  SP_CHECK(alignment_.has_value());
  return *alignment_;
}

RefinementStats StoryPivotEngine::Refine() {
  if (stale_ || !alignment_.has_value()) Align();
  std::vector<StorySet*> mutable_partitions;
  std::vector<SourceId> order;
  for (const SourceInfo& info : sources_) order.push_back(info.id);
  std::sort(order.begin(), order.end());
  for (SourceId source : order) {
    mutable_partitions.push_back(&partitions_.at(source));
  }
  WallTimer timer;
  RefinementStats stats = refiner_.Refine(mutable_partitions, *alignment_,
                                          store_, &next_story_id_);
  stats_.refine_time_ms += timer.ElapsedMillis();
  ++stats_.refinements_run;
  if (config_.incremental_alignment) incremental_aligner_.Invalidate();
  stale_ = true;
  Align();
  return stats;
}

const StorySet* StoryPivotEngine::partition(SourceId source) const {
  auto it = partitions_.find(source);
  return it == partitions_.end() ? nullptr : &it->second;
}

std::vector<const StorySet*> StoryPivotEngine::partitions() const {
  std::vector<SourceId> order;
  for (const SourceInfo& info : sources_) order.push_back(info.id);
  std::sort(order.begin(), order.end());
  std::vector<const StorySet*> out;
  out.reserve(order.size());
  for (SourceId source : order) out.push_back(&partitions_.at(source));
  return out;
}

size_t StoryPivotEngine::TotalStories() const {
  size_t total = 0;
  for (const auto& [source, partition] : partitions_) {
    total += partition.stories().size();
  }
  return total;
}

StorySet* StoryPivotEngine::MutablePartition(SourceId source) {
  auto it = partitions_.find(source);
  return it == partitions_.end() ? nullptr : &it->second;
}

}  // namespace storypivot
