#include "core/similarity.h"

#include <algorithm>
#include <cmath>

namespace storypivot {
namespace {
constexpr double kEps = 1e-12;

double SublinearTf(double count) {
  return count > 0.0 ? 1.0 + std::log(count) : 0.0;
}
}  // namespace

SimilarityModel::SimilarityModel(const SimilarityConfig& config,
                                 const text::DocumentFrequency* df)
    : config_(config), df_(df) {}

double SimilarityModel::IdfCosine(const text::TermVector& a,
                                  const text::TermVector& b) const {
  const bool idf = config_.use_idf && df_ != nullptr;
  auto weight = [&](text::TermId term, double count) {
    double w = SublinearTf(count);
    if (idf) w *= df_->Idf(term);
    return w;
  };
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  size_t i = 0, j = 0;
  while (i < ea.size() || j < eb.size()) {
    if (j >= eb.size() || (i < ea.size() && ea[i].first < eb[j].first)) {
      double w = weight(ea[i].first, ea[i].second);
      norm_a += w * w;
      ++i;
    } else if (i >= ea.size() || eb[j].first < ea[i].first) {
      double w = weight(eb[j].first, eb[j].second);
      norm_b += w * w;
      ++j;
    } else {
      double wa = weight(ea[i].first, ea[i].second);
      double wb = weight(eb[j].first, eb[j].second);
      dot += wa * wb;
      norm_a += wa * wa;
      norm_b += wb * wb;
      ++i;
      ++j;
    }
  }
  if (norm_a <= kEps || norm_b <= kEps) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

double SimilarityModel::SnippetSimilarity(const Snippet& a,
                                          const Snippet& b) const {
  num_comparisons_.fetch_add(1, std::memory_order_relaxed);
  double entity_sim = a.entities.WeightedJaccard(b.entities);
  double keyword_sim = IdfCosine(a.keywords, b.keywords);
  return config_.entity_weight * entity_sim +
         config_.keyword_weight * keyword_sim;
}

double SimilarityModel::SnippetStorySimilarity(const Snippet& snippet,
                                               const Story& story) const {
  num_comparisons_.fetch_add(1, std::memory_order_relaxed);
  // Entity overlap against the story histogram: use set-containment-style
  // weighted Jaccard of the snippet against the story's *support* scaled
  // to the snippet's magnitude — a plain weighted Jaccard would vanish for
  // large stories. We therefore compare against the story's histogram
  // normalised to per-snippet scale.
  double scale = story.empty() ? 1.0 : 1.0 / static_cast<double>(story.size());
  text::TermVector scaled;
  scaled.Merge(story.entities(), scale);
  double entity_sim = snippet.entities.WeightedJaccard(scaled);
  double keyword_sim = IdfCosine(snippet.keywords, story.keywords());
  return config_.entity_weight * entity_sim +
         config_.keyword_weight * keyword_sim;
}

double SimilarityModel::StorySimilarity(const Story& a,
                                        const Story& b) const {
  num_comparisons_.fetch_add(1, std::memory_order_relaxed);
  // Normalise both histograms to per-snippet scale so story size does not
  // dominate the Jaccard.
  double scale_a = a.empty() ? 1.0 : 1.0 / static_cast<double>(a.size());
  double scale_b = b.empty() ? 1.0 : 1.0 / static_cast<double>(b.size());
  text::TermVector ea, eb;
  ea.Merge(a.entities(), scale_a);
  eb.Merge(b.entities(), scale_b);
  double entity_sim = ea.WeightedJaccard(eb);
  double keyword_sim = IdfCosine(a.keywords(), b.keywords());
  return config_.entity_weight * entity_sim +
         config_.keyword_weight * keyword_sim;
}

double SimilarityModel::TemporalAffinity(Timestamp a_begin, Timestamp a_end,
                                         Timestamp b_begin, Timestamp b_end,
                                         Timestamp tolerance) {
  Timestamp overlap =
      std::min(a_end, b_end) - std::max(a_begin, b_begin);
  if (overlap >= 0) return 1.0;
  Timestamp gap = -overlap;
  if (tolerance <= 0 || gap >= tolerance) return 0.0;
  return 1.0 - static_cast<double>(gap) / static_cast<double>(tolerance);
}

}  // namespace storypivot
