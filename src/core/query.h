#ifndef STORYPIVOT_CORE_QUERY_H_
#define STORYPIVOT_CORE_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "model/ids.h"
#include "model/story.h"
#include "model/time.h"
#include "text/knowledge_base.h"

namespace storypivot {

/// The overview card of a story as rendered in the demo's "Story
/// Information" panels (Figs. 4-6): contributing sources, top entities and
/// description keywords with counts, and the time span.
struct StoryOverview {
  StoryId id = kInvalidStoryId;
  bool integrated = false;
  std::vector<std::string> source_names;
  /// (term, count) pairs, most frequent first.
  std::vector<std::pair<std::string, double>> top_entities;
  std::vector<std::pair<std::string, double>> top_keywords;
  Timestamp start_time = 0;
  Timestamp end_time = 0;
  size_t num_snippets = 0;
};

/// One row of a snippet listing (Fig. 5/6 "Snippet Information").
struct SnippetView {
  SnippetId id = kInvalidSnippetId;
  std::string source_name;
  Timestamp timestamp = 0;
  std::string event_type;
  std::string description;
  std::string document_url;
  std::vector<std::string> entities;
  std::vector<std::string> keywords;
};

/// Background context for an entity: knowledge-base facts (§3's DBpedia
/// extension) plus the stories it appears in.
struct EntityContext {
  std::string name;
  /// Empty when the knowledge base has no entry.
  std::string type;
  std::string description;
  std::vector<std::string> related;
  /// Stories (within sources) mentioning the entity, largest first.
  std::vector<StoryOverview> stories;
};

/// Read-only query layer over an engine: the lookups behind the demo's
/// exploration modules, plus entity/keyword/time-range search
/// ("queries will consist of enquiries about specified real-world events
/// or entities", §4.2).
class StoryQuery {
 public:
  /// The engine must outlive the query object.
  explicit StoryQuery(const StoryPivotEngine* engine);

  /// Attaches a knowledge base used by Context(); may be nullptr. The
  /// knowledge base must outlive the query object.
  void set_knowledge_base(const text::KnowledgeBase* kb) { kb_ = kb; }

  /// Overview cards for all stories of one source, largest first.
  std::vector<StoryOverview> SourceStories(SourceId source,
                                           size_t top_k = 5) const;

  /// Overview cards for the integrated stories of the last alignment,
  /// largest first. Requires engine->has_alignment().
  std::vector<StoryOverview> IntegratedStories(size_t top_k = 5) const;

  /// Stories (within sources) mentioning the entity, largest first.
  /// Matching is by exact canonical entity name.
  std::vector<StoryOverview> FindByEntity(std::string_view entity_name,
                                          size_t top_k = 5) const;

  /// Stories whose keyword histogram contains the (stemmed) keyword.
  std::vector<StoryOverview> FindByKeyword(std::string_view keyword,
                                           size_t top_k = 5) const;

  /// Stories containing at least one snippet of the given event type
  /// (e.g. "Accident" — the paper's tuple type field).
  std::vector<StoryOverview> FindByEventType(std::string_view event_type,
                                             size_t top_k = 5) const;

  /// Stories whose span intersects [begin, end].
  std::vector<StoryOverview> FindInTimeRange(Timestamp begin, Timestamp end,
                                             size_t top_k = 5) const;

  /// Overview card for one per-source story.
  StoryOverview Overview(const Story& story, bool integrated,
                         size_t top_k = 5) const;

  /// Time-ordered snippet views of one story.
  std::vector<SnippetView> Snippets(const Story& story) const;

  /// Single snippet view.
  SnippetView View(const Snippet& snippet) const;

  /// Knowledge-base-enriched context for an entity (§3): facts, related
  /// entities and the stories mentioning it. Works without a knowledge
  /// base (facts stay empty).
  EntityContext Context(std::string_view entity_name,
                        size_t top_k = 5) const;

 private:
  template <typename Pred>
  std::vector<StoryOverview> CollectStories(Pred&& pred, size_t top_k) const;

  const StoryPivotEngine* engine_;
  const text::KnowledgeBase* kb_ = nullptr;
};

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_QUERY_H_
