#ifndef STORYPIVOT_CORE_QUERY_H_
#define STORYPIVOT_CORE_QUERY_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "model/ids.h"
#include "model/story.h"
#include "model/time.h"
#include "text/knowledge_base.h"

namespace storypivot {

/// The overview card of a story as rendered in the demo's "Story
/// Information" panels (Figs. 4-6): contributing sources, top entities and
/// description keywords with counts, and the time span.
struct StoryOverview {
  StoryId id = kInvalidStoryId;
  bool integrated = false;
  std::vector<std::string> source_names;
  /// (term, count) pairs, most frequent first.
  std::vector<std::pair<std::string, double>> top_entities;
  std::vector<std::pair<std::string, double>> top_keywords;
  Timestamp start_time = 0;
  Timestamp end_time = 0;
  size_t num_snippets = 0;
};

/// One row of a snippet listing (Fig. 5/6 "Snippet Information").
struct SnippetView {
  SnippetId id = kInvalidSnippetId;
  std::string source_name;
  Timestamp timestamp = 0;
  std::string event_type;
  std::string description;
  std::string document_url;
  std::vector<std::string> entities;
  std::vector<std::string> keywords;
};

/// Background context for an entity: knowledge-base facts (§3's DBpedia
/// extension) plus the stories it appears in.
struct EntityContext {
  std::string name;
  /// Empty when the knowledge base has no entry.
  std::string type;
  std::string description;
  std::vector<std::string> related;
  /// Stories (within sources) mentioning the entity, largest first.
  std::vector<StoryOverview> stories;
};

/// Abstract story-lookup index: the dependency-inverted seam between the
/// core query layer and the search subsystem (sp_search implements it
/// with an inverted index; core must not depend on search). Every method
/// returns the live (source, story) pairs matching the probe — exactly
/// the stories the equivalent full scan would find, in any order; the
/// query layer orders and materializes them.
class StoryIndex {
 public:
  virtual ~StoryIndex() = default;

  /// Stories whose aggregate contains the entity term.
  virtual std::vector<std::pair<SourceId, StoryId>> StoriesWithEntity(
      text::TermId term) const = 0;

  /// Stories whose aggregate contains the keyword term.
  virtual std::vector<std::pair<SourceId, StoryId>> StoriesWithKeyword(
      text::TermId term) const = 0;

  /// Stories with at least one snippet of the given event type.
  virtual std::vector<std::pair<SourceId, StoryId>> StoriesWithEventType(
      std::string_view event_type) const = 0;

  /// Stories whose [start_time, end_time] span intersects [begin, end].
  virtual std::vector<std::pair<SourceId, StoryId>> StoriesInTimeRange(
      Timestamp begin, Timestamp end) const = 0;
};

/// Default cap on the stories a Find* call returns. `top_k` bounds the
/// terms per overview card; without a separate result cap a broad query
/// materializes a card for every matching story in the corpus.
inline constexpr size_t kDefaultMaxResults = 20;

/// Read-only query layer over an engine: the lookups behind the demo's
/// exploration modules, plus entity/keyword/time-range search
/// ("queries will consist of enquiries about specified real-world events
/// or entities", §4.2).
///
/// With an attached StoryIndex (set_index), the Find* lookups route
/// through the index instead of scanning every story of every partition;
/// results are identical either way (ids and order), which
/// set_force_scan(true) lets tests verify.
class StoryQuery {
 public:
  /// The engine must outlive the query object.
  explicit StoryQuery(const StoryPivotEngine* engine);

  /// Attaches a knowledge base used by Context(); may be nullptr. The
  /// knowledge base must outlive the query object.
  void set_knowledge_base(const text::KnowledgeBase* kb) { kb_ = kb; }

  /// Attaches a story index for the Find* lookups; nullptr reverts to
  /// scanning. The index must outlive the query object.
  void set_index(const StoryIndex* index) { index_ = index; }

  /// Forces the scan path even when an index is attached (equivalence
  /// testing).
  void set_force_scan(bool force_scan) { force_scan_ = force_scan; }

  /// Overview cards for all stories of one source, largest first.
  std::vector<StoryOverview> SourceStories(SourceId source,
                                           size_t top_k = 5) const;

  /// Overview cards for the integrated stories of the last alignment,
  /// largest first. Requires engine->has_alignment().
  std::vector<StoryOverview> IntegratedStories(size_t top_k = 5) const;

  /// Stories (within sources) mentioning the entity, largest first (at
  /// most max_results of them). The query is canonicalized the same way
  /// ingest is: exact canonical name, then gazetteer alias ("MH17" finds
  /// the canonical entity it aliases), then case-insensitive match.
  std::vector<StoryOverview> FindByEntity(
      std::string_view entity_name, size_t top_k = 5,
      size_t max_results = kDefaultMaxResults) const;

  /// Stories whose keyword histogram contains the keyword, largest first
  /// (at most max_results). The query is stemmed like ingested text, so
  /// surface forms ("bombing") match the stored stem ("bomb").
  std::vector<StoryOverview> FindByKeyword(
      std::string_view keyword, size_t top_k = 5,
      size_t max_results = kDefaultMaxResults) const;

  /// Stories containing at least one snippet of the given event type
  /// (e.g. "Accident" — the paper's tuple type field), largest first (at
  /// most max_results).
  std::vector<StoryOverview> FindByEventType(
      std::string_view event_type, size_t top_k = 5,
      size_t max_results = kDefaultMaxResults) const;

  /// Stories whose span intersects [begin, end], largest first (at most
  /// max_results).
  std::vector<StoryOverview> FindInTimeRange(
      Timestamp begin, Timestamp end, size_t top_k = 5,
      size_t max_results = kDefaultMaxResults) const;

  /// Overview card for one per-source story.
  StoryOverview Overview(const Story& story, bool integrated,
                         size_t top_k = 5) const;

  /// Time-ordered snippet views of one story.
  std::vector<SnippetView> Snippets(const Story& story) const;

  /// Single snippet view.
  SnippetView View(const Snippet& snippet) const;

  /// Knowledge-base-enriched context for an entity (§3): facts, related
  /// entities and the stories mentioning it. Works without a knowledge
  /// base (facts stay empty).
  EntityContext Context(std::string_view entity_name,
                        size_t top_k = 5) const;

 private:
  template <typename Pred>
  std::vector<StoryOverview> CollectStories(Pred&& pred, size_t top_k,
                                            size_t max_results) const;

  /// Orders index hits like the scan path (size desc, id asc), truncates
  /// to max_results, and materializes only the survivors' cards.
  std::vector<StoryOverview> MaterializeHits(
      std::vector<std::pair<SourceId, StoryId>> hits, size_t top_k,
      size_t max_results) const;

  bool use_index() const { return index_ != nullptr && !force_scan_; }

  const StoryPivotEngine* engine_;
  const text::KnowledgeBase* kb_ = nullptr;
  const StoryIndex* index_ = nullptr;
  bool force_scan_ = false;
};

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_QUERY_H_
