#include "core/parallel_ingest.h"

#include "sketch/minhash.h"
#include "util/logging.h"
#include "util/timer.h"

namespace storypivot {

void ParallelIngestor::RunShard(const IngestShard& shard,
                                const SnippetStore& store,
                                IngestShardResult* result) const {
  SP_CHECK(shard.partition != nullptr);
  WallTimer timer;
  StoryId cursor = shard.story_id_begin;
  const StoryId block_end = shard.story_id_begin + shard.snippets.size();
  result->assigned.reserve(shard.snippets.size());
  for (const Snippet* snippet : shard.snippets) {
    SP_CHECK(snippet != nullptr);
    StoryId assigned = identifier_->Identify(*snippet, shard.partition, store,
                                             shard.sketches, &cursor);
    SP_CHECK(cursor <= block_end);
    result->assigned.push_back(assigned);
    if (shard.sketches != nullptr) {
      // Mirrors the serial AddSnippet order: the snippet becomes an LSH
      // candidate only after its own identification.
      MinHashSignature sig = MinHashSignature::FromContent(
          snippet->entities, snippet->keywords, shard.sketches->num_hashes);
      shard.sketches->lsh.Insert(snippet->id, sig);
      shard.sketches->signatures.emplace(snippet->id, std::move(sig));
    }
  }
  result->identify_time_ms = timer.ElapsedMillis();
}

std::vector<IngestShardResult> ParallelIngestor::Run(
    const std::vector<IngestShard>& shards, const SnippetStore& store) const {
  std::vector<IngestShardResult> results(shards.size());
  if (shards.empty()) return results;
  if (pool_ == nullptr || pool_->num_threads() <= 1 || shards.size() == 1) {
    for (size_t i = 0; i < shards.size(); ++i) {
      RunShard(shards[i], store, &results[i]);
    }
    return results;
  }
  // One chunk per shard: a shard is the unit of sequential work, and
  // sources are few — finer decomposition is impossible without changing
  // identification semantics.
  pool_->ParallelFor(shards.size(), shards.size(),
                     [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         RunShard(shards[i], store, &results[i]);
                       }
                     });
  return results;
}

}  // namespace storypivot
