#include "core/aligner.h"

#include <algorithm>
#include <limits>

#include "sketch/lsh_index.h"
#include "sketch/minhash.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace storypivot {
namespace {

uint64_t MemberKey(SourceId source, StoryId story) {
  return (static_cast<uint64_t>(source) << 48) ^ story;
}

/// Union-find over story node indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

struct StoryNode {
  SourceId source = kInvalidSourceId;
  StoryId story = kInvalidStoryId;
  const Story* ptr = nullptr;
};

/// Below this many nodes the parallel fan-out costs more than it saves.
constexpr size_t kMinParallelNodes = 64;

/// Chunks-per-thread for pair scoring. Row i of the triangular all-pairs
/// loop scores n - i - 1 pairs, so equal-row chunks are imbalanced;
/// over-decomposing lets the shared queue even the load out.
constexpr size_t kChunksPerThread = 8;

}  // namespace

size_t AlignmentResult::IndexOfMember(SourceId source, StoryId id) const {
  auto it = member_index.find(MemberKey(source, id));
  return it == member_index.end() ? std::numeric_limits<size_t>::max()
                                  : it->second;
}

double StoryAligner::StoryPairScore(const Story& a, const Story& b) const {
  double affinity = SimilarityModel::TemporalAffinity(
      a.start_time(), a.end_time(), b.start_time(), b.end_time(),
      config_.temporal_tolerance);
  if (affinity <= 0.0) return 0.0;
  return affinity * model_->StorySimilarity(a, b);
}

AlignmentResult StoryAligner::Align(
    const std::vector<const StorySet*>& partitions, const SnippetStore& store,
    StoryId* next_story_id, ThreadPool* pool) const {
  SP_CHECK(next_story_id != nullptr);
  AlignmentResult result;

  // Collect all story nodes.
  std::vector<StoryNode> nodes;
  for (const StorySet* partition : partitions) {
    SP_CHECK(partition != nullptr);
    for (const auto& [id, story] : partition->stories()) {
      if (story.empty()) continue;
      nodes.push_back({partition->source(), id, &story});
    }
  }
  const size_t n = nodes.size();
  UnionFind uf(n);

  // Candidate pair generation: all cross-source pairs for small inputs,
  // LSH over story sketches otherwise. Either way candidates of row i are
  // the pairs (i, j) with j > i, so rows can be scored independently.
  const bool lsh_mode = (config_.use_lsh && n > config_.lsh_min_stories) ||
                        n > config_.all_pairs_limit;
  LshIndex lsh(16, 4);
  std::vector<MinHashSignature> sigs;
  const bool parallel =
      pool != nullptr && pool->num_threads() > 1 && n >= kMinParallelNodes;
  if (lsh_mode) {
    sigs.resize(n);
    // Sketch construction is per-node pure work; build sketches in
    // parallel (disjoint writes), then fill the index serially.
    auto build = [&](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        sigs[i] = MinHashSignature::FromContent(nodes[i].ptr->entities(),
                                                nodes[i].ptr->keywords(),
                                                config_.sketch_hashes);
      }
    };
    if (parallel) {
      pool->ParallelFor(n, pool->num_threads() * kChunksPerThread, build);
    } else {
      build(0, 0, n);
    }
    for (size_t i = 0; i < n; ++i) lsh.Insert(i, sigs[i]);
  }

  // Scores every candidate pair of rows [begin, end), appending edges at
  // or above the alignment threshold to `edges` in (i, j) order.
  auto score_rows = [&](size_t begin, size_t end,
                        std::vector<std::pair<size_t, size_t>>* edges,
                        uint64_t* scored) {
    auto consider = [&](size_t i, size_t j) {
      if (i == j) return;
      if (!config_.allow_same_source_merge &&
          nodes[i].source == nodes[j].source) {
        return;
      }
      ++*scored;
      if (StoryPairScore(*nodes[i].ptr, *nodes[j].ptr) >=
          config_.align_threshold) {
        edges->push_back({i, j});
      }
    };
    for (size_t i = begin; i < end; ++i) {
      if (lsh_mode) {
        std::vector<uint64_t> candidates = lsh.Query(sigs[i]);
        std::sort(candidates.begin(), candidates.end());
        for (uint64_t j : candidates) {
          if (j > i) consider(i, static_cast<size_t>(j));
        }
      } else {
        for (size_t j = i + 1; j < n; ++j) consider(i, j);
      }
    }
  };

  if (parallel) {
    // Fan pair scoring out over fixed row chunks; per-chunk edge lists
    // merge in chunk order, so the union sequence — and with it the
    // entire result — matches the serial path bit for bit.
    const size_t num_chunks = pool->num_threads() * kChunksPerThread;
    std::vector<std::vector<std::pair<size_t, size_t>>> chunk_edges(
        std::min(num_chunks, n));
    std::vector<uint64_t> chunk_scored(chunk_edges.size(), 0);
    pool->ParallelFor(n, num_chunks,
                      [&](size_t chunk, size_t begin, size_t end) {
                        score_rows(begin, end, &chunk_edges[chunk],
                                   &chunk_scored[chunk]);
                      });
    for (size_t c = 0; c < chunk_edges.size(); ++c) {
      result.num_pairs_scored += chunk_scored[c];
      for (const auto& [i, j] : chunk_edges[c]) uf.Union(i, j);
    }
  } else {
    std::vector<std::pair<size_t, size_t>> edges;
    score_rows(0, n, &edges, &result.num_pairs_scored);
    for (const auto& [i, j] : edges) uf.Union(i, j);
  }

  // Build integrated stories from the union-find components.
  std::unordered_map<size_t, size_t> component_index;
  for (size_t i = 0; i < n; ++i) {
    size_t root = uf.Find(i);
    auto [it, inserted] =
        component_index.emplace(root, result.stories.size());
    if (inserted) {
      IntegratedStory integrated;
      integrated.id = (*next_story_id)++;
      integrated.merged.set_id(integrated.id);
      result.stories.push_back(std::move(integrated));
    }
    IntegratedStory& integrated = result.stories[it->second];
    integrated.members.push_back({nodes[i].source, nodes[i].story});
    integrated.merged.MergeFrom(*nodes[i].ptr);
    result.member_index[MemberKey(nodes[i].source, nodes[i].story)] =
        it->second;
    for (SnippetId sid : nodes[i].ptr->snippets()) {
      result.integrated_of[sid] = it->second;
    }
  }
  for (IntegratedStory& integrated : result.stories) {
    std::sort(integrated.members.begin(), integrated.members.end());
  }

  ClassifySnippetRoles(*model_, config_, store, &result, pool);
  return result;
}

void ClassifySnippetRoles(const SimilarityModel& model,
                          const AlignmentConfig& config,
                          const SnippetStore& store,
                          AlignmentResult* result, ThreadPool* pool) {
  result->roles.clear();
  result->counterpart.clear();
  const size_t n = result->stories.size();
  if (pool == nullptr || pool->num_threads() <= 1 || n < kMinParallelNodes) {
    for (const IntegratedStory& integrated : result->stories) {
      ClassifyIntegratedStory(model, config, store, integrated,
                              &result->roles, &result->counterpart);
    }
    return;
  }
  // Every snippet belongs to exactly one integrated story, so per-story
  // classification writes disjoint key sets; classify concurrently into
  // per-story maps and merge in story order.
  std::vector<std::unordered_map<SnippetId, SnippetRole>> roles(n);
  std::vector<std::unordered_map<SnippetId, SnippetId>> counterparts(n);
  pool->ParallelFor(n, pool->num_threads() * kChunksPerThread,
                    [&](size_t, size_t begin, size_t end) {
                      for (size_t s = begin; s < end; ++s) {
                        ClassifyIntegratedStory(model, config, store,
                                                result->stories[s], &roles[s],
                                                &counterparts[s]);
                      }
                    });
  for (size_t s = 0; s < n; ++s) {
    result->roles.merge(roles[s]);
    for (const auto& [sid, other] : counterparts[s]) {
      result->counterpart.emplace(sid, other);
    }
  }
}

void ClassifyIntegratedStory(
    const SimilarityModel& model, const AlignmentConfig& config,
    const SnippetStore& store, const IntegratedStory& integrated,
    std::unordered_map<SnippetId, SnippetRole>* roles,
    std::unordered_map<SnippetId, SnippetId>* counterpart) {
  // A snippet is aligning when a counterpart from another source exists
  // inside the same integrated story, within pair_tolerance and above
  // pair_threshold. Snippets are walked in time order so only a bounded
  // window of predecessors is compared.
  struct TimedSnippet {
    Timestamp ts;
    const Snippet* snippet;
  };
  std::vector<TimedSnippet> members;
  members.reserve(integrated.merged.size());
  for (SnippetId sid : integrated.merged.snippets()) {
    const Snippet* s = store.Find(sid);
    SP_CHECK(s != nullptr);
    members.push_back({s->timestamp, s});
  }
  std::sort(members.begin(), members.end(),
            [](const TimedSnippet& a, const TimedSnippet& b) {
              return a.ts < b.ts;
            });
  std::unordered_map<SnippetId, double> best_pair_score;
  for (size_t i = 0; i < members.size(); ++i) {
    const Snippet& a = *members[i].snippet;
    for (size_t j = i + 1; j < members.size(); ++j) {
      const Snippet& b = *members[j].snippet;
      if (b.timestamp - a.timestamp > config.pair_tolerance) break;
      if (a.source == b.source) continue;
      double s = model.SnippetSimilarity(a, b);
      if (s < config.pair_threshold) continue;
      auto update = [&](const Snippet& x, const Snippet& y) {
        auto [it, inserted] = best_pair_score.emplace(x.id, s);
        if (inserted || s > it->second) {
          it->second = s;
          (*counterpart)[x.id] = y.id;
        }
      };
      update(a, b);
      update(b, a);
    }
  }
  for (const TimedSnippet& member : members) {
    SnippetId sid = member.snippet->id;
    (*roles)[sid] = counterpart->contains(sid) ? SnippetRole::kAligning
                                               : SnippetRole::kEnriching;
  }
}

}  // namespace storypivot
