#ifndef STORYPIVOT_CORE_SNAPSHOT_H_
#define STORYPIVOT_CORE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "core/engine.h"
#include "util/status.h"

namespace storypivot {

/// Serialises an engine's detection state — sources, vocabularies, and
/// every snippet together with its per-source story assignment — to a
/// versioned TSV format. This is how the demonstration serves precomputed
/// large-scale results (§4.2.2): run detection offline, snapshot, and let
/// the interactive frontend load the snapshot instantly.
///
/// The alignment result is not persisted: it is derived state and is
/// recomputed with one `Align()` call after loading (cheap relative to
/// identification).
[[nodiscard]] std::string SaveSnapshot(const StoryPivotEngine& engine);

/// Writes `SaveSnapshot(engine)` to `path`.
[[nodiscard]] Status SaveSnapshotToFile(const StoryPivotEngine& engine,
                                        const std::string& path);

/// Reconstructs an engine from snapshot `contents`, using `config` for
/// all runtime knobs (the snapshot stores state, not configuration).
/// Story ids and snippet ids are preserved; source ids may be remapped
/// (names are authoritative).
[[nodiscard]] Result<std::unique_ptr<StoryPivotEngine>> LoadSnapshot(
    const std::string& contents, EngineConfig config = {});

/// Reads and reconstructs from a file.
[[nodiscard]] Result<std::unique_ptr<StoryPivotEngine>> LoadSnapshotFromFile(
    const std::string& path, EngineConfig config = {});

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_SNAPSHOT_H_
