#ifndef STORYPIVOT_CORE_SNAPSHOT_H_
#define STORYPIVOT_CORE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "util/status.h"

namespace storypivot {

/// Serialises an engine's detection state — sources, vocabularies,
/// gazetteer aliases, and every snippet together with its per-source
/// story assignment — to a versioned TSV format (current version: v2).
/// This is how the demonstration serves precomputed large-scale results
/// (§4.2.2): run detection offline, snapshot, and let the interactive
/// frontend load the snapshot instantly. It is also the checkpoint format
/// of the durability subsystem (DESIGN.md §10).
///
/// The output is canonical: two engines with identical state serialise to
/// identical bytes, and Save(Load(Save(e))) == Save(e) byte for byte.
///
/// The alignment result is not persisted: it is derived state and is
/// recomputed with one `Align()` call after loading (cheap relative to
/// identification).
[[nodiscard]] std::string SaveSnapshot(const StoryPivotEngine& engine);

/// Atomically writes `SaveSnapshot(engine)` to `path` (temp file + fsync
/// + rename): a crash mid-save leaves the previous snapshot intact, never
/// a torn file.
[[nodiscard]] Status SaveSnapshotToFile(const StoryPivotEngine& engine,
                                        const std::string& path);

/// Reconstructs an engine from snapshot `contents`, using `config` for
/// all runtime knobs (the snapshot stores state, not configuration).
/// Source, story and snippet ids are all preserved verbatim — write-ahead
///-log records replayed on top of a loaded checkpoint reference them —
/// and future automatically assigned ids stay clear of adopted ones.
/// Accepts v1 (no gazetteer rows) and v2 snapshots.
[[nodiscard]] Result<std::unique_ptr<StoryPivotEngine>> LoadSnapshot(
    const std::string& contents, EngineConfig config = {});

/// Reads and reconstructs from a file.
[[nodiscard]] Result<std::unique_ptr<StoryPivotEngine>> LoadSnapshotFromFile(
    const std::string& path, EngineConfig config = {});

/// Order-independent 64-bit fingerprint of the engine's detection state:
/// every (source, snippet, story) assignment triple. Two engines with the
/// same fingerprint hold the same per-source story partitions. Used by
/// the parallel-determinism bench and the crash-recovery test harness to
/// compare a recovered engine against a freshly built one.
[[nodiscard]] uint64_t EngineStateFingerprint(const StoryPivotEngine& engine);

/// Composite fingerprint of several engines holding disjoint slices of
/// one logical corpus (the shards of a ShardedEngine): hashes the merged,
/// sorted triple set, so an N-shard deployment fingerprints identically
/// to a 1-shard engine with the same assignments (DESIGN.md §16).
[[nodiscard]] uint64_t EngineStateFingerprint(
    const std::vector<const StoryPivotEngine*>& engines);

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_SNAPSHOT_H_
