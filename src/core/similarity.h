#ifndef STORYPIVOT_CORE_SIMILARITY_H_
#define STORYPIVOT_CORE_SIMILARITY_H_

#include <atomic>
#include <cstdint>

#include "model/snippet.h"
#include "model/story.h"
#include "text/term_vector.h"
#include "text/tfidf.h"

namespace storypivot {

/// Weights and thresholds of the snippet/story similarity model shared by
/// story identification, alignment and refinement.
struct SimilarityConfig {
  /// Weight of entity overlap (weighted Jaccard over entity histograms).
  double entity_weight = 0.55;
  /// Weight of keyword similarity (IDF-weighted cosine).
  double keyword_weight = 0.45;
  /// Use corpus IDF statistics to weigh keywords; when false, plain
  /// sublinear-TF cosine is used.
  bool use_idf = true;
  /// A snippet joins its best story when the blended score reaches this.
  double assign_threshold = 0.30;
  /// Two existing stories bridged by one snippet merge when both score at
  /// least this (incremental merge, §2.2 / incremental record linkage).
  double merge_threshold = 0.55;
  /// Blend between the best member-snippet score (1 - blend) and the
  /// story-centroid score (blend) when scoring a snippet against a story.
  double centroid_blend = 0.3;
};

/// Stateless scoring functions over snippets and stories, parameterised by
/// a SimilarityConfig and backed by streaming document-frequency
/// statistics. Counts every pairwise comparison so benches can report the
/// work done by each identification mode.
class SimilarityModel {
 public:
  /// `df` may be nullptr, in which case IDF weighting is disabled
  /// regardless of the config.
  SimilarityModel(const SimilarityConfig& config,
                  const text::DocumentFrequency* df);

  const SimilarityConfig& config() const { return config_; }

  /// Content similarity of two snippets in [0, 1]:
  /// entity_weight * WeightedJaccard(entities) +
  /// keyword_weight * IdfCosine(keywords).
  double SnippetSimilarity(const Snippet& a, const Snippet& b) const;

  /// Content similarity between a snippet and a story's aggregate
  /// histograms (the story "centroid").
  double SnippetStorySimilarity(const Snippet& snippet,
                                const Story& story) const;

  /// Content similarity between two stories' aggregates.
  double StorySimilarity(const Story& a, const Story& b) const;

  /// IDF-weighted cosine over keyword count vectors. Weights are
  /// (1 + ln tf) * idf(term), with norms computed on the fly so the
  /// current corpus statistics always apply.
  double IdfCosine(const text::TermVector& a, const text::TermVector& b)
      const;

  /// Temporal affinity of two time intervals in [0, 1]: 1 when they
  /// overlap, linearly decaying to 0 as the gap grows to `tolerance`
  /// seconds (§2.3: stories only align when their evolution overlaps).
  static double TemporalAffinity(Timestamp a_begin, Timestamp a_end,
                                 Timestamp b_begin, Timestamp b_end,
                                 Timestamp tolerance);

  /// The document-frequency statistics backing IDF weighting (may be
  /// nullptr). Exposed so incremental consumers can detect IDF drift.
  const text::DocumentFrequency* document_frequency() const { return df_; }

  /// Number of pairwise similarity evaluations since construction. The
  /// counter is a relaxed atomic: scoring methods are const and run
  /// concurrently from the parallel ingestion/alignment paths, so a plain
  /// counter would be a data race. Relaxed ordering suffices — the count
  /// is only read from serial sections (benches, stats).
  ///
  /// Deliberately NOT `SP_GUARDED_BY` any capability (DESIGN.md §13):
  /// an atomic needs no lock, and guarding it by the engine's serial
  /// role would wrongly forbid exactly the concurrent scoring paths the
  /// atomic exists for. The same reasoning covers `ResetCounters`,
  /// which callers invoke only between phases.
  uint64_t num_comparisons() const {
    return num_comparisons_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    num_comparisons_.store(0, std::memory_order_relaxed);
  }

 private:
  SimilarityConfig config_;
  const text::DocumentFrequency* df_;
  mutable std::atomic<uint64_t> num_comparisons_{0};
};

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_SIMILARITY_H_
