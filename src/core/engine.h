#ifndef STORYPIVOT_CORE_ENGINE_H_
#define STORYPIVOT_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/aligner.h"
#include "core/identifier.h"
#include "core/incremental.h"
#include "core/refiner.h"
#include "core/similarity.h"
#include "core/story_set.h"
#include "model/document.h"
#include "model/snippet.h"
#include "storage/snippet_store.h"
#include "text/annotator.h"
#include "text/gazetteer.h"
#include "text/tfidf.h"
#include "text/vocabulary.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace storypivot {

/// Full engine configuration.
struct EngineConfig {
  /// Story-identification execution mode (Fig. 2).
  IdentificationMode mode = IdentificationMode::kTemporal;
  IdentifierConfig identifier;
  SimilarityConfig similarity;
  AlignmentConfig alignment;
  RefinementConfig refinement;
  /// Maintain the cross-source alignment incrementally: Align() after a
  /// mutation only re-scores the stories that changed (§2.4 dynamics)
  /// instead of recomputing all story pairs.
  bool incremental_alignment = false;
  /// Maintain per-source snippet MinHash sketches + LSH (needed when
  /// identifier.use_sketch_candidates is set; also usable on its own for
  /// duplicate probing).
  bool use_sketches = false;
  size_t sketch_hashes = 64;
  /// Worker threads for the engine-internal parallel paths: batch
  /// ingestion (AddSnippets) and alignment pair scoring. 1 keeps the
  /// engine fully serial (no pool is created); results are bit-identical
  /// for every value (DESIGN.md §9).
  size_t num_threads = 1;
};

/// Engine configuration tuned for raw news prose ingested through
/// AddDocument. Real paragraph text has far more diverse vocabulary than
/// curated event annotations, so the similarity thresholds sit lower and
/// the identification window wider than the synthetic-snippet defaults.
EngineConfig NewsProseEngineConfig();

/// Cumulative engine counters (work and wall-clock per phase).
struct EngineStats {
  uint64_t snippets_ingested = 0;
  uint64_t snippets_removed = 0;
  uint64_t documents_ingested = 0;
  uint64_t alignments_run = 0;
  uint64_t refinements_run = 0;
  double identify_time_ms = 0.0;
  double align_time_ms = 0.0;
  double refine_time_ms = 0.0;
};

class StoryPivotEngine;

/// Observer of the engine's snippet-level mutations, implemented by
/// external index maintainers (the search subsystem keeps its inverted
/// index in sync through it). Callbacks fire only from the engine's
/// serial sections, after a snippet is fully part of the engine state
/// (or fully removed), in a deterministic order: arrival order for
/// batches, reverse-arrival order for rollbacks. Story merges and splits
/// deliberately have no callback — snippet membership is the only state
/// an observer can rely on, and story-level views must resolve
/// snippet -> story assignments live (DESIGN.md §11 explains why this is
/// what makes observer-maintained indexes deterministic). Implementations
/// must not call back into the engine's mutating API.
class IngestObserver {
 public:
  virtual ~IngestObserver() = default;
  virtual void OnSnippetAdded(const Snippet& snippet) = 0;
  virtual void OnSnippetRemoved(const Snippet& snippet) = 0;

  /// The engine object this observer was attached to has been REPLACED
  /// wholesale by `engine` — DurableEngine::Reopen rebuilds a fresh
  /// StoryPivotEngine from the checkpoint + WAL and re-attaches the old
  /// engine's observer to it. Implementations must drop every pointer
  /// into the old engine (it is about to be destroyed) and rebuild any
  /// derived state from `engine`; the default ignores the event, which
  /// is only correct for observers that keep no engine-derived state.
  /// Fires from the replacing serial section, like the other hooks.
  virtual void OnEngineReplaced(StoryPivotEngine* engine) { (void)engine; }
};

/// STORYPIVOT — the façade over extraction, story identification, story
/// alignment and refinement (§2.1, Fig. 1). Usage:
///
///   StoryPivotEngine engine;                      // temporal mode, w=7d
///   SourceId nyt = engine.RegisterSource("NYT");
///   engine.gazetteer()->AddEntity("Ukraine");     // seed extraction
///   engine.AddDocument(doc);                      // raw text path, or
///   engine.AddSnippet(snippet);                   // pre-annotated path
///   const AlignmentResult& aligned = engine.Align();
///   engine.Refine();                              // propagate corrections
///
/// Threading model (DESIGN.md §9): the public API is single-writer —
/// callers must not invoke mutating methods concurrently, and const
/// methods are safe to call concurrently only in the absence of writers.
/// Parallelism lives *inside* the engine: with `config.num_threads > 1`,
/// AddSnippets() shards each batch by source and identifies stories
/// concurrently (identification is per-source, §2.2 / Fig. 1b), and
/// Align() fans story-pair scoring out across the pool (§2.3). Both
/// parallel paths are deterministic — the result is bit-identical for
/// every thread count, including the serial num_threads == 1 path.
///
/// The single-writer discipline is machine-checked (DESIGN.md §13): the
/// phantom capability `serial_` models the engine's SERIAL SECTION, the
/// state only that section may touch is `SP_GUARDED_BY(serial_)`, and
/// the observer hooks are `SP_REQUIRES(serial_)` — so under Clang's
/// thread-safety analysis a parallel-path worker (or any future reader
/// thread) that touches serial-only state or fires an observer callback
/// fails to COMPILE. Fields the parallel phases do read concurrently
/// (`store_`, `df_`, `similarity_`, per-shard partitions) are documented
/// in the §13 capability table instead of guarded.
class StoryPivotEngine {
 public:
  explicit StoryPivotEngine(EngineConfig config = {});

  StoryPivotEngine(const StoryPivotEngine&) = delete;
  StoryPivotEngine& operator=(const StoryPivotEngine&) = delete;

  // --- Sources ----------------------------------------------------------

  /// Registers a data source and returns its id.
  SourceId RegisterSource(const std::string& name);

  /// Registers a source under a caller-chosen id, used when replicating
  /// another engine's state (snapshot load, WAL replay): source ids in
  /// persisted records must stay valid verbatim. Future RegisterSource
  /// ids stay clear of adopted ones. Fails when the id is taken.
  [[nodiscard]] Status AdoptSource(SourceId id, const std::string& name);

  /// Removes a source with all its snippets and stories (§2.4: "any story
  /// detection system should allow the addition or removal of data
  /// sources").
  [[nodiscard]] Status RemoveSource(SourceId source);

  const std::vector<SourceInfo>& sources() const { return sources_; }

  /// Name of a source ("<unknown>" if absent).
  const std::string& SourceName(SourceId source) const;

  // --- Extraction hooks --------------------------------------------------

  /// The entity gazetteer backing document extraction. Seed it with the
  /// entities of your domain before adding raw documents.
  text::Gazetteer* gazetteer() { return &gazetteer_; }
  const text::Gazetteer& gazetteer() const { return gazetteer_; }

  /// Imports the terms of externally built vocabularies (e.g. a generated
  /// corpus) in id order, so pre-annotated snippets can be ingested with
  /// their TermIds intact. Call before interning anything else; fails when
  /// existing ids conflict.
  [[nodiscard]] Status ImportVocabularies(const text::Vocabulary& entities,
                                          const text::Vocabulary& keywords);

  text::Vocabulary* entity_vocabulary() { return &entity_vocab_; }
  text::Vocabulary* keyword_vocabulary() { return &keyword_vocab_; }
  const text::Vocabulary& entity_vocabulary() const { return entity_vocab_; }
  const text::Vocabulary& keyword_vocabulary() const {
    return keyword_vocab_;
  }

  // --- Ingest ------------------------------------------------------------

  /// Extracts one snippet per paragraph of `document` (annotated with the
  /// document title for context) and runs story identification on each.
  /// Returns the new snippet ids.
  [[nodiscard]] Result<std::vector<SnippetId>> AddDocument(
      const Document& document);

  /// Ingests a pre-annotated snippet. Assigns an id when the snippet has
  /// none. The snippet's source must be registered.
  [[nodiscard]] Result<SnippetId> AddSnippet(Snippet snippet);

  /// Ingests a batch of pre-annotated snippets, identifying stories for
  /// distinct sources concurrently when the engine has a thread pool
  /// (config.num_threads > 1). Batch semantics differ from a loop of
  /// AddSnippet calls in one documented way: document-frequency
  /// statistics are updated for the whole batch up front (store and DF
  /// writes are serialized in arrival order) before any identification
  /// runs, which makes the outcome independent of how sources interleave
  /// — and therefore identical for every thread count. The batch is
  /// all-or-nothing: on any failure the engine state is rolled back and
  /// no snippet of the batch remains. Returns the new ids in input order.
  [[nodiscard]] Result<std::vector<SnippetId>> AddSnippets(
      std::vector<Snippet> snippets);

  /// Inserts a snippet directly into the given story of its source,
  /// bypassing story identification. Used to warm-start an engine from a
  /// snapshot of a previous run (§4.2.2: precomputed large-scale results)
  /// or to replicate another engine's state. The story is created if it
  /// does not exist; `snippet.id` may be pre-assigned.
  [[nodiscard]] Result<SnippetId> AdoptAssignment(Snippet snippet,
                                                  StoryId story);

  /// Removes every snippet extracted from `url`, with story split checks.
  [[nodiscard]] Status RemoveDocument(const std::string& url);

  /// Removes one snippet, split-checking its story.
  [[nodiscard]] Status RemoveSnippet(SnippetId id);

  // --- Alignment & refinement --------------------------------------------

  /// Runs (or re-runs) story alignment across all sources and returns the
  /// result. The result stays valid until the next mutation.
  const AlignmentResult& Align();

  /// True when an up-to-date alignment result is available.
  bool has_alignment() const {
    serial_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return alignment_.has_value() && !stale_;
  }

  /// Last alignment result; requires has_alignment().
  const AlignmentResult& alignment() const;

  /// One refinement pass using the current alignment (computing it if
  /// needed), then re-aligns. Returns what the pass changed.
  RefinementStats Refine();

  // --- Introspection -----------------------------------------------------

  /// Per-source story partition; nullptr for unknown sources.
  const StorySet* partition(SourceId source) const;

  /// All partitions, ordered by source id.
  std::vector<const StorySet*> partitions() const;

  const SnippetStore& store() const { return store_; }
  const SimilarityModel& similarity() const { return similarity_; }
  const text::DocumentFrequency& document_frequency() const { return df_; }
  const EngineConfig& config() const { return config_; }
  const EngineStats& stats() const {
    serial_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return stats_;
  }

  /// Total stories across all per-source partitions.
  size_t TotalStories() const;

  /// Stories touched since the last alignment (incremental mode only;
  /// empty otherwise). Exposed for diagnostics and tests.
  const std::vector<std::pair<SourceId, StoryId>>& dirty_stories() const {
    serial_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return dirty_stories_;
  }

  /// Attaches (or, with nullptr, detaches) the single snippet-mutation
  /// observer. The observer sees every snippet already in the engine via
  /// no replay — attach before ingesting, or rebuild from store() first
  /// (the search subsystem does the latter). The observer must outlive
  /// its registration.
  void set_ingest_observer(IngestObserver* observer) {
    serial_.AssertInSection();  // Attaching is a serial-section mutation.
    observer_ = observer;
  }
  IngestObserver* ingest_observer() const {
    serial_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return observer_;
  }

  /// The engine's monotone id counters. Snapshots persist them so a
  /// restored engine allocates the SAME future ids as the original would
  /// have — removals leave gaps that max()+1 inference cannot see, and
  /// exact id continuation is what makes WAL replay after a checkpoint
  /// restore deterministic (DESIGN.md §10).
  struct IdCounters {
    SourceId next_source = 0;
    SnippetId next_snippet = 0;
    StoryId next_story = 0;
  };
  [[nodiscard]] IdCounters id_counters() const;

  /// Fast-forwards the id counters when restoring a snapshot. Counters
  /// only move forward; a value below the current one is an error.
  [[nodiscard]] Status AdoptIdCounters(const IdCounters& counters);

  // --- Shard-replica hooks (src/shard, DESIGN.md §16) --------------------
  //
  // A sharded deployment keeps every shard's document-frequency table
  // and id counters in LOCKSTEP with the global op stream while each
  // shard stores only its own sources' snippets. The methods below are
  // the replication primitives the shard coordinator logs: they apply
  // the global side effects of an operation whose snippets live on
  // other shards, without running identification or scoring here.

  /// Applies document-frequency deltas for snippets owned elsewhere:
  /// one AddDocument per vector in `added`, one RemoveDocument per
  /// vector in `removed` (DF updates are count-based, hence
  /// commutative — order across shards does not matter).
  void ApplyDocumentFrequencyDelta(
      const std::vector<text::TermVector>& added,
      const std::vector<text::TermVector>& removed);

  /// A batch ingest whose global decisions (snippet ids, per-source
  /// story-id blocks) were made by a coordinator simulating
  /// AddSnippets' id assignment over the WHOLE batch. A shard applies
  /// only its own snippets — plus the foreign snippets' keyword
  /// supports, so DF stays in global lockstep — and fast-forwards its
  /// counters to the post-batch values.
  struct PlannedIngest {
    /// This shard's snippets, arrival order, ids pre-assigned.
    std::vector<Snippet> snippets;
    /// (source, first story id) per distinct own source, ascending by
    /// source — the slice of the batch's global story-id block layout
    /// owned here.
    std::vector<std::pair<SourceId, StoryId>> story_blocks;
    /// Keyword supports of the batch's foreign snippets (DF-only).
    std::vector<text::TermVector> foreign_keywords;
    /// Global id counters after the whole batch.
    IdCounters post;
  };

  /// Applies a planned batch: inserts own snippets + DF in arrival
  /// order, applies foreign DF, identifies stories per own source with
  /// the planned story-id blocks (deterministic — same result as the
  /// batch run on an unsharded engine), then adopts `plan.post`.
  /// Validation failures reject the whole batch with no state change.
  [[nodiscard]] Status ApplyPlannedIngest(const PlannedIngest& plan);

  /// Replays refinement-journal entries (all of which must target
  /// sources registered here, with their snippets in this engine's
  /// store) — the primitive moves/splits a coordinator's refinement
  /// pass executed, with explicit story ids. See RefinementJournal.
  [[nodiscard]] Status ApplyRefinementJournal(
      const RefinementJournal& journal);

 private:
  StorySet* MutablePartition(SourceId source);
  void RemoveSnippetInternal(const Snippet& snippet, bool split_check)
      SP_REQUIRES(serial_);

  // SP_REQUIRES(serial_) is the compile-time form of the IngestObserver
  // contract: callbacks fire only from the engine's serial sections.
  // Code that has not declared itself serial cannot call these.
  void NotifyAdded(const Snippet& snippet) SP_REQUIRES(serial_) {
    if (observer_ != nullptr) observer_->OnSnippetAdded(snippet);
  }
  void NotifyRemoved(const Snippet& snippet) SP_REQUIRES(serial_) {
    if (observer_ != nullptr) observer_->OnSnippetRemoved(snippet);
  }

  /// Unwinds snippets inserted by a failed multi-snippet operation
  /// (AddDocument / AddSnippets), newest first, so the operation is
  /// all-or-nothing. Stories bridged only by rolled-back snippets are
  /// split back by the split check.
  void RollbackIngested(const std::vector<SnippetId>& ids)
      SP_REQUIRES(serial_);

  /// The engine's serial-section role (a phantom capability — no
  /// runtime lock; see util/sync.h and DESIGN.md §13). Exclusive =
  /// "this context is the single writer"; every mutating method asserts
  /// it, the parallel phase-2 shards deliberately do NOT.
  // lockcheck: name=StoryPivotEngine.serial_ role
  SerialSection serial_;

  EngineConfig config_;
  text::Vocabulary entity_vocab_;
  text::Vocabulary keyword_vocab_;
  text::Gazetteer gazetteer_;
  text::AnnotationPipeline annotator_;
  /// Written only in serial sections; read concurrently (lock-free) by
  /// phase-2 identification workers via SimilarityModel. Guarded by the
  /// phase structure, not by serial_ — see the §13 capability table.
  text::DocumentFrequency df_;
  SimilarityModel similarity_;
  std::unique_ptr<StoryIdentifier> identifier_;
  StoryAligner aligner_;
  IncrementalAligner incremental_aligner_;
  StoryRefiner refiner_;
  /// Like df_: serial writes, concurrent phase-2 reads (snippets are
  /// immutable once stored; the map is not resized during phase 2).
  SnippetStore store_;
  std::vector<SourceInfo> sources_;
  /// The map itself is serial-only; each phase-2 shard mutates ONE
  /// StorySet through its private IngestShard::partition pointer, and
  /// shards are disjoint by source.
  std::unordered_map<SourceId, StorySet> partitions_;
  std::unordered_map<SourceId, SnippetSketchIndex> sketches_;
  /// Next unassigned story id. Atomic so the parallel paths may read it
  /// concurrently; all stores happen in serial sections (relaxed order).
  std::atomic<StoryId> next_story_id_ = 0;
  SourceId next_source_id_ SP_GUARDED_BY(serial_) = 0;
  /// Workers for AddSnippets / Align; null when num_threads <= 1.
  std::unique_ptr<ThreadPool> pool_;
  std::optional<AlignmentResult> alignment_;
  /// Stories touched since the last alignment (incremental mode).
  std::vector<std::pair<SourceId, StoryId>> dirty_stories_
      SP_GUARDED_BY(serial_);
  bool stale_ SP_GUARDED_BY(serial_) = true;
  EngineStats stats_ SP_GUARDED_BY(serial_);
  /// Snippet-mutation observer; nullptr when nothing is attached.
  IngestObserver* observer_ SP_GUARDED_BY(serial_) = nullptr;
};

}  // namespace storypivot

#endif  // STORYPIVOT_CORE_ENGINE_H_
