#ifndef STORYPIVOT_SHARD_SHARDED_ENGINE_H_
#define STORYPIVOT_SHARD_SHARDED_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "persist/durable_engine.h"
#include "search/ranker.h"
#include "search/search_engine.h"
#include "shard/healer.h"
#include "shard/manifest.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/sync.h"

namespace storypivot::shard {

/// Configuration of a sharded deployment.
struct ShardOptions {
  /// Shard count used when CREATING the directory. Once a manifest
  /// exists its count is authoritative: 0 means "use the manifest", any
  /// other mismatching value is an error (the source -> shard mapping is
  /// part of the data layout; see ShardManifest).
  size_t num_shards = 1;
  /// Per-shard durability knobs. `checkpoint_every_ops` is forced to 0
  /// (only the coordinator's barrier Checkpoint() may write checkpoints
  /// — an autonomous per-shard checkpoint could cover lsns past a future
  /// recovery cutoff) and `replay_lsn_limit` is overwritten with the
  /// computed common prefix on every open.
  persist::DurabilityOptions durability;
  /// Per-shard engine knobs. `incremental_alignment` is forced off:
  /// alignment is a cross-shard phase owned by the coordinator, and the
  /// per-shard incremental aligner would see only its own partitions.
  EngineConfig engine_config;
  /// Threads for parallel recovery (both the durable-bound scan and the
  /// per-shard replay); 0 means one per shard. 1 recovers serially.
  size_t recovery_threads = 0;
  /// Per-shard fault isolation (DESIGN.md §17, default ON): a permanent
  /// append failure on one shard QUARANTINES that shard (its acked ops
  /// buffer in a bounded in-memory journal while a background healer
  /// rebuilds it from disk and rejoins it) instead of poisoning the
  /// whole coordinator. Forced into every shard's
  /// DurabilityOptions::quarantine_on_append_failure; the journal
  /// bounds come from `durability.quarantine_max_journal_{ops,bytes}`.
  /// Set false to restore the PR-9 fail-stop behavior (any shard
  /// failure poisons the coordinator until Reopen()).
  bool quarantine = true;
  /// Healer backoff schedule between transient shard-recovery failures,
  /// and the injectable backoff clock (tests install a no-op sleep).
  RetryOptions heal_retry;
  RetryPolicy::SleepFn heal_retry_sleep;
};

/// Per-shard health state machine (DESIGN.md §17):
///
///   kHealthy ──append fails──▶ kQuarantined ──healer working──▶ kHealing
///       ▲                                                           │
///       │ (next quarantine restarts the cycle)                      │
///   kRejoined ◀──journal drained onto the rebuilt replacement───────┘
///
/// Quarantined/healing shards keep ACCEPTING mutations (journaled in
/// memory, ACKed, served by reads) — only their durability lags, by at
/// most the journal bound. Journal overflow or a failed rejoin falls
/// back to poisoning the coordinator (full recovery), the PR-9 path.
enum class ShardHealth { kHealthy, kQuarantined, kHealing, kRejoined };

/// Short lowercase name ("healthy", "quarantined", ...) for diagnostics.
[[nodiscard]] const char* ShardHealthName(ShardHealth health);

/// A horizontally sharded STORYPIVOT deployment (DESIGN.md §16): N
/// DurableEngine shards, each owning the snippets of the sources hashed
/// to it (ShardOfSource) — its own partitions, postings segment, WAL
/// directory and checkpoints — behind one single-writer coordinator
/// that:
///
///   * routes mutations to the owning shard, logging a kShardSync stub
///     on every OTHER shard so all N WALs stay op-for-op in lockstep
///     with the global stream (the LSN-as-GSN invariant: every sharded
///     op appends exactly one record on every shard, so per-shard lsns
///     are dense and equal the global op sequence number);
///   * keeps the global statistics every shard scores with — document
///     frequencies and the id counters — in lockstep via the stubs, so
///     per-shard story identification is bit-identical to the unsharded
///     run;
///   * answers ranked queries by scatter-gather: per-shard BM25 top-k
///     under corpus-wide statistics (search::GlobalSearchStats), merged
///     by (score desc, story id asc) — byte-identical to a 1-shard
///     engine on the same op stream;
///   * runs cross-source alignment and refinement as coordinator phases
///     over frozen per-shard partitions, shipping each shard only its
///     slice of the executed refinement journal;
///   * recovers by replaying all shard WALs in parallel, after rewinding
///     every shard to the common durable prefix C = min over shards of
///     the highest durable lsn (persist::DurabilityOptions::
///     replay_lsn_limit) — so a crash that left the shards' logs
///     different lengths yields the state of one global op prefix.
///
/// Threading model: single-writer, like every engine in this codebase,
/// and machine-checked the same way — the `writer_` serial role sits
/// ABOVE each shard's `DurableEngine.writer_` in the lock hierarchy
/// (tools/lockcheck.py): the coordinator enters its role first, then the
/// shards'.
///
/// Fault isolation (DESIGN.md §17): with ShardOptions::quarantine (the
/// default), a permanent WAL append failure on shard i quarantines ONLY
/// that shard — the coordinator keeps ACKing mutations (shard i's
/// records, native ops and kShardSync stubs alike, buffer in its bounded
/// in-memory catch-up journal, preserving LSN-as-GSN), reads and search
/// keep serving byte-identically to an unsharded engine at the acked
/// prefix, and a background ShardHealer rebuilds the shard from disk and
/// atomically rejoins it (journal drained onto the replacement, state
/// verified by fingerprint, engine + search index swapped). See
/// ShardHealth for the state machine and GetStats() for observability.
///
/// Degraded mode (the fallback, and the only mode with quarantine off):
/// a shard failure that quarantine cannot absorb — journal overflow, a
/// failed rejoin, a validation fault after another shard already logged
/// — leaves the shards at different op counts, so the coordinator
/// poisons itself: every further mutation is rejected with kDegraded
/// until Reopen() re-runs the full parallel recovery, which rewinds all
/// shards to the common durable prefix and discards the torn suffix.
class ShardedEngine {
 public:
  /// Opens (creating if needed) the sharded root `dir` and recovers all
  /// shards in parallel. See ShardOptions for the knobs.
  [[nodiscard]] static Result<std::unique_ptr<ShardedEngine>> Open(
      const std::string& dir, ShardOptions options = {});

  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // --- Mutations (each is ONE op on every shard's WAL) -------------------

  /// Registers a source on EVERY shard (registration is global state:
  /// all shards must know every source for routing, removal and
  /// alignment bookkeeping; a non-owner's partition simply stays empty).
  [[nodiscard]] Result<SourceId> RegisterSource(const std::string& name);

  /// Imports pre-built vocabularies on every shard, so pre-annotated
  /// snippets carry the same TermIds everywhere and a query parsed on
  /// one shard is valid on all of them.
  [[nodiscard]] Status ImportVocabularies(const text::Vocabulary& entities,
                                          const text::Vocabulary& keywords);

  /// Ingests one pre-annotated snippet: the native op on the owner
  /// shard, a DF + counter stub on the rest.
  [[nodiscard]] Result<SnippetId> AddSnippet(Snippet snippet);

  /// Ingests a batch. The coordinator simulates the unsharded engine's
  /// id assignment over the WHOLE batch (snippet ids in arrival order,
  /// per-source story-id blocks ascending by source), then ships every
  /// shard its PlannedIngest slice as one logged op — so the resulting
  /// ids and story assignments are bit-identical to the unsharded batch.
  /// Returns the ids in input order.
  [[nodiscard]] Result<std::vector<SnippetId>> AddSnippets(
      std::vector<Snippet> snippets);

  /// Removes one snippet (owner-native; DF stub elsewhere).
  [[nodiscard]] Status RemoveSnippet(SnippetId id);

  /// Removes a source everywhere: the owner drops its snippets and
  /// stories, every other shard drops its (empty) partition and applies
  /// the DF removals, keeping global statistics in lockstep.
  [[nodiscard]] Status RemoveSource(SourceId source);

  /// Cross-shard alignment: the coordinator aligns the per-source
  /// partitions of ALL shards (each read from its owner) and caches the
  /// result. The id-cursor advance is logged as a counter stub on every
  /// shard — an unlogged Align would assign different story ids on
  /// replay (same rule as DurableEngine::Align).
  [[nodiscard]] Status Align();

  /// One refinement pass: [Align if stale] + journaled refine + re-align
  /// — three (or two) global ops. The refine itself runs on frozen
  /// copies of the shard partitions; each shard then replays exactly the
  /// journal entries targeting its own sources (explicit story ids, so
  /// per-shard subsequences replay independently).
  [[nodiscard]] Result<RefinementStats> Refine();

  // --- Reads -------------------------------------------------------------

  /// Scatter-gather ranked search: parses on shard 0 (vocabularies are
  /// identical everywhere), scores every shard under corpus-wide
  /// statistics, merges the per-shard top-k. Byte-identical to a 1-shard
  /// engine on the same op stream.
  [[nodiscard]] Result<std::vector<search::StoryHit>> Search(
      std::string_view query, const search::SearchOptions& options = {}) const;
  [[nodiscard]] Result<std::vector<search::StoryHit>> Search(
      const search::ParsedQuery& query,
      const search::SearchOptions& options = {}) const;

  /// Canonicalizes a free-text query (any shard's text state — they are
  /// identical; shard 0 is used).
  [[nodiscard]] search::ParsedQuery Parse(std::string_view query) const;

  /// The cached cross-shard alignment; requires a preceding Align() (or
  /// Refine()) with no mutation since. Not rebuilt on recovery — call
  /// Align() after Open() when you need it.
  [[nodiscard]] bool has_alignment() const;
  [[nodiscard]] const AlignmentResult& alignment() const;

  /// Order-independent fingerprint of the full sharded state (the
  /// merged (source, snippet, story) triple set) — byte-equal to the
  /// fingerprint of an unsharded engine with the same assignment
  /// (core/snapshot.h, multi-engine overload).
  [[nodiscard]] uint64_t Fingerprint() const;

  /// Total stories across all shards.
  [[nodiscard]] size_t TotalStories() const;

  /// Global id counters (identical on every shard — verified on open).
  [[nodiscard]] StoryPivotEngine::IdCounters id_counters() const;

  [[nodiscard]] size_t num_shards() const { return num_shards_; }

  /// The shard index owning `source`.
  [[nodiscard]] size_t ShardOf(SourceId source) const {
    return ShardOfSource(source, num_shards_);
  }

  /// Direct access to one shard (introspection, tests, snapshot
  /// capture). Production code outside src/shard must not reach through
  /// this into another shard's partitions — splint's `cross-shard`
  /// rule enforces that.
  [[nodiscard]] const persist::DurableEngine& shard(size_t index) const;
  [[nodiscard]] persist::DurableEngine& shard(size_t index);

  /// The per-shard search facade (postings over that shard's snippets).
  [[nodiscard]] const search::SearchEngine& searcher(size_t index) const;

  /// Global op count: every shard's next lsn (they are always equal
  /// outside a poisoned window).
  [[nodiscard]] uint64_t next_lsn() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

  // --- Durability control ------------------------------------------------

  /// Barrier checkpoint: fsyncs EVERY shard's WAL first, then writes
  /// each shard's checkpoint. The barrier guarantees a checkpoint never
  /// covers lsns past a future recovery cutoff C (C is the min of
  /// per-shard durable bounds, and after the barrier every shard's
  /// durable bound is >= the checkpoint coverage).
  [[nodiscard]] Status Checkpoint();

  /// Forces every shard's WAL to disk.
  [[nodiscard]] Status Sync();

  /// Syncs and closes every shard. Further mutations fail.
  [[nodiscard]] Status Close();

  /// Recovers a poisoned (or crashed-and-reopened) coordinator: drops
  /// all shard state and re-runs the full parallel recovery, rewinding
  /// every shard to the common durable prefix.
  [[nodiscard]] Status Reopen();

  /// True when a mid-op shard failure poisoned the coordinator (see
  /// class comment); mutations are rejected until Reopen().
  [[nodiscard]] bool degraded() const;
  [[nodiscard]] const Status& degraded_cause() const;

  // --- Health & self-healing (DESIGN.md §17) -----------------------------

  /// Per-shard health, failure causes and progress counters for
  /// GetStats() and the CLI diagnostics.
  struct ShardStats {
    ShardHealth health = ShardHealth::kHealthy;
    /// The append failure behind the most recent quarantine (OK if the
    /// shard never quarantined).
    Status last_failure;
    uint64_t quarantines = 0;  ///< Times this shard entered quarantine.
    uint64_t rejoins = 0;      ///< Completed heal+rejoin cycles.
    uint64_t heal_attempts = 0;  ///< Cumulative healer recovery attempts.
    Status heal_error;           ///< Last failed heal attempt (OK if none).
    uint64_t journal_ops = 0;    ///< Catch-up journal backlog right now.
    uint64_t journal_bytes = 0;
    uint64_t durable_lsn = 0;  ///< Prefix durable on this shard's disk.
    uint64_t memory_lsn = 0;   ///< Applied in memory (>= durable_lsn;
                               ///< the gap is the journal backlog).
    RetryPolicy::Stats wal_retry;  ///< This shard's WAL append retries.
  };
  struct Stats {
    bool degraded = false;
    Status degraded_cause;
    std::vector<ShardStats> shards;
    /// Multi-line human-readable dump (one line per shard + a summary),
    /// used by `storypivot_cli detect --shards` / `recover`.
    [[nodiscard]] std::string ToString() const;
  };
  [[nodiscard]] Stats GetStats() const;

  [[nodiscard]] ShardHealth shard_health(size_t index) const;

  /// Drives the health state machine outside the mutation path: absorbs
  /// newly quarantined shards, collects finished replacements from the
  /// healer and rejoins them. (Every mutation already does this in its
  /// epilogue; idle callers poll.) Returns the coordinator's
  /// writability — OK while healthy or merely quarantined, kDegraded
  /// after a fallback poison.
  [[nodiscard]] Status PollHealth();

  /// Blocks until the background healer finished every scheduled
  /// rebuild (tests use this to make healing deterministic; a following
  /// PollHealth() then performs the rejoin on the writer thread).
  void WaitForHealerIdle();

 private:
  ShardedEngine(std::string dir, ShardOptions options);

  /// Builds (or rebuilds) shards_ and search_ from disk: computes the
  /// common durable prefix C in parallel, opens every shard with
  /// replay_lsn_limit = C in parallel, verifies lockstep (equal lsns and
  /// id counters). Shared by Open() and Reopen().
  [[nodiscard]] Status RecoverAll() SP_REQUIRES(writer_);

  [[nodiscard]] Status CheckWritable() const SP_REQUIRES(writer_);

  /// Marks the coordinator degraded after a mid-op shard failure.
  void Poison(const Status& cause) SP_REQUIRES(writer_);

  /// The per-shard durability options RecoverAll/the healer open shards
  /// with: coordinator-forced policies + the quarantine knob.
  [[nodiscard]] persist::DurabilityOptions ShardDurability(
      uint64_t replay_lsn_limit) const;

  /// The health sweep run in every mutation epilogue and by
  /// PollHealth(): transitions newly quarantined shards into the state
  /// machine (scheduling heals), tracks healer progress, and rejoins
  /// finished replacements. A failed rejoin poisons the coordinator.
  void AbsorbShardFailures() SP_REQUIRES(writer_);

  /// Hands shard `s`'s directory to the background healer, rewound to
  /// its current durable prefix.
  void ScheduleHeal(size_t s) SP_REQUIRES(writer_);

  /// Drains shard `s`'s catch-up journal onto `replacement` (verifying
  /// lsn continuity, id-counter lockstep and memory-state fingerprint
  /// equality against the quarantined engine) and swaps it in, with a
  /// freshly built search index. On success the shard is kRejoined —
  /// or immediately kQuarantined again if the drain itself hit a new
  /// append failure (the replacement self-quarantined; memory state
  /// still converged).
  [[nodiscard]] Status TryRejoin(
      size_t s, std::unique_ptr<persist::DurableEngine> replacement)
      SP_REQUIRES(writer_);

  /// Runs cross-shard alignment into alignment_ and logs the id-cursor
  /// advance as a kShardSync stub on every shard.
  [[nodiscard]] Status AlignLocked() SP_REQUIRES(writer_);

  /// Fills `out` (a fresh store) with a copy of every shard's snippets
  /// (alignment and refinement resolve snippets by id through one
  /// store). Out-param because SnippetStore is neither copyable nor
  /// movable.
  void BuildMergedStore(SnippetStore* out) const SP_REQUIRES(writer_);

  /// Owner partitions of every registered source, ascending by source —
  /// the exact partition list an unsharded engine would expose.
  [[nodiscard]] std::vector<const StorySet*> OwnerPartitions() const
      SP_REQUIRES(writer_);

  /// The snippet with `id` on whichever shard holds it, or nullptr.
  [[nodiscard]] const Snippet* FindSnippet(SnippetId id) const
      SP_REQUIRES(writer_);

  /// Phantom capability for the coordinator's single-writer serial
  /// section. Ordered ABOVE the per-shard roles: the coordinator enters
  /// first, then calls into shards (see tools/lockcheck.py).
  // lockcheck: name=ShardedEngine.writer_ role
  SerialSection writer_;
  /// Immutable after construction.
  std::string dir_;
  ShardOptions options_;
  size_t num_shards_ = 1;
  std::vector<std::unique_ptr<persist::DurableEngine>> shards_
      SP_GUARDED_BY(writer_);
  /// Parallel to shards_; each attached as its engine's IngestObserver.
  std::vector<std::unique_ptr<search::SearchEngine>> search_
      SP_GUARDED_BY(writer_);
  /// Coordinator-cached cross-shard alignment (never persisted; replay
  /// reproduces the cursor advances, Align() reproduces the result).
  std::optional<AlignmentResult> alignment_ SP_GUARDED_BY(writer_);
  bool stale_ SP_GUARDED_BY(writer_) = true;
  bool closed_ SP_GUARDED_BY(writer_) = false;
  bool degraded_ SP_GUARDED_BY(writer_) = false;
  Status degraded_cause_ SP_GUARDED_BY(writer_);
  /// Health-machine state the shard itself cannot know (cumulative
  /// counters, the coordinator-observed ShardHealth). Parallel to
  /// shards_; counters survive Reopen(). Journal sizes/lsns live on the
  /// shards and are read fresh by GetStats().
  struct HealthSlot {
    ShardHealth health = ShardHealth::kHealthy;
    Status last_failure;
    uint64_t quarantines = 0;
    uint64_t rejoins = 0;
  };
  std::vector<HealthSlot> health_ SP_GUARDED_BY(writer_);
  /// Background healer; rebuilt by RecoverAll (whose first act is to
  /// cancel+drain it — parked replacements hold WAL directory claims
  /// that would collide with phase B). Declared LAST so its destructor
  /// (which joins the workers) runs before anything else goes away.
  std::unique_ptr<ShardHealer> healer_ SP_GUARDED_BY(writer_);
};

}  // namespace storypivot::shard

#endif  // STORYPIVOT_SHARD_SHARDED_ENGINE_H_
