#include "shard/manifest.h"

#include <cstdlib>

#include "util/fs.h"
#include "util/hash.h"
#include "util/strings.h"

namespace storypivot::shard {
namespace {

constexpr const char kManifestFile[] = "manifest.json";

/// Routing salt: fixed forever (it is part of the data layout, like the
/// shard count — see ShardManifest).
constexpr uint64_t kRouteSeed = 0x53746f7279506976ULL;  // "StoryPiv"

/// Extracts the integer value of `"key": <digits>` from a flat JSON
/// object. The manifest is machine-written by WriteManifest, so a
/// hand-rolled scan over the two known keys beats pulling in a JSON
/// dependency; anything it cannot find is a parse error.
[[nodiscard]] Result<uint64_t> ParseJsonInt(const std::string& text,
                                            const char* key) {
  const std::string needle = StrFormat("\"%s\"", key);
  size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("manifest: missing key %s", key));
  }
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("manifest: malformed value for %s", key));
  }
  ++pos;
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
    return Status::InvalidArgument(
        StrFormat("manifest: non-numeric value for %s", key));
  }
  uint64_t value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(text[pos] - '0');
    ++pos;
  }
  return value;
}

}  // namespace

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + kManifestFile;
}

Status WriteManifest(const std::string& dir, const ShardManifest& manifest) {
  const std::string body = StrFormat(
      "{\"format_version\": %u, \"num_shards\": %zu}\n",
      manifest.format_version, manifest.num_shards);
  return WriteStringToFile(ManifestPath(dir), body);
}

Result<ShardManifest> LoadManifest(const std::string& dir) {
  const std::string path = ManifestPath(dir);
  if (!FileExists(path)) {
    return Status::NotFound("shard manifest: " + path);
  }
  ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  ShardManifest manifest;
  ASSIGN_OR_RETURN(const uint64_t version,
                   ParseJsonInt(text, "format_version"));
  ASSIGN_OR_RETURN(const uint64_t shards, ParseJsonInt(text, "num_shards"));
  if (version != 1) {
    return Status::InvalidArgument(
        StrFormat("manifest: unsupported format_version %llu",
                  static_cast<unsigned long long>(version)));
  }
  if (shards == 0) {
    return Status::InvalidArgument("manifest: num_shards must be >= 1");
  }
  manifest.format_version = static_cast<uint32_t>(version);
  manifest.num_shards = static_cast<size_t>(shards);
  return manifest;
}

std::string ShardDirName(size_t index) {
  return StrFormat("shard-%03zu", index);
}

size_t ShardOfSource(SourceId source, size_t num_shards) {
  return static_cast<size_t>(
      SplitMix64(static_cast<uint64_t>(source) + kRouteSeed) %
      static_cast<uint64_t>(num_shards));
}

}  // namespace storypivot::shard
