#include "shard/composite_snapshot.h"

#include <utility>

#include "search/postings_index.h"
#include "util/logging.h"

namespace storypivot::shard {

std::unique_ptr<CompositeSnapshot> CompositeSnapshot::Capture(
    const ShardedEngine& engine) {
  std::unique_ptr<CompositeSnapshot> snapshot(new CompositeSnapshot());
  snapshot->shards_.reserve(engine.num_shards());
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    snapshot->shards_.push_back(serve::ReadSnapshot::Capture(
        engine.shard(s).engine(), engine.searcher(s).index()));
  }
  return snapshot;
}

search::ParsedQuery CompositeSnapshot::Parse(std::string_view query) const {
  SP_CHECK(!shards_.empty());
  return shards_[0]->Parse(query);
}

Result<std::vector<search::StoryHit>> CompositeSnapshot::Search(
    std::string_view query, const search::SearchOptions& options) const {
  return Search(Parse(query), options);
}

Result<std::vector<search::StoryHit>> CompositeSnapshot::Search(
    const search::ParsedQuery& query,
    const search::SearchOptions& options) const {
  SP_CHECK(!shards_.empty());
  RETURN_IF_ERROR(search::ValidateSearchOptions(options));

  // Same statistics plan as the live coordinator: plain sums — each
  // shard's snapshot indexes exactly its own snippets.
  search::GlobalSearchStats global;
  global.df.assign(query.terms.size(), 0);
  for (const std::unique_ptr<serve::ReadSnapshot>& snap : shards_) {
    const search::PostingsIndex& index = snap->index();
    global.num_documents += index.num_documents();
    global.total_length += index.total_length();
    global.total_stories += snap->total_stories();
    for (size_t t = 0; t < query.terms.size(); ++t) {
      const search::QueryTerm& term = query.terms[t];
      global.df[t] += term.field == search::Field::kEventType
                          ? index.EventTypeFrequency(term.event_type)
                          : index.DocumentFrequency(term.field, term.term);
    }
  }

  std::vector<std::vector<search::StoryHit>> per_shard;
  per_shard.reserve(shards_.size());
  for (const std::unique_ptr<serve::ReadSnapshot>& snap : shards_) {
    per_shard.push_back(search::RankStories(snap->index(), snap->corpus(),
                                            query, options, &global));
  }
  return search::MergeTopK(std::move(per_shard), options.k);
}

size_t CompositeSnapshot::TotalStories() const {
  size_t total = 0;
  for (const std::unique_ptr<serve::ReadSnapshot>& snap : shards_) {
    total += snap->total_stories();
  }
  return total;
}

}  // namespace storypivot::shard
