#ifndef STORYPIVOT_SHARD_MANIFEST_H_
#define STORYPIVOT_SHARD_MANIFEST_H_

#include <cstddef>
#include <string>

#include "model/ids.h"
#include "util/status.h"

namespace storypivot::shard {

/// The sharded deployment's root metadata (DESIGN.md §16): written once
/// when the directory is created and immutable afterwards. The shard
/// count is part of the data layout — the source -> shard mapping is a
/// pure function of (source id, num_shards), so changing the count would
/// silently re-home sources away from their WALs. Open() therefore treats
/// a count mismatch against an existing manifest as a hard error, never a
/// migration.
struct ShardManifest {
  /// On-disk format version; bump only with a migration path.
  uint32_t format_version = 1;
  size_t num_shards = 1;
};

/// File name of the manifest inside the sharded root directory.
[[nodiscard]] std::string ManifestPath(const std::string& dir);

/// Atomically writes `manifest` into `dir` (util/fs WriteStringToFile:
/// temp file + fsync + rename, so a crash never leaves a torn manifest).
[[nodiscard]] Status WriteManifest(const std::string& dir,
                                   const ShardManifest& manifest);

/// Loads and validates the manifest of `dir`. NotFound when the file
/// does not exist (a fresh directory); InvalidArgument on parse errors
/// or an unsupported format version.
[[nodiscard]] Result<ShardManifest> LoadManifest(const std::string& dir);

/// Name of shard `index`'s durability subdirectory ("shard-000", ...).
[[nodiscard]] std::string ShardDirName(size_t index);

/// The shard owning `source`: a stable hash of the source id, so the
/// mapping depends only on (source, num_shards) — not on registration
/// order, engine state, or process history. Every replica of the op
/// stream routes identically.
[[nodiscard]] size_t ShardOfSource(SourceId source, size_t num_shards);

}  // namespace storypivot::shard

#endif  // STORYPIVOT_SHARD_MANIFEST_H_
