#include "shard/healer.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace storypivot::shard {

ShardHealer::ShardHealer(Options options)
    : options_(std::move(options)),
      pool_(std::max<size_t>(options_.threads, 2)) {}

ShardHealer::~ShardHealer() { CancelAndDrain(); }

void ShardHealer::Schedule(size_t shard, std::string dir,
                           persist::DurabilityOptions durability,
                           EngineConfig config) {
  if (cancelled_.load(std::memory_order_relaxed)) return;
  {
    MutexLock lock(mu_);
    Slot& slot = slots_[shard];
    if (slot.stats.in_progress || slot.stats.ready) return;
    slot.stats.scheduled = true;
    slot.stats.in_progress = true;
  }
  // Submit OUTSIDE mu_: Submit blocks at the queue cap and takes the
  // pool's own mutex — neither belongs under the slot lock.
  pool_.Submit([this, shard, dir = std::move(dir), durability,
                config]() { Heal(shard, dir, durability, config); });
}

void ShardHealer::Heal(size_t shard, const std::string& dir,
                       const persist::DurabilityOptions& durability,
                       const EngineConfig& config) {
  RetryPolicy policy(options_.retry);
  if (options_.retry_sleep) policy.set_sleep_fn(options_.retry_sleep);

  std::unique_ptr<persist::DurableEngine> replacement;
  uint64_t attempts = 0;
  const auto cancelled = [this]() -> Status {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("shard healer cancelled");
    }
    return Status::OK();
  };
  Status healed = policy.Run(
      "shard heal",
      [&]() -> Status {
        RETURN_IF_ERROR(cancelled());
        ++attempts;
        Result<std::unique_ptr<persist::DurableEngine>> opened =
            persist::DurableEngine::Open(dir, durability, config);
        if (!opened.ok()) return opened.status();
        replacement = std::move(opened).value();
        return Status::OK();
      },
      /*before_retry=*/cancelled);

  MutexLock lock(mu_);
  Slot& slot = slots_[shard];
  slot.stats.in_progress = false;
  slot.stats.attempts += attempts;
  if (healed.ok() && !cancelled_.load(std::memory_order_relaxed)) {
    slot.stats.ready = true;
    slot.stats.last_error = Status::OK();
    slot.replacement = std::move(replacement);
  } else {
    // `replacement` (if any) is discarded on return, releasing its WAL
    // directory claim. The coordinator re-schedules on a later poll.
    slot.stats.last_error = healed.ok()
        ? Status::Unavailable("shard healer cancelled")
        : healed;
    SP_LOG(kWarning) << "shard " << shard << " heal attempt failed: "
                     << slot.stats.last_error.ToString();
  }
}

std::unique_ptr<persist::DurableEngine> ShardHealer::TakeReady(size_t shard) {
  MutexLock lock(mu_);
  auto it = slots_.find(shard);
  if (it == slots_.end() || !it->second.stats.ready) return nullptr;
  it->second.stats.ready = false;
  return std::move(it->second.replacement);
}

ShardHealer::SlotStats ShardHealer::slot_stats(size_t shard) const {
  MutexLock lock(mu_);
  auto it = slots_.find(shard);
  return it == slots_.end() ? SlotStats{} : it->second.stats;
}

void ShardHealer::WaitIdle() { pool_.Wait(); }

void ShardHealer::CancelAndDrain() {
  cancelled_.store(true, std::memory_order_relaxed);
  // Drains queued tasks (each bails fast on the cancel flag) and joins
  // the workers, so no task can touch the slot table afterwards.
  pool_.Shutdown();
  MutexLock lock(mu_);
  for (auto& [shard, slot] : slots_) {
    slot.stats.ready = false;
    slot.replacement.reset();
  }
}

}  // namespace storypivot::shard
