#include "shard/sharded_engine.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/aligner.h"
#include "core/refiner.h"
#include "core/similarity.h"
#include "core/snapshot.h"
#include "core/story_set.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"
#include "search/story_view.h"
#include "storage/snippet_store.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace storypivot::shard {

namespace {

using persist::Checkpointer;
using persist::DurableEngine;
using persist::WriteAheadLog;

/// Highest lsn durably recoverable from one shard directory: the newest
/// checkpoint's coverage or the end of the newest WAL segment's valid
/// records, whichever is higher. Phase A of recovery runs this on every
/// shard; the common prefix is C = min over shards (DESIGN.md §16).
Result<uint64_t> DurableBound(const std::string& dir, size_t keep) {
  uint64_t bound = 0;
  Checkpointer checkpointer(dir, keep);
  ASSIGN_OR_RETURN(const std::vector<uint64_t> checkpoints,
                   checkpointer.List());
  if (!checkpoints.empty()) bound = checkpoints.back();
  ASSIGN_OR_RETURN(const std::vector<uint64_t> segments,
                   WriteAheadLog::ListSegments(dir));
  if (!segments.empty()) {
    const uint64_t start = segments.back();
    ASSIGN_OR_RETURN(const persist::SegmentScan scan,
                     WriteAheadLog::ScanSegmentFile(dir, start));
    bound = std::max(bound, start + scan.records.size());
  }
  return bound;
}

}  // namespace

// --- Open / recovery -------------------------------------------------------

ShardedEngine::ShardedEngine(std::string dir, ShardOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {}

ShardedEngine::~ShardedEngine() = default;

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const std::string& dir, ShardOptions options) {
  RETURN_IF_ERROR(CreateDirectories(dir));
  ShardManifest manifest;
  Result<ShardManifest> existing = LoadManifest(dir);
  if (existing.ok()) {
    manifest = std::move(existing).value();
    if (options.num_shards != 0 && options.num_shards != manifest.num_shards) {
      return Status::InvalidArgument(StrFormat(
          "shard count %zu does not match the manifest's %zu — the count "
          "is fixed when the directory is created (shard/manifest.h)",
          options.num_shards, manifest.num_shards));
    }
  } else if (existing.status().code() == StatusCode::kNotFound) {
    if (options.num_shards == 0) {
      return Status::InvalidArgument(
          "num_shards = 0 (use manifest) requires an existing manifest");
    }
    manifest.num_shards = options.num_shards;
    RETURN_IF_ERROR(WriteManifest(dir, manifest));
  } else {
    return existing.status();
  }

  // Coordinator-owned policies (see ShardOptions).
  options.num_shards = manifest.num_shards;
  options.durability.checkpoint_every_ops = 0;
  options.engine_config.incremental_alignment = false;

  std::unique_ptr<ShardedEngine> engine(
      new ShardedEngine(dir, std::move(options)));
  engine->num_shards_ = manifest.num_shards;
  // The factory IS the serial section: no other thread can reach the
  // object before Open returns it.
  engine->writer_.AssertInSection();
  RETURN_IF_ERROR(engine->RecoverAll());
  return engine;
}

Status ShardedEngine::RecoverAll() {
  // Observers must detach before their engines die; destroying the old
  // DurableEngines also releases their WAL directory claims so phase B
  // can re-open the directories.
  search_.clear();
  shards_.clear();
  alignment_.reset();
  stale_ = true;

  std::vector<std::string> shard_dirs;
  shard_dirs.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    shard_dirs.push_back(dir_ + "/" + ShardDirName(s));
    RETURN_IF_ERROR(CreateDirectories(shard_dirs.back()));
  }

  const size_t threads = options_.recovery_threads == 0
                             ? num_shards_
                             : options_.recovery_threads;
  ThreadPool pool(threads);

  // Phase A — durable bounds, one task per shard.
  std::vector<uint64_t> bounds(num_shards_, 0);
  std::vector<Status> errors(num_shards_);
  pool.ParallelFor(num_shards_, num_shards_,
                   [&](size_t /*chunk*/, size_t begin, size_t end) {
                     for (size_t s = begin; s < end; ++s) {
                       Result<uint64_t> bound = DurableBound(
                           shard_dirs[s],
                           options_.durability.keep_checkpoints);
                       if (bound.ok()) {
                         bounds[s] = bound.value();
                       } else {
                         errors[s] = bound.status();
                       }
                     }
                   });
  for (const Status& error : errors) RETURN_IF_ERROR(error);
  const uint64_t cutoff =
      *std::min_element(bounds.begin(), bounds.end());

  // Phase B — open every shard rewound to the common prefix, in
  // parallel. Shards past the cutoff physically truncate their tails
  // (DurabilityOptions::replay_lsn_limit).
  std::vector<std::unique_ptr<DurableEngine>> shards(num_shards_);
  pool.ParallelFor(num_shards_, num_shards_,
                   [&](size_t /*chunk*/, size_t begin, size_t end) {
                     for (size_t s = begin; s < end; ++s) {
                       persist::DurabilityOptions opts = options_.durability;
                       opts.checkpoint_every_ops = 0;
                       opts.replay_lsn_limit = cutoff;
                       Result<std::unique_ptr<DurableEngine>> opened =
                           DurableEngine::Open(shard_dirs[s], opts,
                                               options_.engine_config);
                       if (opened.ok()) {
                         shards[s] = std::move(opened).value();
                       } else {
                         errors[s] = opened.status();
                       }
                     }
                   });
  for (const Status& error : errors) RETURN_IF_ERROR(error);

  // Lockstep verification: every shard must sit at exactly the cutoff
  // with identical global id counters — anything else means the logs
  // disagree about the op stream, which recovery cannot repair.
  const StoryPivotEngine::IdCounters reference =
      shards[0]->engine().id_counters();
  for (size_t s = 0; s < num_shards_; ++s) {
    if (shards[s]->next_lsn() != cutoff) {
      return Status::Internal(StrFormat(
          "shard %zu recovered to lsn %llu, expected the common prefix "
          "%llu",
          s, static_cast<unsigned long long>(shards[s]->next_lsn()),
          static_cast<unsigned long long>(cutoff)));
    }
    const StoryPivotEngine::IdCounters counters =
        shards[s]->engine().id_counters();
    if (counters.next_source != reference.next_source ||
        counters.next_snippet != reference.next_snippet ||
        counters.next_story != reference.next_story) {
      return Status::Internal(StrFormat(
          "shard %zu recovered with id counters out of lockstep at lsn "
          "%llu",
          s, static_cast<unsigned long long>(cutoff)));
    }
  }

  shards_ = std::move(shards);
  search_.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    search_.push_back(
        std::make_unique<search::SearchEngine>(&shards_[s]->engine()));
  }
  degraded_ = false;
  degraded_cause_ = Status::OK();
  closed_ = false;
  return Status::OK();
}

Status ShardedEngine::Reopen() {
  writer_.AssertInSection();  // Serial-section mutation.
  Status recovered = RecoverAll();
  if (!recovered.ok()) {
    // Keep the cause visible; shards_ is empty until a Reopen succeeds.
    degraded_ = true;
    degraded_cause_ = recovered;
  }
  return recovered;
}

// --- Write gating ----------------------------------------------------------

Status ShardedEngine::CheckWritable() const {
  if (shards_.empty() || closed_) {
    return Status::FailedPrecondition("sharded engine is closed");
  }
  if (degraded_) {
    return Status::Degraded("sharded engine is degraded: " +
                            degraded_cause_.message());
  }
  return Status::OK();
}

void ShardedEngine::Poison(const Status& cause) {
  // A mid-op failure left the shards at different op counts; only a full
  // recovery (Reopen) restores lockstep. The cached alignment may
  // reference the torn op's ids, so it goes too.
  degraded_ = true;
  degraded_cause_ = cause;
  alignment_.reset();
  stale_ = true;
}

// --- Mutations -------------------------------------------------------------

Result<SourceId> ShardedEngine::RegisterSource(const std::string& name) {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  SourceId id = kInvalidSourceId;
  for (size_t s = 0; s < num_shards_; ++s) {
    Result<SourceId> result = shards_[s]->RegisterSource(name);
    if (!result.ok()) {
      // Before the first shard logged anything the op is a clean no-op;
      // afterwards the shards disagree and the coordinator poisons.
      if (s == 0 && !shards_[0]->degraded()) return result.status();
      Poison(result.status());
      return result.status();
    }
    if (s == 0) {
      id = result.value();
    } else if (result.value() != id) {
      const Status cause = Status::Internal(StrFormat(
          "shard %zu assigned source id %u where shard 0 assigned %u",
          s, result.value(), id));
      Poison(cause);
      return cause;
    }
  }
  stale_ = true;
  return id;
}

Status ShardedEngine::ImportVocabularies(const text::Vocabulary& entities,
                                         const text::Vocabulary& keywords) {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  for (size_t s = 0; s < num_shards_; ++s) {
    Status imported = shards_[s]->ImportVocabularies(entities, keywords);
    if (!imported.ok()) {
      // A validation rejection fails identically on every shard, so the
      // shard-0 short circuit catches it before anything is logged.
      if (s == 0 && !shards_[0]->degraded()) return imported;
      Poison(imported);
      return imported;
    }
  }
  return Status::OK();
}

Result<SnippetId> ShardedEngine::AddSnippet(Snippet snippet) {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  if (snippet.source == kInvalidSourceId ||
      shards_[0]->engine().partition(snippet.source) == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unregistered source %u", snippet.source));
  }
  const size_t owner = ShardOf(snippet.source);
  // The DF support the stubs must replicate (keywords only — exactly
  // what the owner's ingest adds).
  const text::TermVector keywords = snippet.keywords;

  Result<SnippetId> added = shards_[owner]->AddSnippet(std::move(snippet));
  if (!added.ok()) {
    if (!shards_[owner]->degraded()) return added.status();
    Poison(added.status());
    return added.status();
  }

  DurableEngine::ShardSyncRecord record;
  record.df_added.push_back(keywords);
  record.post = shards_[owner]->engine().id_counters();
  for (size_t s = 0; s < num_shards_; ++s) {
    if (s == owner) continue;
    Status synced = shards_[s]->LogShardSync(record);
    if (!synced.ok()) {
      Poison(synced);
      return synced;
    }
  }
  stale_ = true;
  return added.value();
}

Result<std::vector<SnippetId>> ShardedEngine::AddSnippets(
    std::vector<Snippet> snippets) {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  std::vector<SnippetId> ids;
  if (snippets.empty()) return ids;
  ids.reserve(snippets.size());

  for (const Snippet& snippet : snippets) {
    if (snippet.source == kInvalidSourceId ||
        shards_[0]->engine().partition(snippet.source) == nullptr) {
      return Status::InvalidArgument(
          StrFormat("unregistered source %u", snippet.source));
    }
  }

  // Simulate the unsharded engine's id assignment over the whole batch
  // (SnippetStore::Insert semantics, arrival order), so the planned
  // per-shard ingests produce exactly the ids an unsharded AddSnippets
  // would have.
  StoryPivotEngine::IdCounters post = shards_[0]->engine().id_counters();
  SnippetId sim_next = post.next_snippet;
  std::unordered_set<SnippetId> batch_ids;
  batch_ids.reserve(snippets.size());
  for (Snippet& snippet : snippets) {
    if (snippet.id == kInvalidSnippetId) {
      snippet.id = sim_next++;
    } else {
      if (FindSnippet(snippet.id) != nullptr) {
        return Status::AlreadyExists(StrFormat(
            "snippet %llu",
            static_cast<unsigned long long>(snippet.id)));
      }
      sim_next = std::max(sim_next, snippet.id + 1);
    }
    if (!batch_ids.insert(snippet.id).second) {
      return Status::AlreadyExists(StrFormat(
          "snippet %llu duplicated within the batch",
          static_cast<unsigned long long>(snippet.id)));
    }
    ids.push_back(snippet.id);
  }

  // Story-id blocks: one per distinct source, laid out ascending by
  // source — the unsharded engine's phase-2 block layout verbatim.
  std::map<SourceId, size_t> counts;
  for (const Snippet& snippet : snippets) ++counts[snippet.source];
  const StoryId block_base = post.next_story;
  std::map<SourceId, StoryId> block_begin;
  StoryId offset = 0;
  for (const auto& [source, count] : counts) {
    block_begin[source] = block_base + offset;
    offset += count;
  }
  post.next_source = shards_[0]->engine().id_counters().next_source;
  post.next_snippet = sim_next;
  post.next_story = block_base + offset;

  for (size_t s = 0; s < num_shards_; ++s) {
    StoryPivotEngine::PlannedIngest plan;
    plan.post = post;
    for (const Snippet& snippet : snippets) {
      if (ShardOf(snippet.source) == s) {
        plan.snippets.push_back(snippet);
      } else {
        plan.foreign_keywords.push_back(snippet.keywords);
      }
    }
    for (const auto& [source, begin] : block_begin) {
      if (ShardOf(source) == s) plan.story_blocks.emplace_back(source, begin);
    }
    Status ingested = shards_[s]->LogShardIngest(plan);
    if (!ingested.ok()) {
      if (s == 0 && !shards_[0]->degraded()) return ingested;
      Poison(ingested);
      return ingested;
    }
  }
  stale_ = true;
  return ids;
}

Status ShardedEngine::RemoveSnippet(SnippetId id) {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  size_t owner = num_shards_;
  const Snippet* found = nullptr;
  for (size_t s = 0; s < num_shards_; ++s) {
    found = shards_[s]->engine().store().Find(id);
    if (found != nullptr) {
      owner = s;
      break;
    }
  }
  if (found == nullptr) {
    return Status::NotFound(
        StrFormat("snippet %llu", static_cast<unsigned long long>(id)));
  }
  const text::TermVector keywords = found->keywords;

  Status removed = shards_[owner]->RemoveSnippet(id);
  if (!removed.ok()) {
    if (!shards_[owner]->degraded()) return removed;
    Poison(removed);
    return removed;
  }

  DurableEngine::ShardSyncRecord record;
  record.df_removed.push_back(keywords);
  // Post counters AFTER the owner op: a split check may have advanced
  // the story cursor, and every shard must adopt that advance.
  record.post = shards_[owner]->engine().id_counters();
  for (size_t s = 0; s < num_shards_; ++s) {
    if (s == owner) continue;
    Status synced = shards_[s]->LogShardSync(record);
    if (!synced.ok()) {
      Poison(synced);
      return synced;
    }
  }
  stale_ = true;
  return Status::OK();
}

Status ShardedEngine::RemoveSource(SourceId source) {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  if (shards_[0]->engine().partition(source) == nullptr) {
    return Status::NotFound(StrFormat("source %u", source));
  }
  const size_t owner = ShardOf(source);

  // DF supports of every snippet the owner is about to drop, collected
  // before the removal. Sorted by id for a deterministic logged record
  // (the DF result itself is order-independent — counts commute).
  std::vector<std::pair<SnippetId, text::TermVector>> dropped;
  shards_[owner]->engine().store().ForEach([&](const Snippet& snippet) {
    if (snippet.source == source) {
      dropped.emplace_back(snippet.id, snippet.keywords);
    }
  });
  std::sort(dropped.begin(), dropped.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  DurableEngine::ShardSyncRecord record;
  record.remove_source = true;
  record.removed_source = source;
  record.df_removed.reserve(dropped.size());
  for (auto& [id, keywords] : dropped) {
    record.df_removed.push_back(std::move(keywords));
  }

  Status removed = shards_[owner]->RemoveSource(source);
  if (!removed.ok()) {
    if (!shards_[owner]->degraded()) return removed;
    Poison(removed);
    return removed;
  }
  record.post = shards_[owner]->engine().id_counters();
  for (size_t s = 0; s < num_shards_; ++s) {
    if (s == owner) continue;
    Status synced = shards_[s]->LogShardSync(record);
    if (!synced.ok()) {
      Poison(synced);
      return synced;
    }
  }
  stale_ = true;
  return Status::OK();
}

// --- Alignment & refinement ------------------------------------------------

Status ShardedEngine::Align() {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  return AlignLocked();
}

Status ShardedEngine::AlignLocked() {
  // Alignment inputs are the exact state an unsharded engine would see:
  // every source's (owner) partition ascending by source, one merged
  // snippet store, the lockstep-global document frequencies — so the
  // result is bit-identical for every shard count.
  SnippetStore merged;
  BuildMergedStore(&merged);
  const std::vector<const StorySet*> partitions = OwnerPartitions();
  SimilarityModel model(options_.engine_config.similarity,
                        &shards_[0]->engine().document_frequency());
  StoryAligner aligner(&model, options_.engine_config.alignment);

  StoryPivotEngine::IdCounters post = shards_[0]->engine().id_counters();
  StoryId cursor = post.next_story;
  std::unique_ptr<ThreadPool> pool;
  if (options_.engine_config.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options_.engine_config.num_threads);
  }
  AlignmentResult result =
      aligner.Align(partitions, merged, &cursor, pool.get());
  post.next_story = cursor;

  // The cursor advance must be logged on EVERY shard before the result
  // is published — an unlogged alignment would hand out different story
  // ids on replay (same rule as DurableEngine::Align).
  DurableEngine::ShardSyncRecord record;
  record.post = post;
  for (size_t s = 0; s < num_shards_; ++s) {
    Status synced = shards_[s]->LogShardSync(record);
    if (!synced.ok()) {
      if (s == 0 && !shards_[0]->degraded()) return synced;
      Poison(synced);
      return synced;
    }
  }
  alignment_ = std::move(result);
  stale_ = false;
  return Status::OK();
}

Result<RefinementStats> ShardedEngine::Refine() {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  if (stale_ || !alignment_.has_value()) RETURN_IF_ERROR(AlignLocked());

  // Refine SCRATCH copies of the shard partitions (O(1) copy-on-write
  // freezes): the pass mutates them freely while every shard stays at
  // its pre-refinement state, then each shard replays exactly its slice
  // of the executed-primitive journal.
  std::vector<SourceId> order;
  for (const SourceInfo& info : shards_[0]->engine().sources()) {
    order.push_back(info.id);
  }
  std::sort(order.begin(), order.end());
  std::vector<StorySet> scratch;
  scratch.reserve(order.size());
  std::vector<StorySet*> scratch_ptrs;
  scratch_ptrs.reserve(order.size());
  for (SourceId source : order) {
    const StorySet* partition =
        shards_[ShardOf(source)]->engine().partition(source);
    SP_CHECK(partition != nullptr);
    scratch.push_back(partition->Freeze());
    scratch_ptrs.push_back(&scratch.back());
  }

  SnippetStore merged;
  BuildMergedStore(&merged);
  SimilarityModel model(options_.engine_config.similarity,
                        &shards_[0]->engine().document_frequency());
  StoryRefiner refiner(&model, options_.engine_config.refinement);

  StoryPivotEngine::IdCounters post = shards_[0]->engine().id_counters();
  StoryId cursor = post.next_story;
  RefinementJournal journal;
  const RefinementStats stats = refiner.Refine(scratch_ptrs, *alignment_,
                                               merged, &cursor, &journal);
  post.next_story = cursor;

  // Every shard logs ONE kShardRefine — including shards whose slice is
  // empty (lsn density) — carrying its own sources' entries in original
  // execution order (a subsequence; entries touch only their own
  // partition, so per-shard replay is independent).
  for (size_t s = 0; s < num_shards_; ++s) {
    RefinementJournal slice;
    for (const RefinementJournal::Entry& entry : journal.entries) {
      const SourceId source = entry.kind == RefinementJournal::Entry::Kind::kMove
                                  ? entry.move.source
                                  : entry.split.source;
      if (ShardOf(source) == s) slice.entries.push_back(entry);
    }
    Status refined = shards_[s]->LogShardRefine(slice, post);
    if (!refined.ok()) {
      if (s == 0 && !shards_[0]->degraded()) return refined;
      Poison(refined);
      return refined;
    }
  }
  stale_ = true;
  RETURN_IF_ERROR(AlignLocked());
  return stats;
}

// --- Reads -----------------------------------------------------------------

search::ParsedQuery ShardedEngine::Parse(std::string_view query) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(!shards_.empty());
  return search_[0]->Parse(query);
}

Result<std::vector<search::StoryHit>> ShardedEngine::Search(
    std::string_view query, const search::SearchOptions& options) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(!shards_.empty());
  return Search(search_[0]->Parse(query), options);
}

Result<std::vector<search::StoryHit>> ShardedEngine::Search(
    const search::ParsedQuery& query,
    const search::SearchOptions& options) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(!shards_.empty());
  RETURN_IF_ERROR(search::ValidateSearchOptions(options));

  // Corpus-wide statistics: plain sums — each shard indexes exactly its
  // own snippets, and a story lives wholly on one shard.
  search::GlobalSearchStats global;
  global.df.assign(query.terms.size(), 0);
  for (size_t s = 0; s < num_shards_; ++s) {
    const search::PostingsIndex& index = search_[s]->index();
    global.num_documents += index.num_documents();
    global.total_length += index.total_length();
    global.total_stories += shards_[s]->engine().TotalStories();
    for (size_t t = 0; t < query.terms.size(); ++t) {
      const search::QueryTerm& term = query.terms[t];
      global.df[t] += term.field == search::Field::kEventType
                          ? index.EventTypeFrequency(term.event_type)
                          : index.DocumentFrequency(term.field, term.term);
    }
  }

  std::vector<std::vector<search::StoryHit>> per_shard;
  per_shard.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    const search::StoryCorpus corpus =
        search::CorpusView(shards_[s]->engine());
    per_shard.push_back(search::RankStories(search_[s]->index(), corpus,
                                            query, options, &global));
  }
  return search::MergeTopK(std::move(per_shard), options.k);
}

bool ShardedEngine::has_alignment() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return alignment_.has_value() && !stale_;
}

const AlignmentResult& ShardedEngine::alignment() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(alignment_.has_value());
  return *alignment_;
}

uint64_t ShardedEngine::Fingerprint() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  std::vector<const StoryPivotEngine*> engines;
  engines.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    engines.push_back(&shards_[s]->engine());
  }
  return EngineStateFingerprint(engines);
}

size_t ShardedEngine::TotalStories() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  size_t total = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    total += shards_[s]->engine().TotalStories();
  }
  return total;
}

StoryPivotEngine::IdCounters ShardedEngine::id_counters() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(!shards_.empty());
  return shards_[0]->engine().id_counters();
}

const DurableEngine& ShardedEngine::shard(size_t index) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(index < shards_.size());
  return *shards_[index];
}

DurableEngine& ShardedEngine::shard(size_t index) {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(index < shards_.size());
  return *shards_[index];
}

const search::SearchEngine& ShardedEngine::searcher(size_t index) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(index < search_.size());
  return *search_[index];
}

uint64_t ShardedEngine::next_lsn() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return shards_.empty() ? 0 : shards_[0]->next_lsn();
}

bool ShardedEngine::degraded() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return degraded_;
}

const Status& ShardedEngine::degraded_cause() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return degraded_cause_;
}

// --- Durability control ----------------------------------------------------

Status ShardedEngine::Checkpoint() {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  // Barrier: EVERY shard's log must be durable before ANY checkpoint is
  // written, so no checkpoint can cover lsns past a future recovery
  // cutoff (C is the min over per-shard durable bounds, and after the
  // barrier every bound is >= next_lsn >= every coverage).
  for (size_t s = 0; s < num_shards_; ++s) {
    RETURN_IF_ERROR(shards_[s]->Sync());
  }
  // A failure here is benign: checkpoints are redundant state, and a
  // partial sweep leaves some shards with newer checkpoints — recovery
  // handles that (per-shard bounds already include the WAL tail).
  for (size_t s = 0; s < num_shards_; ++s) {
    RETURN_IF_ERROR(shards_[s]->Checkpoint());
  }
  return Status::OK();
}

Status ShardedEngine::Sync() {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  for (size_t s = 0; s < num_shards_; ++s) {
    RETURN_IF_ERROR(shards_[s]->Sync());
  }
  return Status::OK();
}

Status ShardedEngine::Close() {
  writer_.AssertInSection();  // Serial-section mutation.
  closed_ = true;
  Status first = Status::OK();
  for (size_t s = 0; s < shards_.size(); ++s) {
    Status closed = shards_[s]->Close();
    if (!closed.ok() && first.ok()) first = closed;
  }
  return first;
}

// --- Internal helpers ------------------------------------------------------

void ShardedEngine::BuildMergedStore(SnippetStore* out) const {
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_[s]->engine().store().ForEach([&](const Snippet& snippet) {
      SP_CHECK_OK(out->Insert(snippet));  // Ids are globally unique.
    });
  }
  out->AdoptNextId(shards_[0]->engine().id_counters().next_snippet);
}

std::vector<const StorySet*> ShardedEngine::OwnerPartitions() const {
  std::vector<SourceId> order;
  for (const SourceInfo& info : shards_[0]->engine().sources()) {
    order.push_back(info.id);
  }
  std::sort(order.begin(), order.end());
  std::vector<const StorySet*> partitions;
  partitions.reserve(order.size());
  for (SourceId source : order) {
    const StorySet* partition =
        shards_[ShardOf(source)]->engine().partition(source);
    SP_CHECK(partition != nullptr);
    partitions.push_back(partition);
  }
  return partitions;
}

const Snippet* ShardedEngine::FindSnippet(SnippetId id) const {
  for (size_t s = 0; s < num_shards_; ++s) {
    const Snippet* found = shards_[s]->engine().store().Find(id);
    if (found != nullptr) return found;
  }
  return nullptr;
}

}  // namespace storypivot::shard
