#include "shard/sharded_engine.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/aligner.h"
#include "core/refiner.h"
#include "core/similarity.h"
#include "core/snapshot.h"
#include "core/story_set.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"
#include "search/story_view.h"
#include "storage/snippet_store.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace storypivot::shard {

namespace {

using persist::Checkpointer;
using persist::DurableEngine;
using persist::WriteAheadLog;

/// Highest lsn durably recoverable from one shard directory: the newest
/// checkpoint's coverage or the end of the newest WAL segment's valid
/// records, whichever is higher. Phase A of recovery runs this on every
/// shard; the common prefix is C = min over shards (DESIGN.md §16).
Result<uint64_t> DurableBound(const std::string& dir, size_t keep) {
  uint64_t bound = 0;
  Checkpointer checkpointer(dir, keep);
  ASSIGN_OR_RETURN(const std::vector<uint64_t> checkpoints,
                   checkpointer.List());
  if (!checkpoints.empty()) bound = checkpoints.back();
  ASSIGN_OR_RETURN(const std::vector<uint64_t> segments,
                   WriteAheadLog::ListSegments(dir));
  if (!segments.empty()) {
    const uint64_t start = segments.back();
    ASSIGN_OR_RETURN(const persist::SegmentScan scan,
                     WriteAheadLog::ScanSegmentFile(dir, start));
    bound = std::max(bound, start + scan.records.size());
  }
  return bound;
}

}  // namespace

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kQuarantined: return "quarantined";
    case ShardHealth::kHealing: return "healing";
    case ShardHealth::kRejoined: return "rejoined";
  }
  return "unknown";
}

// --- Open / recovery -------------------------------------------------------

ShardedEngine::ShardedEngine(std::string dir, ShardOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {}

ShardedEngine::~ShardedEngine() = default;

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const std::string& dir, ShardOptions options) {
  RETURN_IF_ERROR(CreateDirectories(dir));
  ShardManifest manifest;
  Result<ShardManifest> existing = LoadManifest(dir);
  if (existing.ok()) {
    manifest = std::move(existing).value();
    if (options.num_shards != 0 && options.num_shards != manifest.num_shards) {
      return Status::InvalidArgument(StrFormat(
          "shard count %zu does not match the manifest's %zu — the count "
          "is fixed when the directory is created (shard/manifest.h)",
          options.num_shards, manifest.num_shards));
    }
  } else if (existing.status().code() == StatusCode::kNotFound) {
    if (options.num_shards == 0) {
      return Status::InvalidArgument(
          "num_shards = 0 (use manifest) requires an existing manifest");
    }
    manifest.num_shards = options.num_shards;
    RETURN_IF_ERROR(WriteManifest(dir, manifest));
  } else {
    return existing.status();
  }

  // Coordinator-owned policies (see ShardOptions).
  options.num_shards = manifest.num_shards;
  options.durability.checkpoint_every_ops = 0;
  options.engine_config.incremental_alignment = false;

  std::unique_ptr<ShardedEngine> engine(
      new ShardedEngine(dir, std::move(options)));
  engine->num_shards_ = manifest.num_shards;
  // The factory IS the serial section: no other thread can reach the
  // object before Open returns it.
  engine->writer_.AssertInSection();
  RETURN_IF_ERROR(engine->RecoverAll());
  return engine;
}

Status ShardedEngine::RecoverAll() {
  // The healer goes first: its workers must not race the rebuild, and a
  // parked replacement engine holds a WAL directory claim that would
  // collide with phase B's re-open.
  if (healer_ != nullptr) {
    healer_->CancelAndDrain();
    healer_.reset();
  }
  // Observers must detach before their engines die; destroying the old
  // DurableEngines also releases their WAL directory claims so phase B
  // can re-open the directories.
  search_.clear();
  shards_.clear();
  alignment_.reset();
  stale_ = true;

  std::vector<std::string> shard_dirs;
  shard_dirs.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    shard_dirs.push_back(dir_ + "/" + ShardDirName(s));
    RETURN_IF_ERROR(CreateDirectories(shard_dirs.back()));
  }

  const size_t threads = options_.recovery_threads == 0
                             ? num_shards_
                             : options_.recovery_threads;
  ThreadPool pool(threads);

  // Phase A — durable bounds, one task per shard.
  std::vector<uint64_t> bounds(num_shards_, 0);
  std::vector<Status> errors(num_shards_);
  pool.ParallelFor(num_shards_, num_shards_,
                   [&](size_t /*chunk*/, size_t begin, size_t end) {
                     for (size_t s = begin; s < end; ++s) {
                       Result<uint64_t> bound = DurableBound(
                           shard_dirs[s],
                           options_.durability.keep_checkpoints);
                       if (bound.ok()) {
                         bounds[s] = bound.value();
                       } else {
                         errors[s] = bound.status();
                       }
                     }
                   });
  for (const Status& error : errors) RETURN_IF_ERROR(error);
  const uint64_t cutoff =
      *std::min_element(bounds.begin(), bounds.end());

  // Phase B — open every shard rewound to the common prefix, in
  // parallel. Shards past the cutoff physically truncate their tails
  // (DurabilityOptions::replay_lsn_limit).
  std::vector<std::unique_ptr<DurableEngine>> shards(num_shards_);
  pool.ParallelFor(num_shards_, num_shards_,
                   [&](size_t /*chunk*/, size_t begin, size_t end) {
                     for (size_t s = begin; s < end; ++s) {
                       Result<std::unique_ptr<DurableEngine>> opened =
                           DurableEngine::Open(shard_dirs[s],
                                               ShardDurability(cutoff),
                                               options_.engine_config);
                       if (opened.ok()) {
                         shards[s] = std::move(opened).value();
                       } else {
                         errors[s] = opened.status();
                       }
                     }
                   });
  for (const Status& error : errors) RETURN_IF_ERROR(error);

  // Lockstep verification: every shard must sit at exactly the cutoff
  // with identical global id counters — anything else means the logs
  // disagree about the op stream, which recovery cannot repair.
  const StoryPivotEngine::IdCounters reference =
      shards[0]->engine().id_counters();
  for (size_t s = 0; s < num_shards_; ++s) {
    if (shards[s]->next_lsn() != cutoff) {
      return Status::Internal(StrFormat(
          "shard %zu recovered to lsn %llu, expected the common prefix "
          "%llu",
          s, static_cast<unsigned long long>(shards[s]->next_lsn()),
          static_cast<unsigned long long>(cutoff)));
    }
    const StoryPivotEngine::IdCounters counters =
        shards[s]->engine().id_counters();
    if (counters.next_source != reference.next_source ||
        counters.next_snippet != reference.next_snippet ||
        counters.next_story != reference.next_story) {
      return Status::Internal(StrFormat(
          "shard %zu recovered with id counters out of lockstep at lsn "
          "%llu",
          s, static_cast<unsigned long long>(cutoff)));
    }
  }

  shards_ = std::move(shards);
  search_.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    search_.push_back(
        std::make_unique<search::SearchEngine>(&shards_[s]->engine()));
  }
  degraded_ = false;
  degraded_cause_ = Status::OK();
  closed_ = false;
  // Health machine: every recovered shard starts healthy; cumulative
  // counters and the last recorded failure survive as history.
  health_.resize(num_shards_);
  for (HealthSlot& slot : health_) slot.health = ShardHealth::kHealthy;
  ShardHealer::Options heal_options;
  heal_options.retry = options_.heal_retry;
  heal_options.retry_sleep = options_.heal_retry_sleep;
  healer_ = std::make_unique<ShardHealer>(std::move(heal_options));
  return Status::OK();
}

Status ShardedEngine::Reopen() {
  writer_.AssertInSection();  // Serial-section mutation.
  Status recovered = RecoverAll();
  if (!recovered.ok()) {
    // Keep the cause visible; shards_ is empty until a Reopen succeeds.
    degraded_ = true;
    degraded_cause_ = recovered;
  }
  return recovered;
}

// --- Write gating ----------------------------------------------------------

Status ShardedEngine::CheckWritable() const {
  if (shards_.empty() || closed_) {
    return Status::FailedPrecondition("sharded engine is closed");
  }
  if (degraded_) {
    return Status::Degraded("sharded engine is degraded: " +
                            degraded_cause_.message());
  }
  return Status::OK();
}

void ShardedEngine::Poison(const Status& cause) {
  // A mid-op failure left the shards at different op counts; only a full
  // recovery (Reopen) restores lockstep. The cached alignment may
  // reference the torn op's ids, so it goes too.
  degraded_ = true;
  degraded_cause_ = cause;
  alignment_.reset();
  stale_ = true;
}

// --- Health machine & self-healing (DESIGN.md §17) -------------------------

persist::DurabilityOptions ShardedEngine::ShardDurability(
    uint64_t replay_lsn_limit) const {
  persist::DurabilityOptions opts = options_.durability;
  opts.checkpoint_every_ops = 0;  // Only the coordinator checkpoints.
  opts.replay_lsn_limit = replay_lsn_limit;
  opts.quarantine_on_append_failure = options_.quarantine;
  return opts;
}

void ShardedEngine::ScheduleHeal(size_t s) {
  // The replacement replays this shard's own WAL exactly to the durable
  // prefix the quarantined engine recorded at entry; the journal drain
  // (TryRejoin) then carries it to the global lsn.
  healer_->Schedule(s, dir_ + "/" + ShardDirName(s),
                    ShardDurability(shards_[s]->quarantine_base_lsn()),
                    options_.engine_config);
}

void ShardedEngine::AbsorbShardFailures() {
  if (degraded_ || healer_ == nullptr || shards_.empty()) return;
  for (size_t s = 0; s < num_shards_; ++s) {
    DurableEngine& shard = *shards_[s];
    HealthSlot& slot = health_[s];
    if (!shard.quarantined()) {
      if (shard.degraded()) {
        // Quarantine could not absorb the failure (journal overflow):
        // the other shards ACKed ops this one can never make durable,
        // so fall back to the full-coordinator recovery path.
        slot.last_failure = shard.degraded_cause();
        Poison(Status::Degraded(StrFormat(
            "shard %zu degraded: %s", s,
            shard.degraded_cause().message().c_str())));
        return;
      }
      continue;
    }
    if (slot.health == ShardHealth::kHealthy ||
        slot.health == ShardHealth::kRejoined) {
      // Newly quarantined: enter the machine and start a rebuild.
      slot.health = ShardHealth::kQuarantined;
      slot.last_failure = shard.quarantine_cause();
      ++slot.quarantines;
      ScheduleHeal(s);
      continue;
    }
    // Already in the machine: collect healer progress.
    std::unique_ptr<DurableEngine> replacement = healer_->TakeReady(s);
    if (replacement != nullptr) {
      Status rejoined = TryRejoin(s, std::move(replacement));
      if (!rejoined.ok()) {
        Poison(rejoined);
        return;
      }
      continue;
    }
    ShardHealer::SlotStats heal = healer_->slot_stats(s);
    if (heal.in_progress) {
      slot.health = ShardHealth::kHealing;
    } else {
      // The previous attempt failed permanently (transients were
      // already retried with backoff inside the healer) — re-arm. Each
      // poll retries at most once, so a dead disk costs one recovery
      // attempt per mutation, not a hot loop.
      slot.health = ShardHealth::kQuarantined;
      ScheduleHeal(s);
    }
  }
}

Status ShardedEngine::TryRejoin(
    size_t s, std::unique_ptr<DurableEngine> replacement) {
  DurableEngine& old = *shards_[s];
  const uint64_t base = old.quarantine_base_lsn();
  if (replacement->next_lsn() != base) {
    return Status::Internal(StrFormat(
        "shard %zu rejoin: replacement recovered to lsn %llu, expected "
        "the quarantine base %llu",
        s, static_cast<unsigned long long>(replacement->next_lsn()),
        static_cast<unsigned long long>(base)));
  }
  // Catch-up: apply the journaled suffix in lsn order. Replay verifies
  // recorded ids op by op; a failure here (or a journal overflow on the
  // replacement) aborts the rejoin and the caller falls back to full
  // recovery. A plain append failure does NOT fail the drain — the
  // replacement self-quarantines and the memory state still converges.
  for (const std::string& payload : old.quarantine_journal()) {
    RETURN_IF_ERROR(replacement->ApplyJournaled(payload));
  }
  if (replacement->next_lsn() != old.next_lsn()) {
    return Status::Internal(StrFormat(
        "shard %zu rejoin: catch-up ended at lsn %llu, expected %llu",
        s, static_cast<unsigned long long>(replacement->next_lsn()),
        static_cast<unsigned long long>(old.next_lsn())));
  }
  const StoryPivotEngine::IdCounters want = old.engine().id_counters();
  const StoryPivotEngine::IdCounters got =
      replacement->engine().id_counters();
  if (want.next_source != got.next_source ||
      want.next_snippet != got.next_snippet ||
      want.next_story != got.next_story) {
    return Status::Internal(StrFormat(
        "shard %zu rejoin: id counters out of lockstep after catch-up",
        s));
  }
  if (EngineStateFingerprint(old.engine()) !=
      EngineStateFingerprint(replacement->engine())) {
    return Status::Internal(StrFormat(
        "shard %zu rejoin: replacement state diverges from the served "
        "in-memory state", s));
  }
  // Swap: the search index detaches from the dying engine first, then a
  // fresh one bulk-builds from the replacement — the same bit-identical
  // rebuild path recovery relies on. The cached alignment stays valid:
  // it holds ids only, and the state it was computed from is unchanged.
  search_[s].reset();
  shards_[s] = std::move(replacement);
  search_[s] = std::make_unique<search::SearchEngine>(&shards_[s]->engine());

  HealthSlot& slot = health_[s];
  if (shards_[s]->quarantined()) {
    // The drain itself hit a fresh append failure; re-enter quarantine
    // with the (much shorter) new journal.
    slot.health = ShardHealth::kQuarantined;
    slot.last_failure = shards_[s]->quarantine_cause();
    ++slot.quarantines;
    ScheduleHeal(s);
  } else {
    slot.health = ShardHealth::kRejoined;
    ++slot.rejoins;
  }
  return Status::OK();
}

Status ShardedEngine::PollHealth() {
  writer_.AssertInSection();  // Serial-section mutation.
  if (shards_.empty() || closed_) {
    return Status::FailedPrecondition("sharded engine is closed");
  }
  if (!degraded_) AbsorbShardFailures();
  return CheckWritable();
}

void ShardedEngine::WaitForHealerIdle() {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  if (healer_ != nullptr) healer_->WaitIdle();
}

// --- Mutations -------------------------------------------------------------

Result<SourceId> ShardedEngine::RegisterSource(const std::string& name) {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  SourceId id = kInvalidSourceId;
  for (size_t s = 0; s < num_shards_; ++s) {
    Result<SourceId> result = shards_[s]->RegisterSource(name);
    if (!result.ok()) {
      // Before the first shard logged anything the op is a clean no-op;
      // afterwards the shards disagree and the coordinator poisons.
      if (s == 0 && !shards_[0]->degraded()) return result.status();
      Poison(result.status());
      return result.status();
    }
    if (s == 0) {
      id = result.value();
    } else if (result.value() != id) {
      const Status cause = Status::Internal(StrFormat(
          "shard %zu assigned source id %u where shard 0 assigned %u",
          s, result.value(), id));
      Poison(cause);
      return cause;
    }
  }
  stale_ = true;
  AbsorbShardFailures();
  return id;
}

Status ShardedEngine::ImportVocabularies(const text::Vocabulary& entities,
                                         const text::Vocabulary& keywords) {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  for (size_t s = 0; s < num_shards_; ++s) {
    Status imported = shards_[s]->ImportVocabularies(entities, keywords);
    if (!imported.ok()) {
      // A validation rejection fails identically on every shard, so the
      // shard-0 short circuit catches it before anything is logged.
      if (s == 0 && !shards_[0]->degraded()) return imported;
      Poison(imported);
      return imported;
    }
  }
  AbsorbShardFailures();
  return Status::OK();
}

Result<SnippetId> ShardedEngine::AddSnippet(Snippet snippet) {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  if (snippet.source == kInvalidSourceId ||
      shards_[0]->engine().partition(snippet.source) == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unregistered source %u", snippet.source));
  }
  const size_t owner = ShardOf(snippet.source);
  // The DF support the stubs must replicate (keywords only — exactly
  // what the owner's ingest adds).
  const text::TermVector keywords = snippet.keywords;

  Result<SnippetId> added = shards_[owner]->AddSnippet(std::move(snippet));
  if (!added.ok()) {
    if (!shards_[owner]->degraded()) return added.status();
    Poison(added.status());
    return added.status();
  }

  DurableEngine::ShardSyncRecord record;
  record.df_added.push_back(keywords);
  record.post = shards_[owner]->engine().id_counters();
  for (size_t s = 0; s < num_shards_; ++s) {
    if (s == owner) continue;
    Status synced = shards_[s]->LogShardSync(record);
    if (!synced.ok()) {
      Poison(synced);
      return synced;
    }
  }
  stale_ = true;
  AbsorbShardFailures();
  return added.value();
}

Result<std::vector<SnippetId>> ShardedEngine::AddSnippets(
    std::vector<Snippet> snippets) {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  std::vector<SnippetId> ids;
  if (snippets.empty()) return ids;
  ids.reserve(snippets.size());

  for (const Snippet& snippet : snippets) {
    if (snippet.source == kInvalidSourceId ||
        shards_[0]->engine().partition(snippet.source) == nullptr) {
      return Status::InvalidArgument(
          StrFormat("unregistered source %u", snippet.source));
    }
  }

  // Simulate the unsharded engine's id assignment over the whole batch
  // (SnippetStore::Insert semantics, arrival order), so the planned
  // per-shard ingests produce exactly the ids an unsharded AddSnippets
  // would have.
  StoryPivotEngine::IdCounters post = shards_[0]->engine().id_counters();
  SnippetId sim_next = post.next_snippet;
  std::unordered_set<SnippetId> batch_ids;
  batch_ids.reserve(snippets.size());
  for (Snippet& snippet : snippets) {
    if (snippet.id == kInvalidSnippetId) {
      snippet.id = sim_next++;
    } else {
      if (FindSnippet(snippet.id) != nullptr) {
        return Status::AlreadyExists(StrFormat(
            "snippet %llu",
            static_cast<unsigned long long>(snippet.id)));
      }
      sim_next = std::max(sim_next, snippet.id + 1);
    }
    if (!batch_ids.insert(snippet.id).second) {
      return Status::AlreadyExists(StrFormat(
          "snippet %llu duplicated within the batch",
          static_cast<unsigned long long>(snippet.id)));
    }
    ids.push_back(snippet.id);
  }

  // Story-id blocks: one per distinct source, laid out ascending by
  // source — the unsharded engine's phase-2 block layout verbatim.
  std::map<SourceId, size_t> counts;
  for (const Snippet& snippet : snippets) ++counts[snippet.source];
  const StoryId block_base = post.next_story;
  std::map<SourceId, StoryId> block_begin;
  StoryId offset = 0;
  for (const auto& [source, count] : counts) {
    block_begin[source] = block_base + offset;
    offset += count;
  }
  post.next_source = shards_[0]->engine().id_counters().next_source;
  post.next_snippet = sim_next;
  post.next_story = block_base + offset;

  for (size_t s = 0; s < num_shards_; ++s) {
    StoryPivotEngine::PlannedIngest plan;
    plan.post = post;
    for (const Snippet& snippet : snippets) {
      if (ShardOf(snippet.source) == s) {
        plan.snippets.push_back(snippet);
      } else {
        plan.foreign_keywords.push_back(snippet.keywords);
      }
    }
    for (const auto& [source, begin] : block_begin) {
      if (ShardOf(source) == s) plan.story_blocks.emplace_back(source, begin);
    }
    Status ingested = shards_[s]->LogShardIngest(plan);
    if (!ingested.ok()) {
      if (s == 0 && !shards_[0]->degraded()) return ingested;
      Poison(ingested);
      return ingested;
    }
  }
  stale_ = true;
  AbsorbShardFailures();
  return ids;
}

Status ShardedEngine::RemoveSnippet(SnippetId id) {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  size_t owner = num_shards_;
  const Snippet* found = nullptr;
  for (size_t s = 0; s < num_shards_; ++s) {
    found = shards_[s]->engine().store().Find(id);
    if (found != nullptr) {
      owner = s;
      break;
    }
  }
  if (found == nullptr) {
    return Status::NotFound(
        StrFormat("snippet %llu", static_cast<unsigned long long>(id)));
  }
  const text::TermVector keywords = found->keywords;

  Status removed = shards_[owner]->RemoveSnippet(id);
  if (!removed.ok()) {
    if (!shards_[owner]->degraded()) return removed;
    Poison(removed);
    return removed;
  }

  DurableEngine::ShardSyncRecord record;
  record.df_removed.push_back(keywords);
  // Post counters AFTER the owner op: a split check may have advanced
  // the story cursor, and every shard must adopt that advance.
  record.post = shards_[owner]->engine().id_counters();
  for (size_t s = 0; s < num_shards_; ++s) {
    if (s == owner) continue;
    Status synced = shards_[s]->LogShardSync(record);
    if (!synced.ok()) {
      Poison(synced);
      return synced;
    }
  }
  stale_ = true;
  AbsorbShardFailures();
  return Status::OK();
}

Status ShardedEngine::RemoveSource(SourceId source) {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  if (shards_[0]->engine().partition(source) == nullptr) {
    return Status::NotFound(StrFormat("source %u", source));
  }
  const size_t owner = ShardOf(source);

  // DF supports of every snippet the owner is about to drop, collected
  // before the removal. Sorted by id for a deterministic logged record
  // (the DF result itself is order-independent — counts commute).
  std::vector<std::pair<SnippetId, text::TermVector>> dropped;
  shards_[owner]->engine().store().ForEach([&](const Snippet& snippet) {
    if (snippet.source == source) {
      dropped.emplace_back(snippet.id, snippet.keywords);
    }
  });
  std::sort(dropped.begin(), dropped.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  DurableEngine::ShardSyncRecord record;
  record.remove_source = true;
  record.removed_source = source;
  record.df_removed.reserve(dropped.size());
  for (auto& [id, keywords] : dropped) {
    record.df_removed.push_back(std::move(keywords));
  }

  Status removed = shards_[owner]->RemoveSource(source);
  if (!removed.ok()) {
    if (!shards_[owner]->degraded()) return removed;
    Poison(removed);
    return removed;
  }
  record.post = shards_[owner]->engine().id_counters();
  for (size_t s = 0; s < num_shards_; ++s) {
    if (s == owner) continue;
    Status synced = shards_[s]->LogShardSync(record);
    if (!synced.ok()) {
      Poison(synced);
      return synced;
    }
  }
  stale_ = true;
  AbsorbShardFailures();
  return Status::OK();
}

// --- Alignment & refinement ------------------------------------------------

Status ShardedEngine::Align() {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  return AlignLocked();
}

Status ShardedEngine::AlignLocked() {
  // Alignment inputs are the exact state an unsharded engine would see:
  // every source's (owner) partition ascending by source, one merged
  // snippet store, the lockstep-global document frequencies — so the
  // result is bit-identical for every shard count.
  SnippetStore merged;
  BuildMergedStore(&merged);
  const std::vector<const StorySet*> partitions = OwnerPartitions();
  SimilarityModel model(options_.engine_config.similarity,
                        &shards_[0]->engine().document_frequency());
  StoryAligner aligner(&model, options_.engine_config.alignment);

  StoryPivotEngine::IdCounters post = shards_[0]->engine().id_counters();
  StoryId cursor = post.next_story;
  std::unique_ptr<ThreadPool> pool;
  if (options_.engine_config.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options_.engine_config.num_threads);
  }
  AlignmentResult result =
      aligner.Align(partitions, merged, &cursor, pool.get());
  post.next_story = cursor;

  // The cursor advance must be logged on EVERY shard before the result
  // is published — an unlogged alignment would hand out different story
  // ids on replay (same rule as DurableEngine::Align).
  DurableEngine::ShardSyncRecord record;
  record.post = post;
  for (size_t s = 0; s < num_shards_; ++s) {
    Status synced = shards_[s]->LogShardSync(record);
    if (!synced.ok()) {
      if (s == 0 && !shards_[0]->degraded()) return synced;
      Poison(synced);
      return synced;
    }
  }
  alignment_ = std::move(result);
  stale_ = false;
  AbsorbShardFailures();
  return Status::OK();
}

Result<RefinementStats> ShardedEngine::Refine() {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  if (stale_ || !alignment_.has_value()) RETURN_IF_ERROR(AlignLocked());

  // Refine SCRATCH copies of the shard partitions (O(1) copy-on-write
  // freezes): the pass mutates them freely while every shard stays at
  // its pre-refinement state, then each shard replays exactly its slice
  // of the executed-primitive journal.
  std::vector<SourceId> order;
  for (const SourceInfo& info : shards_[0]->engine().sources()) {
    order.push_back(info.id);
  }
  std::sort(order.begin(), order.end());
  std::vector<StorySet> scratch;
  scratch.reserve(order.size());
  std::vector<StorySet*> scratch_ptrs;
  scratch_ptrs.reserve(order.size());
  for (SourceId source : order) {
    const StorySet* partition =
        shards_[ShardOf(source)]->engine().partition(source);
    SP_CHECK(partition != nullptr);
    scratch.push_back(partition->Freeze());
    scratch_ptrs.push_back(&scratch.back());
  }

  SnippetStore merged;
  BuildMergedStore(&merged);
  SimilarityModel model(options_.engine_config.similarity,
                        &shards_[0]->engine().document_frequency());
  StoryRefiner refiner(&model, options_.engine_config.refinement);

  StoryPivotEngine::IdCounters post = shards_[0]->engine().id_counters();
  StoryId cursor = post.next_story;
  RefinementJournal journal;
  const RefinementStats stats = refiner.Refine(scratch_ptrs, *alignment_,
                                               merged, &cursor, &journal);
  post.next_story = cursor;

  // Every shard logs ONE kShardRefine — including shards whose slice is
  // empty (lsn density) — carrying its own sources' entries in original
  // execution order (a subsequence; entries touch only their own
  // partition, so per-shard replay is independent).
  for (size_t s = 0; s < num_shards_; ++s) {
    RefinementJournal slice;
    for (const RefinementJournal::Entry& entry : journal.entries) {
      const SourceId source = entry.kind == RefinementJournal::Entry::Kind::kMove
                                  ? entry.move.source
                                  : entry.split.source;
      if (ShardOf(source) == s) slice.entries.push_back(entry);
    }
    Status refined = shards_[s]->LogShardRefine(slice, post);
    if (!refined.ok()) {
      if (s == 0 && !shards_[0]->degraded()) return refined;
      Poison(refined);
      return refined;
    }
  }
  stale_ = true;
  RETURN_IF_ERROR(AlignLocked());
  return stats;
}

// --- Reads -----------------------------------------------------------------

search::ParsedQuery ShardedEngine::Parse(std::string_view query) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(!shards_.empty());
  return search_[0]->Parse(query);
}

Result<std::vector<search::StoryHit>> ShardedEngine::Search(
    std::string_view query, const search::SearchOptions& options) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(!shards_.empty());
  return Search(search_[0]->Parse(query), options);
}

Result<std::vector<search::StoryHit>> ShardedEngine::Search(
    const search::ParsedQuery& query,
    const search::SearchOptions& options) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(!shards_.empty());
  RETURN_IF_ERROR(search::ValidateSearchOptions(options));

  // Corpus-wide statistics: plain sums — each shard indexes exactly its
  // own snippets, and a story lives wholly on one shard.
  search::GlobalSearchStats global;
  global.df.assign(query.terms.size(), 0);
  for (size_t s = 0; s < num_shards_; ++s) {
    const search::PostingsIndex& index = search_[s]->index();
    global.num_documents += index.num_documents();
    global.total_length += index.total_length();
    global.total_stories += shards_[s]->engine().TotalStories();
    for (size_t t = 0; t < query.terms.size(); ++t) {
      const search::QueryTerm& term = query.terms[t];
      global.df[t] += term.field == search::Field::kEventType
                          ? index.EventTypeFrequency(term.event_type)
                          : index.DocumentFrequency(term.field, term.term);
    }
  }

  std::vector<std::vector<search::StoryHit>> per_shard;
  per_shard.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    const search::StoryCorpus corpus =
        search::CorpusView(shards_[s]->engine());
    per_shard.push_back(search::RankStories(search_[s]->index(), corpus,
                                            query, options, &global));
  }
  return search::MergeTopK(std::move(per_shard), options.k);
}

bool ShardedEngine::has_alignment() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return alignment_.has_value() && !stale_;
}

const AlignmentResult& ShardedEngine::alignment() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(alignment_.has_value());
  return *alignment_;
}

uint64_t ShardedEngine::Fingerprint() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  std::vector<const StoryPivotEngine*> engines;
  engines.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    engines.push_back(&shards_[s]->engine());
  }
  return EngineStateFingerprint(engines);
}

size_t ShardedEngine::TotalStories() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  size_t total = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    total += shards_[s]->engine().TotalStories();
  }
  return total;
}

StoryPivotEngine::IdCounters ShardedEngine::id_counters() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(!shards_.empty());
  return shards_[0]->engine().id_counters();
}

const DurableEngine& ShardedEngine::shard(size_t index) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(index < shards_.size());
  return *shards_[index];
}

DurableEngine& ShardedEngine::shard(size_t index) {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(index < shards_.size());
  return *shards_[index];
}

const search::SearchEngine& ShardedEngine::searcher(size_t index) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(index < search_.size());
  return *search_[index];
}

uint64_t ShardedEngine::next_lsn() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return shards_.empty() ? 0 : shards_[0]->next_lsn();
}

bool ShardedEngine::degraded() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return degraded_;
}

const Status& ShardedEngine::degraded_cause() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return degraded_cause_;
}

ShardHealth ShardedEngine::shard_health(size_t index) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  SP_CHECK(index < health_.size());
  return health_[index].health;
}

ShardedEngine::Stats ShardedEngine::GetStats() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  Stats stats;
  stats.degraded = degraded_;
  stats.degraded_cause = degraded_cause_;
  stats.shards.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardStats row;
    const HealthSlot& slot = health_[s];
    row.health = slot.health;
    row.last_failure = slot.last_failure;
    row.quarantines = slot.quarantines;
    row.rejoins = slot.rejoins;
    if (healer_ != nullptr) {
      const ShardHealer::SlotStats heal = healer_->slot_stats(s);
      row.heal_attempts = heal.attempts;
      row.heal_error = heal.last_error;
    }
    const DurableEngine& shard = *shards_[s];
    row.memory_lsn = shard.next_lsn();
    if (shard.quarantined()) {
      row.durable_lsn = shard.quarantine_base_lsn();
      row.journal_ops = shard.quarantine_journal().size();
      row.journal_bytes = shard.quarantine_journal_bytes();
    } else {
      row.durable_lsn = row.memory_lsn;
    }
    row.wal_retry = shard.wal_retry_stats();
    stats.shards.push_back(std::move(row));
  }
  return stats;
}

std::string ShardedEngine::Stats::ToString() const {
  std::string out = StrFormat(
      "sharded engine: %zu shard(s), %s\n", shards.size(),
      degraded ? ("DEGRADED: " + degraded_cause.message()).c_str()
               : "writable");
  for (size_t s = 0; s < shards.size(); ++s) {
    const ShardStats& row = shards[s];
    out += StrFormat(
        "  shard %03zu: %-11s durable_lsn=%llu memory_lsn=%llu "
        "journal=%llu ops/%llu B quarantines=%llu rejoins=%llu "
        "heal_attempts=%llu wal_retries=%llu\n",
        s, ShardHealthName(row.health),
        static_cast<unsigned long long>(row.durable_lsn),
        static_cast<unsigned long long>(row.memory_lsn),
        static_cast<unsigned long long>(row.journal_ops),
        static_cast<unsigned long long>(row.journal_bytes),
        static_cast<unsigned long long>(row.quarantines),
        static_cast<unsigned long long>(row.rejoins),
        static_cast<unsigned long long>(row.heal_attempts),
        static_cast<unsigned long long>(row.wal_retry.retries));
    if (!row.last_failure.ok()) {
      out += StrFormat("    last failure: %s\n",
                       row.last_failure.ToString().c_str());
    }
    if (!row.heal_error.ok()) {
      out += StrFormat("    last heal error: %s\n",
                       row.heal_error.ToString().c_str());
    }
  }
  return out;
}

// --- Durability control ----------------------------------------------------

Status ShardedEngine::Checkpoint() {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  // No checkpoints while ANY shard is quarantined: a healthy shard's
  // checkpoint taken now could cover lsns past the quarantined shard's
  // durable prefix — which is exactly the cutoff a fallback recovery
  // would rewind to, and recovery treats a checkpoint past the cutoff
  // as corruption.
  for (size_t s = 0; s < num_shards_; ++s) {
    if (shards_[s]->quarantined()) {
      return Status::FailedPrecondition(StrFormat(
          "cannot checkpoint: shard %zu is quarantined and its durable "
          "prefix lags the acked stream", s));
    }
  }
  // Barrier: EVERY shard's log must be durable before ANY checkpoint is
  // written, so no checkpoint can cover lsns past a future recovery
  // cutoff (C is the min over per-shard durable bounds, and after the
  // barrier every bound is >= next_lsn >= every coverage).
  for (size_t s = 0; s < num_shards_; ++s) {
    RETURN_IF_ERROR(shards_[s]->Sync());
  }
  // A failure here is benign: checkpoints are redundant state, and a
  // partial sweep leaves some shards with newer checkpoints — recovery
  // handles that (per-shard bounds already include the WAL tail).
  for (size_t s = 0; s < num_shards_; ++s) {
    RETURN_IF_ERROR(shards_[s]->Checkpoint());
  }
  return Status::OK();
}

Status ShardedEngine::Sync() {
  writer_.AssertInSection();  // Serial-section mutation.
  RETURN_IF_ERROR(CheckWritable());
  for (size_t s = 0; s < num_shards_; ++s) {
    // A quarantined shard's WAL is closed (its durable prefix was
    // synced at quarantine entry; the suffix is memory-only by
    // definition) — syncing the healthy shards still bounds their loss.
    if (shards_[s]->quarantined()) continue;
    RETURN_IF_ERROR(shards_[s]->Sync());
  }
  return Status::OK();
}

Status ShardedEngine::Close() {
  writer_.AssertInSection();  // Serial-section mutation.
  // Stop the healer first: parked replacements hold directory claims,
  // and workers must not outlive the close.
  if (healer_ != nullptr) healer_->CancelAndDrain();
  closed_ = true;
  Status first = Status::OK();
  for (size_t s = 0; s < shards_.size(); ++s) {
    Status closed = shards_[s]->Close();
    if (!closed.ok() && first.ok()) first = closed;
  }
  return first;
}

// --- Internal helpers ------------------------------------------------------

void ShardedEngine::BuildMergedStore(SnippetStore* out) const {
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_[s]->engine().store().ForEach([&](const Snippet& snippet) {
      SP_CHECK_OK(out->Insert(snippet));  // Ids are globally unique.
    });
  }
  out->AdoptNextId(shards_[0]->engine().id_counters().next_snippet);
}

std::vector<const StorySet*> ShardedEngine::OwnerPartitions() const {
  std::vector<SourceId> order;
  for (const SourceInfo& info : shards_[0]->engine().sources()) {
    order.push_back(info.id);
  }
  std::sort(order.begin(), order.end());
  std::vector<const StorySet*> partitions;
  partitions.reserve(order.size());
  for (SourceId source : order) {
    const StorySet* partition =
        shards_[ShardOf(source)]->engine().partition(source);
    SP_CHECK(partition != nullptr);
    partitions.push_back(partition);
  }
  return partitions;
}

const Snippet* ShardedEngine::FindSnippet(SnippetId id) const {
  for (size_t s = 0; s < num_shards_; ++s) {
    const Snippet* found = shards_[s]->engine().store().Find(id);
    if (found != nullptr) return found;
  }
  return nullptr;
}

}  // namespace storypivot::shard
