#ifndef STORYPIVOT_SHARD_HEALER_H_
#define STORYPIVOT_SHARD_HEALER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>

#include "persist/durable_engine.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace storypivot::shard {

/// Background shard healer (DESIGN.md §17). When the coordinator
/// quarantines a shard, it hands the shard's DIRECTORY to the healer;
/// worker threads rebuild a replacement `DurableEngine` from disk
/// (checkpoint + WAL replay up to the quarantined shard's durable
/// prefix) with bounded `RetryPolicy` backoff between transient
/// failures, and park the finished replacement in a per-shard slot. The
/// coordinator's writer thread later collects it with `TakeReady()`,
/// drains the catch-up journal onto it, and swaps it in (the REJOIN —
/// see ShardedEngine::PollHealth).
///
/// The healer never touches the live (quarantined) engine object: the
/// quarantined engine closed its WAL on entry, releasing the
/// process-global directory claim, so the replacement's `Open` claims a
/// directory nobody else holds and the two objects share no state.
///
/// Thread safety: `mu_` protects the slot table and is never held
/// across a recovery attempt; the pool workers and the coordinator's
/// writer thread are the only parties. `CancelAndDrain()` (also run by
/// the destructor) stops the pool and discards any parked replacements
/// — the coordinator MUST call it before full recovery of the shard
/// root, or the replacements' directory claims would collide with
/// `RecoverAll`.
class ShardHealer {
 public:
  struct Options {
    /// Backoff schedule between transient recovery failures. Permanent
    /// failures abort the attempt immediately; the coordinator
    /// re-schedules on a later health poll.
    RetryOptions retry;
    /// Injectable clock for the backoff (tests install a no-op).
    RetryPolicy::SleepFn retry_sleep;
    /// Worker threads. Clamped to >= 2: a <=1-thread ThreadPool runs
    /// tasks inline on the submitting thread, which would turn
    /// "background healing" into a synchronous stall of the
    /// coordinator's writer thread.
    size_t threads = 2;
  };

  /// Health/progress of one shard's heal, for ShardedEngine::Stats.
  struct SlotStats {
    bool scheduled = false;    ///< A heal was ever scheduled.
    bool in_progress = false;  ///< A worker is rebuilding right now.
    bool ready = false;        ///< A replacement awaits rejoin.
    uint64_t attempts = 0;     ///< Cumulative recovery attempts.
    Status last_error;         ///< Last failed attempt (OK if none).
  };

  explicit ShardHealer(Options options);
  ~ShardHealer();

  ShardHealer(const ShardHealer&) = delete;
  ShardHealer& operator=(const ShardHealer&) = delete;

  /// Queues a background rebuild of shard `shard` from `dir`. No-op if
  /// a rebuild for that shard is already running or a replacement is
  /// already parked; a shard whose previous attempt failed permanently
  /// is re-armed. `durability.replay_lsn_limit` should be the
  /// quarantined shard's durable prefix so the replacement replays
  /// exactly to it.
  void Schedule(size_t shard, std::string dir,
                persist::DurabilityOptions durability, EngineConfig config)
      SP_EXCLUDES(mu_);

  /// Moves out shard `shard`'s finished replacement, or nullptr if none
  /// is ready yet.
  [[nodiscard]] std::unique_ptr<persist::DurableEngine> TakeReady(
      size_t shard) SP_EXCLUDES(mu_);

  [[nodiscard]] SlotStats slot_stats(size_t shard) const SP_EXCLUDES(mu_);

  /// Blocks until every queued heal task has finished (tests use this
  /// to make background healing deterministic).
  void WaitIdle();

  /// Stops intake, cancels backoff loops, joins the workers and
  /// discards parked replacements (releasing their WAL directory
  /// claims). The healer is permanently idle afterwards; the
  /// coordinator builds a fresh one after full recovery.
  void CancelAndDrain() SP_EXCLUDES(mu_);

 private:
  struct Slot {
    SlotStats stats;
    std::unique_ptr<persist::DurableEngine> replacement;
  };

  /// The worker body: rebuild one shard with bounded backoff and park
  /// the result. Never holds mu_ across the recovery attempt.
  void Heal(size_t shard, const std::string& dir,
            const persist::DurabilityOptions& durability,
            const EngineConfig& config) SP_EXCLUDES(mu_);

  Options options_;
  std::atomic<bool> cancelled_{false};
  /// Guards the slot table. Acquired by the coordinator's writer thread
  /// (Schedule/TakeReady/stats, hence the hierarchy edge) and by pool
  /// workers publishing results; never held across DurableEngine::Open
  /// or any ThreadPool call.
  // lockcheck: name=ShardHealer.mu_ after=ShardedEngine.writer_
  mutable Mutex mu_;
  std::unordered_map<size_t, Slot> slots_ SP_GUARDED_BY(mu_);
  /// Declared last so it is destroyed FIRST: ~ThreadPool drains and
  /// joins the workers (which touch mu_/slots_) before they go away.
  ThreadPool pool_;
};

}  // namespace storypivot::shard

#endif  // STORYPIVOT_SHARD_HEALER_H_
