#ifndef STORYPIVOT_SHARD_COMPOSITE_SNAPSHOT_H_
#define STORYPIVOT_SHARD_COMPOSITE_SNAPSHOT_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "search/query_pipeline.h"
#include "search/ranker.h"
#include "serve/read_snapshot.h"
#include "shard/sharded_engine.h"
#include "util/status.h"

namespace storypivot::shard {

/// A frozen, self-contained read view of an entire sharded deployment:
/// one serve::ReadSnapshot per shard (PR 8's O(delta) copy-on-write
/// freeze), captured back-to-back inside the coordinator's serial
/// section so every member snapshot reflects the SAME global op prefix —
/// the composite is a consistent cut of the sharded state, not a mix of
/// epochs.
///
/// Reads mirror the live coordinator's scatter-gather exactly: queries
/// parse against shard 0's snapshot text state (identical on every
/// shard — the sharded API imports vocabularies globally), rank each
/// shard under corpus-wide statistics summed over the member snapshots,
/// and merge by (score desc, story id asc). On equal state the results
/// are byte-identical to ShardedEngine::Search, which in turn is
/// byte-identical to an unsharded engine on the same op stream.
///
/// Immutable after capture, so safe to read from any number of threads
/// with no synchronization, concurrently with further writes to the
/// live coordinator.
class CompositeSnapshot {
 public:
  /// Captures all shards. Serial-section only (the caller is between
  /// coordinator ops, exactly like ReadSnapshot::Capture on an
  /// unsharded engine).
  [[nodiscard]] static std::unique_ptr<CompositeSnapshot> Capture(
      const ShardedEngine& engine);

  CompositeSnapshot(const CompositeSnapshot&) = delete;
  CompositeSnapshot& operator=(const CompositeSnapshot&) = delete;

  /// Canonicalizes a free-text query against the snapshot text state.
  [[nodiscard]] search::ParsedQuery Parse(std::string_view query) const;

  /// Scatter-gather ranked top-k over the frozen shards (see class
  /// comment).
  [[nodiscard]] Result<std::vector<search::StoryHit>> Search(
      const search::ParsedQuery& query,
      const search::SearchOptions& options = {}) const;
  [[nodiscard]] Result<std::vector<search::StoryHit>> Search(
      std::string_view query,
      const search::SearchOptions& options = {}) const;

  [[nodiscard]] size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const serve::ReadSnapshot& shard(size_t index) const {
    return *shards_[index];
  }

  /// Total stories across all member snapshots.
  [[nodiscard]] size_t TotalStories() const;

 private:
  CompositeSnapshot() = default;

  std::vector<std::unique_ptr<serve::ReadSnapshot>> shards_;
};

}  // namespace storypivot::shard

#endif  // STORYPIVOT_SHARD_COMPOSITE_SNAPSHOT_H_
