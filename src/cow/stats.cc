#include "cow/stats.h"

namespace storypivot::cow {

namespace {

std::atomic<uint64_t>& CopyCount() {
  static std::atomic<uint64_t> count{0};
  return count;
}

std::atomic<uint64_t>& ByteCount() {
  static std::atomic<uint64_t> bytes{0};
  return bytes;
}

}  // namespace

void RecordCopy(uint64_t bytes) {
  CopyCount().fetch_add(1, std::memory_order_relaxed);
  ByteCount().fetch_add(bytes, std::memory_order_relaxed);
}

CopyCounters ReadCopyCounters() {
  CopyCounters counters;
  counters.copies = CopyCount().load(std::memory_order_relaxed);
  counters.bytes = ByteCount().load(std::memory_order_relaxed);
  return counters;
}

}  // namespace storypivot::cow
