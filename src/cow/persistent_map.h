#ifndef STORYPIVOT_COW_PERSISTENT_MAP_H_
#define STORYPIVOT_COW_PERSISTENT_MAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "cow/stats.h"
#include "util/logging.h"

namespace storypivot::cow {

/// A persistent hash map — a hash array mapped trie (HAMT) with
/// copy-on-write path copying (DESIGN.md §15).
///
/// The trie branches 32 ways on successive 5-bit chunks of the key's
/// 64-bit hash; keys whose full hashes collide land in a sorted
/// collision bucket below the last chunk. Nodes are held by shared_ptr:
///
///   * COPY = FREEZE. Copying the map copies one pointer; both maps
///     share every node. O(1), no allocation.
///   * PATH COPY ON WRITE. A mutation clones only the nodes on the path
///     from the root to the touched entry that are still shared with a
///     frozen copy; everything else is shared by pointer. After a
///     freeze, the first mutations re-own their paths (O(log32 n)
///     clones each); absent freezes every node is uniquely owned and
///     mutations write IN PLACE, so the live structure costs like an
///     ordinary hash map.
///
/// DETERMINISM: the trie shape — and therefore iteration order — is a
/// pure function of the key set (slots are hash chunks; collision
/// buckets sort by key). Unlike std::unordered_map, whose order depends
/// on insertion/rehash history, two PersistentMaps holding the same
/// keys always iterate identically, which is exactly the property the
/// engine's snapshot-equals-rebuild invariant wants.
///
/// Threading contract: mutations are single-writer (the engine serial
/// section); frozen copies are safe to read from any thread because a
/// node reachable from more than one root is never written.
///
/// Reference validity: pointers/references into the map (Find,
/// FindMutable, GetOrInsert, iterators) are invalidated by ANY
/// subsequent mutation of the same map — path copies relocate entries.
/// This is weaker than std::unordered_map's per-node stability; don't
/// hold entry pointers across mutations.
template <typename K, typename V, typename Hash = std::hash<K>>
class PersistentMap {
 public:
  using value_type = std::pair<K, V>;

  PersistentMap() = default;

  // O(1) structural share — this IS Freeze().
  PersistentMap(const PersistentMap&) = default;
  PersistentMap& operator=(const PersistentMap&) = default;
  PersistentMap(PersistentMap&&) noexcept = default;
  PersistentMap& operator=(PersistentMap&&) noexcept = default;

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    root_.reset();
    size_ = 0;
  }

  /// Value stored under `key`, or nullptr. `key` may be any type the
  /// hasher and operator== accept (string_view against string keys).
  template <typename LK>
  [[nodiscard]] const V* Find(const LK& key) const {
    const Node* node = root_.get();
    if (node == nullptr) return nullptr;
    const uint64_t hash = HashOf(key);
    for (int shift = 0;; shift += kBits) {
      if (shift > kMaxShift) {
        for (const value_type& entry : node->entries) {
          if (entry.first == key) return &entry.second;
        }
        return nullptr;
      }
      const uint32_t bit = SlotBit(hash, shift);
      if (node->entry_mask & bit) {
        const value_type& entry = node->entries[PackedIndex(node->entry_mask,
                                                            bit)];
        return entry.first == key ? &entry.second : nullptr;
      }
      if (!(node->child_mask & bit)) return nullptr;
      node = node->children[PackedIndex(node->child_mask, bit)].get();
    }
  }

  template <typename LK>
  [[nodiscard]] bool contains(const LK& key) const {
    return Find(key) != nullptr;
  }

  /// Mutable access to an existing entry, path-copying shared nodes.
  /// Returns nullptr when absent. The pointer is valid until the next
  /// mutation of this map.
  template <typename LK>
  [[nodiscard]] V* FindMutable(const LK& key) {
    if (Find(key) == nullptr) return nullptr;  // Never clone for a miss.
    std::shared_ptr<Node>* slot = &root_;
    const uint64_t hash = HashOf(key);
    for (int shift = 0;; shift += kBits) {
      Node* node = Writable(slot);
      if (shift > kMaxShift) {
        for (value_type& entry : node->entries) {
          if (entry.first == key) return &entry.second;
        }
        SP_CHECK(false);  // Find() said it was here.
      }
      const uint32_t bit = SlotBit(hash, shift);
      if (node->entry_mask & bit) {
        return &node->entries[PackedIndex(node->entry_mask, bit)].second;
      }
      slot = &node->children[PackedIndex(node->child_mask, bit)];
    }
  }

  /// Inserts `value` under `key` if absent. Returns the stored value
  /// and whether this call inserted it (false = it already existed and
  /// was left untouched).
  std::pair<V*, bool> Emplace(K key, V value) {
    bool inserted = false;
    V* stored = EmplaceImpl(&root_, 0, HashOf(key), std::move(key),
                            std::move(value), &inserted);
    if (inserted) ++size_;
    return {stored, inserted};
  }

  /// The entry under `key`, default-constructing one if absent.
  [[nodiscard]] V& GetOrInsert(K key) {
    return *Emplace(std::move(key), V{}).first;
  }

  /// Removes `key`; returns false when absent.
  template <typename LK>
  bool Erase(const LK& key) {
    if (Find(key) == nullptr) return false;  // Never clone for a miss.
    EraseKnown(&root_, 0, HashOf(key), key);
    if (root_ != nullptr && root_->entries.empty() &&
        root_->child_mask == 0) {
      root_.reset();
    }
    --size_;
    return true;
  }

  /// Calls `fn(key, value)` for every entry, in the map's deterministic
  /// (hash-chunk) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (root_ != nullptr) ForEachNode(*root_, fn);
  }

  /// An honest deep copy: freshly allocated nodes, values copied
  /// through `copy_value` (pass e.g. CowBox::DeepCopy to stop the value
  /// layer from sharing too).
  template <typename Fn>
  [[nodiscard]] PersistentMap Materialize(Fn&& copy_value) const {
    PersistentMap fresh;
    ForEach([&](const K& key, const V& value) {
      fresh.Emplace(key, copy_value(value));
    });
    return fresh;
  }
  [[nodiscard]] PersistentMap Materialize() const {
    return Materialize([](const V& value) { return value; });
  }

 private:
  static constexpr int kBits = 5;
  /// Last shift that still draws fresh hash bits; below it lives the
  /// sorted full-hash collision bucket.
  static constexpr int kMaxShift = 60;

  struct Node {
    /// Slot i (bit i) holds an inline entry / a child subtrie. The two
    /// masks are disjoint. Collision buckets (below kMaxShift) keep
    /// both masks zero and their entries sorted by key.
    uint32_t entry_mask = 0;
    uint32_t child_mask = 0;
    /// Entries / children packed in slot order (see PackedIndex).
    std::vector<value_type> entries;
    std::vector<std::shared_ptr<Node>> children;
  };

  template <typename LK>
  static uint64_t HashOf(const LK& key) {
    return static_cast<uint64_t>(Hash{}(key));
  }

  static uint32_t SlotBit(uint64_t hash, int shift) {
    return 1u << ((hash >> shift) & 31u);
  }

  /// Index of `bit`'s slot within the packed vector for `mask`.
  static size_t PackedIndex(uint32_t mask, uint32_t bit) {
    return static_cast<size_t>(std::popcount(mask & (bit - 1)));
  }

  static size_t NodeBytes(const Node& node) {
    size_t bytes = sizeof(Node) +
                   node.children.capacity() * sizeof(std::shared_ptr<Node>);
    for (const value_type& entry : node.entries) {
      bytes += sizeof(K) + CowApproxBytes(entry.second);
    }
    return bytes;
  }

  /// Clones `*slot` iff it is shared, and returns the now-writable
  /// node. Precondition: the node OWNING the slot is already writable
  /// (true for root_, and recursively true along any mutation path).
  static Node* Writable(std::shared_ptr<Node>* slot) {
    if (slot->use_count() != 1) {
      RecordCopy(NodeBytes(**slot));
      *slot = std::make_shared<Node>(**slot);
    }
    return slot->get();
  }

  V* EmplaceImpl(std::shared_ptr<Node>* slot, int shift, uint64_t hash,
                 K&& key, V&& value, bool* inserted) {
    if (*slot == nullptr) {
      *slot = std::make_shared<Node>();
      Node* node = slot->get();
      if (shift > kMaxShift) {
        node->entries.emplace_back(std::move(key), std::move(value));
      } else {
        node->entry_mask = SlotBit(hash, shift);
        node->entries.emplace_back(std::move(key), std::move(value));
      }
      *inserted = true;
      return &node->entries.front().second;
    }
    Node* node = Writable(slot);
    if (shift > kMaxShift) {
      // Full-hash collision bucket, sorted by key for content-
      // deterministic iteration.
      auto it = node->entries.begin();
      while (it != node->entries.end() && it->first < key) ++it;
      if (it != node->entries.end() && it->first == key) {
        *inserted = false;
        return &it->second;
      }
      it = node->entries.emplace(it, std::move(key), std::move(value));
      *inserted = true;
      return &it->second;
    }
    const uint32_t bit = SlotBit(hash, shift);
    if (node->entry_mask & bit) {
      const size_t index = PackedIndex(node->entry_mask, bit);
      value_type& existing = node->entries[index];
      if (existing.first == key) {
        *inserted = false;
        return &existing.second;
      }
      // Slot conflict: push the resident entry one level down, then
      // retry this level (the slot is now a child).
      value_type displaced = std::move(existing);
      node->entries.erase(node->entries.begin() +
                          static_cast<ptrdiff_t>(index));
      node->entry_mask &= ~bit;
      const size_t child_index = PackedIndex(node->child_mask, bit);
      node->children.insert(node->children.begin() +
                                static_cast<ptrdiff_t>(child_index),
                            nullptr);
      node->child_mask |= bit;
      bool displaced_inserted = false;
      EmplaceImpl(&node->children[child_index], shift + kBits,
                  HashOf(displaced.first), std::move(displaced.first),
                  std::move(displaced.second), &displaced_inserted);
      return EmplaceImpl(&node->children[child_index], shift + kBits, hash,
                         std::move(key), std::move(value), inserted);
    }
    if (node->child_mask & bit) {
      return EmplaceImpl(&node->children[PackedIndex(node->child_mask, bit)],
                         shift + kBits, hash, std::move(key),
                         std::move(value), inserted);
    }
    const size_t index = PackedIndex(node->entry_mask, bit);
    auto it = node->entries.emplace(
        node->entries.begin() + static_cast<ptrdiff_t>(index),
        std::move(key), std::move(value));
    node->entry_mask |= bit;
    *inserted = true;
    return &it->second;
  }

  /// Removes `key`, which the caller has verified to exist.
  template <typename LK>
  void EraseKnown(std::shared_ptr<Node>* slot, int shift, uint64_t hash,
                  const LK& key) {
    Node* node = Writable(slot);
    if (shift > kMaxShift) {
      for (auto it = node->entries.begin(); it != node->entries.end(); ++it) {
        if (it->first == key) {
          node->entries.erase(it);
          return;
        }
      }
      SP_CHECK(false);  // Caller verified presence.
    }
    const uint32_t bit = SlotBit(hash, shift);
    if (node->entry_mask & bit) {
      const size_t index = PackedIndex(node->entry_mask, bit);
      SP_CHECK(node->entries[index].first == key);
      node->entries.erase(node->entries.begin() +
                          static_cast<ptrdiff_t>(index));
      node->entry_mask &= ~bit;
      return;
    }
    SP_CHECK((node->child_mask & bit) != 0);
    const size_t child_index = PackedIndex(node->child_mask, bit);
    EraseKnown(&node->children[child_index], shift + kBits, hash, key);
    const Node& child = *node->children[child_index];
    if (child.entries.empty() && child.child_mask == 0) {
      node->children.erase(node->children.begin() +
                           static_cast<ptrdiff_t>(child_index));
      node->child_mask &= ~bit;
    }
  }

  template <typename Fn>
  static void ForEachNode(const Node& node, Fn& fn) {
    if (node.entry_mask == 0 && node.child_mask == 0) {
      for (const value_type& entry : node.entries) {
        fn(entry.first, entry.second);
      }
      return;
    }
    uint32_t remaining = node.entry_mask | node.child_mask;
    while (remaining != 0) {
      const uint32_t bit = remaining & (~remaining + 1);  // Lowest set bit.
      remaining &= remaining - 1;
      if (node.entry_mask & bit) {
        const value_type& entry =
            node.entries[PackedIndex(node.entry_mask, bit)];
        fn(entry.first, entry.second);
      } else {
        ForEachNode(*node.children[PackedIndex(node.child_mask, bit)], fn);
      }
    }
  }

 public:
  /// Forward iterator over entries in the map's deterministic order.
  /// Yields `const std::pair<K, V>&`, so range-for destructuring
  /// (`for (const auto& [k, v] : map)`) works as with std containers.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = PersistentMap::value_type;
    using difference_type = ptrdiff_t;
    using pointer = const value_type*;
    using reference = const value_type&;

    const_iterator() = default;

    reference operator*() const { return *current_; }
    pointer operator->() const { return current_; }

    const_iterator& operator++() {
      Advance();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator before = *this;
      Advance();
      return before;
    }

    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.current_ == b.current_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.current_ != b.current_;
    }

   private:
    friend class PersistentMap;
    struct Frame {
      const Node* node = nullptr;
      uint32_t next = 0;  ///< Next slot (branch node) / entry (bucket).
    };

    explicit const_iterator(const Node* root) {
      if (root != nullptr) {
        stack_.push_back({root, 0});
        Advance();
      }
    }

    void Advance() {
      while (!stack_.empty()) {
        Frame& frame = stack_.back();
        const Node* node = frame.node;
        if (node->entry_mask == 0 && node->child_mask == 0) {
          if (frame.next < node->entries.size()) {
            current_ = &node->entries[frame.next++];
            return;
          }
          stack_.pop_back();
          continue;
        }
        const uint32_t seen =
            frame.next >= 32 ? ~0u : ((1u << frame.next) - 1);
        const uint32_t remaining =
            (node->entry_mask | node->child_mask) & ~seen;
        if (remaining == 0) {
          stack_.pop_back();
          continue;
        }
        const uint32_t slot =
            static_cast<uint32_t>(std::countr_zero(remaining));
        frame.next = slot + 1;
        const uint32_t bit = 1u << slot;
        if (node->entry_mask & bit) {
          current_ = &node->entries[PackedIndex(node->entry_mask, bit)];
          return;
        }
        stack_.push_back(
            {node->children[PackedIndex(node->child_mask, bit)].get(), 0});
      }
      current_ = nullptr;
    }

    std::vector<Frame> stack_;
    const value_type* current_ = nullptr;
  };

  [[nodiscard]] const_iterator begin() const {
    return const_iterator(root_.get());
  }
  [[nodiscard]] const_iterator end() const { return const_iterator(); }

 private:
  std::shared_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace storypivot::cow

#endif  // STORYPIVOT_COW_PERSISTENT_MAP_H_
