#ifndef STORYPIVOT_COW_STATS_H_
#define STORYPIVOT_COW_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace storypivot::cow {

/// Cumulative copy-on-write cost counters for the whole process
/// (DESIGN.md §15). Every node or payload the cow layer physically
/// duplicates — a HAMT node clone, a CowBox payload clone, a
/// PersistentVector path copy — bumps these; structural shares bump
/// nothing. The serving tier reads the counters around a snapshot
/// capture to report "bytes copied" per publish; the difference between
/// a structure's approximate resident size and the copied bytes is the
/// shared (zero-cost) part of the epoch.
///
/// Relaxed atomics: the counters are monotonic telemetry, not a
/// synchronization mechanism. All cow mutations happen on the single
/// writer thread anyway; the atomics just make cross-thread reads of the
/// totals well-defined.
struct CopyCounters {
  uint64_t copies = 0;  ///< Physical duplications performed.
  uint64_t bytes = 0;   ///< Approximate bytes those duplications touched.
};

/// Adds one duplication of ~`bytes` bytes to the process-wide counters.
void RecordCopy(uint64_t bytes);

/// Current process-wide totals.
[[nodiscard]] CopyCounters ReadCopyCounters();

/// Approximate resident size of a value, used for the bytes column of
/// the copy counters. ADL customization point: overload
/// `CowApproxBytes(const T&)` next to T for container-aware estimates;
/// the default is the shallow object size.
template <typename T>
size_t CowApproxBytes(const T&) {
  return sizeof(T);
}

}  // namespace storypivot::cow

#endif  // STORYPIVOT_COW_STATS_H_
