#ifndef STORYPIVOT_COW_COW_BOX_H_
#define STORYPIVOT_COW_COW_BOX_H_

#include <cstddef>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cow/stats.h"

namespace storypivot::cow {

/// Container-aware byte estimates for the copy counters (the generic
/// default in stats.h is the shallow sizeof).
template <typename T>
size_t CowApproxBytes(const std::vector<T>& v) {
  return sizeof(v) + v.capacity() * sizeof(T);
}

template <typename T, typename H, typename E, typename A>
size_t CowApproxBytes(const std::unordered_set<T, H, E, A>& s) {
  // Element + bucket-node overhead, roughly.
  return sizeof(s) + s.size() * (sizeof(T) + 2 * sizeof(void*));
}

/// A copy-on-write box around a single value (DESIGN.md §15).
///
/// Copying the box is O(1) — both copies share one heap payload. The
/// payload is cloned lazily, on the first `Mutate()` after the box
/// became shared; while the box is the payload's only owner, `Mutate()`
/// writes in place, so an unshared box costs the same as a plain value.
///
/// This is the freeze primitive for rarely-mutated blobs (posting
/// lists, tombstone sets, vocabular state): a snapshot copies the box,
/// the writer's next mutation clones the payload, and the snapshot
/// keeps the old payload alive for as long as it needs it.
///
/// Sharing/threading contract (same as the rest of the cow layer): all
/// mutations happen on the single writer thread; frozen copies may be
/// read from any thread without synchronization, because a shared
/// payload is never written (use_count() > 1 forces the clone).
template <typename T>
class CowBox {
 public:
  /// A default box holds a default-constructed payload.
  CowBox() : value_(std::make_shared<T>()) {}
  explicit CowBox(T value) : value_(std::make_shared<T>(std::move(value))) {}

  // O(1) structural share. The whole point of the type.
  CowBox(const CowBox&) = default;
  CowBox& operator=(const CowBox&) = default;
  CowBox(CowBox&&) noexcept = default;
  CowBox& operator=(CowBox&&) noexcept = default;

  /// Read access to the (possibly shared) payload.
  [[nodiscard]] const T& read() const { return *value_; }
  [[nodiscard]] const T* operator->() const { return value_.get(); }

  /// Write access. Clones the payload first iff it is shared (and
  /// records the clone in the process copy counters).
  [[nodiscard]] T* Mutate() {
    if (value_.use_count() != 1) {
      RecordCopy(CowApproxBytes(*value_));
      value_ = std::make_shared<T>(*value_);
    }
    return value_.get();
  }

  /// An independent deep copy (for honest deep-clone paths; a plain
  /// copy of the box would share).
  [[nodiscard]] CowBox DeepCopy() const {
    RecordCopy(CowApproxBytes(*value_));
    return CowBox(*value_);
  }

  /// True when this box is the payload's only owner (no frozen copy is
  /// still holding it).
  [[nodiscard]] bool unique() const { return value_.use_count() == 1; }

 private:
  std::shared_ptr<T> value_;
};

}  // namespace storypivot::cow

#endif  // STORYPIVOT_COW_COW_BOX_H_
