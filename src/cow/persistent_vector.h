#ifndef STORYPIVOT_COW_PERSISTENT_VECTOR_H_
#define STORYPIVOT_COW_PERSISTENT_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cow/stats.h"
#include "util/logging.h"

namespace storypivot::cow {

/// A persistent vector — a 32-way bit-partitioned trie over the element
/// index, with copy-on-write path copying (DESIGN.md §15).
///
/// Elements live in fixed-size (32) leaf chunks; internal nodes fan out
/// on successive 5-bit chunks of the index. Nodes are shared_ptr'd:
///
///   * COPY = FREEZE. Copying the vector copies one pointer; both
///     vectors share every chunk. O(1).
///   * PATH COPY ON WRITE. Set/PushBack/PopBack clone only the O(log32 n)
///     nodes on the path to the touched leaf that are still shared with
///     a frozen copy; unique nodes are written in place, so an unshared
///     vector mutates at ordinary-vector cost.
///
/// Threading contract matches the rest of the cow layer: single-writer
/// mutations; frozen copies readable from any thread (shared nodes are
/// never written).
///
/// References returned by Get()/At() are invalidated by any subsequent
/// mutation of the same vector.
template <typename T>
class PersistentVector {
 public:
  PersistentVector() = default;

  // O(1) structural share — this IS Freeze().
  PersistentVector(const PersistentVector&) = default;
  PersistentVector& operator=(const PersistentVector&) = default;
  PersistentVector(PersistentVector&&) noexcept = default;
  PersistentVector& operator=(PersistentVector&&) noexcept = default;

  /// Bulk builder: the cheap way to lift an existing flat vector.
  static PersistentVector FromVector(const std::vector<T>& values) {
    PersistentVector out;
    for (const T& value : values) out.PushBack(value);
    return out;
  }

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    root_.reset();
    size_ = 0;
    shift_ = 0;
  }

  [[nodiscard]] const T& At(size_t index) const {
    SP_CHECK(index < size_);
    const Node* node = root_.get();
    for (int shift = shift_; shift > 0; shift -= kBits) {
      node = node->children[(index >> shift) & kMask].get();
    }
    return node->values[index & kMask];
  }

  [[nodiscard]] const T& back() const { return At(size_ - 1); }

  /// Replaces the element at `index`, path-copying shared nodes.
  void Set(size_t index, T value) {
    SP_CHECK(index < size_);
    std::shared_ptr<Node>* slot = &root_;
    for (int shift = shift_; shift > 0; shift -= kBits) {
      Node* node = Writable(slot);
      slot = &node->children[(index >> shift) & kMask];
    }
    Writable(slot)->values[index & kMask] = std::move(value);
  }

  /// Mutable access to the element at `index` (path-copies like Set).
  /// Valid until the next mutation of this vector.
  [[nodiscard]] T* Mutable(size_t index) {
    SP_CHECK(index < size_);
    std::shared_ptr<Node>* slot = &root_;
    for (int shift = shift_; shift > 0; shift -= kBits) {
      Node* node = Writable(slot);
      slot = &node->children[(index >> shift) & kMask];
    }
    return &Writable(slot)->values[index & kMask];
  }

  void PushBack(T value) {
    if (root_ == nullptr) {
      root_ = std::make_shared<Node>();
      root_->values.push_back(std::move(value));
      size_ = 1;
      shift_ = 0;
      return;
    }
    if (size_ == Capacity()) {
      // Root overflow: grow a new root above the old one.
      auto new_root = std::make_shared<Node>();
      new_root->children.resize(kWidth);
      new_root->children[0] = std::move(root_);
      root_ = std::move(new_root);
      shift_ += kBits;
    }
    const size_t index = size_;
    std::shared_ptr<Node>* slot = &root_;
    for (int shift = shift_; shift > 0; shift -= kBits) {
      Node* node = Writable(slot);
      if (node->children.empty()) node->children.resize(kWidth);
      slot = &node->children[(index >> shift) & kMask];
      if (*slot == nullptr) *slot = std::make_shared<Node>();
    }
    Writable(slot)->values.push_back(std::move(value));
    ++size_;
  }

  void PopBack() {
    SP_CHECK(size_ > 0);
    const size_t index = size_ - 1;
    std::shared_ptr<Node>* slot = &root_;
    std::vector<std::shared_ptr<Node>*> path;
    for (int shift = shift_; shift > 0; shift -= kBits) {
      Node* node = Writable(slot);
      path.push_back(slot);
      slot = &node->children[(index >> shift) & kMask];
    }
    Node* leaf = Writable(slot);
    leaf->values.pop_back();
    // Drop now-empty nodes bottom-up (the root itself is kept; we never
    // shrink shift_, which keeps element paths stable).
    if (leaf->values.empty() && !path.empty()) {
      slot->reset();
      for (size_t level = path.size(); level-- > 1;) {
        Node* node = path[level]->get();
        bool any = false;
        for (const auto& child : node->children) {
          if (child != nullptr) {
            any = true;
            break;
          }
        }
        if (any) break;
        path[level]->reset();
      }
    }
    --size_;
    if (size_ == 0) clear();
  }

  /// Calls `fn(element)` for every element, in index order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (root_ != nullptr) ForEachNode(*root_, shift_, fn);
  }

  /// An honest deep copy with freshly allocated nodes; values copied
  /// through `copy_value` (e.g. CowBox::DeepCopy).
  template <typename Fn>
  [[nodiscard]] PersistentVector Materialize(Fn&& copy_value) const {
    PersistentVector fresh;
    ForEach([&](const T& value) { fresh.PushBack(copy_value(value)); });
    return fresh;
  }
  [[nodiscard]] PersistentVector Materialize() const {
    return Materialize([](const T& value) { return value; });
  }

 private:
  static constexpr int kBits = 5;
  static constexpr size_t kWidth = 32;
  static constexpr size_t kMask = kWidth - 1;

  struct Node {
    std::vector<std::shared_ptr<Node>> children;  ///< Internal nodes.
    std::vector<T> values;                        ///< Leaf chunks.
  };

  [[nodiscard]] size_t Capacity() const {
    return kWidth << static_cast<size_t>(shift_);
  }

  static size_t NodeBytes(const Node& node) {
    size_t bytes = sizeof(Node) +
                   node.children.capacity() * sizeof(std::shared_ptr<Node>);
    for (const T& value : node.values) bytes += CowApproxBytes(value);
    return bytes;
  }

  /// Clones `*slot` iff shared; see PersistentMap::Writable for the
  /// precondition (owning node already writable).
  static Node* Writable(std::shared_ptr<Node>* slot) {
    if (slot->use_count() != 1) {
      RecordCopy(NodeBytes(**slot));
      *slot = std::make_shared<Node>(**slot);
    }
    return slot->get();
  }

  template <typename Fn>
  static void ForEachNode(const Node& node, int shift, Fn& fn) {
    if (shift == 0) {
      for (const T& value : node.values) fn(value);
      return;
    }
    for (const auto& child : node.children) {
      if (child != nullptr) ForEachNode(*child, shift - kBits, fn);
    }
  }

  std::shared_ptr<Node> root_;
  size_t size_ = 0;
  int shift_ = 0;
};

}  // namespace storypivot::cow

#endif  // STORYPIVOT_COW_PERSISTENT_VECTOR_H_
