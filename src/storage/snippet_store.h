#ifndef STORYPIVOT_STORAGE_SNIPPET_STORE_H_
#define STORYPIVOT_STORAGE_SNIPPET_STORE_H_

#include <unordered_map>
#include <vector>

#include "model/ids.h"
#include "model/snippet.h"
#include "util/status.h"

namespace storypivot {

/// Owns all snippets known to an engine, keyed by SnippetId, and assigns
/// ids to snippets that arrive without one. Removal is supported because
/// the demonstration lets users delete documents from the system.
class SnippetStore {
 public:
  SnippetStore() = default;

  SnippetStore(const SnippetStore&) = delete;
  SnippetStore& operator=(const SnippetStore&) = delete;

  /// Inserts a snippet, assigning a fresh id when `snippet.id` is
  /// kInvalidSnippetId. Returns the stored snippet's id, or an error if an
  /// explicit id already exists.
  [[nodiscard]] Result<SnippetId> Insert(Snippet snippet);

  /// Returns the snippet or nullptr.
  [[nodiscard]] const Snippet* Find(SnippetId id) const;

  /// Removes a snippet; returns NotFound if absent.
  [[nodiscard]] Status Remove(SnippetId id);

  /// Number of stored snippets.
  size_t size() const { return snippets_.size(); }

  /// Invokes `fn(snippet)` for every stored snippet (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [id, snippet] : snippets_) fn(snippet);
  }

  /// Ids of all snippets extracted from `document_url`.
  std::vector<SnippetId> FindByDocument(const std::string& url) const;

  /// The id the next auto-assigned snippet will get. Monotone: removals
  /// never roll it back, so ids are never reused.
  [[nodiscard]] SnippetId next_id() const { return next_id_; }

  /// Fast-forwards the id counter (never backwards) when restoring a
  /// snapshot, so post-restore inserts continue the original id stream
  /// even if the highest-id snippets had been removed.
  void AdoptNextId(SnippetId id) {
    if (id > next_id_) next_id_ = id;
  }

 private:
  std::unordered_map<SnippetId, Snippet> snippets_;
  std::unordered_map<std::string, std::vector<SnippetId>> by_document_;
  SnippetId next_id_ = 0;
};

}  // namespace storypivot

#endif  // STORYPIVOT_STORAGE_SNIPPET_STORE_H_
