#ifndef STORYPIVOT_STORAGE_BUCKETED_INDEX_H_
#define STORYPIVOT_STORAGE_BUCKETED_INDEX_H_

#include <map>
#include <vector>

#include "model/ids.h"
#include "model/time.h"

namespace storypivot {

/// An alternative temporal index that hashes entries into fixed-width
/// time buckets (ordered map bucket -> unsorted id list). Compared to the
/// sorted-vector `TemporalIndex`:
///
///   - Insert is O(log #buckets) regardless of arrival order — better
///     under heavily out-of-order streams, where the sorted vector pays
///     O(n) memmove for early timestamps.
///   - Window scans touch ceil(window / bucket_width) + 1 buckets and
///     filter boundary buckets — better when the window is much smaller
///     than the populated range, slightly worse for tiny windows inside
///     a single hot bucket.
///
/// Functionally equivalent to TemporalIndex except that results within a
/// window are NOT globally time-sorted (bucket order only); callers that
/// need strict ordering sort the result. The engine's identifiers only
/// need set semantics, so either index backs them correctly (equivalence
/// is property-tested).
class BucketedTemporalIndex {
 public:
  explicit BucketedTemporalIndex(Timestamp bucket_width = kSecondsPerDay);

  /// Inserts an (timestamp, id) pair.
  void Insert(Timestamp ts, SnippetId id);

  /// Removes the pair; returns false if not present.
  bool Erase(Timestamp ts, SnippetId id);

  /// Ids with lo <= timestamp <= hi, in bucket order (not globally
  /// time-sorted).
  std::vector<SnippetId> IdsInWindow(Timestamp lo, Timestamp hi) const;

  /// Number of entries with lo <= timestamp <= hi.
  size_t CountInWindow(Timestamp lo, Timestamp hi) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Timestamp bucket_width() const { return bucket_width_; }
  size_t num_buckets() const { return buckets_.size(); }

 private:
  struct Entry {
    Timestamp ts;
    SnippetId id;
    bool operator==(const Entry&) const = default;
  };

  int64_t BucketOf(Timestamp ts) const;

  Timestamp bucket_width_;
  std::map<int64_t, std::vector<Entry>> buckets_;
  size_t size_ = 0;
};

}  // namespace storypivot

#endif  // STORYPIVOT_STORAGE_BUCKETED_INDEX_H_
