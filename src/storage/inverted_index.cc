#include "storage/inverted_index.h"

#include <algorithm>

namespace storypivot {

void InvertedIndex::Add(SnippetId id, const text::TermVector& terms) {
  for (const auto& [term, weight] : terms.entries()) {
    if (weight <= 0.0) continue;
    postings_[term].push_back(id);
    ++num_postings_;
  }
}

void InvertedIndex::Remove(SnippetId id) { tombstones_.insert(id); }

void InvertedIndex::AppendPostings(text::TermId term,
                                   std::vector<SnippetId>* out) const {
  auto it = postings_.find(term);
  if (it == postings_.end()) return;
  for (SnippetId id : it->second) {
    if (!tombstones_.contains(id)) out->push_back(id);
  }
}

std::vector<SnippetId> InvertedIndex::Candidates(
    const text::TermVector& probe) const {
  std::vector<SnippetId> out;
  for (const auto& [term, weight] : probe.entries()) {
    if (weight <= 0.0) continue;
    AppendPostings(term, &out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void InvertedIndex::Compact() {
  if (tombstones_.empty()) return;
  size_t live = 0;
  for (auto it = postings_.begin(); it != postings_.end();) {
    std::vector<SnippetId>& list = it->second;
    std::erase_if(list,
                  [this](SnippetId id) { return tombstones_.contains(id); });
    if (list.empty()) {
      it = postings_.erase(it);
    } else {
      live += list.size();
      ++it;
    }
  }
  num_postings_ = live;
  tombstones_.clear();
}

InvertedIndex InvertedIndex::Clone() const {
  InvertedIndex copy;
  copy.postings_ = postings_;
  copy.tombstones_ = tombstones_;
  copy.num_postings_ = num_postings_;
  return copy;
}

}  // namespace storypivot
