#include "storage/inverted_index.h"

#include <algorithm>

namespace storypivot {

void InvertedIndex::Add(SnippetId id, const text::TermVector& terms) {
  for (const auto& [term, weight] : terms.entries()) {
    if (weight <= 0.0) continue;
    postings_.GetOrInsert(term).Mutate()->push_back(id);
    ++num_postings_;
  }
}

void InvertedIndex::Remove(SnippetId id) { tombstones_.Mutate()->insert(id); }

void InvertedIndex::AppendPostings(text::TermId term,
                                   std::vector<SnippetId>* out) const {
  const PostingList* list = postings_.Find(term);
  if (list == nullptr) return;
  const std::unordered_set<SnippetId>& dead = tombstones_.read();
  for (SnippetId id : list->read()) {
    if (!dead.contains(id)) out->push_back(id);
  }
}

std::vector<SnippetId> InvertedIndex::Candidates(
    const text::TermVector& probe) const {
  std::vector<SnippetId> out;
  for (const auto& [term, weight] : probe.entries()) {
    if (weight <= 0.0) continue;
    AppendPostings(term, &out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void InvertedIndex::Compact() {
  if (tombstones_.read().empty()) return;
  // Mutating the map invalidates its iterators, so collect the term set
  // first, then rewrite list by list.
  std::vector<text::TermId> terms;
  postings_.ForEach([&terms](text::TermId term, const PostingList&) {
    terms.push_back(term);
  });
  const std::unordered_set<SnippetId>& dead = tombstones_.read();
  size_t live = 0;
  for (text::TermId term : terms) {
    PostingList* list = postings_.FindMutable(term);
    std::vector<SnippetId>* ids = list->Mutate();
    std::erase_if(*ids, [&dead](SnippetId id) { return dead.contains(id); });
    if (ids->empty()) {
      postings_.Erase(term);
    } else {
      live += ids->size();
    }
  }
  num_postings_ = live;
  tombstones_.Mutate()->clear();
}

InvertedIndex InvertedIndex::Freeze() const {
  InvertedIndex frozen;
  frozen.postings_ = postings_;      // O(1) structural share.
  frozen.tombstones_ = tombstones_;  // O(1) structural share.
  frozen.num_postings_ = num_postings_;
  return frozen;
}

InvertedIndex InvertedIndex::Clone() const {
  InvertedIndex copy;
  copy.postings_ = postings_.Materialize(
      [](const PostingList& list) { return list.DeepCopy(); });
  copy.tombstones_ = tombstones_.DeepCopy();
  copy.num_postings_ = num_postings_;
  return copy;
}

}  // namespace storypivot
