#include "storage/bucketed_index.h"

#include <algorithm>

#include "util/logging.h"

namespace storypivot {

BucketedTemporalIndex::BucketedTemporalIndex(Timestamp bucket_width)
    : bucket_width_(bucket_width) {
  SP_CHECK(bucket_width > 0);
}

int64_t BucketedTemporalIndex::BucketOf(Timestamp ts) const {
  // Floor division so negative timestamps bucket correctly.
  int64_t b = ts / bucket_width_;
  if (ts < 0 && ts % bucket_width_ != 0) --b;
  return b;
}

void BucketedTemporalIndex::Insert(Timestamp ts, SnippetId id) {
  buckets_[BucketOf(ts)].push_back({ts, id});
  ++size_;
}

bool BucketedTemporalIndex::Erase(Timestamp ts, SnippetId id) {
  auto it = buckets_.find(BucketOf(ts));
  if (it == buckets_.end()) return false;
  std::vector<Entry>& bucket = it->second;
  auto entry = std::find(bucket.begin(), bucket.end(), Entry{ts, id});
  if (entry == bucket.end()) return false;
  // Swap-and-pop: order within a bucket is not part of the contract.
  *entry = bucket.back();
  bucket.pop_back();
  if (bucket.empty()) buckets_.erase(it);
  --size_;
  return true;
}

std::vector<SnippetId> BucketedTemporalIndex::IdsInWindow(
    Timestamp lo, Timestamp hi) const {
  std::vector<SnippetId> out;
  if (lo > hi) return out;
  for (auto it = buckets_.lower_bound(BucketOf(lo));
       it != buckets_.end() && it->first <= BucketOf(hi); ++it) {
    for (const Entry& entry : it->second) {
      if (entry.ts >= lo && entry.ts <= hi) out.push_back(entry.id);
    }
  }
  return out;
}

size_t BucketedTemporalIndex::CountInWindow(Timestamp lo,
                                            Timestamp hi) const {
  size_t count = 0;
  if (lo > hi) return 0;
  for (auto it = buckets_.lower_bound(BucketOf(lo));
       it != buckets_.end() && it->first <= BucketOf(hi); ++it) {
    for (const Entry& entry : it->second) {
      if (entry.ts >= lo && entry.ts <= hi) ++count;
    }
  }
  return count;
}

}  // namespace storypivot
