#ifndef STORYPIVOT_STORAGE_TEMPORAL_INDEX_H_
#define STORYPIVOT_STORAGE_TEMPORAL_INDEX_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "model/ids.h"
#include "model/time.h"

namespace storypivot {

/// An ordered index of snippet ids by timestamp, supporting out-of-order
/// insertion, deletion, and the sliding-window scans that temporal story
/// identification relies on (§2.2, Fig. 2b). Backed by a sorted vector —
/// arrivals are mostly near the end of the time axis, so inserts are
/// amortised cheap, and window scans are cache-friendly.
class TemporalIndex {
 public:
  using Entry = std::pair<Timestamp, SnippetId>;

  TemporalIndex() = default;

  /// Inserts an (timestamp, id) pair. Duplicate ids are not checked.
  void Insert(Timestamp ts, SnippetId id);

  /// Removes the pair; returns false if not present.
  bool Erase(Timestamp ts, SnippetId id);

  /// Calls `fn` for every entry with lo <= timestamp <= hi, in time order.
  void ForEachInWindow(Timestamp lo, Timestamp hi,
                       const std::function<void(Timestamp, SnippetId)>& fn)
      const;

  /// Returns the ids in [lo, hi], in time order.
  std::vector<SnippetId> IdsInWindow(Timestamp lo, Timestamp hi) const;

  /// Number of entries with lo <= timestamp <= hi.
  size_t CountInWindow(Timestamp lo, Timestamp hi) const;

  /// All entries in time order.
  const std::vector<Entry>& entries() const { return entries_; }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Earliest / latest timestamps; undefined when empty.
  Timestamp min_time() const { return entries_.front().first; }
  Timestamp max_time() const { return entries_.back().first; }

 private:
  std::vector<Entry>::const_iterator LowerBound(Timestamp ts) const;

  std::vector<Entry> entries_;  // Sorted by (timestamp, id).
};

}  // namespace storypivot

#endif  // STORYPIVOT_STORAGE_TEMPORAL_INDEX_H_
