#ifndef STORYPIVOT_STORAGE_TEMPORAL_INDEX_H_
#define STORYPIVOT_STORAGE_TEMPORAL_INDEX_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "cow/cow_box.h"
#include "cow/persistent_vector.h"
#include "model/ids.h"
#include "model/time.h"

namespace storypivot {

/// An ordered index of snippet ids by timestamp, supporting out-of-order
/// insertion, deletion, and the sliding-window scans that temporal story
/// identification relies on (§2.2, Fig. 2b).
///
/// Backed by sorted fixed-capacity chunks (CowBox'd runs) hung off a
/// persistent-vector spine, so the index is copy-on-write: copying it is
/// O(1) structural sharing, and a mutation after a copy touches one
/// chunk plus a spine path instead of the whole index. That keeps
/// serving-tier snapshot captures O(delta) while preserving the old
/// sorted-vector behavior — arrivals near the end of the time axis stay
/// amortised cheap, window scans stay sequential runs.
class TemporalIndex {
 public:
  using Entry = std::pair<Timestamp, SnippetId>;

  TemporalIndex() = default;

  // O(1) structural share (chunks + spine are copy-on-write).
  TemporalIndex(const TemporalIndex&) = default;
  TemporalIndex& operator=(const TemporalIndex&) = default;
  TemporalIndex(TemporalIndex&&) noexcept = default;
  TemporalIndex& operator=(TemporalIndex&&) noexcept = default;

  /// Inserts an (timestamp, id) pair. Duplicate ids are not checked.
  void Insert(Timestamp ts, SnippetId id);

  /// Removes the pair; returns false if not present.
  bool Erase(Timestamp ts, SnippetId id);

  /// Calls `fn` for every entry with lo <= timestamp <= hi, in time order.
  void ForEachInWindow(Timestamp lo, Timestamp hi,
                       const std::function<void(Timestamp, SnippetId)>& fn)
      const;

  /// Calls `fn` for every entry, in time order.
  void ForEach(const std::function<void(Timestamp, SnippetId)>& fn) const;

  /// Returns the ids in [lo, hi], in time order.
  std::vector<SnippetId> IdsInWindow(Timestamp lo, Timestamp hi) const;

  /// Number of entries with lo <= timestamp <= hi.
  size_t CountInWindow(Timestamp lo, Timestamp hi) const;

  /// All entries in time order, materialized into a flat vector. O(n) —
  /// prefer ForEach / ForEachInWindow on hot paths.
  std::vector<Entry> entries() const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Earliest / latest timestamps; undefined when empty.
  Timestamp min_time() const;
  Timestamp max_time() const;

  /// An honest deep copy (freshly allocated chunks, nothing shared).
  TemporalIndex Materialize() const;

 private:
  using Chunk = cow::CowBox<std::vector<Entry>>;

  /// Chunk capacity before a split. Splits rebuild the spine (O(#chunks)
  /// pointer copies) but happen only every ~kMaxChunk/2 inserts per run.
  static constexpr size_t kMaxChunk = 512;

  /// Index of the chunk that owns `entry` (first chunk whose last entry
  /// is >= entry; the last chunk when entry sorts past everything).
  /// Precondition: not empty.
  size_t ChunkFor(const Entry& entry) const;

  /// Index of the first chunk whose last timestamp is >= lo (== number
  /// of chunks when none).
  size_t FirstChunkNotBefore(Timestamp lo) const;

  /// Replaces chunk `index` with its two halves (spine rebuild).
  void SplitChunk(size_t index);

  /// Drops the (now empty) chunk at `index` (spine rebuild).
  void RemoveChunk(size_t index);

  cow::PersistentVector<Chunk> chunks_;  // Sorted, non-overlapping runs.
  size_t size_ = 0;
};

}  // namespace storypivot

#endif  // STORYPIVOT_STORAGE_TEMPORAL_INDEX_H_
