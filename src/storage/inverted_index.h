#ifndef STORYPIVOT_STORAGE_INVERTED_INDEX_H_
#define STORYPIVOT_STORAGE_INVERTED_INDEX_H_

#include <unordered_set>
#include <vector>

#include "cow/cow_box.h"
#include "cow/persistent_map.h"
#include "model/ids.h"
#include "text/term_vector.h"
#include "text/vocabulary.h"

namespace storypivot {

/// Term -> snippet-id posting lists, used to generate candidate snippets
/// that share at least one entity or keyword with a probe. Deletions are
/// lazy (tombstoned) and reclaimed by Compact(), which callers or the
/// engine trigger when the tombstone ratio grows.
///
/// Posting lists live in CowBox'd vectors hung off a persistent (HAMT)
/// map, so Freeze() is an O(1) structural share and a mutation after a
/// freeze copies only the touched posting list plus a trie path — the
/// basis of the serving tier's O(delta) snapshot capture (DESIGN.md §15).
class InvertedIndex {
 public:
  InvertedIndex() = default;

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Adds `id` to the posting list of every term in `terms`.
  void Add(SnippetId id, const text::TermVector& terms);

  /// Tombstones `id` everywhere it was added.
  void Remove(SnippetId id);

  /// Appends the live ids posted under `term` to `out` (may contain ids
  /// posted under several probe terms more than once; callers dedupe).
  void AppendPostings(text::TermId term, std::vector<SnippetId>* out) const;

  /// Collects the distinct live candidate ids sharing >= 1 term with
  /// `probe`.
  std::vector<SnippetId> Candidates(const text::TermVector& probe) const;

  /// Physically removes tombstoned entries.
  void Compact();

  /// O(1) frozen copy sharing every posting list with this index; the
  /// copy is immune to later writes (copy-on-write). Copying is still
  /// disallowed so large-index copies stay deliberate.
  [[nodiscard]] InvertedIndex Freeze() const;

  /// Honest deep copy — freshly allocated posting lists, nothing shared.
  /// Kept for the deep-capture baseline (serve/ReadSnapshot::CaptureDeep,
  /// DESIGN.md §15).
  [[nodiscard]] InvertedIndex Clone() const;

  /// Live postings count (approximate cost indicator).
  size_t num_postings() const { return num_postings_; }
  size_t num_tombstones() const { return tombstones_.read().size(); }

 private:
  using PostingList = cow::CowBox<std::vector<SnippetId>>;

  cow::PersistentMap<text::TermId, PostingList> postings_;
  cow::CowBox<std::unordered_set<SnippetId>> tombstones_;
  size_t num_postings_ = 0;
};

}  // namespace storypivot

#endif  // STORYPIVOT_STORAGE_INVERTED_INDEX_H_
