#ifndef STORYPIVOT_STORAGE_INVERTED_INDEX_H_
#define STORYPIVOT_STORAGE_INVERTED_INDEX_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "model/ids.h"
#include "text/term_vector.h"
#include "text/vocabulary.h"

namespace storypivot {

/// Term -> snippet-id posting lists, used to generate candidate snippets
/// that share at least one entity or keyword with a probe. Deletions are
/// lazy (tombstoned) and reclaimed by Compact(), which callers or the
/// engine trigger when the tombstone ratio grows.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Adds `id` to the posting list of every term in `terms`.
  void Add(SnippetId id, const text::TermVector& terms);

  /// Tombstones `id` everywhere it was added.
  void Remove(SnippetId id);

  /// Appends the live ids posted under `term` to `out` (may contain ids
  /// posted under several probe terms more than once; callers dedupe).
  void AppendPostings(text::TermId term, std::vector<SnippetId>* out) const;

  /// Collects the distinct live candidate ids sharing >= 1 term with
  /// `probe`.
  std::vector<SnippetId> Candidates(const text::TermVector& probe) const;

  /// Physically removes tombstoned entries.
  void Compact();

  /// Deep copy. Copying is disallowed (accidental copies of a large
  /// index are almost always bugs), so snapshot capture asks for one
  /// explicitly (serve/ReadSnapshot, DESIGN.md §14).
  [[nodiscard]] InvertedIndex Clone() const;

  /// Live postings count (approximate cost indicator).
  size_t num_postings() const { return num_postings_; }
  size_t num_tombstones() const { return tombstones_.size(); }

 private:
  std::unordered_map<text::TermId, std::vector<SnippetId>> postings_;
  std::unordered_set<SnippetId> tombstones_;
  size_t num_postings_ = 0;
};

}  // namespace storypivot

#endif  // STORYPIVOT_STORAGE_INVERTED_INDEX_H_
