#include "storage/snippet_store.h"

#include <algorithm>

#include "util/strings.h"

namespace storypivot {

Result<SnippetId> SnippetStore::Insert(Snippet snippet) {
  if (snippet.id == kInvalidSnippetId) {
    snippet.id = next_id_++;
  } else {
    next_id_ = std::max(next_id_, snippet.id + 1);
  }
  SnippetId id = snippet.id;
  std::string url = snippet.document_url;
  auto [it, inserted] = snippets_.emplace(id, std::move(snippet));
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("snippet %llu already stored",
                  static_cast<unsigned long long>(id)));
  }
  if (!url.empty()) by_document_[url].push_back(id);
  return id;
}

const Snippet* SnippetStore::Find(SnippetId id) const {
  auto it = snippets_.find(id);
  return it == snippets_.end() ? nullptr : &it->second;
}

Status SnippetStore::Remove(SnippetId id) {
  auto it = snippets_.find(id);
  if (it == snippets_.end()) {
    return Status::NotFound(StrFormat(
        "snippet %llu", static_cast<unsigned long long>(id)));
  }
  if (!it->second.document_url.empty()) {
    auto doc_it = by_document_.find(it->second.document_url);
    if (doc_it != by_document_.end()) {
      std::erase(doc_it->second, id);
      if (doc_it->second.empty()) by_document_.erase(doc_it);
    }
  }
  snippets_.erase(it);
  return Status::OK();
}

std::vector<SnippetId> SnippetStore::FindByDocument(
    const std::string& url) const {
  auto it = by_document_.find(url);
  if (it == by_document_.end()) return {};
  return it->second;
}

}  // namespace storypivot
