#include "storage/temporal_index.h"

#include <algorithm>

namespace storypivot {

std::vector<TemporalIndex::Entry>::const_iterator TemporalIndex::LowerBound(
    Timestamp ts) const {
  return std::lower_bound(entries_.begin(), entries_.end(), ts,
                          [](const Entry& e, Timestamp t) {
                            return e.first < t;
                          });
}

void TemporalIndex::Insert(Timestamp ts, SnippetId id) {
  Entry entry{ts, id};
  auto it = std::lower_bound(entries_.begin(), entries_.end(), entry);
  entries_.insert(it, entry);
}

bool TemporalIndex::Erase(Timestamp ts, SnippetId id) {
  Entry entry{ts, id};
  auto it = std::lower_bound(entries_.begin(), entries_.end(), entry);
  if (it == entries_.end() || *it != entry) return false;
  entries_.erase(it);
  return true;
}

void TemporalIndex::ForEachInWindow(
    Timestamp lo, Timestamp hi,
    const std::function<void(Timestamp, SnippetId)>& fn) const {
  for (auto it = LowerBound(lo); it != entries_.end() && it->first <= hi;
       ++it) {
    fn(it->first, it->second);
  }
}

std::vector<SnippetId> TemporalIndex::IdsInWindow(Timestamp lo,
                                                  Timestamp hi) const {
  std::vector<SnippetId> out;
  for (auto it = LowerBound(lo); it != entries_.end() && it->first <= hi;
       ++it) {
    out.push_back(it->second);
  }
  return out;
}

size_t TemporalIndex::CountInWindow(Timestamp lo, Timestamp hi) const {
  auto begin = LowerBound(lo);
  auto end = std::upper_bound(entries_.begin(), entries_.end(), hi,
                              [](Timestamp t, const Entry& e) {
                                return t < e.first;
                              });
  // An inverted window (lo > hi) puts `end` before `begin`; counting the
  // raw distance would underflow, so clamp to the scan-based semantics of
  // IdsInWindow / ForEachInWindow (empty).
  if (end < begin) return 0;
  return static_cast<size_t>(end - begin);
}

}  // namespace storypivot
