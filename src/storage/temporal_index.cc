#include "storage/temporal_index.h"

#include <algorithm>

#include "util/logging.h"

namespace storypivot {

namespace {

bool TimestampBefore(const TemporalIndex::Entry& entry, Timestamp ts) {
  return entry.first < ts;
}

}  // namespace

size_t TemporalIndex::ChunkFor(const Entry& entry) const {
  size_t lo = 0, hi = chunks_.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (chunks_.At(mid).read().back() < entry) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t TemporalIndex::FirstChunkNotBefore(Timestamp ts) const {
  size_t lo = 0, hi = chunks_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (chunks_.At(mid).read().back().first < ts) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void TemporalIndex::SplitChunk(size_t index) {
  const std::vector<Entry>& run = chunks_.At(index).read();
  const size_t half = run.size() / 2;
  Chunk low(std::vector<Entry>(run.begin(),
                               run.begin() + static_cast<ptrdiff_t>(half)));
  Chunk high(std::vector<Entry>(run.begin() + static_cast<ptrdiff_t>(half),
                                run.end()));
  cow::PersistentVector<Chunk> rebuilt;
  for (size_t i = 0; i < chunks_.size(); ++i) {
    if (i == index) {
      rebuilt.PushBack(low);
      rebuilt.PushBack(high);
    } else {
      rebuilt.PushBack(chunks_.At(i));  // O(1) chunk share.
    }
  }
  chunks_ = std::move(rebuilt);
}

void TemporalIndex::RemoveChunk(size_t index) {
  cow::PersistentVector<Chunk> rebuilt;
  for (size_t i = 0; i < chunks_.size(); ++i) {
    if (i != index) rebuilt.PushBack(chunks_.At(i));
  }
  chunks_ = std::move(rebuilt);
}

void TemporalIndex::Insert(Timestamp ts, SnippetId id) {
  const Entry entry{ts, id};
  if (chunks_.empty()) {
    chunks_.PushBack(Chunk(std::vector<Entry>{entry}));
    size_ = 1;
    return;
  }
  const size_t index = ChunkFor(entry);
  std::vector<Entry>* run = chunks_.Mutable(index)->Mutate();
  run->insert(std::lower_bound(run->begin(), run->end(), entry), entry);
  ++size_;
  if (run->size() > kMaxChunk) SplitChunk(index);
}

bool TemporalIndex::Erase(Timestamp ts, SnippetId id) {
  if (chunks_.empty()) return false;
  const Entry entry{ts, id};
  const size_t index = ChunkFor(entry);
  const std::vector<Entry>& run = chunks_.At(index).read();
  const auto it = std::lower_bound(run.begin(), run.end(), entry);
  if (it == run.end() || *it != entry) return false;
  if (run.size() == 1) {
    RemoveChunk(index);
  } else {
    const auto offset = it - run.begin();
    std::vector<Entry>* writable = chunks_.Mutable(index)->Mutate();
    writable->erase(writable->begin() + offset);
  }
  --size_;
  return true;
}

void TemporalIndex::ForEachInWindow(
    Timestamp lo, Timestamp hi,
    const std::function<void(Timestamp, SnippetId)>& fn) const {
  for (size_t i = FirstChunkNotBefore(lo); i < chunks_.size(); ++i) {
    const std::vector<Entry>& run = chunks_.At(i).read();
    for (auto it = std::lower_bound(run.begin(), run.end(), lo,
                                    TimestampBefore);
         it != run.end(); ++it) {
      if (it->first > hi) return;
      fn(it->first, it->second);
    }
  }
}

void TemporalIndex::ForEach(
    const std::function<void(Timestamp, SnippetId)>& fn) const {
  chunks_.ForEach([&fn](const Chunk& chunk) {
    for (const Entry& entry : chunk.read()) fn(entry.first, entry.second);
  });
}

std::vector<SnippetId> TemporalIndex::IdsInWindow(Timestamp lo,
                                                  Timestamp hi) const {
  std::vector<SnippetId> out;
  ForEachInWindow(lo, hi, [&out](Timestamp, SnippetId id) {
    out.push_back(id);
  });
  return out;
}

size_t TemporalIndex::CountInWindow(Timestamp lo, Timestamp hi) const {
  // An inverted window (lo > hi) is empty, matching the scan-based
  // semantics of IdsInWindow / ForEachInWindow.
  if (lo > hi) return 0;
  size_t count = 0;
  for (size_t i = FirstChunkNotBefore(lo); i < chunks_.size(); ++i) {
    const std::vector<Entry>& run = chunks_.At(i).read();
    if (run.front().first > hi) break;
    const auto begin = std::lower_bound(run.begin(), run.end(), lo,
                                        TimestampBefore);
    const auto end = std::upper_bound(run.begin(), run.end(), hi,
                                      [](Timestamp t, const Entry& e) {
                                        return t < e.first;
                                      });
    if (end > begin) count += static_cast<size_t>(end - begin);
  }
  return count;
}

std::vector<TemporalIndex::Entry> TemporalIndex::entries() const {
  std::vector<Entry> out;
  out.reserve(size_);
  chunks_.ForEach([&out](const Chunk& chunk) {
    const std::vector<Entry>& run = chunk.read();
    out.insert(out.end(), run.begin(), run.end());
  });
  return out;
}

Timestamp TemporalIndex::min_time() const {
  SP_CHECK(!empty());
  return chunks_.At(0).read().front().first;
}

Timestamp TemporalIndex::max_time() const {
  SP_CHECK(!empty());
  return chunks_.back().read().back().first;
}

TemporalIndex TemporalIndex::Materialize() const {
  TemporalIndex deep;
  deep.chunks_ =
      chunks_.Materialize([](const Chunk& chunk) { return chunk.DeepCopy(); });
  deep.size_ = size_;
  return deep;
}

}  // namespace storypivot
