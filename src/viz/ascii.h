#ifndef STORYPIVOT_VIZ_ASCII_H_
#define STORYPIVOT_VIZ_ASCII_H_

#include <string>
#include <vector>

#include "core/aligner.h"
#include "core/engine.h"
#include "core/query.h"
#include "core/trends.h"
#include "model/document.h"

namespace storypivot::viz {

/// Renders the document-selection table (Fig. 3): source, URL and a
/// preview of each document.
std::string RenderDocumentTable(const std::vector<Document>& documents,
                                const StoryPivotEngine& engine);

/// Renders one story-information card (Figs. 4-6 right panel): sources,
/// entity histogram, description histogram, start/end dates.
std::string RenderStoryOverview(const StoryOverview& overview);

/// Renders the story-overview table (Fig. 4): one line per story with its
/// sources, top entities and description keywords.
std::string RenderStoryTable(const std::vector<StoryOverview>& overviews);

/// Renders the "Stories per Source" module (Fig. 5): each story of the
/// source as a timeline of its snippets.
std::string RenderStoriesPerSource(const StoryPivotEngine& engine,
                                   SourceId source, size_t max_stories = 8);

/// Renders the "Snippets per Story" module (Fig. 6): the snippets of one
/// integrated story, grouped by source on a shared time axis, with each
/// snippet marked as aligning (A) or enriching (e).
std::string RenderSnippetsPerStory(const StoryPivotEngine& engine,
                                   const IntegratedStory& story);

/// Renders a knowledge-base entity-context card (§3): facts, related
/// entities and the stories the entity appears in.
std::string RenderEntityContext(const EntityContext& context);

/// Renders a story's activity series as a one-line bar sparkline
/// (" .:-=+*#%@" scale), labelled with the date range and peak count.
std::string RenderActivitySparkline(const ActivitySeries& series,
                                    size_t max_width = 60);

/// A data series for the statistics charts (Fig. 7).
struct Series {
  std::string name;
  /// (x, y) points; x values should be shared across series of one chart.
  std::vector<std::pair<double, double>> points;
};

/// Renders an ASCII line chart (the statistics module's performance and
/// quality panels, Fig. 7). `log_x` plots x on a log2 scale, which suits
/// the #events sweeps.
std::string RenderXyChart(const std::string& title,
                          const std::string& x_label,
                          const std::string& y_label,
                          const std::vector<Series>& series, bool log_x,
                          size_t width = 64, size_t height = 16);

}  // namespace storypivot::viz

#endif  // STORYPIVOT_VIZ_ASCII_H_
