#include "viz/json_export.h"

#include "util/logging.h"
#include "util/strings.h"

namespace storypivot::viz {
namespace {

void AppendTermArray(
    std::string& out,
    const std::vector<std::pair<std::string, double>>& terms) {
  out += "[";
  bool first = true;
  for (const auto& [term, count] : terms) {
    if (!first) out += ",";
    out += StrFormat("{\"term\":%s,\"count\":%g}",
                     JsonQuote(term).c_str(), count);
    first = false;
  }
  out += "]";
}

void AppendOverview(std::string& out, const StoryOverview& overview) {
  out += StrFormat("{\"id\":%llu,\"integrated\":%s,\"start\":%lld,"
                   "\"end\":%lld,\"snippets\":%zu,\"sources\":[",
                   static_cast<unsigned long long>(overview.id),
                   overview.integrated ? "true" : "false",
                   static_cast<long long>(overview.start_time),
                   static_cast<long long>(overview.end_time),
                   overview.num_snippets);
  for (size_t i = 0; i < overview.source_names.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonQuote(overview.source_names[i]);
  }
  out += "],\"entities\":";
  AppendTermArray(out, overview.top_entities);
  out += ",\"keywords\":";
  AppendTermArray(out, overview.top_keywords);
  out += "}";
}

}  // namespace

std::string JsonQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string ExportStoryJson(const StoryQuery& query, const Story& story,
                            bool integrated, size_t top_k_terms) {
  std::string out;
  AppendOverview(out, query.Overview(story, integrated, top_k_terms));
  return out;
}

std::string ExportSnippetJson(const StoryQuery& query,
                              const Snippet& snippet) {
  SnippetView view = query.View(snippet);
  std::string out = StrFormat(
      "{\"id\":%llu,\"source\":%s,\"timestamp\":%lld,\"type\":%s,"
      "\"description\":%s,\"url\":%s,\"entities\":[",
      static_cast<unsigned long long>(view.id),
      JsonQuote(view.source_name).c_str(),
      static_cast<long long>(view.timestamp),
      JsonQuote(view.event_type).c_str(),
      JsonQuote(view.description).c_str(),
      JsonQuote(view.document_url).c_str());
  for (size_t i = 0; i < view.entities.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonQuote(view.entities[i]);
  }
  out += "],\"keywords\":[";
  for (size_t i = 0; i < view.keywords.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonQuote(view.keywords[i]);
  }
  out += "]}";
  return out;
}

std::string ExportEngineJson(const StoryPivotEngine& engine,
                             size_t top_k_terms) {
  SP_CHECK(engine.has_alignment());
  StoryQuery query(&engine);
  std::string out = "{\"sources\":[";
  bool first = true;
  for (const SourceInfo& source : engine.sources()) {
    if (!first) out += ",";
    out += StrFormat("{\"id\":%u,\"name\":%s}", source.id,
                     JsonQuote(source.name).c_str());
    first = false;
  }
  out += "],\"stories\":[";
  first = true;
  // A full export serializes every story by definition.
  for (const StorySet* partition : engine.partitions()) {  // splint: allow(full-scan)
    // Deterministic order within a partition: by story id.
    std::vector<StoryId> ids;
    for (const auto& [id, story] : partition->stories()) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (StoryId id : ids) {
      if (!first) out += ",";
      const Story* story = partition->FindStory(id);
      out += StrFormat("{\"source\":%u,\"story\":", partition->source());
      AppendOverview(out, query.Overview(*story, false, top_k_terms));
      out += "}";
      first = false;
    }
  }
  out += "],\"integrated\":[";
  first = true;
  for (const IntegratedStory& integrated : engine.alignment().stories) {
    if (!first) out += ",";
    out += StrFormat("{\"id\":%llu,\"members\":[",
                     static_cast<unsigned long long>(integrated.id));
    for (size_t i = 0; i < integrated.members.size(); ++i) {
      if (i > 0) out += ",";
      out += StrFormat("[%u,%llu]", integrated.members[i].first,
                       static_cast<unsigned long long>(
                           integrated.members[i].second));
    }
    out += "],\"overview\":";
    AppendOverview(out,
                   query.Overview(integrated.merged, true, top_k_terms));
    out += "}";
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace storypivot::viz
