#include "viz/ascii.h"

#include <algorithm>
#include <cmath>

#include "model/time.h"
#include "util/logging.h"
#include "util/strings.h"

namespace storypivot::viz {
namespace {

std::string Truncate(const std::string& s, size_t width) {
  if (s.size() <= width) return s;
  if (width <= 3) return s.substr(0, width);
  return s.substr(0, width - 3) + "...";
}

std::string TermList(
    const std::vector<std::pair<std::string, double>>& terms) {
  std::string out;
  for (const auto& [term, count] : terms) {
    if (!out.empty()) out += "; ";
    out += StrFormat("{%s,%d}", term.c_str(),
                     static_cast<int>(std::lround(count)));
  }
  return out;
}

/// Places `ts` on a character axis spanning [begin, end].
size_t AxisPosition(Timestamp ts, Timestamp begin, Timestamp end,
                    size_t width) {
  if (end <= begin) return 0;
  double f = static_cast<double>(ts - begin) /
             static_cast<double>(end - begin);
  f = std::clamp(f, 0.0, 1.0);
  return static_cast<size_t>(std::lround(f * (width - 1)));
}

}  // namespace

std::string RenderDocumentTable(const std::vector<Document>& documents,
                                const StoryPivotEngine& engine) {
  std::string out;
  out += StrFormat("%-4s %-22s %-34s %s\n", "#", "Source", "URL",
                   "Preview");
  out += std::string(100, '-') + "\n";
  for (size_t i = 0; i < documents.size(); ++i) {
    const Document& doc = documents[i];
    std::string preview =
        doc.paragraphs.empty() ? doc.title : doc.paragraphs.front();
    out += StrFormat("%-4zu %-22s %-34s %s\n", i,
                     Truncate(engine.SourceName(doc.source), 22).c_str(),
                     Truncate(doc.url, 34).c_str(),
                     Truncate(preview, 38).c_str());
  }
  return out;
}

std::string RenderStoryOverview(const StoryOverview& overview) {
  std::string out;
  out += StrFormat("Story       %s%llu\n", overview.integrated ? "c'" : "c",
                   static_cast<unsigned long long>(overview.id));
  std::string sources;
  for (const std::string& name : overview.source_names) {
    if (!sources.empty()) sources += ", ";
    sources += name;
  }
  out += StrFormat("Sources     %s\n", sources.c_str());
  out += StrFormat("Entities    %s\n",
                   TermList(overview.top_entities).c_str());
  out += StrFormat("Description %s\n",
                   TermList(overview.top_keywords).c_str());
  out += StrFormat("Start Date  %s\n",
                   FormatDate(overview.start_time).c_str());
  out += StrFormat("End Date    %s\n", FormatDate(overview.end_time).c_str());
  out += StrFormat("Snippets    %zu\n", overview.num_snippets);
  return out;
}

std::string RenderStoryTable(const std::vector<StoryOverview>& overviews) {
  std::string out;
  out += StrFormat("%-6s %-10s %-34s %-44s %s\n", "Story", "Span",
                   "Entities", "Description", "Sources");
  out += std::string(110, '-') + "\n";
  for (const StoryOverview& o : overviews) {
    std::string entities;
    for (const auto& [term, count] : o.top_entities) {
      if (!entities.empty()) entities += ", ";
      entities += term;
    }
    std::string keywords;
    for (const auto& [term, count] : o.top_keywords) {
      if (!keywords.empty()) keywords += ", ";
      keywords += term;
    }
    std::string sources;
    for (const std::string& name : o.source_names) {
      if (!sources.empty()) sources += ", ";
      sources += name;
    }
    out += StrFormat(
        "%s%-5llu %-10s %-34s %-44s %s\n", o.integrated ? "c'" : "c",
        static_cast<unsigned long long>(o.id),
        (FormatDate(o.start_time).substr(5) + ".." +
         FormatDate(o.end_time).substr(5))
            .c_str(),
        Truncate(entities, 34).c_str(), Truncate(keywords, 44).c_str(),
        Truncate(sources, 30).c_str());
  }
  return out;
}

std::string RenderStoriesPerSource(const StoryPivotEngine& engine,
                                   SourceId source, size_t max_stories) {
  std::string out;
  const StorySet* partition = engine.partition(source);
  if (partition == nullptr) return "<unknown source>\n";
  out += StrFormat("Stories per Source — %s\n",
                   engine.SourceName(source).c_str());

  // Shared time axis over the partition.
  if (partition->snippet_times().empty()) return out + "  (no snippets)\n";
  Timestamp begin = partition->snippet_times().min_time();
  Timestamp end = partition->snippet_times().max_time();
  constexpr size_t kAxis = 60;
  out += StrFormat("  time axis: %s .. %s\n", FormatDate(begin).c_str(),
                   FormatDate(end).c_str());

  StoryQuery query(&engine);
  std::vector<StoryOverview> overviews = query.SourceStories(source);
  size_t shown = 0;
  for (const StoryOverview& o : overviews) {
    if (shown++ >= max_stories) {
      out += StrFormat("  ... and %zu more stories\n",
                       overviews.size() - max_stories);
      break;
    }
    const Story* story = partition->FindStory(o.id);
    SP_CHECK(story != nullptr);
    std::string axis(kAxis, '.');
    for (SnippetId sid : story->snippets()) {
      const Snippet* snippet = engine.store().Find(sid);
      SP_CHECK(snippet != nullptr);
      size_t pos = AxisPosition(snippet->timestamp, begin, end, kAxis);
      axis[pos] = axis[pos] == '.' ? 'o' : '*';  // '*' = several snippets.
    }
    std::string entities;
    for (const auto& [term, count] : o.top_entities) {
      if (!entities.empty()) entities += ",";
      entities += term;
      if (entities.size() > 24) break;
    }
    out += StrFormat("  c%-4llu |%s| %zu snippets  [%s]\n",
                     static_cast<unsigned long long>(o.id), axis.c_str(),
                     o.num_snippets, Truncate(entities, 28).c_str());
  }
  return out;
}

std::string RenderSnippetsPerStory(const StoryPivotEngine& engine,
                                   const IntegratedStory& story) {
  std::string out;
  out += StrFormat("Snippets per Story — c'%llu\n",
                   static_cast<unsigned long long>(story.id));
  const Story& merged = story.merged;
  if (merged.empty()) return out + "  (empty)\n";
  Timestamp begin = merged.start_time();
  Timestamp end = merged.end_time();
  constexpr size_t kAxis = 60;
  out += StrFormat("  time axis: %s .. %s\n", FormatDate(begin).c_str(),
                   FormatDate(end).c_str());

  const AlignmentResult* alignment =
      engine.has_alignment() ? &engine.alignment() : nullptr;

  // Group snippets by source, one axis row per source.
  for (const SourceInfo& info : engine.sources()) {
    std::string axis(kAxis, '.');
    bool any = false;
    for (SnippetId sid : merged.snippets()) {
      const Snippet* snippet = engine.store().Find(sid);
      SP_CHECK(snippet != nullptr);
      if (snippet->source != info.id) continue;
      any = true;
      size_t pos = AxisPosition(snippet->timestamp, begin, end, kAxis);
      char mark = 'o';
      if (alignment != nullptr) {
        auto it = alignment->roles.find(sid);
        if (it != alignment->roles.end()) {
          mark = it->second == SnippetRole::kAligning ? 'A' : 'e';
        }
      }
      axis[pos] = mark;
    }
    if (!any) continue;
    out += StrFormat("  %-20s |%s|\n", Truncate(info.name, 20).c_str(),
                     axis.c_str());
  }
  out += "  marks: A = aligning snippet, e = enriching snippet\n";
  return out;
}

std::string RenderEntityContext(const EntityContext& context) {
  std::string out;
  out += StrFormat("Entity      %s%s%s\n", context.name.c_str(),
                   context.type.empty() ? "" : "  — ",
                   context.type.c_str());
  if (!context.description.empty()) {
    out += StrFormat("About       %s\n", context.description.c_str());
  }
  if (!context.related.empty()) {
    std::string related;
    for (const std::string& name : context.related) {
      if (!related.empty()) related += ", ";
      related += name;
    }
    out += StrFormat("Related     %s\n", related.c_str());
  }
  out += StrFormat("Stories     %zu\n", context.stories.size());
  for (const StoryOverview& story : context.stories) {
    std::string keywords;
    for (const auto& [term, count] : story.top_keywords) {
      if (!keywords.empty()) keywords += " ";
      keywords += term;
    }
    out += StrFormat("  c%-5llu %s..%s  %s\n",
                     static_cast<unsigned long long>(story.id),
                     FormatDate(story.start_time).c_str(),
                     FormatDate(story.end_time).c_str(),
                     Truncate(keywords, 48).c_str());
  }
  return out;
}

std::string RenderActivitySparkline(const ActivitySeries& series,
                                    size_t max_width) {
  if (series.counts.empty()) return "(no activity)\n";
  // Downsample to max_width buckets by summing.
  std::vector<int> buckets;
  size_t group = (series.counts.size() + max_width - 1) / max_width;
  for (size_t i = 0; i < series.counts.size(); i += group) {
    int sum = 0;
    for (size_t j = i; j < series.counts.size() && j < i + group; ++j) {
      sum += series.counts[j];
    }
    buckets.push_back(sum);
  }
  int peak = 1;
  for (int c : buckets) peak = std::max(peak, c);
  constexpr std::string_view kScale = " .:-=+*#%@";
  std::string bars;
  for (int c : buckets) {
    size_t level = static_cast<size_t>(std::lround(
        static_cast<double>(c) / peak * (kScale.size() - 1)));
    bars.push_back(kScale[level]);
  }
  Timestamp end = series.origin +
                  static_cast<Timestamp>(series.counts.size()) *
                      series.bucket_width;
  return StrFormat("%s |%s| %s  (peak %d/bucket, %d total)\n",
                   FormatDate(series.origin).c_str(), bars.c_str(),
                   FormatDate(end).c_str(), peak, series.Total());
}

std::string RenderXyChart(const std::string& title,
                          const std::string& x_label,
                          const std::string& y_label,
                          const std::vector<Series>& series, bool log_x,
                          size_t width, size_t height) {
  std::string out = title + "\n";
  if (series.empty()) return out + "  (no data)\n";

  auto tx = [log_x](double x) { return log_x ? std::log2(std::max(x, 1.0)) : x; };

  double min_x = 0, max_x = 0, min_y = 0, max_y = 0;
  bool first = true;
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      double xx = tx(x);
      if (first) {
        min_x = max_x = xx;
        min_y = max_y = y;
        first = false;
      } else {
        min_x = std::min(min_x, xx);
        max_x = std::max(max_x, xx);
        min_y = std::min(min_y, y);
        max_y = std::max(max_y, y);
      }
    }
  }
  if (first) return out + "  (no points)\n";
  if (max_y == min_y) max_y = min_y + 1.0;
  if (max_x == min_x) max_x = min_x + 1.0;
  min_y = std::min(min_y, 0.0);

  std::vector<std::string> grid(height, std::string(width, ' '));
  const char glyphs[] = {'*', '+', 'x', 'o', '#', '@'};
  for (size_t si = 0; si < series.size(); ++si) {
    char glyph = glyphs[si % sizeof(glyphs)];
    for (const auto& [x, y] : series[si].points) {
      size_t col = static_cast<size_t>(std::lround(
          (tx(x) - min_x) / (max_x - min_x) * (width - 1)));
      size_t row = static_cast<size_t>(std::lround(
          (y - min_y) / (max_y - min_y) * (height - 1)));
      grid[height - 1 - row][col] = glyph;
    }
  }
  out += StrFormat("  %s (max %.3g)\n", y_label.c_str(), max_y);
  for (const std::string& row : grid) {
    out += "  |" + row + "\n";
  }
  out += "  +" + std::string(width, '-') + "> " + x_label +
         (log_x ? " (log scale)" : "") + "\n";
  out += "  legend:";
  for (size_t si = 0; si < series.size(); ++si) {
    out += StrFormat("  %c %s", glyphs[si % sizeof(glyphs)],
                     series[si].name.c_str());
  }
  out += "\n";
  return out;
}

}  // namespace storypivot::viz
