#ifndef STORYPIVOT_VIZ_JSON_EXPORT_H_
#define STORYPIVOT_VIZ_JSON_EXPORT_H_

#include <string>

#include "core/engine.h"
#include "core/query.h"

namespace storypivot::viz {

/// JSON payload builders for a web front end — the demonstration drives a
/// browser UI (Figs. 3-7); these produce the data those modules bind to.
/// All output is minified UTF-8 JSON built with a small internal writer
/// (keys are fixed; string values are escaped per RFC 8259).

/// The full exploration payload: sources, per-source stories, integrated
/// stories (with members and roles summary). Requires a fresh alignment.
///
/// Shape:
/// {"sources":[{"id":0,"name":"..."}],
///  "stories":[{"id":1,"source":0,"snippets":[...],"entities":[...],...}],
///  "integrated":[{"id":9,"members":[[0,1],[1,4]],"start":...,"end":...}]}
std::string ExportEngineJson(const StoryPivotEngine& engine,
                             size_t top_k_terms = 5);

/// One story-overview card as JSON (Fig. 4 panel).
std::string ExportStoryJson(const StoryQuery& query, const Story& story,
                            bool integrated, size_t top_k_terms = 5);

/// One snippet as JSON (Fig. 5/6 snippet-information panel).
std::string ExportSnippetJson(const StoryQuery& query,
                              const Snippet& snippet);

/// Escapes a string for inclusion in a JSON document (quotes included).
std::string JsonQuote(std::string_view text);

}  // namespace storypivot::viz

#endif  // STORYPIVOT_VIZ_JSON_EXPORT_H_
