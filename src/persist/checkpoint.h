#ifndef STORYPIVOT_PERSIST_CHECKPOINT_H_
#define STORYPIVOT_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/snapshot.h"
#include "util/status.h"

namespace storypivot::persist {

/// Writes and loads engine checkpoints in a durability directory.
///
/// A checkpoint is a `core/snapshot` of the full engine state, written
/// ATOMICALLY (temp file + fsync + rename, via util/fs) under the name
/// `checkpoint-<covered lsn, 20 digits>.sp`: the snapshot captures every
/// operation with lsn < covered lsn, so recovery loads the newest valid
/// checkpoint and replays only the WAL tail from that lsn on.
///
/// Because the rename is atomic a torn checkpoint cannot exist; a
/// checkpoint that fails to parse means post-write corruption, and
/// LoadNewest falls back to the next older one (keep >= 2 for that
/// safety margin).
class Checkpointer {
 public:
  /// `dir` is the durability directory (shared with the WAL);
  /// `keep` newest checkpoints survive each Write (minimum 1).
  explicit Checkpointer(std::string dir, size_t keep = 2);

  /// File name of the checkpoint covering lsns < `covered_lsn`.
  [[nodiscard]] static std::string CheckpointName(uint64_t covered_lsn);

  /// Parses a checkpoint file name into its covered lsn.
  [[nodiscard]] static Result<uint64_t> ParseCheckpointName(
      const std::string& name);

  /// Covered lsns of the checkpoints present in the directory, ascending.
  [[nodiscard]] Result<std::vector<uint64_t>> List() const;

  /// Atomically writes a checkpoint of `engine` covering lsns
  /// < `covered_lsn`, then prunes all but the newest `keep` checkpoints.
  [[nodiscard]] Status Write(const StoryPivotEngine& engine,
                             uint64_t covered_lsn);

  struct Loaded {
    /// Null when the directory holds no checkpoint: recover from lsn 0.
    std::unique_ptr<StoryPivotEngine> engine;
    uint64_t covered_lsn = 0;
  };

  /// Loads the newest checkpoint that parses, falling back to older ones
  /// on corruption (each fallback is logged). Only when every present
  /// checkpoint is corrupt does it return an error.
  [[nodiscard]] Result<Loaded> LoadNewest(EngineConfig config) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  size_t keep_;
};

}  // namespace storypivot::persist

#endif  // STORYPIVOT_PERSIST_CHECKPOINT_H_
