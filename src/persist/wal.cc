#include "persist/wal.h"

#include <algorithm>
#include <unordered_set>

#include "util/failpoint.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/strings.h"

namespace storypivot::persist {
namespace {

constexpr const char kSegmentPrefix[] = "wal-";
constexpr const char kSegmentSuffix[] = ".log";

/// Process-global registry of WAL directories with a live WriteAheadLog:
/// two logs appending to one directory would interleave frames and
/// corrupt both op streams, so a second Open of a claimed directory is
/// rejected up front (the N-shard engine depends on this tripwire).
/// The mutex is a leaf taken for map lookups only; it is acquired while
/// the owning engine's serial role is held (Open/Close run inside it).
// lockcheck: name=wal.registry_mu after=DurableEngine.writer_
Mutex registry_mu;

std::unordered_set<std::string>* RegisteredDirs() SP_REQUIRES(registry_mu) {
  // Leaked singleton: WAL objects may be destroyed during static
  // teardown, after a function-local static set would already be gone.
  static auto* dirs = new std::unordered_set<std::string>();
  return dirs;
}

[[nodiscard]] Status RegisterWalDir(const std::string& dir) {
  MutexLock lock(registry_mu);
  if (!RegisteredDirs()->insert(dir).second) {
    return Status::FailedPrecondition(
        "WAL directory already open in this process: " + dir);
  }
  return Status::OK();
}

void ReleaseWalDir(const std::string& dir) {
  MutexLock lock(registry_mu);
  RegisteredDirs()->erase(dir);
}

uint32_t ReadLE32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t ReadLE64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

void AppendLE32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendLE64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

std::string WriteAheadLog::SegmentName(uint64_t start_lsn) {
  return StrFormat("%s%020llu%s", kSegmentPrefix,
                   static_cast<unsigned long long>(start_lsn),
                   kSegmentSuffix);
}

Result<uint64_t> WriteAheadLog::ParseSegmentName(const std::string& name) {
  const size_t prefix = sizeof(kSegmentPrefix) - 1;
  const size_t suffix = sizeof(kSegmentSuffix) - 1;
  if (name.size() <= prefix + suffix || name.substr(0, prefix) != kSegmentPrefix ||
      name.substr(name.size() - suffix) != kSegmentSuffix) {
    return Status::InvalidArgument("not a WAL segment name: " + name);
  }
  std::string_view digits(name.data() + prefix,
                          name.size() - prefix - suffix);
  int64_t lsn = 0;
  if (!ParseInt64(digits, &lsn) || lsn < 0) {
    return Status::InvalidArgument("bad WAL segment number: " + name);
  }
  return static_cast<uint64_t>(lsn);
}

Result<std::vector<uint64_t>> WriteAheadLog::ListSegments(
    const std::string& dir) {
  if (!FileExists(dir)) return std::vector<uint64_t>{};
  ASSIGN_OR_RETURN(std::vector<std::string> names, ListDirectory(dir));
  std::vector<uint64_t> starts;
  for (const std::string& name : names) {
    Result<uint64_t> start = ParseSegmentName(name);
    if (start.ok()) starts.push_back(start.value());
  }
  std::sort(starts.begin(), starts.end());
  return starts;
}

Result<SegmentScan> WriteAheadLog::ScanSegment(std::string_view contents,
                                               uint64_t start_lsn) {
  SegmentScan scan;
  uint64_t expected_lsn = start_lsn;
  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t left = contents.size() - pos;
    if (left < kFrameHeadBytes) {
      scan.torn_tail = true;
      break;
    }
    const char* head = contents.data() + pos;
    const uint32_t payload_len = ReadLE32(head);
    const uint32_t stored_crc = ReadLE32(head + 4);
    if (left - kFrameHeadBytes < payload_len) {
      scan.torn_tail = true;
      break;
    }
    // The frame is complete: from here on, every mismatch is corruption,
    // not a torn write, and must surface as a hard error (silently
    // truncating would drop acknowledged operations).
    std::string_view checked(head + 8, payload_len + 8);  // lsn + payload.
    if (Crc32(checked) != stored_crc) {
      return Status::IoError(StrFormat(
          "WAL corruption: CRC mismatch in record at byte %zu (lsn %llu "
          "expected)",
          pos, static_cast<unsigned long long>(expected_lsn)));
    }
    const uint64_t lsn = ReadLE64(head + 8);
    if (lsn != expected_lsn) {
      return Status::IoError(StrFormat(
          "WAL corruption: lsn %llu at byte %zu, expected %llu",
          static_cast<unsigned long long>(lsn), pos,
          static_cast<unsigned long long>(expected_lsn)));
    }
    WalRecord record;
    record.lsn = lsn;
    record.payload.assign(head + kFrameHeadBytes, payload_len);
    scan.records.push_back(std::move(record));
    ++expected_lsn;
    pos += kFrameHeadBytes + payload_len;
    scan.valid_bytes = pos;
  }
  return scan;
}

Result<SegmentScan> WriteAheadLog::ScanSegmentFile(const std::string& dir,
                                                   uint64_t start_lsn) {
  ASSIGN_OR_RETURN(std::string contents,
                   ReadFileToString(dir + "/" + SegmentName(start_lsn)));
  return ScanSegment(contents, start_lsn);
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& dir, const WalOptions& options, uint64_t next_lsn) {
  RETURN_IF_ERROR(CreateDirectories(dir));
  RETURN_IF_ERROR(RegisterWalDir(dir));
  std::unique_ptr<WriteAheadLog> log(
      new WriteAheadLog(dir, options, next_lsn));
  // From here the claim travels with the object: any early return
  // destroys `log`, whose destructor releases the registration.
  log->registered_ = true;
  ASSIGN_OR_RETURN(std::vector<uint64_t> segments, ListSegments(dir));
  // Continue the newest segment when it is the one the caller's replay
  // ended in; otherwise start a fresh segment at next_lsn.
  uint64_t start = segments.empty() ? next_lsn : segments.back();
  if (start > next_lsn) {
    return Status::FailedPrecondition(StrFormat(
        "WAL segment %s starts past next lsn %llu",
        SegmentName(start).c_str(),
        static_cast<unsigned long long>(next_lsn)));
  }
  // The factory IS the serial section: no other thread can hold a
  // reference to `log` before Open returns it.
  log->writer_.AssertInSection();
  RETURN_IF_ERROR(log->OpenSegment(start));
  return log;
}

Status WriteAheadLog::OpenSegment(uint64_t start_lsn) {
  return active_.Open(dir_ + "/" + SegmentName(start_lsn));
}

Result<uint64_t> WriteAheadLog::Append(std::string_view payload) {
  writer_.AssertInSection();  // Single-writer serial section.
  if (!active_.is_open()) {
    return Status::FailedPrecondition("WAL is closed");
  }
  const uint64_t lsn = next_lsn_;
  std::string frame;
  frame.reserve(kFrameHeadBytes + payload.size());
  AppendLE32(&frame, static_cast<uint32_t>(payload.size()));
  AppendLE32(&frame, 0);  // CRC placeholder.
  AppendLE64(&frame, lsn);
  frame.append(payload);
  const uint32_t crc = Crc32(std::string_view(frame).substr(8));
  frame[4] = static_cast<char>(crc & 0xFF);
  frame[5] = static_cast<char>((crc >> 8) & 0xFF);
  frame[6] = static_cast<char>((crc >> 16) & 0xFF);
  frame[7] = static_cast<char>((crc >> 24) & 0xFF);

  SP_FAILPOINT("wal.append");
  const uint64_t pre_size = active_.size();
  // Transient write failures are retried; each re-attempt first rewinds
  // the partial bytes the failed one left, so a retry can never leave a
  // torn frame mid-segment (which would masquerade as a torn TAIL and
  // silently hide every later record from recovery).
  // Each lambda is a separate function to the thread-safety analysis,
  // so it re-asserts the role the enclosing Append already holds.
  Status appended = retry_.Run(
      "WAL append",
      [&] {
        writer_.AssertInSection();
        return active_.Append(frame);
      },
      [&] {
        writer_.AssertInSection();
        return active_.Rewind();
      });
  bool sync_now = false;
  switch (options_.fsync) {
    case FsyncPolicy::kEveryRecord:
      sync_now = true;
      break;
    case FsyncPolicy::kEveryN:
      sync_now = unsynced_records_ + 1 >= options_.fsync_every_n;
      break;
    case FsyncPolicy::kOnRotate:
      break;
  }
  if (appended.ok() && sync_now) {
    appended = retry_.Run("WAL fsync", [&] {
      writer_.AssertInSection();
      return active_.Sync();
    });
  }
  if (!appended.ok()) {
    // Withdraw the record (or its torn prefix): the caller will treat
    // this op as not-logged, so the bytes must not survive into
    // recovery where they would replay an unacknowledged mutation.
    // After the rewind the log is byte-for-byte its pre-call self.
    IgnoreError(active_.TruncateTo(pre_size));
    return appended;
  }
  next_lsn_ = lsn + 1;
  unsynced_records_ = sync_now ? 0 : unsynced_records_ + 1;
  if (active_.size() >= options_.segment_bytes) {
    Status rotated = Rotate();
    if (!rotated.ok()) {
      // The record itself is durable and acknowledged; failed rotation
      // only affects FUTURE appends. Close the log so they fail fast
      // (letting the engine degrade) instead of appending to a segment
      // whose directory entry may not be durable.
      SP_LOG(kWarning) << "WAL rotation failed, closing log: "
                       << rotated.ToString();
      IgnoreError(active_.Close());
    }
  }
  return lsn;
}

Status WriteAheadLog::Sync() {
  writer_.AssertInSection();  // Single-writer serial section.
  if (!active_.is_open()) {
    return Status::FailedPrecondition("WAL is closed");
  }
  RETURN_IF_ERROR(retry_.Run("WAL fsync", [&] {
    writer_.AssertInSection();
    return active_.Sync();
  }));
  unsynced_records_ = 0;
  return Status::OK();
}

Status WriteAheadLog::Rotate() {
  writer_.AssertInSection();  // Single-writer serial section.
  if (!active_.is_open()) {
    return Status::FailedPrecondition("WAL is closed");
  }
  if (active_.size() == 0) return Status::OK();
  SP_FAILPOINT("wal.rotate");
  // Sync with retry BEFORE Close: Close's own fsync cannot be retried
  // (it closes the fd either way), so drain transients first.
  RETURN_IF_ERROR(retry_.Run("WAL pre-rotate sync", [&] {
    writer_.AssertInSection();
    return active_.Sync();
  }));
  RETURN_IF_ERROR(active_.Close());
  unsynced_records_ = 0;
  RETURN_IF_ERROR(retry_.Run("WAL segment open", [&] {
    writer_.AssertInSection();
    return OpenSegment(next_lsn_);
  }));
  // Make the new segment's directory entry durable: recovery relies on
  // the segment chain being gapless.
  return retry_.Run("WAL directory sync", [&] { return SyncDirectory(dir_); });
}

Status WriteAheadLog::DropSegmentsBelow(uint64_t lsn) {
  writer_.AssertInSection();  // Single-writer serial section.
  ASSIGN_OR_RETURN(std::vector<uint64_t> segments, ListSegments(dir_));
  // Segment i holds lsns [start_i, start_{i+1}); it is fully covered when
  // the NEXT segment starts at or below `lsn`. The active (last) segment
  // is never deleted.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1] <= lsn) {
      RETURN_IF_ERROR(RemoveFile(dir_ + "/" + SegmentName(segments[i])));
    }
  }
  return SyncDirectory(dir_);
}

Status WriteAheadLog::Close() {
  writer_.AssertInSection();  // Single-writer serial section.
  if (registered_) {
    ReleaseWalDir(dir_);
    registered_ = false;
  }
  if (!active_.is_open()) return Status::OK();
  unsynced_records_ = 0;
  return active_.Close();
}

WriteAheadLog::~WriteAheadLog() {
  if (registered_) ReleaseWalDir(dir_);
}

}  // namespace storypivot::persist
