#ifndef STORYPIVOT_PERSIST_DURABLE_ENGINE_H_
#define STORYPIVOT_PERSIST_DURABLE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"
#include "util/status.h"
#include "util/sync.h"

namespace storypivot::persist {

struct DurabilityOptions {
  WalOptions wal;
  /// Automatically checkpoint after this many logged operations;
  /// 0 disables auto-checkpointing (call Checkpoint() yourself).
  uint64_t checkpoint_every_ops = 0;
  /// Newest checkpoints kept on disk (>= 1; 2 gives a fallback should
  /// the newest one be corrupted after the fact).
  size_t keep_checkpoints = 2;
  /// Recovery replays only records with lsn < this limit and PHYSICALLY
  /// truncates everything at or past it (later records are discarded,
  /// later segments deleted). The sharded engine uses it to rewind every
  /// shard to the common durable prefix C = min over shards of the
  /// highest durable lsn (DESIGN.md §16); standalone engines leave the
  /// default (no limit). A checkpoint covering lsns past the limit is an
  /// error — the coordinator's sync-all-before-checkpoint barrier
  /// guarantees checkpoints never outrun any future cutoff.
  uint64_t replay_lsn_limit = UINT64_MAX;
  /// When true, a PERMANENT WAL append failure puts the engine into
  /// QUARANTINE instead of read-only degraded mode: the WAL is closed
  /// (releasing the directory claim so a healer can rebuild from disk),
  /// the failed op and every later one are ACKed and applied to memory
  /// while their encoded payloads accumulate in a bounded in-memory
  /// catch-up journal, and `next_lsn()` keeps counting virtually so the
  /// LSN-as-GSN invariant holds. Reads stay live; durability of the
  /// journaled suffix is deferred until a healer drains it (see
  /// ApplyJournaled) or Reopen() discards it. Overflowing the journal
  /// bounds degrades the engine for real (kDegraded). The shard
  /// coordinator enables this; standalone engines default to the
  /// classic fail-stop degraded mode.
  bool quarantine_on_append_failure = false;
  /// Journal bounds while quarantined (ops and encoded payload bytes).
  /// Crossing either bound converts the quarantine into permanent
  /// degradation — the full-recovery fallback path.
  uint64_t quarantine_max_journal_ops = 4096;
  uint64_t quarantine_max_journal_bytes = 64ull << 20;
};

/// The engine-mutation opcodes recorded in the WAL. Part of the on-disk
/// format: append only, never renumber.
enum class WalOp : uint8_t {
  kRegisterSource = 1,
  kImportVocabularies = 2,
  kAddGazetteerEntity = 3,
  kAddGazetteerAlias = 4,
  kAddSnippet = 5,
  kAddSnippets = 6,
  kAddDocument = 7,
  kRemoveSource = 8,
  kRemoveDocument = 9,
  kRemoveSnippet = 10,
  kRefine = 11,
  kAlign = 12,
  /// Shard-replication ops (DESIGN.md §16). Every sharded operation logs
  /// exactly one record on EVERY shard — the native op on the owner, a
  /// kShardSync stub elsewhere — so per-shard lsns are dense and equal
  /// the global op sequence number.
  kShardSync = 13,
  kShardRefine = 14,
  kShardAddSnippets = 15,
};

/// A StoryPivotEngine with a durability layer (DESIGN.md §10): every
/// mutation is appended to a write-ahead log before the call returns, the
/// engine state is periodically checkpointed via core/snapshot, and
/// `Open()` recovers the pre-crash state from the newest checkpoint plus
/// the WAL tail.
///
/// Invariants:
///   * PREFIX CONSISTENCY — after any crash, recovery yields the state of
///     some prefix of the acknowledged operation stream (how long a
///     prefix depends on the fsync policy; kEveryRecord loses nothing).
///   * DETERMINISTIC REPLAY — replaying a WAL prefix on a fresh engine
///     reproduces ids and story assignments bit for bit, for any
///     `EngineConfig::num_threads` (replay rides the engine's
///     deterministic parallel paths). Recorded result ids are verified
///     during replay, so silent divergence is caught immediately.
///   * TORN TAIL, NOT TORN STATE — a crash mid-append leaves an
///     incomplete final record, which recovery truncates away; a CRC
///     mismatch anywhere else is reported as corruption, never dropped.
///
/// Fault tolerance (DESIGN.md §12): transient IO failures are retried
/// inside the WAL (WalOptions::retry) and never surface. A PERMANENT
/// WAL failure drops the engine into read-only DEGRADED mode instead of
/// dying: queries and search keep working from the in-memory state,
/// mutations are rejected with a typed `kDegraded` status, and
/// `Reopen()` re-runs recovery from disk to rejoin the log-consistent
/// state (discarding the at-most-one mutation that outran the log).
/// With DurabilityOptions::quarantine_on_append_failure the same
/// failure instead enters QUARANTINE (DESIGN.md §17): mutations keep
/// being ACKed and applied to memory while their payloads queue in a
/// bounded catch-up journal, until a healer drains the journal onto a
/// rebuilt replacement (ApplyJournaled) or the journal overflows into
/// classic degradation.
///
/// Mutations mirror the StoryPivotEngine API (plus the extraction-state
/// mutations RegisterSource/ImportVocabularies/gazetteer seeding, which
/// replay needs). Read paths go through `engine()`. Like the underlying
/// engine, single-writer — and machine-checked as such: every method
/// asserts the `writer_` serial role (DESIGN.md §13), so Clang's
/// thread-safety analysis rejects code paths that touch the degraded-mode
/// or WAL state without declaring themselves part of the serial section.
/// Why a commit hook fired (see DurableEngine::set_commit_hook).
enum class CommitEvent {
  kMutation,  ///< A mutation was durably logged and applied.
  kRecovery,  ///< Reopen() recovered to the log-consistent prefix.
};

class DurableEngine {
 public:
  /// Opens (and creates, if needed) the durability directory `dir`,
  /// recovers the newest checkpoint + WAL tail, repairs a torn tail, and
  /// opens the WAL for appending. `engine_config` supplies the runtime
  /// knobs; recovered state does not depend on it (see determinism
  /// invariant above).
  [[nodiscard]] static Result<std::unique_ptr<DurableEngine>> Open(
      const std::string& dir, DurabilityOptions options = {},
      EngineConfig engine_config = {});

  ~DurableEngine();

  DurableEngine(const DurableEngine&) = delete;
  DurableEngine& operator=(const DurableEngine&) = delete;

  // --- Logged mutations --------------------------------------------------

  [[nodiscard]] Result<SourceId> RegisterSource(const std::string& name);
  [[nodiscard]] Status ImportVocabularies(const text::Vocabulary& entities,
                                          const text::Vocabulary& keywords);
  [[nodiscard]] Result<text::TermId> AddGazetteerEntity(
      const std::string& canonical_name);
  [[nodiscard]] Status AddGazetteerAlias(text::TermId entity,
                                         const std::string& alias);
  [[nodiscard]] Result<SnippetId> AddSnippet(Snippet snippet);
  [[nodiscard]] Result<std::vector<SnippetId>> AddSnippets(
      std::vector<Snippet> snippets);
  [[nodiscard]] Result<std::vector<SnippetId>> AddDocument(
      const Document& document);
  [[nodiscard]] Status RemoveSource(SourceId source);
  [[nodiscard]] Status RemoveDocument(const std::string& url);
  [[nodiscard]] Status RemoveSnippet(SnippetId id);

  /// Refinement moves snippets between stories, so it is a logged
  /// mutation too (replay re-runs it at the same point in the stream,
  /// which reproduces the same moves).
  [[nodiscard]] Result<RefinementStats> Refine();

  /// Alignment is read-mostly but advances the integrated-story-id
  /// cursor, so it must be logged: an unlogged Align followed by more
  /// mutations would assign different story ids on replay. Use this, not
  /// engine().Align(), on a durable engine. The result is readable via
  /// engine().alignment().
  [[nodiscard]] Status Align();

  // --- Shard-replication ops (DESIGN.md §16) -----------------------------
  //
  // Logged counterparts of the engine's shard-replica hooks. Only the
  // shard coordinator (src/shard) calls these; they exist so a shard's
  // WAL is a complete, self-contained record of the GLOBAL op stream's
  // effect on that shard — replaying it alone reproduces the shard.

  /// The global side effects of an op whose snippets live on another
  /// shard: document-frequency deltas, an optional source removal, and
  /// the post-op id counters.
  struct ShardSyncRecord {
    std::vector<text::TermVector> df_added;
    std::vector<text::TermVector> df_removed;
    bool remove_source = false;
    SourceId removed_source = kInvalidSourceId;
    StoryPivotEngine::IdCounters post;
  };
  [[nodiscard]] Status LogShardSync(const ShardSyncRecord& record);

  /// A coordinator-planned batch ingest slice (see
  /// StoryPivotEngine::PlannedIngest): applies and logs it as ONE op.
  [[nodiscard]] Status LogShardIngest(
      const StoryPivotEngine::PlannedIngest& plan);

  /// This shard's slice of a coordinator refinement pass, plus the
  /// post-refinement id counters: applies the journal, adopts the
  /// counters, and logs both as ONE op.
  [[nodiscard]] Status LogShardRefine(
      const RefinementJournal& journal,
      const StoryPivotEngine::IdCounters& post);

  // --- Durability control ------------------------------------------------

  /// Rotates the WAL, writes an atomic checkpoint covering everything
  /// logged so far, and deletes the WAL segments the checkpoint covers.
  [[nodiscard]] Status Checkpoint();

  /// Forces the WAL to disk regardless of the fsync policy.
  [[nodiscard]] Status Sync();

  /// Syncs and closes the WAL. Further mutations fail. Called by the
  /// destructor when omitted (ignoring errors — call Close() to see
  /// them).
  [[nodiscard]] Status Close();

  /// Recovers a DEGRADED engine in place: closes the WAL, re-runs the
  /// full recovery sequence (checkpoint + WAL tail + torn-tail repair)
  /// and, on success, resumes accepting mutations. The in-memory state
  /// is rebuilt from disk, so the unlogged mutation that triggered
  /// degradation is discarded — exactly the prefix-consistency
  /// contract. On failure the engine stays degraded on its OLD
  /// in-memory state (reads keep working) and Reopen can be called
  /// again. A QUARANTINED engine can be reopened too: the journaled
  /// suffix is discarded and the engine rewinds to its durable prefix
  /// (as if it had crashed at quarantine entry).
  [[nodiscard]] Status Reopen();

  /// Catch-up replay hook for the healer (DESIGN.md §17): decodes and
  /// applies one journaled payload to the in-memory state (verifying
  /// recorded ids, exactly like recovery replay) and then logs it,
  /// advancing this engine by one lsn. Draining a quarantined peer's
  /// `quarantine_journal()` through this on a freshly recovered
  /// replacement reproduces the peer's memory state byte for byte. If
  /// the append fails mid-drain and quarantine is enabled here, the
  /// payload lands in THIS engine's journal instead — the drain still
  /// converges in memory and the shard simply re-enters quarantine.
  [[nodiscard]] Status ApplyJournaled(const std::string& payload);

  // --- Reads -------------------------------------------------------------

  /// The wrapped engine, for queries, alignment and introspection. Do
  /// NOT mutate it directly — unlogged mutations void the durability
  /// guarantee (they vanish on recovery and can derail replay).
  [[nodiscard]] StoryPivotEngine& engine() {
    writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return *engine_;
  }
  [[nodiscard]] const StoryPivotEngine& engine() const {
    writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return *engine_;
  }

  /// Lsn the next mutation will get == number of ops logged ever.
  [[nodiscard]] uint64_t next_lsn() const;

  /// Ops logged since the last checkpoint (or open).
  [[nodiscard]] uint64_t ops_since_checkpoint() const {
    writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return ops_since_checkpoint_;
  }

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Installs (or, with an empty function, removes) the commit hook:
  /// fired from the serial section after every successfully logged
  /// mutation (once per op — a batch is one op, event kMutation) and
  /// after a successful Reopen() (event kRecovery). The serving tier
  /// uses it to publish a fresh read snapshot (serve/ServingEngine,
  /// DESIGN.md §14) — the event lets a batching publisher treat
  /// recovery as publish-now instead of counting it like a routine op.
  /// The hook must not call back into mutating DurableEngine methods.
  void set_commit_hook(std::function<void(CommitEvent)> hook) {
    writer_.AssertInSection();  // Serial-section mutation.
    commit_hook_ = std::move(hook);
  }

  /// True when a permanent WAL failure put the engine into read-only
  /// degraded mode (reads served, mutations rejected with kDegraded).
  [[nodiscard]] bool degraded() const {
    writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return degraded_;
  }

  /// The failure that caused degradation (OK when not degraded).
  [[nodiscard]] const Status& degraded_cause() const {
    writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return degraded_cause_;
  }

  // --- Quarantine state (DurabilityOptions::quarantine_on_append_failure).

  /// True while a permanent append failure has this engine journaling
  /// ACKed mutations in memory instead of logging them. Mutually
  /// exclusive with degraded(): overflow converts quarantine into
  /// degradation.
  [[nodiscard]] bool quarantined() const {
    writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return quarantined_;
  }

  /// The append failure that triggered quarantine (OK when healthy).
  [[nodiscard]] const Status& quarantine_cause() const {
    writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return quarantine_cause_;
  }

  /// The durable prefix at quarantine entry == the lsn the first
  /// journaled op would have gotten. Meaningless when not quarantined.
  [[nodiscard]] uint64_t quarantine_base_lsn() const {
    writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return quarantine_base_lsn_;
  }

  /// Encoded payloads ACKed since quarantine entry, in lsn order
  /// starting at quarantine_base_lsn(). The healer drains these via
  /// ApplyJournaled on a replacement engine.
  [[nodiscard]] const std::vector<std::string>& quarantine_journal() const {
    writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return quarantine_journal_;
  }

  [[nodiscard]] uint64_t quarantine_journal_bytes() const {
    writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return quarantine_journal_bytes_;
  }

  /// Cumulative WAL append retry statistics (zeros while the WAL is
  /// closed or quarantined). Surfaced through ShardedEngine::Stats.
  [[nodiscard]] RetryPolicy::Stats wal_retry_stats() const {
    writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return wal_ == nullptr ? RetryPolicy::Stats{} : wal_->retry_stats();
  }

 private:
  DurableEngine(std::string dir, DurabilityOptions options);

  /// OK iff the engine accepts mutations: open and not degraded.
  /// Checked BEFORE applying a mutation so a rejected mutation never
  /// leaks into the in-memory state.
  [[nodiscard]] Status CheckWritable() const SP_REQUIRES(writer_);

  /// Appends an encoded op and applies the auto-checkpoint policy
  /// (best-effort: the op is already durable, so a failed auto
  /// checkpoint warns and retries after the next op). On a WAL append
  /// failure — transients were already retried inside the WAL — the
  /// engine either degrades (classic fail-stop: the in-memory state has
  /// the mutation but the log does not, so acknowledging further logged
  /// mutations would desynchronise replay) or, with
  /// quarantine_on_append_failure, enters quarantine and journals the
  /// payload instead (the journal preserves the lsn order, so replay
  /// stays synchronised once a healer drains it).
  [[nodiscard]] Status LogOp(std::string payload) SP_REQUIRES(writer_);

  /// Appends `payload` to the quarantine journal (ACKing the already
  /// applied mutation) or, on overflow, converts the quarantine into
  /// permanent degradation.
  [[nodiscard]] Status JournalOp(std::string payload) SP_REQUIRES(writer_);

  /// The full recovery sequence (newest checkpoint + WAL tail replay +
  /// torn-tail repair + WAL open), built into locals and committed to
  /// members only on success — a failed recovery leaves the previous
  /// in-memory state readable. Shared by Open() and Reopen().
  [[nodiscard]] Status Recover() SP_REQUIRES(writer_);

  /// Decodes and re-applies one WAL record during recovery, verifying
  /// recorded result ids.
  [[nodiscard]] Status ReplayOp(const WalRecord& record,
                                StoryPivotEngine* engine);

  /// Phantom capability for the single-writer serial section (DESIGN.md
  /// §13). Guards the degraded-mode flags and the WAL handle: the two
  /// pieces of state whose desynchronisation would break the durability
  /// contract if a second writer ever raced them.
  // lockcheck: name=DurableEngine.writer_ after=ShardedEngine.writer_ role
  SerialSection writer_;
  /// Immutable after construction; safe to read without the role.
  std::string dir_;
  DurabilityOptions options_;
  EngineConfig engine_config_;
  std::unique_ptr<StoryPivotEngine> engine_ SP_GUARDED_BY(writer_);
  std::unique_ptr<WriteAheadLog> wal_ SP_GUARDED_BY(writer_);
  Checkpointer checkpointer_;
  uint64_t ops_since_checkpoint_ SP_GUARDED_BY(writer_) = 0;
  bool degraded_ SP_GUARDED_BY(writer_) = false;
  Status degraded_cause_ SP_GUARDED_BY(writer_);
  /// True once Close() ran; distinguishes "closed" from "quarantined"
  /// now that both states have a null WAL handle.
  bool closed_ SP_GUARDED_BY(writer_) = false;
  bool quarantined_ SP_GUARDED_BY(writer_) = false;
  Status quarantine_cause_ SP_GUARDED_BY(writer_);
  uint64_t quarantine_base_lsn_ SP_GUARDED_BY(writer_) = 0;
  std::vector<std::string> quarantine_journal_ SP_GUARDED_BY(writer_);
  uint64_t quarantine_journal_bytes_ SP_GUARDED_BY(writer_) = 0;
  /// Post-commit notification (see set_commit_hook); empty when unset.
  std::function<void(CommitEvent)> commit_hook_ SP_GUARDED_BY(writer_);
};

}  // namespace storypivot::persist

#endif  // STORYPIVOT_PERSIST_DURABLE_ENGINE_H_
