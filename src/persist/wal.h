#ifndef STORYPIVOT_PERSIST_WAL_H_
#define STORYPIVOT_PERSIST_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/fs.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/sync.h"

namespace storypivot::persist {

/// When the write-ahead log fsyncs (DESIGN.md §10).
enum class FsyncPolicy {
  /// fdatasync after every record: no acknowledged op is ever lost.
  kEveryRecord,
  /// fdatasync once every `fsync_every_n` records: bounds loss to the
  /// last n-1 acknowledged ops.
  kEveryN,
  /// fdatasync only at segment rotation and Close(): fastest; loss is
  /// bounded by the OS page-cache flush interval.
  kOnRotate,
};

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
  /// Sync cadence for FsyncPolicy::kEveryN.
  size_t fsync_every_n = 64;
  /// Rotate to a new segment once the active one exceeds this size.
  uint64_t segment_bytes = 4ull << 20;
  /// Backoff schedule for TRANSIENT append/fsync/rotate failures (see
  /// util/retry.h); permanent errors are never retried.
  RetryOptions retry;
  /// Injectable backoff sleep; null sleeps for real. Tests and benches
  /// install a recorder so retry storms cost no wall-clock time.
  RetryPolicy::SleepFn retry_sleep;
};

/// One decoded log record.
struct WalRecord {
  /// Log sequence number: the 0-based index of the operation in the
  /// engine's mutation history. Strictly sequential with no gaps.
  uint64_t lsn = 0;
  /// Opaque payload (an encoded engine operation; see durable_engine.cc).
  std::string payload;
};

/// Result of scanning one segment file.
struct SegmentScan {
  std::vector<WalRecord> records;
  /// Bytes of the file covered by complete, CRC-valid frames. Smaller
  /// than the file size iff the tail is torn.
  uint64_t valid_bytes = 0;
  /// True when the file ends in an incomplete frame (a crash mid-append).
  bool torn_tail = false;
};

/// A write-ahead log over a directory of segment files.
///
/// Each segment is named `wal-<start lsn, 20 digits>.log` and holds
/// frames of the form
///
///   [u32 payload length][u32 crc32][u64 lsn][payload bytes]
///
/// where the CRC covers the lsn and the payload. The frame head makes
/// two failure modes distinguishable:
///   * a frame that runs past end-of-file is a TORN TAIL — the expected
///     result of a crash mid-append — and is dropped (and truncated away
///     on reopen);
///   * a complete frame whose CRC mismatches is CORRUPTION — bytes the
///     filesystem acknowledged and later changed — and is a hard error,
///     never silently truncated.
///
/// Single-writer, like the engine it protects. The discipline is
/// machine-checked: every mutating method asserts the `writer_` serial
/// role (a phantom capability, DESIGN.md §13), so under Clang's
/// thread-safety analysis the append/rotation state cannot be touched
/// from code that has not declared itself part of the serial section.
class WriteAheadLog {
 public:
  /// Frame head: u32 payload length + u32 crc + u64 lsn. A frame
  /// occupies kFrameHeadBytes + payload.size() bytes on disk — recovery
  /// code uses this to truncate a segment at an exact record boundary.
  static constexpr size_t kFrameHeadBytes = 16;

  /// Opens the log in `dir` (created if missing) for appending at
  /// `next_lsn`, continuing the newest existing segment or starting a
  /// fresh one when the directory has none. Does NOT scan existing
  /// records — recovery does that first (see ScanDir) and repairs a torn
  /// tail before handing the directory over.
  ///
  /// Registers `dir` in a process-global registry and fails with
  /// kFailedPrecondition when another live WriteAheadLog already owns
  /// it: two logs appending to one directory would interleave frames
  /// and corrupt both op streams (the sharded engine opens one
  /// DurableEngine per shard, so an accidental shared directory must be
  /// a hard error, not a latent corruption). Close() — or destruction —
  /// releases the claim.
  [[nodiscard]] static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& dir, const WalOptions& options, uint64_t next_lsn);

  /// Releases the directory claim (see Open) if Close() has not.
  ~WriteAheadLog();

  /// Appends one record, assigning it the next lsn (returned). Applies
  /// the fsync policy and rotates segments as configured.
  ///
  /// Fault contract: transient write/fsync failures are retried with
  /// backoff (WalOptions::retry), partial writes are truncated away
  /// before each retry, and a FAILED append withdraws the record from
  /// the file entirely — an error return means the log is byte-for-byte
  /// what it was before the call, so an unacknowledged record can never
  /// resurface at recovery. A rotation failure after the record is
  /// durable is NOT an append failure: the lsn is returned and the log
  /// closes itself so later appends fail fast instead of writing to a
  /// segment whose directory entry may not be durable.
  [[nodiscard]] Result<uint64_t> Append(std::string_view payload);

  /// Forces everything appended so far to disk regardless of policy.
  [[nodiscard]] Status Sync();

  /// Closes the active segment (synced) and starts a new one at the
  /// current lsn. No-op when the active segment is empty.
  [[nodiscard]] Status Rotate();

  /// Deletes every non-active segment whose records all have
  /// lsn < `lsn` — i.e. segments fully covered by a checkpoint.
  [[nodiscard]] Status DropSegmentsBelow(uint64_t lsn);

  /// Syncs and closes the active segment.
  [[nodiscard]] Status Close();

  [[nodiscard]] uint64_t next_lsn() const {
    writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return next_lsn_;
  }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Cumulative retry counters (attempts, retries, backoff) across every
  /// fallible operation on this log.
  [[nodiscard]] const RetryPolicy::Stats& retry_stats() const {
    return retry_.stats();
  }

  // --- Static scanning (used by recovery and tests) ---------------------

  /// Name of the segment starting at `start_lsn`.
  [[nodiscard]] static std::string SegmentName(uint64_t start_lsn);

  /// Parses a segment name; returns the start lsn or an error for
  /// non-segment files.
  [[nodiscard]] static Result<uint64_t> ParseSegmentName(
      const std::string& name);

  /// Start lsns of the segments present in `dir`, ascending. Missing
  /// directory yields an empty list.
  [[nodiscard]] static Result<std::vector<uint64_t>> ListSegments(
      const std::string& dir);

  /// Scans `contents` of the segment starting at `start_lsn`: validates
  /// framing, CRCs and lsn continuity. A torn tail stops the scan (see
  /// SegmentScan); a CRC mismatch on a complete frame or an lsn gap is a
  /// hard error.
  [[nodiscard]] static Result<SegmentScan> ScanSegment(
      std::string_view contents, uint64_t start_lsn);

  /// Reads and scans the segment file starting at `start_lsn` in `dir`.
  [[nodiscard]] static Result<SegmentScan> ScanSegmentFile(
      const std::string& dir, uint64_t start_lsn);

 private:
  WriteAheadLog(std::string dir, const WalOptions& options,
                uint64_t next_lsn)
      : dir_(std::move(dir)),
        options_(options),
        next_lsn_(next_lsn),
        retry_(options.retry) {
    if (options_.retry_sleep) retry_.set_sleep_fn(options_.retry_sleep);
  }

  [[nodiscard]] Status OpenSegment(uint64_t start_lsn) SP_REQUIRES(writer_);

  /// Phantom capability for the single-writer serial section. Not a
  /// lock: asserting it declares "I am the one writer" and lets the
  /// analysis reject any second code path touching the guarded state.
  // lockcheck: name=WriteAheadLog.writer_ role
  SerialSection writer_;
  /// Immutable after construction; safe to read without the role.
  std::string dir_;
  WalOptions options_;
  uint64_t next_lsn_ SP_GUARDED_BY(writer_) = 0;
  AppendFile active_ SP_GUARDED_BY(writer_);
  /// True while this object holds the process-global claim on dir_.
  /// Written only at open/close; reads race nothing (single-writer).
  bool registered_ = false;
  /// Records appended since the last sync (for FsyncPolicy::kEveryN).
  size_t unsynced_records_ SP_GUARDED_BY(writer_) = 0;
  RetryPolicy retry_;
};

}  // namespace storypivot::persist

#endif  // STORYPIVOT_PERSIST_WAL_H_
