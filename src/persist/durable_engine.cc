#include "persist/durable_engine.h"

#include <utility>

#include "persist/codec.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/strings.h"

namespace storypivot::persist {
namespace {

Status ReplayMismatch(const char* what, uint64_t lsn) {
  return Status::Internal(StrFormat(
      "WAL replay diverged at lsn %llu: %s — the log was not produced by "
      "an equivalent engine",
      static_cast<unsigned long long>(lsn), what));
}

void EncodeVocabulary(Encoder* enc, const text::Vocabulary& vocab) {
  enc->PutU32(static_cast<uint32_t>(vocab.size()));
  for (text::TermId id = 0; id < vocab.size(); ++id) {
    enc->PutString(vocab.TermOf(id));
  }
}

// --- Shard-op wire helpers (kShardSync / kShardRefine / kShardAddSnippets).

void EncodeTermVectors(Encoder* enc,
                       const std::vector<text::TermVector>& vectors) {
  enc->PutU32(static_cast<uint32_t>(vectors.size()));
  for (const text::TermVector& vector : vectors) enc->PutTermVector(vector);
}

std::vector<text::TermVector> DecodeTermVectors(Decoder* dec) {
  uint32_t n = dec->GetU32();
  std::vector<text::TermVector> vectors;
  vectors.reserve(dec->ok() ? n : 0);
  for (uint32_t i = 0; i < n && dec->ok(); ++i) {
    vectors.push_back(dec->GetTermVector());
  }
  return vectors;
}

void EncodeCounters(Encoder* enc,
                    const StoryPivotEngine::IdCounters& counters) {
  enc->PutU32(counters.next_source);
  enc->PutU64(counters.next_snippet);
  enc->PutU64(counters.next_story);
}

StoryPivotEngine::IdCounters DecodeCounters(Decoder* dec) {
  StoryPivotEngine::IdCounters counters;
  counters.next_source = dec->GetU32();
  counters.next_snippet = dec->GetU64();
  counters.next_story = dec->GetU64();
  return counters;
}

void EncodeJournal(Encoder* enc, const RefinementJournal& journal) {
  enc->PutU32(static_cast<uint32_t>(journal.entries.size()));
  for (const RefinementJournal::Entry& entry : journal.entries) {
    enc->PutU8(static_cast<uint8_t>(entry.kind));
    if (entry.kind == RefinementJournal::Entry::Kind::kMove) {
      enc->PutU32(entry.move.source);
      enc->PutU64(entry.move.snippet);
      enc->PutU64(entry.move.from);
      enc->PutU64(entry.move.to);
      enc->PutU8(entry.move.created ? 1 : 0);
    } else {
      enc->PutU32(entry.split.source);
      enc->PutU64(entry.split.story);
      enc->PutU32(static_cast<uint32_t>(entry.split.components.size()));
      for (const std::vector<SnippetId>& component : entry.split.components) {
        enc->PutU32(static_cast<uint32_t>(component.size()));
        for (SnippetId id : component) enc->PutU64(id);
      }
      enc->PutU32(static_cast<uint32_t>(entry.split.assigned.size()));
      for (StoryId id : entry.split.assigned) enc->PutU64(id);
    }
  }
}

RefinementJournal DecodeJournal(Decoder* dec) {
  RefinementJournal journal;
  uint32_t n = dec->GetU32();
  journal.entries.reserve(dec->ok() ? n : 0);
  for (uint32_t i = 0; i < n && dec->ok(); ++i) {
    RefinementJournal::Entry entry;
    entry.kind = static_cast<RefinementJournal::Entry::Kind>(dec->GetU8());
    if (entry.kind == RefinementJournal::Entry::Kind::kMove) {
      entry.move.source = dec->GetU32();
      entry.move.snippet = dec->GetU64();
      entry.move.from = dec->GetU64();
      entry.move.to = dec->GetU64();
      entry.move.created = dec->GetU8() != 0;
    } else {
      entry.split.source = dec->GetU32();
      entry.split.story = dec->GetU64();
      uint32_t n_components = dec->GetU32();
      entry.split.components.reserve(dec->ok() ? n_components : 0);
      for (uint32_t c = 0; c < n_components && dec->ok(); ++c) {
        uint32_t n_ids = dec->GetU32();
        std::vector<SnippetId> component;
        component.reserve(dec->ok() ? n_ids : 0);
        for (uint32_t k = 0; k < n_ids && dec->ok(); ++k) {
          component.push_back(dec->GetU64());
        }
        entry.split.components.push_back(std::move(component));
      }
      uint32_t n_assigned = dec->GetU32();
      entry.split.assigned.reserve(dec->ok() ? n_assigned : 0);
      for (uint32_t k = 0; k < n_assigned && dec->ok(); ++k) {
        entry.split.assigned.push_back(dec->GetU64());
      }
    }
    journal.entries.push_back(std::move(entry));
  }
  return journal;
}

void EncodePlannedIngest(Encoder* enc,
                         const StoryPivotEngine::PlannedIngest& plan) {
  enc->PutU32(static_cast<uint32_t>(plan.snippets.size()));
  for (const Snippet& snippet : plan.snippets) enc->PutSnippet(snippet);
  enc->PutU32(static_cast<uint32_t>(plan.story_blocks.size()));
  for (const auto& [source, begin] : plan.story_blocks) {
    enc->PutU32(source);
    enc->PutU64(begin);
  }
  EncodeTermVectors(enc, plan.foreign_keywords);
  EncodeCounters(enc, plan.post);
}

StoryPivotEngine::PlannedIngest DecodePlannedIngest(Decoder* dec) {
  StoryPivotEngine::PlannedIngest plan;
  uint32_t n = dec->GetU32();
  plan.snippets.reserve(dec->ok() ? n : 0);
  for (uint32_t i = 0; i < n && dec->ok(); ++i) {
    plan.snippets.push_back(dec->GetSnippet());
  }
  uint32_t n_blocks = dec->GetU32();
  plan.story_blocks.reserve(dec->ok() ? n_blocks : 0);
  for (uint32_t i = 0; i < n_blocks && dec->ok(); ++i) {
    SourceId source = dec->GetU32();
    StoryId begin = dec->GetU64();
    plan.story_blocks.emplace_back(source, begin);
  }
  plan.foreign_keywords = DecodeTermVectors(dec);
  plan.post = DecodeCounters(dec);
  return plan;
}

/// Shared by LogShardSync and replay so both paths apply the identical
/// sequence: source removal first (it subtracts its own DF supports),
/// then the foreign DF deltas, then the counter fast-forward.
Status ApplyShardSync(StoryPivotEngine* engine,
                      const DurableEngine::ShardSyncRecord& record) {
  if (record.remove_source) {
    RETURN_IF_ERROR(engine->RemoveSource(record.removed_source));
  }
  engine->ApplyDocumentFrequencyDelta(record.df_added, record.df_removed);
  return engine->AdoptIdCounters(record.post);
}

}  // namespace

DurableEngine::DurableEngine(std::string dir, DurabilityOptions options)
    : dir_(std::move(dir)),
      options_(options),
      checkpointer_(dir_, options.keep_checkpoints) {}

DurableEngine::~DurableEngine() {
  if (wal_ != nullptr) IgnoreError(wal_->Close());
}

Result<std::unique_ptr<DurableEngine>> DurableEngine::Open(
    const std::string& dir, DurabilityOptions options,
    EngineConfig engine_config) {
  std::unique_ptr<DurableEngine> durable(
      new DurableEngine(dir, options));
  durable->engine_config_ = engine_config;
  // The factory IS the serial section: no other thread can hold a
  // reference to `durable` before Open returns it.
  durable->writer_.AssertInSection();
  RETURN_IF_ERROR(durable->Recover());
  return durable;
}

Status DurableEngine::Recover() {
  RETURN_IF_ERROR(CreateDirectories(dir_));

  // 1. Newest valid checkpoint (if any) seeds the engine state. All
  // recovered state is built into LOCALS and committed to members only
  // at the end, so a failed recovery (Reopen on a bad disk) leaves the
  // previous in-memory state readable.
  ASSIGN_OR_RETURN(Checkpointer::Loaded loaded,
                   checkpointer_.LoadNewest(engine_config_));
  std::unique_ptr<StoryPivotEngine> engine =
      loaded.engine != nullptr
          ? std::move(loaded.engine)
          : std::make_unique<StoryPivotEngine>(engine_config_);
  const uint64_t covered = loaded.covered_lsn;
  const uint64_t limit = options_.replay_lsn_limit;
  if (covered > limit) {
    // The sharded coordinator checkpoints only behind a sync-all barrier,
    // so a checkpoint past the common durable prefix means the directory
    // was mixed up, not that the barrier failed silently.
    return Status::IoError(StrFormat(
        "checkpoint covers lsn %llu past the replay limit %llu",
        static_cast<unsigned long long>(covered),
        static_cast<unsigned long long>(limit)));
  }

  // 2. Replay the WAL tail: every record with lsn >= covered (and below
  // the replay limit, when one is set), in order.
  ASSIGN_OR_RETURN(std::vector<uint64_t> segments,
                   WriteAheadLog::ListSegments(dir_));
  uint64_t expected_next = covered;
  bool clipped = false;  // True once the replay limit truncated the log.
  for (size_t i = 0; i < segments.size(); ++i) {
    if (clipped) {
      // Everything past the truncation point is an unacknowledged
      // suffix; physically drop it so the reopened log is the prefix.
      RETURN_IF_ERROR(
          RemoveFile(dir_ + "/" + WriteAheadLog::SegmentName(segments[i])));
      continue;
    }
    const bool last = i + 1 == segments.size();
    // Fully checkpoint-covered segments (every record below `covered`)
    // are skipped: they may linger when a past DropSegmentsBelow was
    // interrupted, and their contents no longer matter.
    if (!last && segments[i + 1] <= covered) continue;
    if (segments[i] > expected_next) {
      return Status::IoError(StrFormat(
          "WAL gap: segment %s starts past expected lsn %llu",
          WriteAheadLog::SegmentName(segments[i]).c_str(),
          static_cast<unsigned long long>(expected_next)));
    }
    if (segments[i] >= limit) {
      // The whole segment is at or past the cutoff: nothing to keep.
      RETURN_IF_ERROR(
          RemoveFile(dir_ + "/" + WriteAheadLog::SegmentName(segments[i])));
      clipped = true;
      continue;
    }
    ASSIGN_OR_RETURN(SegmentScan scan,
                     WriteAheadLog::ScanSegmentFile(dir_, segments[i]));
    const uint64_t segment_end = segments[i] + scan.records.size();
    const bool clips_here = segment_end > limit;
    // A torn record in a non-final segment is corruption — unless the
    // tear sits past the replay limit, in which case the truncation
    // below removes it along with the rest of the discarded suffix.
    if (scan.torn_tail && !last && !clips_here) {
      return Status::IoError(
          "WAL corruption: torn record in a non-final segment " +
          WriteAheadLog::SegmentName(segments[i]));
    }
    for (const WalRecord& record : scan.records) {
      if (record.lsn < expected_next) continue;  // Below the checkpoint.
      if (record.lsn >= limit) break;            // Past the replay limit.
      RETURN_IF_ERROR(ReplayOp(record, engine.get()));
      ++expected_next;
    }
    if (clips_here) {
      // Cut the segment at the exact frame boundary of the first record
      // past the limit, then drop every later segment (loop above).
      uint64_t keep_bytes = 0;
      for (const WalRecord& record : scan.records) {
        if (record.lsn >= limit) break;
        keep_bytes += WriteAheadLog::kFrameHeadBytes + record.payload.size();
      }
      const std::string path =
          dir_ + "/" + WriteAheadLog::SegmentName(segments[i]);
      SP_LOG(kWarning) << "WAL " << path << ": truncating records at/past "
                       << "replay limit " << limit;
      RETURN_IF_ERROR(TruncateFile(path, keep_bytes));
      clipped = true;
      continue;
    }
    if (!last && segments[i + 1] != segment_end) {
      return Status::IoError(StrFormat(
          "WAL gap: segment after %s starts at lsn %llu, expected %llu",
          WriteAheadLog::SegmentName(segments[i]).c_str(),
          static_cast<unsigned long long>(segments[i + 1]),
          static_cast<unsigned long long>(segment_end)));
    }
    // 3. Repair a torn tail (crash mid-append) so the segment is ready
    // for appending again. The lost suffix was never acknowledged as
    // durable — dropping it is exactly the prefix-consistency contract.
    if (scan.torn_tail) {
      const std::string path =
          dir_ + "/" + WriteAheadLog::SegmentName(segments[i]);
      ASSIGN_OR_RETURN(uint64_t actual_size, FileSize(path));
      SP_LOG(kWarning) << "WAL " << path << ": dropping torn tail ("
                       << actual_size - scan.valid_bytes << " bytes)";
      RETURN_IF_ERROR(TruncateFile(path, scan.valid_bytes));
    }
  }

  // 4. Open the log for appending where replay ended. The replayed tail
  // counts towards the auto-checkpoint policy: it is exactly the log a
  // subsequent checkpoint would compact away.
  ASSIGN_OR_RETURN(std::unique_ptr<WriteAheadLog> wal,
                   WriteAheadLog::Open(dir_, options_.wal, expected_next));

  // Commit: recovery succeeded, adopt the rebuilt state. The previous
  // engine's IngestObserver must move with it — recovery replaces the
  // engine OBJECT, and an observer left behind on the dying engine
  // (e.g. search's index maintainer) would silently serve the
  // pre-recovery state forever after. Re-attach first, then fire
  // OnEngineReplaced so the observer reseats its pointers and rebuilds
  // derived state from the recovered store.
  IngestObserver* observer =
      engine_ != nullptr ? engine_->ingest_observer() : nullptr;
  engine_ = std::move(engine);
  wal_ = std::move(wal);
  ops_since_checkpoint_ = expected_next - covered;
  degraded_ = false;
  degraded_cause_ = Status::OK();
  closed_ = false;
  quarantined_ = false;
  quarantine_cause_ = Status::OK();
  quarantine_base_lsn_ = 0;
  quarantine_journal_.clear();
  quarantine_journal_bytes_ = 0;
  if (observer != nullptr) {
    engine_->set_ingest_observer(observer);
    observer->OnEngineReplaced(engine_.get());
  }
  return Status::OK();
}

Status DurableEngine::Reopen() {
  writer_.AssertInSection();  // Single-writer serial section.
  if (wal_ != nullptr) {
    IgnoreError(wal_->Close());
    wal_.reset();
  }
  // A quarantined engine's journaled suffix is discarded up front:
  // recovery rewinds to the durable prefix, exactly as if the process
  // had crashed at quarantine entry.
  quarantined_ = false;
  quarantine_cause_ = Status::OK();
  quarantine_journal_.clear();
  quarantine_journal_bytes_ = 0;
  Status recovered = Recover();
  if (!recovered.ok()) {
    // Still broken: stay degraded on the old in-memory state so reads
    // keep working, and record why.
    degraded_ = true;
    degraded_cause_ = recovered;
  } else if (commit_hook_) {
    // Recovery rewound to the log-consistent prefix; readers must see
    // the rebuilt state, not the discarded pre-degradation one.
    commit_hook_(CommitEvent::kRecovery);
  }
  return recovered;
}

// --- Logged mutations ------------------------------------------------------

Status DurableEngine::CheckWritable() const {
  if (degraded_) {
    return Status::Degraded(
        "durable engine is in read-only degraded mode ("
        + degraded_cause_.ToString() + "); call Reopen() to recover");
  }
  if (closed_) {
    return Status::FailedPrecondition("durable engine is closed");
  }
  // Quarantined engines ACCEPT mutations (they are journaled in memory,
  // DESIGN.md §17) even though the WAL handle is gone.
  if (quarantined_) return Status::OK();
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("durable engine is closed");
  }
  return Status::OK();
}

Status DurableEngine::LogOp(std::string payload) {
  RETURN_IF_ERROR(CheckWritable());
  if (quarantined_) return JournalOp(std::move(payload));
  Result<uint64_t> lsn = wal_->Append(payload);
  if (!lsn.ok()) {
    // The WAL already retried transients, so this failure is permanent.
    if (options_.quarantine_on_append_failure) {
      // QUARANTINE (DESIGN.md §17): the failed append withdrew cleanly,
      // so the log on disk is exactly the durable prefix. Record it as
      // the journal's base lsn, close the WAL (releasing the directory
      // claim so a healer can rebuild a replacement from disk), and
      // journal this payload — the mutation is already applied to
      // memory, so ACKing it keeps reads byte-identical to the acked
      // stream while durability catches up later.
      quarantine_base_lsn_ = wal_->next_lsn();
      IgnoreError(wal_->Close());
      wal_.reset();
      quarantined_ = true;
      quarantine_cause_ = lsn.status();
      return JournalOp(std::move(payload));
    }
    // The in-memory state now has a mutation the log does not:
    // acknowledging further mutations would desynchronise replay, so
    // drop to READ-ONLY degraded mode — queries stay served (from state
    // ahead of the log by exactly this op), mutations are rejected with
    // kDegraded, and Reopen() rebuilds from disk.
    degraded_ = true;
    degraded_cause_ = lsn.status();
    return Status::Degraded(
        "WAL append failed, durable engine now read-only: " +
        lsn.status().ToString());
  }
  ++ops_since_checkpoint_;
  if (options_.checkpoint_every_ops > 0 &&
      ops_since_checkpoint_ >= options_.checkpoint_every_ops) {
    Status checkpointed = Checkpoint();
    if (!checkpointed.ok()) {
      // Best-effort: the op itself is durably logged, a failed AUTO
      // checkpoint only delays compaction. ops_since_checkpoint_ keeps
      // growing, so the next op triggers another attempt. (A rotation
      // failure inside Checkpoint closes the WAL; the next mutation
      // then degrades the engine through the append path.)
      SP_LOG(kWarning) << "auto-checkpoint failed (will retry after next "
                       << "op): " << checkpointed.ToString();
    }
  }
  // The op is durable and applied: tell the serving tier (when one is
  // attached) to publish a fresh read snapshot. One hook firing per
  // logged op — a batch ingest is one op, so snapshots advance per
  // batch, not per snippet.
  if (commit_hook_) commit_hook_(CommitEvent::kMutation);
  return Status::OK();
}

Status DurableEngine::JournalOp(std::string payload) {
  if (quarantine_journal_.size() >= options_.quarantine_max_journal_ops ||
      quarantine_journal_bytes_ + payload.size() >
          options_.quarantine_max_journal_bytes) {
    // Overflow: the bounded catch-up window is exhausted before a healer
    // drained it. Convert the quarantine into classic permanent
    // degradation — the coordinator falls back to full recovery, which
    // rewinds every shard to the common durable prefix. The journal is
    // dropped (its ops survive only in this engine's memory, which the
    // fallback discards anyway).
    degraded_ = true;
    degraded_cause_ = Status::Degraded(StrFormat(
        "quarantine journal overflow after %llu ops / %llu bytes; "
        "original failure: %s",
        static_cast<unsigned long long>(quarantine_journal_.size()),
        static_cast<unsigned long long>(quarantine_journal_bytes_),
        quarantine_cause_.ToString().c_str()));
    quarantined_ = false;
    quarantine_cause_ = Status::OK();
    quarantine_journal_.clear();
    quarantine_journal_bytes_ = 0;
    return degraded_cause_;
  }
  quarantine_journal_bytes_ += payload.size();
  quarantine_journal_.push_back(std::move(payload));
  // The mutation is applied and ACKed (durability deferred, bounded by
  // the journal): the serving tier should still publish it.
  if (commit_hook_) commit_hook_(CommitEvent::kMutation);
  return Status::OK();
}

Status DurableEngine::ApplyJournaled(const std::string& payload) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  // Replay first (verifying recorded ids, exactly like recovery), then
  // log — the same apply-then-log order every native mutator uses.
  WalRecord record{next_lsn(), payload};
  RETURN_IF_ERROR(ReplayOp(record, engine_.get()));
  return LogOp(payload);
}

Result<SourceId> DurableEngine::RegisterSource(const std::string& name) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  SourceId id = engine_->RegisterSource(name);
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kRegisterSource));
  enc.PutString(name);
  enc.PutU32(id);
  RETURN_IF_ERROR(LogOp(enc.Release()));
  return id;
}

Status DurableEngine::ImportVocabularies(const text::Vocabulary& entities,
                                         const text::Vocabulary& keywords) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  RETURN_IF_ERROR(engine_->ImportVocabularies(entities, keywords));
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kImportVocabularies));
  EncodeVocabulary(&enc, entities);
  EncodeVocabulary(&enc, keywords);
  return LogOp(enc.Release());
}

Result<text::TermId> DurableEngine::AddGazetteerEntity(
    const std::string& canonical_name) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  text::TermId id = engine_->gazetteer()->AddEntity(canonical_name);
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kAddGazetteerEntity));
  enc.PutString(canonical_name);
  enc.PutU32(id);
  RETURN_IF_ERROR(LogOp(enc.Release()));
  return id;
}

Status DurableEngine::AddGazetteerAlias(text::TermId entity,
                                        const std::string& alias) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  engine_->gazetteer()->AddAlias(entity, alias);
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kAddGazetteerAlias));
  enc.PutU32(entity);
  enc.PutString(alias);
  return LogOp(enc.Release());
}

Result<SnippetId> DurableEngine::AddSnippet(Snippet snippet) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kAddSnippet));
  enc.PutSnippet(snippet);  // As passed: replay re-runs identification.
  ASSIGN_OR_RETURN(SnippetId id, engine_->AddSnippet(std::move(snippet)));
  enc.PutU64(id);
  RETURN_IF_ERROR(LogOp(enc.Release()));
  return id;
}

Result<std::vector<SnippetId>> DurableEngine::AddSnippets(
    std::vector<Snippet> snippets) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kAddSnippets));
  enc.PutU32(static_cast<uint32_t>(snippets.size()));
  for (const Snippet& snippet : snippets) enc.PutSnippet(snippet);
  ASSIGN_OR_RETURN(std::vector<SnippetId> ids,
                   engine_->AddSnippets(std::move(snippets)));
  enc.PutU32(static_cast<uint32_t>(ids.size()));
  for (SnippetId id : ids) enc.PutU64(id);
  RETURN_IF_ERROR(LogOp(enc.Release()));
  return ids;
}

Result<std::vector<SnippetId>> DurableEngine::AddDocument(
    const Document& document) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  ASSIGN_OR_RETURN(std::vector<SnippetId> ids,
                   engine_->AddDocument(document));
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kAddDocument));
  enc.PutDocument(document);
  enc.PutU32(static_cast<uint32_t>(ids.size()));
  for (SnippetId id : ids) enc.PutU64(id);
  RETURN_IF_ERROR(LogOp(enc.Release()));
  return ids;
}

Status DurableEngine::RemoveSource(SourceId source) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  RETURN_IF_ERROR(engine_->RemoveSource(source));
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kRemoveSource));
  enc.PutU32(source);
  return LogOp(enc.Release());
}

Status DurableEngine::RemoveDocument(const std::string& url) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  RETURN_IF_ERROR(engine_->RemoveDocument(url));
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kRemoveDocument));
  enc.PutString(url);
  return LogOp(enc.Release());
}

Status DurableEngine::RemoveSnippet(SnippetId id) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  RETURN_IF_ERROR(engine_->RemoveSnippet(id));
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kRemoveSnippet));
  enc.PutU64(id);
  return LogOp(enc.Release());
}

Result<RefinementStats> DurableEngine::Refine() {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  RefinementStats stats = engine_->Refine();
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kRefine));
  enc.PutI64(stats.snippets_moved);
  enc.PutI64(stats.stories_split);
  RETURN_IF_ERROR(LogOp(enc.Release()));
  return stats;
}

Status DurableEngine::Align() {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  const AlignmentResult& aligned = engine_->Align();
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kAlign));
  enc.PutU64(aligned.stories.size());
  return LogOp(enc.Release());
}

// --- Shard-replication ops (DESIGN.md §16) ---------------------------------

Status DurableEngine::LogShardSync(const ShardSyncRecord& record) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  RETURN_IF_ERROR(ApplyShardSync(engine_.get(), record));
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kShardSync));
  EncodeTermVectors(&enc, record.df_added);
  EncodeTermVectors(&enc, record.df_removed);
  enc.PutU8(record.remove_source ? 1 : 0);
  enc.PutU32(record.removed_source);
  EncodeCounters(&enc, record.post);
  return LogOp(enc.Release());
}

Status DurableEngine::LogShardIngest(
    const StoryPivotEngine::PlannedIngest& plan) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  RETURN_IF_ERROR(engine_->ApplyPlannedIngest(plan));
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kShardAddSnippets));
  EncodePlannedIngest(&enc, plan);
  return LogOp(enc.Release());
}

Status DurableEngine::LogShardRefine(
    const RefinementJournal& journal,
    const StoryPivotEngine::IdCounters& post) {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  RETURN_IF_ERROR(engine_->ApplyRefinementJournal(journal));
  RETURN_IF_ERROR(engine_->AdoptIdCounters(post));
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(WalOp::kShardRefine));
  EncodeJournal(&enc, journal);
  EncodeCounters(&enc, post);
  return LogOp(enc.Release());
}

// --- Replay ----------------------------------------------------------------

Status DurableEngine::ReplayOp(const WalRecord& record,
                               StoryPivotEngine* engine) {
  Decoder dec(record.payload);
  const WalOp op = static_cast<WalOp>(dec.GetU8());
  switch (op) {
    case WalOp::kRegisterSource: {
      std::string name = dec.GetString();
      SourceId expected = dec.GetU32();
      RETURN_IF_ERROR(dec.Finish());
      if (engine->RegisterSource(name) != expected) {
        return ReplayMismatch("RegisterSource id", record.lsn);
      }
      return Status::OK();
    }
    case WalOp::kImportVocabularies: {
      text::Vocabulary entities, keywords;
      uint32_t n = dec.GetU32();
      for (uint32_t i = 0; i < n && dec.ok(); ++i) {
        entities.Intern(dec.GetString());
      }
      n = dec.GetU32();
      for (uint32_t i = 0; i < n && dec.ok(); ++i) {
        keywords.Intern(dec.GetString());
      }
      RETURN_IF_ERROR(dec.Finish());
      return engine->ImportVocabularies(entities, keywords);
    }
    case WalOp::kAddGazetteerEntity: {
      std::string name = dec.GetString();
      text::TermId expected = dec.GetU32();
      RETURN_IF_ERROR(dec.Finish());
      if (engine->gazetteer()->AddEntity(name) != expected) {
        return ReplayMismatch("gazetteer entity id", record.lsn);
      }
      return Status::OK();
    }
    case WalOp::kAddGazetteerAlias: {
      text::TermId entity = dec.GetU32();
      std::string alias = dec.GetString();
      RETURN_IF_ERROR(dec.Finish());
      engine->gazetteer()->AddAlias(entity, alias);
      return Status::OK();
    }
    case WalOp::kAddSnippet: {
      Snippet snippet = dec.GetSnippet();
      SnippetId expected = dec.GetU64();
      RETURN_IF_ERROR(dec.Finish());
      ASSIGN_OR_RETURN(SnippetId id,
                       engine->AddSnippet(std::move(snippet)));
      if (id != expected) {
        return ReplayMismatch("AddSnippet id", record.lsn);
      }
      return Status::OK();
    }
    case WalOp::kAddSnippets: {
      uint32_t n = dec.GetU32();
      std::vector<Snippet> snippets;
      snippets.reserve(dec.ok() ? n : 0);
      for (uint32_t i = 0; i < n && dec.ok(); ++i) {
        snippets.push_back(dec.GetSnippet());
      }
      uint32_t n_ids = dec.GetU32();
      std::vector<SnippetId> expected;
      expected.reserve(dec.ok() ? n_ids : 0);
      for (uint32_t i = 0; i < n_ids && dec.ok(); ++i) {
        expected.push_back(dec.GetU64());
      }
      RETURN_IF_ERROR(dec.Finish());
      ASSIGN_OR_RETURN(std::vector<SnippetId> ids,
                       engine->AddSnippets(std::move(snippets)));
      if (ids != expected) {
        return ReplayMismatch("AddSnippets ids", record.lsn);
      }
      return Status::OK();
    }
    case WalOp::kAddDocument: {
      Document document = dec.GetDocument();
      uint32_t n_ids = dec.GetU32();
      std::vector<SnippetId> expected;
      expected.reserve(dec.ok() ? n_ids : 0);
      for (uint32_t i = 0; i < n_ids && dec.ok(); ++i) {
        expected.push_back(dec.GetU64());
      }
      RETURN_IF_ERROR(dec.Finish());
      ASSIGN_OR_RETURN(std::vector<SnippetId> ids,
                       engine->AddDocument(document));
      if (ids != expected) {
        return ReplayMismatch("AddDocument ids", record.lsn);
      }
      return Status::OK();
    }
    case WalOp::kRemoveSource: {
      SourceId source = dec.GetU32();
      RETURN_IF_ERROR(dec.Finish());
      return engine->RemoveSource(source);
    }
    case WalOp::kRemoveDocument: {
      std::string url = dec.GetString();
      RETURN_IF_ERROR(dec.Finish());
      return engine->RemoveDocument(url);
    }
    case WalOp::kRemoveSnippet: {
      SnippetId id = dec.GetU64();
      RETURN_IF_ERROR(dec.Finish());
      return engine->RemoveSnippet(id);
    }
    case WalOp::kRefine: {
      int64_t moved = dec.GetI64();
      int64_t split = dec.GetI64();
      RETURN_IF_ERROR(dec.Finish());
      RefinementStats stats = engine->Refine();
      if (stats.snippets_moved != moved || stats.stories_split != split) {
        return ReplayMismatch("Refine outcome", record.lsn);
      }
      return Status::OK();
    }
    case WalOp::kAlign: {
      uint64_t expected = dec.GetU64();
      RETURN_IF_ERROR(dec.Finish());
      const AlignmentResult& aligned = engine->Align();
      if (aligned.stories.size() != expected) {
        return ReplayMismatch("Align story count", record.lsn);
      }
      return Status::OK();
    }
    case WalOp::kShardSync: {
      ShardSyncRecord sync;
      sync.df_added = DecodeTermVectors(&dec);
      sync.df_removed = DecodeTermVectors(&dec);
      sync.remove_source = dec.GetU8() != 0;
      sync.removed_source = dec.GetU32();
      sync.post = DecodeCounters(&dec);
      RETURN_IF_ERROR(dec.Finish());
      return ApplyShardSync(engine, sync);
    }
    case WalOp::kShardRefine: {
      RefinementJournal journal = DecodeJournal(&dec);
      StoryPivotEngine::IdCounters post = DecodeCounters(&dec);
      RETURN_IF_ERROR(dec.Finish());
      RETURN_IF_ERROR(engine->ApplyRefinementJournal(journal));
      return engine->AdoptIdCounters(post);
    }
    case WalOp::kShardAddSnippets: {
      StoryPivotEngine::PlannedIngest plan = DecodePlannedIngest(&dec);
      RETURN_IF_ERROR(dec.Finish());
      return engine->ApplyPlannedIngest(plan);
    }
  }
  return Status::IoError(StrFormat(
      "WAL record %llu has unknown opcode %u",
      static_cast<unsigned long long>(record.lsn),
      static_cast<unsigned>(op)));
}

// --- Durability control ----------------------------------------------------

Status DurableEngine::Checkpoint() {
  writer_.AssertInSection();  // Single-writer serial section.
  RETURN_IF_ERROR(CheckWritable());
  if (quarantined_) {
    // The journaled suffix exists only in memory: a checkpoint covering
    // it would claim durability the disk does not have.
    return Status::FailedPrecondition(
        "cannot checkpoint a quarantined engine: the catch-up journal is "
        "not durable yet");
  }
  // Rotate first so every previous segment becomes droppable the moment
  // the checkpoint lands.
  RETURN_IF_ERROR(wal_->Rotate());
  const uint64_t covered = wal_->next_lsn();
  RETURN_IF_ERROR(checkpointer_.Write(*engine_, covered));
  // Keep WAL segments back to the OLDEST retained checkpoint, not just
  // the newest: should the newest checkpoint turn out corrupt, recovery
  // falls back to an older one and needs the log from there on.
  ASSIGN_OR_RETURN(std::vector<uint64_t> kept, checkpointer_.List());
  RETURN_IF_ERROR(
      wal_->DropSegmentsBelow(kept.empty() ? covered : kept.front()));
  ops_since_checkpoint_ = 0;
  return Status::OK();
}

Status DurableEngine::Sync() {
  writer_.AssertInSection();  // Single-writer serial section.
  if (quarantined_) {
    return Status::FailedPrecondition(
        "cannot sync a quarantined engine: the WAL is closed until a "
        "healer rebuilds the shard");
  }
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("durable engine is closed");
  }
  return wal_->Sync();
}

Status DurableEngine::Close() {
  writer_.AssertInSection();  // Single-writer serial section.
  closed_ = true;
  if (wal_ == nullptr) return Status::OK();
  Status status = wal_->Close();
  wal_.reset();
  return status;
}

uint64_t DurableEngine::next_lsn() const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  // While quarantined the lsn counter advances virtually with the
  // journal, preserving LSN-as-GSN for the shard coordinator.
  if (quarantined_) return quarantine_base_lsn_ + quarantine_journal_.size();
  return wal_ == nullptr ? 0 : wal_->next_lsn();
}

}  // namespace storypivot::persist
