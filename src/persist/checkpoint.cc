#include "persist/checkpoint.h"

#include <algorithm>

#include "util/failpoint.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/strings.h"

namespace storypivot::persist {
namespace {

constexpr const char kCheckpointPrefix[] = "checkpoint-";
constexpr const char kCheckpointSuffix[] = ".sp";

}  // namespace

Checkpointer::Checkpointer(std::string dir, size_t keep)
    : dir_(std::move(dir)), keep_(std::max<size_t>(keep, 1)) {}

std::string Checkpointer::CheckpointName(uint64_t covered_lsn) {
  return StrFormat("%s%020llu%s", kCheckpointPrefix,
                   static_cast<unsigned long long>(covered_lsn),
                   kCheckpointSuffix);
}

Result<uint64_t> Checkpointer::ParseCheckpointName(const std::string& name) {
  const size_t prefix = sizeof(kCheckpointPrefix) - 1;
  const size_t suffix = sizeof(kCheckpointSuffix) - 1;
  if (name.size() <= prefix + suffix ||
      name.substr(0, prefix) != kCheckpointPrefix ||
      name.substr(name.size() - suffix) != kCheckpointSuffix) {
    return Status::InvalidArgument("not a checkpoint name: " + name);
  }
  std::string_view digits(name.data() + prefix,
                          name.size() - prefix - suffix);
  int64_t lsn = 0;
  if (!ParseInt64(digits, &lsn) || lsn < 0) {
    return Status::InvalidArgument("bad checkpoint number: " + name);
  }
  return static_cast<uint64_t>(lsn);
}

Result<std::vector<uint64_t>> Checkpointer::List() const {
  if (!FileExists(dir_)) return std::vector<uint64_t>{};
  ASSIGN_OR_RETURN(std::vector<std::string> names, ListDirectory(dir_));
  std::vector<uint64_t> lsns;
  for (const std::string& name : names) {
    Result<uint64_t> lsn = ParseCheckpointName(name);
    if (lsn.ok()) lsns.push_back(lsn.value());
  }
  std::sort(lsns.begin(), lsns.end());
  return lsns;
}

Status Checkpointer::Write(const StoryPivotEngine& engine,
                           uint64_t covered_lsn) {
  SP_FAILPOINT("checkpoint.write");
  RETURN_IF_ERROR(CreateDirectories(dir_));
  // WriteStringToFile is atomic (tmp + fsync + rename + dir sync): a
  // crash at any instant leaves either no new checkpoint or a complete
  // one — never a torn file, which is what makes checkpoints trustworthy
  // during recovery.
  RETURN_IF_ERROR(WriteStringToFile(dir_ + "/" + CheckpointName(covered_lsn),
                                    SaveSnapshot(engine)));
  // Prune old checkpoints, newest `keep_` survive.
  SP_FAILPOINT("checkpoint.prune");
  ASSIGN_OR_RETURN(std::vector<uint64_t> lsns, List());
  if (lsns.size() > keep_) {
    for (size_t i = 0; i + keep_ < lsns.size(); ++i) {
      RETURN_IF_ERROR(RemoveFile(dir_ + "/" + CheckpointName(lsns[i])));
    }
    RETURN_IF_ERROR(SyncDirectory(dir_));
  }
  return Status::OK();
}

Result<Checkpointer::Loaded> Checkpointer::LoadNewest(
    EngineConfig config) const {
  ASSIGN_OR_RETURN(std::vector<uint64_t> lsns, List());
  std::string failures;
  for (size_t i = lsns.size(); i-- > 0;) {
    const std::string path = dir_ + "/" + CheckpointName(lsns[i]);
    Result<std::string> contents = ReadFileToString(path);
    Result<std::unique_ptr<StoryPivotEngine>> engine =
        contents.ok() ? LoadSnapshot(contents.value(), config)
                      : Result<std::unique_ptr<StoryPivotEngine>>(
                            contents.status());
    if (engine.ok()) {
      if (i + 1 != lsns.size()) {
        SP_LOG(kWarning) << "recovered from older checkpoint " << path
                         << " after: " << failures;
      }
      Loaded loaded;
      loaded.engine = std::move(engine).value();
      loaded.covered_lsn = lsns[i];
      return loaded;
    }
    if (!failures.empty()) failures += "; ";
    failures += path + ": " + engine.status().ToString();
  }
  if (!lsns.empty()) {
    return Status::IoError("every checkpoint is unreadable: " + failures);
  }
  return Loaded{};  // No checkpoint: recover from the start of the WAL.
}

}  // namespace storypivot::persist
