#ifndef STORYPIVOT_PERSIST_CODEC_H_
#define STORYPIVOT_PERSIST_CODEC_H_

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "model/document.h"
#include "model/snippet.h"
#include "text/term_vector.h"
#include "util/status.h"

namespace storypivot::persist {

/// Little-endian binary encoder for write-ahead-log payloads. Fixed-width
/// integers plus length-prefixed strings: trivially versionable, and a
/// one-bit flip anywhere is caught by the frame CRC, so the decoder can
/// assume structurally intact input and only guard against truncation.
class Encoder {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutFixed(v, 4); }
  void PutU64(uint64_t v) { PutFixed(v, 8); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v), 8); }
  void PutF64(double v) { PutFixed(std::bit_cast<uint64_t>(v), 8); }

  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }

  void PutTermVector(const text::TermVector& terms) {
    PutU32(static_cast<uint32_t>(terms.size()));
    for (const auto& [term, weight] : terms.entries()) {
      PutU32(term);
      PutF64(weight);
    }
  }

  void PutSnippet(const Snippet& snippet) {
    PutU64(snippet.id);
    PutU32(snippet.source);
    PutI64(snippet.timestamp);
    PutI64(snippet.truth_story);
    PutString(snippet.document_url);
    PutString(snippet.event_type);
    PutString(snippet.description);
    PutTermVector(snippet.entities);
    PutTermVector(snippet.keywords);
  }

  void PutDocument(const Document& document) {
    PutU32(document.source);
    PutI64(document.timestamp);
    PutI64(document.truth_story);
    PutString(document.url);
    PutString(document.title);
    PutString(document.event_type);
    PutU32(static_cast<uint32_t>(document.paragraphs.size()));
    for (const std::string& p : document.paragraphs) PutString(p);
  }

  const std::string& bytes() const { return out_; }
  std::string Release() { return std::move(out_); }

 private:
  void PutFixed(uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string out_;
};

/// Decoder over an encoded payload. Reads past the end set a sticky error
/// flag and return zero values; callers check `status()` once after
/// decoding a record instead of threading a Status through every getter.
class Decoder {
 public:
  explicit Decoder(std::string_view in) : in_(in) {}

  uint8_t GetU8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(in_[pos_++]);
  }
  uint32_t GetU32() { return static_cast<uint32_t>(GetFixed(4)); }
  uint64_t GetU64() { return GetFixed(8); }
  int64_t GetI64() { return static_cast<int64_t>(GetFixed(8)); }
  double GetF64() { return std::bit_cast<double>(GetFixed(8)); }

  std::string GetString() {
    uint32_t size = GetU32();
    if (!Need(size)) return std::string();
    std::string out(in_.substr(pos_, size));
    pos_ += size;
    return out;
  }

  text::TermVector GetTermVector() {
    uint32_t count = GetU32();
    std::vector<text::TermVector::Entry> entries;
    // An absurd count means the payload is corrupt; checking against the
    // bytes actually remaining prevents a huge bogus reserve.
    if (remaining() / 12 < count) {
      failed_ = true;
      return text::TermVector();
    }
    entries.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      text::TermId term = GetU32();
      double weight = GetF64();
      entries.push_back({term, weight});
    }
    return text::TermVector::FromEntries(std::move(entries));
  }

  Snippet GetSnippet() {
    Snippet snippet;
    snippet.id = GetU64();
    snippet.source = GetU32();
    snippet.timestamp = GetI64();
    snippet.truth_story = GetI64();
    snippet.document_url = GetString();
    snippet.event_type = GetString();
    snippet.description = GetString();
    snippet.entities = GetTermVector();
    snippet.keywords = GetTermVector();
    return snippet;
  }

  Document GetDocument() {
    Document document;
    document.source = GetU32();
    document.timestamp = GetI64();
    document.truth_story = GetI64();
    document.url = GetString();
    document.title = GetString();
    document.event_type = GetString();
    uint32_t count = GetU32();
    if (remaining() / 4 < count) {
      failed_ = true;
      return document;
    }
    document.paragraphs.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      document.paragraphs.push_back(GetString());
    }
    return document;
  }

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] size_t remaining() const { return in_.size() - pos_; }

  /// OK when everything decoded in bounds and the payload was consumed
  /// exactly.
  [[nodiscard]] Status Finish() const {
    if (failed_) return Status::IoError("truncated record payload");
    if (pos_ != in_.size()) {
      return Status::IoError("trailing bytes in record payload");
    }
    return Status::OK();
  }

 private:
  bool Need(size_t n) {
    if (failed_ || in_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  uint64_t GetFixed(int width) {
    if (!Need(static_cast<size_t>(width))) return 0;
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(in_[pos_ + i]))
           << (8 * i);
    }
    pos_ += static_cast<size_t>(width);
    return v;
  }

  std::string_view in_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace storypivot::persist

#endif  // STORYPIVOT_PERSIST_CODEC_H_
