#include "serve/serving_engine.h"

#include <utility>

#include "cow/stats.h"
#include "util/logging.h"

namespace storypivot::serve {

Result<std::unique_ptr<ServingEngine>> ServingEngine::Open(
    const std::string& dir, ServerOptions server_options,
    persist::DurabilityOptions durability_options,
    EngineConfig engine_config, PublishPolicy publish_policy) {
  SP_CHECK(publish_policy.every_ops >= 1);
  std::unique_ptr<ServingEngine> serving(new ServingEngine());
  serving->policy_ = publish_policy;
  ASSIGN_OR_RETURN(serving->durable_,
                   persist::DurableEngine::Open(dir, durability_options,
                                                std::move(engine_config)));
  serving->search_ = std::make_unique<search::SearchEngine>(
      &serving->durable_->engine());
  // Every acked mutation (and every successful Reopen) runs the publish
  // policy. The hook runs inside the writer serial section, which is
  // exactly what Capture requires.
  ServingEngine* raw = serving.get();
  serving->durable_->set_commit_hook(
      [raw](persist::CommitEvent event) { raw->OnCommit(event); });
  serving->PublishSnapshot();  // Epoch 1: the recovered state.
  serving->server_ =
      std::make_unique<Server>(&serving->epochs_, server_options);
  return serving;
}

ServingEngine::~ServingEngine() {
  if (durable_ != nullptr) {
    // Detach the hook before members start dying under it.
    durable_->set_commit_hook({});
  }
}

void ServingEngine::OnCommit(persist::CommitEvent event) {
  if (event == persist::CommitEvent::kRecovery) {
    // Recovery rewound the engine to the log-consistent prefix; readers
    // must see the rebuilt state now, whatever the batching policy.
    PublishSnapshot();
    return;
  }
  ++ops_since_publish_;
  const bool ops_due = ops_since_publish_ >= policy_.every_ops;
  const bool timer_due =
      policy_.interval_ms > 0 &&
      since_publish_.ElapsedMillis() >=
          static_cast<double>(policy_.interval_ms);
  if (ops_due || timer_due) PublishSnapshot();
}

uint64_t ServingEngine::Flush() {
  if (ops_since_publish_ == 0) return 0;
  return PublishSnapshot();
}

uint64_t ServingEngine::PublishSnapshot() {
  WallTimer capture_timer;
  std::unique_ptr<ReadSnapshot> snapshot = ReadSnapshot::Capture(
      durable_->engine(), search_->index(), &capture_context_);
  const double capture_ms = capture_timer.ElapsedMillis();

  // Bytes physically copied for this epoch = every cow duplication since
  // the previous publish (the writer's path copies between publishes,
  // plus any copies the capture itself made). The rest of the
  // snapshot's resident size was structurally shared.
  const cow::CopyCounters now = cow::ReadCopyCounters();
  const uint64_t copied = now.bytes - published_counters_.bytes;
  const uint64_t approx = snapshot->ApproxBytes();
  const uint64_t shared = approx > copied ? approx - copied : 0;
  published_counters_ = now;

  const uint64_t epoch = epochs_.Publish(std::move(snapshot));
  epochs_.RecordCapture(capture_ms, copied, shared);
  epochs_.ReclaimExpired();  // Opportunistic registry trim.
  ops_since_publish_ = 0;
  since_publish_.Restart();
  if (server_ != nullptr) {
    // Entries cached at superseded epochs can never hit again.
    server_->OnEpochPublished(epoch);
  }
  return epoch;
}

}  // namespace storypivot::serve
