#include "serve/serving_engine.h"

#include <utility>

#include "serve/read_snapshot.h"

namespace storypivot::serve {

Result<std::unique_ptr<ServingEngine>> ServingEngine::Open(
    const std::string& dir, ServerOptions server_options,
    persist::DurabilityOptions durability_options,
    EngineConfig engine_config) {
  std::unique_ptr<ServingEngine> serving(new ServingEngine());
  ASSIGN_OR_RETURN(serving->durable_,
                   persist::DurableEngine::Open(dir, durability_options,
                                                std::move(engine_config)));
  serving->search_ = std::make_unique<search::SearchEngine>(
      &serving->durable_->engine());
  // Every acked mutation (and every successful Reopen) republishes.
  // The hook runs inside the writer serial section, which is exactly
  // what Capture requires.
  ServingEngine* raw = serving.get();
  serving->durable_->set_commit_hook([raw] { raw->PublishSnapshot(); });
  serving->PublishSnapshot();  // Epoch 1: the recovered state.
  serving->server_ =
      std::make_unique<Server>(&serving->epochs_, server_options);
  return serving;
}

ServingEngine::~ServingEngine() {
  if (durable_ != nullptr) {
    // Detach the hook before members start dying under it.
    durable_->set_commit_hook({});
  }
}

uint64_t ServingEngine::PublishSnapshot() {
  uint64_t epoch = epochs_.Publish(
      ReadSnapshot::Capture(durable_->engine(), search_->index()));
  epochs_.ReclaimExpired();  // Opportunistic registry trim.
  return epoch;
}

}  // namespace storypivot::serve
