#ifndef STORYPIVOT_SERVE_QUERY_CACHE_H_
#define STORYPIVOT_SERVE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "search/query_pipeline.h"
#include "search/ranker.h"
#include "util/sync.h"

namespace storypivot::serve {

/// A small thread-safe LRU cache of ranked results for hot queries.
///
/// Keys are `(epoch, canonical query, options)` — the epoch prefix makes
/// invalidation free: publishing a new snapshot changes the epoch, so
/// entries for superseded epochs simply stop being looked up and age out
/// via LRU eviction. No flush, no generation scan, no stale reads — a
/// hit is always byte-identical to re-running the query against the
/// pinned snapshot (DESIGN.md §14). The canonical part is built from the
/// PARSED query (terms sorted by field/id) rather than the raw text, so
/// surface variants that canonicalize identically ("mh17 crash" vs
/// "crash MH17") share one entry.
class QueryCache {
 public:
  /// `capacity` = max cached entries (>= 1; 0 disables caching — every
  /// Lookup misses and Insert is a no-op).
  explicit QueryCache(size_t capacity) : capacity_(capacity) {}

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
  };

  /// Canonical cache key for a parsed query at an epoch. Sorts a copy
  /// of the terms, encodes every option that affects ranking, and
  /// prefixes the epoch.
  [[nodiscard]] static std::string Key(uint64_t epoch,
                                       const search::ParsedQuery& query,
                                       const search::SearchOptions& options);

  /// On hit, copies the cached hits into `*hits`, refreshes recency and
  /// returns true.
  [[nodiscard]] bool Lookup(const std::string& key,
                            std::vector<search::StoryHit>* hits)
      SP_EXCLUDES(mu_);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry when over capacity.
  void Insert(const std::string& key, std::vector<search::StoryHit> hits)
      SP_EXCLUDES(mu_);

  [[nodiscard]] Stats GetStats() const SP_EXCLUDES(mu_);

 private:
  using LruList = std::list<std::pair<std::string, //
                                      std::vector<search::StoryHit>>>;

  const size_t capacity_;
  /// Leaf lock (held only for map/list surgery, never while ranking).
  // lockcheck: name=QueryCache.mu_
  mutable Mutex mu_;
  /// Most recent at the front.
  LruList lru_ SP_GUARDED_BY(mu_);
  std::unordered_map<std::string, LruList::iterator> entries_
      SP_GUARDED_BY(mu_);
  uint64_t hits_ SP_GUARDED_BY(mu_) = 0;
  uint64_t misses_ SP_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ SP_GUARDED_BY(mu_) = 0;
};

}  // namespace storypivot::serve

#endif  // STORYPIVOT_SERVE_QUERY_CACHE_H_
