#ifndef STORYPIVOT_SERVE_QUERY_CACHE_H_
#define STORYPIVOT_SERVE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "search/query_pipeline.h"
#include "search/ranker.h"
#include "util/sync.h"

namespace storypivot::serve {

/// A small thread-safe LRU cache of ranked results for hot queries.
///
/// Keys are `(epoch, canonical query, options)` — the epoch prefix makes
/// invalidation free: publishing a new snapshot changes the epoch, so
/// entries for superseded epochs stop being looked up, and the publisher
/// prunes them eagerly via EvictBelowEpoch() so dead epochs don't squat
/// on capacity until LRU pressure finds them. No stale reads either
/// way — a hit is always byte-identical to re-running the query against
/// the pinned snapshot (DESIGN.md §14). The canonical part is built from the
/// PARSED query (terms sorted by field/id) rather than the raw text, so
/// surface variants that canonicalize identically ("mh17 crash" vs
/// "crash MH17") share one entry.
class QueryCache {
 public:
  /// `capacity` = max cached entries (>= 1; 0 disables caching — every
  /// Lookup misses and Insert is a no-op).
  explicit QueryCache(size_t capacity) : capacity_(capacity) {}

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Total evictions = evicted_by_capacity + evicted_by_epoch.
    uint64_t evictions = 0;
    /// Dropped as least-recently-used when over capacity.
    uint64_t evicted_by_capacity = 0;
    /// Pruned by EvictBelowEpoch() because their epoch was superseded.
    uint64_t evicted_by_epoch = 0;
    size_t size = 0;
    size_t capacity = 0;
  };

  /// Canonical cache key for a parsed query at an epoch. Sorts a copy
  /// of the terms, encodes every option that affects ranking, and
  /// prefixes the epoch.
  [[nodiscard]] static std::string Key(uint64_t epoch,
                                       const search::ParsedQuery& query,
                                       const search::SearchOptions& options);

  /// On hit, copies the cached hits into `*hits`, refreshes recency and
  /// returns true.
  [[nodiscard]] bool Lookup(const std::string& key,
                            std::vector<search::StoryHit>* hits)
      SP_EXCLUDES(mu_);

  /// Inserts (or refreshes) an entry tagged with the epoch it was
  /// computed at, evicting the least recently used entry when over
  /// capacity.
  void Insert(const std::string& key, uint64_t epoch,
              std::vector<search::StoryHit> hits) SP_EXCLUDES(mu_);

  /// Prunes every entry whose epoch is < `epoch`. The publisher calls
  /// this when a new epoch goes live; returns how many entries died.
  size_t EvictBelowEpoch(uint64_t epoch) SP_EXCLUDES(mu_);

  [[nodiscard]] Stats GetStats() const SP_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string key;
    uint64_t epoch = 0;
    std::vector<search::StoryHit> hits;
  };
  using LruList = std::list<Entry>;

  const size_t capacity_;
  /// Leaf lock (held only for map/list surgery, never while ranking).
  // lockcheck: name=QueryCache.mu_
  mutable Mutex mu_;
  /// Most recent at the front.
  LruList lru_ SP_GUARDED_BY(mu_);
  std::unordered_map<std::string, LruList::iterator> entries_
      SP_GUARDED_BY(mu_);
  uint64_t hits_ SP_GUARDED_BY(mu_) = 0;
  uint64_t misses_ SP_GUARDED_BY(mu_) = 0;
  uint64_t evicted_by_capacity_ SP_GUARDED_BY(mu_) = 0;
  uint64_t evicted_by_epoch_ SP_GUARDED_BY(mu_) = 0;
};

}  // namespace storypivot::serve

#endif  // STORYPIVOT_SERVE_QUERY_CACHE_H_
