#include "serve/server.h"

#include <memory>

#include "util/strings.h"

namespace storypivot::serve {

Server::Server(EpochManager* epochs, ServerOptions options)
    : epochs_(epochs),
      options_(options),
      cache_(options.cache_capacity),
      pool_(options.num_threads, options.max_queued) {}

Result<QueryResponse> Server::Query(const QueryRequest& request) {
  // --- Admission (caller's thread) ---------------------------------------
  if (Status valid = search::ValidateSearchOptions(request.options);
      !valid.ok()) {
    MutexLock lock(stats_mu_);
    ++rejected_invalid_;
    return valid;
  }
  const uint64_t deadline_ms = request.deadline_ms != 0
                                   ? request.deadline_ms
                                   : options_.default_deadline_ms;
  WallTimer admitted;  // Queue wait counts against the deadline.

  // Rendezvous for the synchronous reply. Heap-allocated and shared
  // with the task: Submit's inline-execution paths make stack lifetime
  // subtle, and shared ownership is simply robust.
  struct Waiter {
    /// Leaf: taken only to flip done/result and by the blocked caller.
    // lockcheck: name=Server.Query.waiter_mu
    Mutex mu;
    CondVar cv;
    bool done SP_GUARDED_BY(mu) = false;
    Result<QueryResponse> result SP_GUARDED_BY(mu) =
        Status::Internal("query never executed");
  };
  auto waiter = std::make_shared<Waiter>();

  bool accepted = pool_.TrySubmit([this, waiter, request, admitted,
                                   deadline_ms]() {
    Result<QueryResponse> result = Execute(request, admitted, deadline_ms);
    MutexLock lock(waiter->mu);
    waiter->result = std::move(result);
    waiter->done = true;
    waiter->cv.NotifyOne();
  });
  if (!accepted) {
    MutexLock lock(stats_mu_);
    ++rejected_queue_full_;
    return Status::Unavailable(StrFormat(
        "serving queue full (%llu queries queued); back off and retry",
        static_cast<unsigned long long>(options_.max_queued)));
  }
  {
    MutexLock lock(stats_mu_);
    ++admitted_;
  }

  MutexLock lock(waiter->mu);
  while (!waiter->done) waiter->cv.Wait(waiter->mu);
  return std::move(waiter->result);
}

Result<QueryResponse> Server::Execute(const QueryRequest& request,
                                      const WallTimer& admitted,
                                      uint64_t deadline_ms) {
  if (before_execute_) before_execute_();

  // Deadline gate: fail fast BEFORE doing any work, so an expired query
  // (typically one that sat in the queue) costs nothing further.
  if (deadline_ms != 0 &&
      admitted.ElapsedNanos() >
          static_cast<int64_t>(deadline_ms) * 1'000'000) {
    MutexLock lock(stats_mu_);
    ++deadline_exceeded_;
    return Status::DeadlineExceeded(
        StrFormat("deadline of %llu ms exceeded after %.1f ms (including "
                  "queue wait)",
                  static_cast<unsigned long long>(deadline_ms),
                  admitted.ElapsedMillis()));
  }

  // Pin once; everything below reads only the pinned snapshot.
  std::shared_ptr<const ReadSnapshot> snapshot = epochs_->Pin();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition(
        "no snapshot published yet; the writer must publish before the "
        "server can answer queries");
  }

  QueryResponse response;
  response.epoch = snapshot->epoch();
  search::ParsedQuery parsed = snapshot->Parse(request.query);
  // Unmatched tokens always come from the fresh parse (they are
  // diagnostics about THIS request's surface text, not about the
  // canonical result the cache stores).
  response.unmatched = parsed.unmatched;

  const std::string key =
      QueryCache::Key(snapshot->epoch(), parsed, request.options);
  if (cache_.Lookup(key, &response.hits)) {
    response.from_cache = true;
  } else {
    response.hits = snapshot->Search(parsed, request.options);
    cache_.Insert(key, snapshot->epoch(), response.hits);
  }

  MutexLock lock(stats_mu_);
  ++completed_;
  return response;
}

Server::Stats Server::GetStats() const {
  Stats stats;
  {
    MutexLock lock(stats_mu_);
    stats.admitted = admitted_;
    stats.completed = completed_;
    stats.rejected_invalid = rejected_invalid_;
    stats.rejected_queue_full = rejected_queue_full_;
    stats.deadline_exceeded = deadline_exceeded_;
  }
  stats.cache = cache_.GetStats();
  return stats;
}

}  // namespace storypivot::serve
