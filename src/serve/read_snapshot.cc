#include "serve/read_snapshot.h"

namespace storypivot::serve {

std::unique_ptr<ReadSnapshot> ReadSnapshot::Capture(
    const StoryPivotEngine& engine, const search::PostingsIndex& index) {
  // Private constructor, so no make_unique.
  std::unique_ptr<ReadSnapshot> snapshot(new ReadSnapshot());

  // Text state: vocabularies clone by re-interning in id order (ids are
  // dense and stable), the gazetteer by replaying its registration-
  // order alias journal against the cloned entity vocabulary — the same
  // rebuild path core/snapshot uses for persistence.
  const text::Vocabulary& entities = engine.entity_vocabulary();
  for (text::TermId id = 0; id < entities.size(); ++id) {
    snapshot->entity_vocab_.Intern(entities.TermOf(id));
  }
  const text::Vocabulary& keywords = engine.keyword_vocabulary();
  for (text::TermId id = 0; id < keywords.size(); ++id) {
    snapshot->keyword_vocab_.Intern(keywords.TermOf(id));
  }
  snapshot->gazetteer_ =
      std::make_unique<text::Gazetteer>(&snapshot->entity_vocab_);
  for (const auto& [entity, alias] : engine.gazetteer().aliases()) {
    snapshot->gazetteer_->AddAlias(entity, alias);
  }

  snapshot->index_ = index.Clone();
  snapshot->sources_ = engine.sources();

  // Partitions: deep clones, then the corpus view over the clones. The
  // directory is built AFTER the vector is final so its pointers stay
  // valid for the snapshot's lifetime.
  // Snapshot capture must copy every partition by definition.  // splint: allow(full-scan)
  std::vector<const StorySet*> live = engine.partitions();  // splint: allow(full-scan)
  snapshot->partitions_.reserve(live.size());
  for (const StorySet* part : live) {
    snapshot->partitions_.push_back(part->Clone());
  }
  search::StoryCorpus& corpus = snapshot->corpus_;
  corpus.total_stories = engine.TotalStories();
  const StoryPivotEngine::IdCounters counters = engine.id_counters();
  corpus.next_story = counters.next_story;
  corpus.partitions.reserve(snapshot->partitions_.size());
  corpus.partition_of.assign(counters.next_source, nullptr);
  for (const StorySet& part : snapshot->partitions_) {
    corpus.partitions.push_back(&part);
    if (part.source() < corpus.partition_of.size()) {
      corpus.partition_of[part.source()] = &part;
    }
  }
  return snapshot;
}

search::ParsedQuery ReadSnapshot::Parse(std::string_view query) const {
  return search::ParseQuery(*gazetteer_, entity_vocab_, keyword_vocab_,
                            index_, query);
}

std::vector<search::StoryHit> ReadSnapshot::Search(
    const search::ParsedQuery& query,
    const search::SearchOptions& options) const {
  return search::RankStories(index_, corpus_, query, options);
}

std::vector<search::StoryHit> ReadSnapshot::Search(
    std::string_view query, const search::SearchOptions& options) const {
  return Search(Parse(query), options);
}

std::vector<std::pair<SourceId, StoryId>> ReadSnapshot::StoriesWithEntity(
    text::TermId term) const {
  return ResolvePostingsToStories(
      index_.Postings(search::Field::kEntity, term), corpus_);
}

std::vector<std::pair<SourceId, StoryId>> ReadSnapshot::StoriesWithKeyword(
    text::TermId term) const {
  return ResolvePostingsToStories(
      index_.Postings(search::Field::kKeyword, term), corpus_);
}

std::vector<std::pair<SourceId, StoryId>> ReadSnapshot::StoriesWithEventType(
    std::string_view event_type) const {
  return ResolvePostingsToStories(index_.EventTypePostings(event_type),
                                  corpus_);
}

std::vector<std::pair<SourceId, StoryId>> ReadSnapshot::StoriesInTimeRange(
    Timestamp begin, Timestamp end) const {
  return StoriesIntersecting(corpus_, begin, end);
}

}  // namespace storypivot::serve
