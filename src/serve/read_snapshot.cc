#include "serve/read_snapshot.h"

#include "model/story.h"
#include "storage/temporal_index.h"

namespace storypivot::serve {

namespace {

/// Builds a fresh TextState from the live engine: vocabularies clone by
/// re-interning in id order (ids are dense and stable), the gazetteer by
/// replaying its registration-order alias journal against the cloned
/// entity vocabulary — the same rebuild path core/snapshot uses for
/// persistence.
std::shared_ptr<const TextState> BuildTextState(
    const StoryPivotEngine& engine) {
  auto state = std::make_shared<TextState>();
  const text::Vocabulary& entities = engine.entity_vocabulary();
  for (text::TermId id = 0; id < entities.size(); ++id) {
    state->entity_vocab.Intern(entities.TermOf(id));
  }
  const text::Vocabulary& keywords = engine.keyword_vocabulary();
  for (text::TermId id = 0; id < keywords.size(); ++id) {
    state->keyword_vocab.Intern(keywords.TermOf(id));
  }
  state->gazetteer = std::make_unique<text::Gazetteer>(&state->entity_vocab);
  for (const auto& [entity, alias] : engine.gazetteer().aliases()) {
    state->gazetteer->AddAlias(entity, alias);
  }
  return state;
}

}  // namespace

std::shared_ptr<const TextState> CaptureContext::GetOrRebuild(
    const StoryPivotEngine& engine) {
  const size_t entities = engine.entity_vocabulary().size();
  const size_t keywords = engine.keyword_vocabulary().size();
  const size_t aliases = engine.gazetteer().aliases().size();
  // Vocabularies and the alias journal are append-only within an engine
  // lifetime, so unchanged sizes imply unchanged content. A reopened
  // engine gets a fresh ServingEngine — and hence a fresh context — so
  // recovery that discards unacked text state cannot alias a stale
  // cache.
  if (cached_ == nullptr || entities != entity_size_ ||
      keywords != keyword_size_ || aliases != alias_count_) {
    cached_ = BuildTextState(engine);
    entity_size_ = entities;
    keyword_size_ = keywords;
    alias_count_ = aliases;
  }
  return cached_;
}

void ReadSnapshot::FinishCapture(const StoryPivotEngine& engine,
                                 std::vector<StorySet> parts,
                                 ReadSnapshot* snapshot) {
  snapshot->sources_ = engine.sources();
  snapshot->partitions_ = std::move(parts);
  // The corpus directory is built AFTER the vector is final so its
  // pointers stay valid for the snapshot's lifetime.
  search::StoryCorpus& corpus = snapshot->corpus_;
  corpus.total_stories = engine.TotalStories();
  const StoryPivotEngine::IdCounters counters = engine.id_counters();
  corpus.next_story = counters.next_story;
  corpus.partitions.reserve(snapshot->partitions_.size());
  corpus.partition_of.assign(counters.next_source, nullptr);
  for (const StorySet& part : snapshot->partitions_) {
    corpus.partitions.push_back(&part);
    if (part.source() < corpus.partition_of.size()) {
      corpus.partition_of[part.source()] = &part;
    }
  }
}

std::unique_ptr<ReadSnapshot> ReadSnapshot::Capture(
    const StoryPivotEngine& engine, const search::PostingsIndex& index,
    CaptureContext* context) {
  // Private constructor, so no make_unique.
  std::unique_ptr<ReadSnapshot> snapshot(new ReadSnapshot());
  snapshot->text_ = context->GetOrRebuild(engine);
  snapshot->index_ = index.Freeze();

  // Partitions: O(1) frozen shares per partition, then the corpus view.
  // The freeze touches every partition header, not its contents.  // splint: allow(full-scan)
  std::vector<const StorySet*> live = engine.partitions();  // splint: allow(full-scan)
  std::vector<StorySet> parts;
  parts.reserve(live.size());
  for (const StorySet* part : live) {
    parts.push_back(part->Freeze());
  }
  FinishCapture(engine, std::move(parts), snapshot.get());
  return snapshot;
}

std::unique_ptr<ReadSnapshot> ReadSnapshot::Capture(
    const StoryPivotEngine& engine, const search::PostingsIndex& index) {
  CaptureContext context;
  return Capture(engine, index, &context);
}

std::unique_ptr<ReadSnapshot> ReadSnapshot::CaptureDeep(
    const StoryPivotEngine& engine, const search::PostingsIndex& index) {
  std::unique_ptr<ReadSnapshot> snapshot(new ReadSnapshot());
  snapshot->text_ = BuildTextState(engine);
  snapshot->index_ = index.Clone();  // splint: allow(deep-clone)

  // Deep-copied partitions, the PR-7 way: O(corpus) per capture.
  // Deep capture copies every partition by definition.  // splint: allow(full-scan)
  std::vector<const StorySet*> live = engine.partitions();  // splint: allow(full-scan)
  std::vector<StorySet> parts;
  parts.reserve(live.size());
  for (const StorySet* part : live) {
    parts.push_back(part->Clone());  // splint: allow(deep-clone)
  }
  FinishCapture(engine, std::move(parts), snapshot.get());
  return snapshot;
}

size_t ReadSnapshot::ApproxBytes() const {
  size_t bytes = index_.num_postings() * sizeof(search::Posting);
  for (const StorySet& part : partitions_) {
    bytes += part.num_snippets() *
             (sizeof(TemporalIndex::Entry) + sizeof(SnippetId) +
              sizeof(StoryId));
    bytes += part.stories().size() * sizeof(Story);
    bytes += part.entity_index().num_postings() * sizeof(SnippetId);
  }
  return bytes;
}

search::ParsedQuery ReadSnapshot::Parse(std::string_view query) const {
  return search::ParseQuery(*text_->gazetteer, text_->entity_vocab,
                            text_->keyword_vocab, index_, query);
}

std::vector<search::StoryHit> ReadSnapshot::Search(
    const search::ParsedQuery& query,
    const search::SearchOptions& options) const {
  return search::RankStories(index_, corpus_, query, options);
}

std::vector<search::StoryHit> ReadSnapshot::Search(
    std::string_view query, const search::SearchOptions& options) const {
  return Search(Parse(query), options);
}

std::vector<std::pair<SourceId, StoryId>> ReadSnapshot::StoriesWithEntity(
    text::TermId term) const {
  return ResolvePostingsToStories(
      index_.Postings(search::Field::kEntity, term), corpus_);
}

std::vector<std::pair<SourceId, StoryId>> ReadSnapshot::StoriesWithKeyword(
    text::TermId term) const {
  return ResolvePostingsToStories(
      index_.Postings(search::Field::kKeyword, term), corpus_);
}

std::vector<std::pair<SourceId, StoryId>> ReadSnapshot::StoriesWithEventType(
    std::string_view event_type) const {
  return ResolvePostingsToStories(index_.EventTypePostings(event_type),
                                  corpus_);
}

std::vector<std::pair<SourceId, StoryId>> ReadSnapshot::StoriesInTimeRange(
    Timestamp begin, Timestamp end) const {
  return StoriesIntersecting(corpus_, begin, end);
}

}  // namespace storypivot::serve
