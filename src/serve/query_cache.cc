#include "serve/query_cache.h"

#include <algorithm>
#include <tuple>

#include "util/strings.h"

namespace storypivot::serve {

std::string QueryCache::Key(uint64_t epoch,
                            const search::ParsedQuery& query,
                            const search::SearchOptions& options) {
  // Sort a copy of the terms so surface order doesn't split entries.
  // (field, term, event_type) is a total order: vocabulary fields have
  // empty event_type, the event field has kInvalidTermId.
  std::vector<search::QueryTerm> terms = query.terms;
  std::sort(terms.begin(), terms.end(),
            [](const search::QueryTerm& a, const search::QueryTerm& b) {
              return std::tie(a.field, a.term, a.event_type) <
                     std::tie(b.field, b.term, b.event_type);
            });
  std::string key = StrFormat("e%llu|", static_cast<unsigned long long>(epoch));
  for (const search::QueryTerm& term : terms) {
    key += StrFormat("%u:%llu:", static_cast<unsigned>(term.field),
                     static_cast<unsigned long long>(term.term));
    key += term.event_type;
    key += ';';
  }
  // Every option that affects ranking; %.17g round-trips doubles.
  key += StrFormat("|k=%llu m=%u ft=%d f=%lld t=%lld k1=%.17g b=%.17g",
                   static_cast<unsigned long long>(options.k),
                   static_cast<unsigned>(options.mode),
                   options.filter_time ? 1 : 0,
                   static_cast<long long>(options.from),
                   static_cast<long long>(options.to), options.bm25.k1,
                   options.bm25.b);
  return key;
}

bool QueryCache::Lookup(const std::string& key,
                        std::vector<search::StoryHit>* hits) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // Refresh recency.
  *hits = it->second->hits;
  ++hits_;
  return true;
}

void QueryCache::Insert(const std::string& key, uint64_t epoch,
                        std::vector<search::StoryHit> hits) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->epoch = epoch;
    it->second->hits = std::move(hits);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(Entry{key, epoch, std::move(hits)});
  entries_[key] = lru_.begin();
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    ++evicted_by_capacity_;
  }
}

size_t QueryCache::EvictBelowEpoch(uint64_t epoch) {
  MutexLock lock(mu_);
  size_t evicted = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->epoch < epoch) {
      entries_.erase(it->key);
      it = lru_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  evicted_by_epoch_ += evicted;
  return evicted;
}

QueryCache::Stats QueryCache::GetStats() const {
  MutexLock lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evicted_by_capacity = evicted_by_capacity_;
  stats.evicted_by_epoch = evicted_by_epoch_;
  stats.evictions = evicted_by_capacity_ + evicted_by_epoch_;
  stats.size = entries_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace storypivot::serve
