#ifndef STORYPIVOT_SERVE_SERVING_ENGINE_H_
#define STORYPIVOT_SERVE_SERVING_ENGINE_H_

#include <memory>
#include <string>

#include "persist/durable_engine.h"
#include "search/search_engine.h"
#include "serve/epoch_manager.h"
#include "serve/server.h"
#include "util/status.h"

namespace storypivot::serve {

/// The full serving stack wired together (DESIGN.md §14):
///
///   DurableEngine (WAL + recovery, the single writer)
///     + SearchEngine (incrementally maintained postings index)
///     + EpochManager (immutable snapshot publication)
///     + Server (thread pool, admission control, deadlines, cache)
///
/// The durable engine's commit hook captures a fresh ReadSnapshot after
/// every acknowledged mutation (a batch = one op = one snapshot) and
/// publishes it as a new epoch, so readers always see some acked prefix
/// of the operation stream — never a mid-batch state. The hook also
/// fires after a successful Reopen(), so recovery republishes too.
///
/// Threading contract: all mutations go through the single writer
/// thread (the DurableEngine serial section); Query() is safe from any
/// number of concurrent reader threads, which only ever touch pinned
/// immutable snapshots and the leaf-locked serve structures.
class ServingEngine {
 public:
  /// Opens (or creates) the durable engine at `dir`, attaches search,
  /// captures and publishes the initial snapshot (epoch 1), and starts
  /// the serving pool.
  [[nodiscard]] static Result<std::unique_ptr<ServingEngine>> Open(
      const std::string& dir, ServerOptions server_options = {},
      persist::DurabilityOptions durability_options = {},
      EngineConfig engine_config = {});

  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// The single writer. Mutate through durable().Add*/Remove*/Align;
  /// every acked mutation publishes a new epoch automatically.
  [[nodiscard]] persist::DurableEngine& durable() { return *durable_; }

  /// Read path: thread-safe, epoch-pinned.
  [[nodiscard]] Result<QueryResponse> Query(const QueryRequest& request) {
    return server_->Query(request);
  }

  [[nodiscard]] EpochManager& epochs() { return epochs_; }
  [[nodiscard]] Server& server() { return *server_; }
  [[nodiscard]] const search::SearchEngine& search() const {
    return *search_;
  }

  /// Re-captures and publishes a snapshot of the current engine state.
  /// Writer-side. Normally automatic (commit hook); exposed for the
  /// initial publish and for tests.
  uint64_t PublishSnapshot();

 private:
  ServingEngine() = default;

  // Destruction order (reverse of declaration): the server drains its
  // workers first, then epochs drop their snapshots, then search
  // detaches, then the durable engine closes.
  std::unique_ptr<persist::DurableEngine> durable_;
  std::unique_ptr<search::SearchEngine> search_;
  EpochManager epochs_;
  std::unique_ptr<Server> server_;
};

}  // namespace storypivot::serve

#endif  // STORYPIVOT_SERVE_SERVING_ENGINE_H_
