#ifndef STORYPIVOT_SERVE_SERVING_ENGINE_H_
#define STORYPIVOT_SERVE_SERVING_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "persist/durable_engine.h"
#include "search/search_engine.h"
#include "serve/epoch_manager.h"
#include "serve/read_snapshot.h"
#include "serve/server.h"
#include "util/status.h"
#include "util/timer.h"

namespace storypivot::serve {

/// When the serving engine publishes a fresh epoch (DESIGN.md §15).
/// The default (every op, no timer) preserves the PR-7 behavior:
/// readers always see the latest acked prefix. Batching trades snapshot
/// freshness for publish amortization — with COW capture already
/// O(delta), batching mostly matters for capping epoch churn (and hence
/// query-cache invalidation) under write bursts.
struct PublishPolicy {
  /// Publish after this many acked ops (>= 1). 1 = every op.
  uint64_t every_ops = 1;
  /// Also publish when this many milliseconds have passed since the
  /// last publish, checked on each commit (0 disables the timer). Keeps
  /// staleness bounded when every_ops > 1 and the write stream stalls.
  uint64_t interval_ms = 0;
};

/// The full serving stack wired together (DESIGN.md §14):
///
///   DurableEngine (WAL + recovery, the single writer)
///     + SearchEngine (incrementally maintained postings index)
///     + EpochManager (immutable snapshot publication)
///     + Server (thread pool, admission control, deadlines, cache)
///
/// The durable engine's commit hook counts every acknowledged mutation
/// (a batch = one op) against the publish policy and captures + publishes
/// a fresh ReadSnapshot when the policy says so (default: every op), so
/// readers always see some acked prefix of the operation stream — never
/// a mid-batch state. Recovery (Reopen) always publishes immediately,
/// whatever the policy: the rebuilt prefix must become visible.
///
/// Captures are copy-on-write (O(ops since last publish), DESIGN.md
/// §15); per-publish capture time and bytes copied vs shared are
/// recorded in EpochManager::Stats.
///
/// Threading contract: all mutations go through the single writer
/// thread (the DurableEngine serial section); Query() is safe from any
/// number of concurrent reader threads, which only ever touch pinned
/// immutable snapshots and the leaf-locked serve structures.
class ServingEngine {
 public:
  /// Opens (or creates) the durable engine at `dir`, attaches search,
  /// captures and publishes the initial snapshot (epoch 1), and starts
  /// the serving pool.
  [[nodiscard]] static Result<std::unique_ptr<ServingEngine>> Open(
      const std::string& dir, ServerOptions server_options = {},
      persist::DurabilityOptions durability_options = {},
      EngineConfig engine_config = {}, PublishPolicy publish_policy = {});

  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// The single writer. Mutate through durable().Add*/Remove*/Align;
  /// acked mutations publish new epochs per the publish policy.
  [[nodiscard]] persist::DurableEngine& durable() { return *durable_; }

  /// Read path: thread-safe, epoch-pinned.
  [[nodiscard]] Result<QueryResponse> Query(const QueryRequest& request) {
    return server_->Query(request);
  }

  [[nodiscard]] EpochManager& epochs() { return epochs_; }
  [[nodiscard]] Server& server() { return *server_; }
  [[nodiscard]] const search::SearchEngine& search() const {
    return *search_;
  }
  [[nodiscard]] const PublishPolicy& publish_policy() const {
    return policy_;
  }

  /// Acked ops not yet reflected in the published epoch (nonzero only
  /// under a batching policy). Writer-side.
  [[nodiscard]] uint64_t unpublished_ops() const {
    return ops_since_publish_;
  }

  /// Publishes now iff acked ops are pending under a batching policy
  /// (no-op otherwise). Writer-side. Returns the published epoch, or 0
  /// when nothing was pending.
  uint64_t Flush();

  /// Re-captures and publishes a snapshot of the current engine state
  /// unconditionally, resetting the policy counters. Writer-side.
  /// Normally automatic (commit hook); exposed for the initial publish,
  /// Flush() and tests.
  uint64_t PublishSnapshot();

 private:
  ServingEngine() = default;

  /// Commit-hook body: applies the publish policy (recovery publishes
  /// unconditionally). Writer-side.
  void OnCommit(persist::CommitEvent event);

  // Destruction order (reverse of declaration): the server drains its
  // workers first, then epochs drop their snapshots, then search
  // detaches, then the durable engine closes.
  std::unique_ptr<persist::DurableEngine> durable_;
  std::unique_ptr<search::SearchEngine> search_;
  EpochManager epochs_;
  std::unique_ptr<Server> server_;

  // Publication policy state (all writer-serial, like the hook).
  PublishPolicy policy_;
  uint64_t ops_since_publish_ = 0;
  WallTimer since_publish_;
  /// Text-state cache reused across captures (read_snapshot.h).
  CaptureContext capture_context_;
  /// Copy-counter reading at the end of the previous publish; the delta
  /// at the next publish = bytes physically copied for that epoch.
  cow::CopyCounters published_counters_;
};

}  // namespace storypivot::serve

#endif  // STORYPIVOT_SERVE_SERVING_ENGINE_H_
