#include "serve/epoch_manager.h"

#include <utility>

namespace storypivot::serve {

uint64_t EpochManager::Publish(std::unique_ptr<ReadSnapshot> snapshot) {
  // The snapshot destructor (partition + index teardown) must not run
  // under mu_, so the retiree is moved out and dropped after unlock.
  std::shared_ptr<const ReadSnapshot> retired;
  uint64_t epoch = 0;
  {
    MutexLock lock(mu_);
    epoch = ++next_epoch_;
    snapshot->epoch_ = epoch;  // Friend access: publish-time stamp.
    retired = std::move(current_);
    current_ = std::shared_ptr<const ReadSnapshot>(std::move(snapshot));
    ++published_;
    if (retired != nullptr) {
      retired_.push_back(retired);
    }
  }
  // `retired` may be the last reference; if so the old epoch is
  // reclaimed right here (outside the lock). Otherwise in-flight
  // readers keep it alive and ReclaimExpired() notices the drain later.
  return epoch;
}

std::shared_ptr<const ReadSnapshot> EpochManager::Pin() const {
  MutexLock lock(mu_);
  return current_;
}

uint64_t EpochManager::current_epoch() const {
  MutexLock lock(mu_);
  return current_ == nullptr ? 0 : current_->epoch();
}

void EpochManager::RecordCapture(double millis, uint64_t bytes_copied,
                                 uint64_t bytes_shared) {
  MutexLock lock(mu_);
  ++captures_;
  last_capture_ms_ = millis;
  total_capture_ms_ += millis;
  last_bytes_copied_ = bytes_copied;
  total_bytes_copied_ += bytes_copied;
  last_bytes_shared_ = bytes_shared;
}

size_t EpochManager::ReclaimExpired() {
  MutexLock lock(mu_);
  size_t before = retired_.size();
  std::erase_if(retired_,
                [](const std::weak_ptr<const ReadSnapshot>& weak) {
                  return weak.expired();
                });
  size_t reclaimed = before - retired_.size();
  reclaimed_ += reclaimed;
  return reclaimed;
}

EpochManager::Stats EpochManager::GetStats() const {
  MutexLock lock(mu_);
  Stats stats;
  stats.current_epoch = current_ == nullptr ? 0 : current_->epoch();
  stats.published = published_;
  stats.reclaimed = reclaimed_;
  stats.captures = captures_;
  stats.last_capture_ms = last_capture_ms_;
  stats.total_capture_ms = total_capture_ms_;
  stats.last_bytes_copied = last_bytes_copied_;
  stats.total_bytes_copied = total_bytes_copied_;
  stats.last_bytes_shared = last_bytes_shared_;
  for (const auto& weak : retired_) {
    if (!weak.expired()) ++stats.retired_live;
  }
  return stats;
}

}  // namespace storypivot::serve
