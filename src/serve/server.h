#ifndef STORYPIVOT_SERVE_SERVER_H_
#define STORYPIVOT_SERVE_SERVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "search/ranker.h"
#include "serve/epoch_manager.h"
#include "serve/query_cache.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace storypivot::serve {

struct ServerOptions {
  /// Worker threads executing queries. <= 1 runs every query inline on
  /// the calling thread (same single-code-path convention as
  /// ThreadPool), which is what the determinism tests use.
  size_t num_threads = 4;
  /// Admission bound: queries queued beyond this are rejected with
  /// kUnavailable instead of building an unbounded backlog
  /// (backpressure — the caller backs off and retries).
  size_t max_queued = 64;
  /// Default per-query deadline in milliseconds; 0 = no deadline.
  /// Checked when a worker dequeues the query: a query that spent its
  /// budget waiting in the queue fails fast with kDeadlineExceeded
  /// rather than burning a worker on an answer nobody is waiting for.
  uint64_t default_deadline_ms = 0;
  /// Hot-query cache entries (0 disables caching).
  size_t cache_capacity = 128;
};

struct QueryRequest {
  std::string query;
  search::SearchOptions options;
  /// Overrides ServerOptions::default_deadline_ms when nonzero.
  uint64_t deadline_ms = 0;
};

struct QueryResponse {
  /// Epoch the query was served at (all hits are consistent with
  /// exactly this snapshot).
  uint64_t epoch = 0;
  std::vector<search::StoryHit> hits;
  /// Query tokens that matched nothing (always freshly parsed, even on
  /// a cache hit).
  std::vector<std::string> unmatched;
  bool from_cache = false;
};

/// The serving front-end (DESIGN.md §14): a thread pool draining a
/// bounded query queue against epoch-pinned snapshots.
///
/// Request lifecycle:
///   1. ADMISSION (caller's thread): options are validated
///      (kInvalidArgument for inverted time ranges — see
///      ValidateSearchOptions) and the query is enqueued with
///      TrySubmit; a full queue rejects with kUnavailable.
///   2. EXECUTION (worker): the deadline is checked first — queue wait
///      counts against it — then the worker pins the current snapshot
///      and serves entirely from it: parse, cache probe, rank. The
///      pinned epoch cannot be reclaimed mid-query no matter how many
///      snapshots the writer publishes meanwhile.
///
/// Query() is synchronous (blocks the caller until its result is
/// ready); concurrency comes from many caller threads, as in the bench
/// harness's closed-loop readers.
class Server {
 public:
  /// `epochs` must outlive the server.
  explicit Server(EpochManager* epochs, ServerOptions options = {});

  /// Drains in-flight queries (ThreadPool shutdown) before returning.
  ~Server() = default;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Executes one query end to end. Thread-safe; blocks until the
  /// result is ready. Errors:
  ///   * kInvalidArgument  — malformed options (rejected at admission);
  ///   * kUnavailable      — queue full (admission backpressure);
  ///   * kDeadlineExceeded — deadline expired before execution started;
  ///   * kFailedPrecondition — no snapshot published yet.
  [[nodiscard]] Result<QueryResponse> Query(const QueryRequest& request);

  struct Stats {
    uint64_t admitted = 0;
    uint64_t completed = 0;
    uint64_t rejected_invalid = 0;
    uint64_t rejected_queue_full = 0;
    uint64_t deadline_exceeded = 0;
    QueryCache::Stats cache;
  };
  [[nodiscard]] Stats GetStats() const;

  /// Publisher notification: epoch `epoch` just went live, so cache
  /// entries computed at older epochs can never be looked up again —
  /// prune them now instead of letting them squat until LRU pressure.
  void OnEpochPublished(uint64_t epoch) { cache_.EvictBelowEpoch(epoch); }

  /// TEST HOOK: runs on the worker at the top of every execution (after
  /// dequeue, before the deadline check). Tests use it to stall workers
  /// — filling the queue to force kUnavailable, or burning a deadline
  /// to force kDeadlineExceeded. Install before issuing queries; not
  /// synchronized against in-flight ones.
  void set_before_execute(std::function<void()> hook) {
    before_execute_ = std::move(hook);
  }

 private:
  /// The worker-side half of Query() (step 2 above).
  [[nodiscard]] Result<QueryResponse> Execute(const QueryRequest& request,
                                              const WallTimer& admitted,
                                              uint64_t deadline_ms);

  EpochManager* const epochs_;
  const ServerOptions options_;
  QueryCache cache_;
  /// Counter lock; leaf (nothing is acquired under it).
  // lockcheck: name=Server.stats_mu_
  mutable Mutex stats_mu_;
  uint64_t admitted_ SP_GUARDED_BY(stats_mu_) = 0;
  uint64_t completed_ SP_GUARDED_BY(stats_mu_) = 0;
  uint64_t rejected_invalid_ SP_GUARDED_BY(stats_mu_) = 0;
  uint64_t rejected_queue_full_ SP_GUARDED_BY(stats_mu_) = 0;
  uint64_t deadline_exceeded_ SP_GUARDED_BY(stats_mu_) = 0;
  std::function<void()> before_execute_;
  /// Last member: destroyed (and drained) first, so workers never see a
  /// partially-destroyed server.
  ThreadPool pool_;
};

}  // namespace storypivot::serve

#endif  // STORYPIVOT_SERVE_SERVER_H_
