#ifndef STORYPIVOT_SERVE_EPOCH_MANAGER_H_
#define STORYPIVOT_SERVE_EPOCH_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/read_snapshot.h"
#include "util/sync.h"

namespace storypivot::serve {

/// Epoch-based snapshot publication (RCU-flavoured; DESIGN.md §14).
///
/// The single writer publishes immutable ReadSnapshot objects; readers
/// pin the current one with a shared_ptr and work against it lock-free
/// for the duration of a query. Publishing a new epoch never blocks on
/// readers: the old snapshot simply drops out of `current_` and is
/// reclaimed when the last pinned reference drains (shared_ptr refcount
/// IS the per-epoch reader count — grace period detection for free).
///
/// A weak_ptr registry of retired epochs powers observability
/// (`Stats::retired_live` = retired epochs still pinned by in-flight
/// readers) and `ReclaimExpired()` trims the registry's fully-drained
/// entries so it cannot grow unboundedly under sustained ingest.
class EpochManager {
 public:
  EpochManager() = default;

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  struct Stats {
    /// Epoch of the currently published snapshot (0 = none published).
    uint64_t current_epoch = 0;
    /// Snapshots ever published.
    uint64_t published = 0;
    /// Retired epochs whose snapshot is still pinned by readers.
    size_t retired_live = 0;
    /// Retired epochs observed fully drained (reclaimed).
    uint64_t reclaimed = 0;
    /// Captures recorded via RecordCapture (== publishes from the
    /// serving engine; tests publishing hand-built snapshots skip it).
    uint64_t captures = 0;
    /// Wall time the most recent / all captures spent, milliseconds.
    double last_capture_ms = 0.0;
    double total_capture_ms = 0.0;
    /// Copy-on-write bytes physically copied for the most recent epoch
    /// (path copies since the previous publish, including the capture
    /// itself) vs bytes structurally shared with prior epochs.
    uint64_t last_bytes_copied = 0;
    uint64_t total_bytes_copied = 0;
    uint64_t last_bytes_shared = 0;
  };

  /// Stamps the next epoch number on `snapshot` and makes it the
  /// current snapshot. Writer-side only (the caller serializes
  /// publishes; concurrent Pin()s are fine). The previous snapshot is
  /// retired: it stays alive exactly as long as readers still pin it.
  uint64_t Publish(std::unique_ptr<ReadSnapshot> snapshot)
      SP_EXCLUDES(mu_);

  /// Pins the current snapshot for reading. The returned shared_ptr
  /// keeps the epoch alive until the reader drops it. Null iff nothing
  /// has been published yet.
  [[nodiscard]] std::shared_ptr<const ReadSnapshot> Pin() const
      SP_EXCLUDES(mu_);

  /// Epoch of the current snapshot (0 = none published yet).
  [[nodiscard]] uint64_t current_epoch() const SP_EXCLUDES(mu_);

  /// Records the cost of the capture behind the latest publish:
  /// `millis` of wall time, `bytes_copied` physically duplicated by the
  /// cow layer since the previous publish and `bytes_shared` reused
  /// structurally. Writer-side, right after Publish().
  void RecordCapture(double millis, uint64_t bytes_copied,
                     uint64_t bytes_shared) SP_EXCLUDES(mu_);

  /// Prunes fully-drained retired epochs from the registry and returns
  /// how many were reclaimed by this call. Safe from any thread; the
  /// writer calls it opportunistically after each publish.
  size_t ReclaimExpired() SP_EXCLUDES(mu_);

  [[nodiscard]] Stats GetStats() const SP_EXCLUDES(mu_);

 private:
  /// Guards the published pointer and the retirement registry. Leaf
  /// lock held only for pointer swaps and registry scans — never while
  /// capturing or destroying a snapshot. Publish runs from the durable
  /// engine's commit hook, i.e. inside the writer serial section.
  // lockcheck: name=EpochManager.mu_ after=DurableEngine.writer_
  mutable Mutex mu_;
  std::shared_ptr<const ReadSnapshot> current_ SP_GUARDED_BY(mu_);
  uint64_t next_epoch_ SP_GUARDED_BY(mu_) = 0;
  uint64_t published_ SP_GUARDED_BY(mu_) = 0;
  uint64_t reclaimed_ SP_GUARDED_BY(mu_) = 0;
  uint64_t captures_ SP_GUARDED_BY(mu_) = 0;
  double last_capture_ms_ SP_GUARDED_BY(mu_) = 0.0;
  double total_capture_ms_ SP_GUARDED_BY(mu_) = 0.0;
  uint64_t last_bytes_copied_ SP_GUARDED_BY(mu_) = 0;
  uint64_t total_bytes_copied_ SP_GUARDED_BY(mu_) = 0;
  uint64_t last_bytes_shared_ SP_GUARDED_BY(mu_) = 0;
  /// Retired (superseded) epochs, oldest first; entries expire when the
  /// last reader unpins.
  std::vector<std::weak_ptr<const ReadSnapshot>> retired_
      SP_GUARDED_BY(mu_);
};

}  // namespace storypivot::serve

#endif  // STORYPIVOT_SERVE_EPOCH_MANAGER_H_
