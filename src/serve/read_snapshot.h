#ifndef STORYPIVOT_SERVE_READ_SNAPSHOT_H_
#define STORYPIVOT_SERVE_READ_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/story_set.h"
#include "model/document.h"
#include "model/ids.h"
#include "model/time.h"
#include "search/postings_index.h"
#include "search/query_pipeline.h"
#include "search/ranker.h"
#include "search/story_view.h"
#include "text/gazetteer.h"
#include "text/vocabulary.h"

namespace storypivot::serve {

/// The text state a snapshot parses queries against: vocabularies plus
/// the gazetteer rebuilt over them. Immutable once built; consecutive
/// snapshots share one TextState for as long as the live text state has
/// not grown (vocabularies and the alias journal are append-only within
/// an engine lifetime, so equal sizes imply identical content).
struct TextState {
  text::Vocabulary entity_vocab;
  text::Vocabulary keyword_vocab;
  /// Points at entity_vocab above, hence the heap box (TextState itself
  /// lives behind a shared_ptr and never moves).
  std::unique_ptr<text::Gazetteer> gazetteer;
};

/// Cross-capture cache owned by the publisher (ServingEngine). Tracks
/// the sizes the last TextState was built at and rebuilds only when the
/// live engine's text state has grown past them — the common per-op
/// publish reuses the cached TextState at zero cost.
class CaptureContext {
 public:
  /// Returns a TextState matching `engine`'s current text state,
  /// rebuilding iff the cached one is stale. Serial-section only.
  std::shared_ptr<const TextState> GetOrRebuild(
      const StoryPivotEngine& engine);

 private:
  std::shared_ptr<const TextState> cached_;
  size_t entity_size_ = 0;
  size_t keyword_size_ = 0;
  size_t alias_count_ = 0;
};

/// An immutable, self-contained view of everything the read path needs:
/// frozen story partitions, shared text state (vocabularies + gazetteer,
/// so query parsing canonicalizes against the snapshot, not the moving
/// live engine) and a frozen PostingsIndex. Exploits the PR-4 invariant
/// that index state is a pure function of the live snippet set — the
/// capture is an exact, reproducible freeze of the serial engine at one
/// acked prefix, so reads pinned to a snapshot are byte-identical to a
/// serial engine at that prefix (DESIGN.md §14).
///
/// Since PR 8 the freeze is copy-on-write (DESIGN.md §15): Capture()
/// structurally shares posting lists, partitions and text state with
/// the live engine in O(partitions) pointer copies, and the writer's
/// later mutations path-copy away from the shared nodes instead of
/// touching them — so capture cost is O(ops since the last publish),
/// not O(corpus). CaptureDeep() keeps the PR-7 deep-copy behavior as
/// the measured baseline.
///
/// Snapshots are immutable after capture and therefore safe to read
/// from any number of threads concurrently with no synchronization;
/// lifetime is managed by EpochManager via shared_ptr (readers pin, the
/// last unpin reclaims). The epoch number is stamped by EpochManager at
/// publish time.
class ReadSnapshot {
 public:
  /// Captures a frozen view by structural sharing (O(delta)). Must run
  /// inside the writer's serial section (it reads serial-guarded engine
  /// state; the caller holds the role — commit hooks and factories do).
  /// `context` carries the text-state cache across captures; it must
  /// outlive the call but not the snapshot.
  [[nodiscard]] static std::unique_ptr<ReadSnapshot> Capture(
      const StoryPivotEngine& engine, const search::PostingsIndex& index,
      CaptureContext* context);

  /// Convenience overload with a throwaway context (tests, one-shot
  /// captures): still O(delta) for the indexes, but rebuilds the text
  /// state every call.
  [[nodiscard]] static std::unique_ptr<ReadSnapshot> Capture(
      const StoryPivotEngine& engine, const search::PostingsIndex& index);

  /// The PR-7 deep-copy capture: clones vocabularies, gazetteer,
  /// postings and partitions outright, sharing nothing. O(corpus) by
  /// construction — kept as the honest baseline the O(delta) claim is
  /// measured against (bench_serve publish-cost sweep).
  [[nodiscard]] static std::unique_ptr<ReadSnapshot> CaptureDeep(
      const StoryPivotEngine& engine, const search::PostingsIndex& index);

  // Self-referential (gazetteer -> entity_vocab, corpus_ ->
  // partitions_): address identity must be stable, so no copies or
  // moves — snapshots live behind pointers.
  ReadSnapshot(const ReadSnapshot&) = delete;
  ReadSnapshot& operator=(const ReadSnapshot&) = delete;

  /// Epoch this snapshot was published as (EpochManager stamps it).
  [[nodiscard]] uint64_t epoch() const { return epoch_; }

  /// Canonicalizes a free-text query against the SNAPSHOT text state
  /// (same pipeline as SearchEngine::Parse — see query_pipeline.h).
  [[nodiscard]] search::ParsedQuery Parse(std::string_view query) const;

  /// Ranked BM25 top-k over the snapshot (same kernel as
  /// SearchEngine::Search; byte-identical on equal state).
  [[nodiscard]] std::vector<search::StoryHit> Search(
      const search::ParsedQuery& query,
      const search::SearchOptions& options = {}) const;
  [[nodiscard]] std::vector<search::StoryHit> Search(
      std::string_view query,
      const search::SearchOptions& options = {}) const;

  // Boolean story lookups, mirroring SearchEngine's StoryIndex surface.
  [[nodiscard]] std::vector<std::pair<SourceId, StoryId>> StoriesWithEntity(
      text::TermId term) const;
  [[nodiscard]] std::vector<std::pair<SourceId, StoryId>> StoriesWithKeyword(
      text::TermId term) const;
  [[nodiscard]] std::vector<std::pair<SourceId, StoryId>>
  StoriesWithEventType(std::string_view event_type) const;
  [[nodiscard]] std::vector<std::pair<SourceId, StoryId>> StoriesInTimeRange(
      Timestamp begin, Timestamp end) const;

  [[nodiscard]] const search::PostingsIndex& index() const { return index_; }
  [[nodiscard]] const search::StoryCorpus& corpus() const { return corpus_; }
  [[nodiscard]] const std::vector<SourceInfo>& sources() const {
    return sources_;
  }
  [[nodiscard]] size_t total_stories() const { return corpus_.total_stories; }

  /// O(partitions) estimate of the snapshot's logical resident size
  /// (used with the cow copy counters to report bytes shared vs copied
  /// per publish).
  [[nodiscard]] size_t ApproxBytes() const;

 private:
  ReadSnapshot() = default;

  /// Shared tail of the capture paths: sources, partitions (already
  /// frozen/cloned into `parts`), corpus directory.
  static void FinishCapture(const StoryPivotEngine& engine,
                            std::vector<StorySet> parts,
                            ReadSnapshot* snapshot);

  friend class EpochManager;  // Stamps epoch_ at publish time.

  uint64_t epoch_ = 0;
  /// Shared with the publisher's CaptureContext (and other snapshots)
  /// until the live text state grows; immutable either way.
  std::shared_ptr<const TextState> text_;
  search::PostingsIndex index_;
  /// Frozen partitions, in engine partition order.
  std::vector<StorySet> partitions_;
  /// View over partitions_ (owned above, so the pointers never dangle).
  search::StoryCorpus corpus_;
  std::vector<SourceInfo> sources_;
};

}  // namespace storypivot::serve

#endif  // STORYPIVOT_SERVE_READ_SNAPSHOT_H_
