#ifndef STORYPIVOT_SERVE_READ_SNAPSHOT_H_
#define STORYPIVOT_SERVE_READ_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/story_set.h"
#include "model/document.h"
#include "model/ids.h"
#include "model/time.h"
#include "search/postings_index.h"
#include "search/query_pipeline.h"
#include "search/ranker.h"
#include "search/story_view.h"
#include "text/gazetteer.h"
#include "text/vocabulary.h"

namespace storypivot::serve {

/// An immutable, self-contained view of everything the read path needs:
/// cloned story partitions, cloned text state (vocabularies + gazetteer,
/// so query parsing canonicalizes against the snapshot, not the moving
/// live engine) and a cloned PostingsIndex. Exploits the PR-4 invariant
/// that index state is a pure function of the live snippet set — the
/// capture is an exact, reproducible freeze of the serial engine at one
/// acked prefix, so reads pinned to a snapshot are byte-identical to a
/// serial engine at that prefix (DESIGN.md §14).
///
/// Snapshots are immutable after capture and therefore safe to read
/// from any number of threads concurrently with no synchronization;
/// lifetime is managed by EpochManager via shared_ptr (readers pin, the
/// last unpin reclaims). The epoch number is stamped by EpochManager at
/// publish time.
class ReadSnapshot {
 public:
  /// Captures a frozen view. Must run inside the writer's serial
  /// section (it reads serial-guarded engine state; the caller holds
  /// the role — commit hooks and factories do).
  [[nodiscard]] static std::unique_ptr<ReadSnapshot> Capture(
      const StoryPivotEngine& engine, const search::PostingsIndex& index);

  // Self-referential (gazetteer_ -> entity_vocab_, corpus_ ->
  // partitions_): address identity must be stable, so no copies or
  // moves — snapshots live behind pointers.
  ReadSnapshot(const ReadSnapshot&) = delete;
  ReadSnapshot& operator=(const ReadSnapshot&) = delete;

  /// Epoch this snapshot was published as (EpochManager stamps it).
  [[nodiscard]] uint64_t epoch() const { return epoch_; }

  /// Canonicalizes a free-text query against the SNAPSHOT text state
  /// (same pipeline as SearchEngine::Parse — see query_pipeline.h).
  [[nodiscard]] search::ParsedQuery Parse(std::string_view query) const;

  /// Ranked BM25 top-k over the snapshot (same kernel as
  /// SearchEngine::Search; byte-identical on equal state).
  [[nodiscard]] std::vector<search::StoryHit> Search(
      const search::ParsedQuery& query,
      const search::SearchOptions& options = {}) const;
  [[nodiscard]] std::vector<search::StoryHit> Search(
      std::string_view query,
      const search::SearchOptions& options = {}) const;

  // Boolean story lookups, mirroring SearchEngine's StoryIndex surface.
  [[nodiscard]] std::vector<std::pair<SourceId, StoryId>> StoriesWithEntity(
      text::TermId term) const;
  [[nodiscard]] std::vector<std::pair<SourceId, StoryId>> StoriesWithKeyword(
      text::TermId term) const;
  [[nodiscard]] std::vector<std::pair<SourceId, StoryId>>
  StoriesWithEventType(std::string_view event_type) const;
  [[nodiscard]] std::vector<std::pair<SourceId, StoryId>> StoriesInTimeRange(
      Timestamp begin, Timestamp end) const;

  [[nodiscard]] const search::PostingsIndex& index() const { return index_; }
  [[nodiscard]] const search::StoryCorpus& corpus() const { return corpus_; }
  [[nodiscard]] const std::vector<SourceInfo>& sources() const {
    return sources_;
  }
  [[nodiscard]] size_t total_stories() const { return corpus_.total_stories; }

 private:
  ReadSnapshot() = default;

  friend class EpochManager;  // Stamps epoch_ at publish time.

  uint64_t epoch_ = 0;
  text::Vocabulary entity_vocab_;
  text::Vocabulary keyword_vocab_;
  /// Rebuilt against entity_vocab_ by replaying the alias journal
  /// (gazetteer.h documents this reproduces the gazetteer exactly).
  std::unique_ptr<text::Gazetteer> gazetteer_;
  search::PostingsIndex index_;
  /// Deep-cloned partitions, in engine partition order.
  std::vector<StorySet> partitions_;
  /// View over partitions_ (owned above, so the pointers never dangle).
  search::StoryCorpus corpus_;
  std::vector<SourceInfo> sources_;
};

}  // namespace storypivot::serve

#endif  // STORYPIVOT_SERVE_READ_SNAPSHOT_H_
