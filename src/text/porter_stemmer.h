#ifndef STORYPIVOT_TEXT_PORTER_STEMMER_H_
#define STORYPIVOT_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace storypivot::text {

/// Classic Porter (1980) suffix-stripping stemmer for English.
/// Input is expected to be a lowercase ASCII word; words shorter than
/// three characters are returned unchanged, matching the original paper.
///
/// Examples: "caresses"->"caress", "ponies"->"poni", "relational"->"relat",
/// "conflating"->"conflat".
std::string PorterStem(std::string_view word);

}  // namespace storypivot::text

#endif  // STORYPIVOT_TEXT_PORTER_STEMMER_H_
