#include "text/porter_stemmer.h"

namespace storypivot::text {
namespace {

// Helpers operate on a working buffer `w`. Positions are 0-based byte
// indices; all words are lowercase ASCII.

bool IsConsonantAt(const std::string& w, size_t i) {
  char c = w[i];
  switch (c) {
    case 'a':
    case 'e':
    case 'i':
    case 'o':
    case 'u':
      return false;
    case 'y':
      // 'y' is a consonant when it starts the word or follows a vowel-ish
      // position; Porter defines it as consonant iff the previous letter is
      // not a consonant... precisely: y is a consonant if preceded by a
      // vowel is false -> recursive definition below.
      return i == 0 ? true : !IsConsonantAt(w, i - 1);
    default:
      return true;
  }
}

// Measure m of w[0..end): number of VC transitions in [C](VC)^m[V].
int Measure(const std::string& w, size_t end) {
  int m = 0;
  size_t i = 0;
  // Skip initial consonants.
  while (i < end && IsConsonantAt(w, i)) ++i;
  while (i < end) {
    // Vowel run.
    while (i < end && !IsConsonantAt(w, i)) ++i;
    if (i >= end) break;
    ++m;
    // Consonant run.
    while (i < end && IsConsonantAt(w, i)) ++i;
  }
  return m;
}

bool ContainsVowel(const std::string& w, size_t end) {
  for (size_t i = 0; i < end; ++i) {
    if (!IsConsonantAt(w, i)) return true;
  }
  return false;
}

bool EndsDoubleConsonant(const std::string& w) {
  size_t n = w.size();
  if (n < 2) return false;
  return w[n - 1] == w[n - 2] && IsConsonantAt(w, n - 1);
}

// *o: stem ends cvc where the final c is not w, x or y.
bool EndsCvc(const std::string& w, size_t end) {
  if (end < 3) return false;
  if (!IsConsonantAt(w, end - 3) || IsConsonantAt(w, end - 2) ||
      !IsConsonantAt(w, end - 1)) {
    return false;
  }
  char c = w[end - 1];
  return c != 'w' && c != 'x' && c != 'y';
}

bool HasSuffix(const std::string& w, std::string_view suffix) {
  return w.size() >= suffix.size() &&
         w.compare(w.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// If w ends with `suffix` and the stem before it has measure > m_min,
// replace the suffix and return true.
bool ReplaceIf(std::string& w, std::string_view suffix,
               std::string_view replacement, int m_min) {
  if (!HasSuffix(w, suffix)) return false;
  size_t stem_len = w.size() - suffix.size();
  if (Measure(w, stem_len) <= m_min) return true;  // Matched, no change.
  w.resize(stem_len);
  w.append(replacement);
  return true;
}

void Step1a(std::string& w) {
  if (HasSuffix(w, "sses")) {
    w.resize(w.size() - 2);
  } else if (HasSuffix(w, "ies")) {
    w.resize(w.size() - 2);
  } else if (HasSuffix(w, "ss")) {
    // No change.
  } else if (HasSuffix(w, "s")) {
    w.resize(w.size() - 1);
  }
}

void Step1b(std::string& w) {
  if (HasSuffix(w, "eed")) {
    if (Measure(w, w.size() - 3) > 0) w.resize(w.size() - 1);
    return;
  }
  bool stripped = false;
  if (HasSuffix(w, "ed") && ContainsVowel(w, w.size() - 2)) {
    w.resize(w.size() - 2);
    stripped = true;
  } else if (HasSuffix(w, "ing") && ContainsVowel(w, w.size() - 3)) {
    w.resize(w.size() - 3);
    stripped = true;
  }
  if (!stripped) return;
  if (HasSuffix(w, "at") || HasSuffix(w, "bl") || HasSuffix(w, "iz")) {
    w.push_back('e');
  } else if (EndsDoubleConsonant(w)) {
    char last = w.back();
    if (last != 'l' && last != 's' && last != 'z') w.resize(w.size() - 1);
  } else if (Measure(w, w.size()) == 1 && EndsCvc(w, w.size())) {
    w.push_back('e');
  }
}

void Step1c(std::string& w) {
  if (HasSuffix(w, "y") && ContainsVowel(w, w.size() - 1)) {
    w.back() = 'i';
  }
}

void Step2(std::string& w) {
  // Ordered by (penultimate letter) as in Porter's paper; first match wins.
  static constexpr struct {
    std::string_view from, to;
  } kRules[] = {
      {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
      {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
      {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
      {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
      {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
      {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
      {"iviti", "ive"},   {"biliti", "ble"},  {"logi", "log"},
  };
  for (const auto& rule : kRules) {
    if (HasSuffix(w, rule.from)) {
      ReplaceIf(w, rule.from, rule.to, 0);
      return;
    }
  }
}

void Step3(std::string& w) {
  static constexpr struct {
    std::string_view from, to;
  } kRules[] = {
      {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
      {"ical", "ic"},  {"ful", ""},   {"ness", ""},
  };
  for (const auto& rule : kRules) {
    if (HasSuffix(w, rule.from)) {
      ReplaceIf(w, rule.from, rule.to, 0);
      return;
    }
  }
}

void Step4(std::string& w) {
  static constexpr std::string_view kSuffixes[] = {
      "al",    "ance", "ence", "er",  "ic",  "able", "ible", "ant",
      "ement", "ment", "ent",  "ion", "ou",  "ism",  "ate",  "iti",
      "ous",   "ive",  "ize",
  };
  for (std::string_view suffix : kSuffixes) {
    if (!HasSuffix(w, suffix)) continue;
    size_t stem_len = w.size() - suffix.size();
    if (suffix == "ion") {
      // Only strip "ion" when the stem ends in 's' or 't'.
      if (stem_len == 0 || (w[stem_len - 1] != 's' && w[stem_len - 1] != 't')) {
        return;
      }
    }
    if (Measure(w, stem_len) > 1) w.resize(stem_len);
    return;
  }
}

void Step5a(std::string& w) {
  if (!HasSuffix(w, "e")) return;
  size_t stem_len = w.size() - 1;
  int m = Measure(w, stem_len);
  if (m > 1 || (m == 1 && !EndsCvc(w, stem_len))) {
    w.resize(stem_len);
  }
}

void Step5b(std::string& w) {
  if (w.size() >= 2 && w.back() == 'l' && EndsDoubleConsonant(w) &&
      Measure(w, w.size()) > 1) {
    w.resize(w.size() - 1);
  }
}

}  // namespace

std::string PorterStem(std::string_view word) {
  std::string w(word);
  if (w.size() <= 2) return w;
  Step1a(w);
  Step1b(w);
  Step1c(w);
  Step2(w);
  Step3(w);
  Step4(w);
  Step5a(w);
  Step5b(w);
  return w;
}

}  // namespace storypivot::text
