#include "text/tokenizer.h"

#include <cctype>

namespace storypivot::text {
namespace {

bool IsWordChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) != 0;
}

bool IsAllDigits(std::string_view s) {
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return !s.empty();
}

}  // namespace

std::vector<Token> Tokenizer::Tokenize(std::string_view input) const {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < input.size()) {
    if (!IsWordChar(input[i])) {
      ++i;
      continue;
    }
    size_t start = i;
    std::string text;
    while (i < input.size()) {
      char c = input[i];
      if (IsWordChar(c)) {
        text.push_back(c);
        ++i;
        continue;
      }
      // Keep internal apostrophes ("don't", "O'Neill") together.
      if (c == '\'' && i + 1 < input.size() && IsWordChar(input[i + 1]) &&
          !text.empty()) {
        text.push_back('\'');
        ++i;
        continue;
      }
      break;
    }
    // Strip possessive suffix.
    if (text.size() >= 2 && (text.ends_with("'s") || text.ends_with("'S"))) {
      text.resize(text.size() - 2);
    }
    // Drop any trailing apostrophe left over (e.g. plural possessive).
    while (!text.empty() && text.back() == '\'') text.pop_back();
    if (text.empty()) continue;

    bool capitalized =
        std::isupper(static_cast<unsigned char>(text[0])) != 0;
    if (options_.lowercase) {
      for (char& c : text) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
    if (options_.drop_numbers && IsAllDigits(text)) continue;
    if (text.size() < options_.min_length) continue;

    Token token;
    token.text = std::move(text);
    token.offset = start;
    token.capitalized = capitalized;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace storypivot::text
