#ifndef STORYPIVOT_TEXT_TERM_VECTOR_H_
#define STORYPIVOT_TEXT_TERM_VECTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "text/vocabulary.h"

namespace storypivot::text {

/// A sparse vector over TermIds with double weights, kept sorted by id.
/// Used for entity histograms, keyword bags and TF-IDF vectors alike.
class TermVector {
 public:
  using Entry = std::pair<TermId, double>;

  TermVector() = default;

  /// Builds from (possibly unsorted, possibly duplicated) entries;
  /// duplicates are summed.
  static TermVector FromEntries(std::vector<Entry> entries);

  /// Adds `weight` to the coefficient of `term`.
  void Add(TermId term, double weight);

  /// Adds `other` scaled by `scale` into this vector.
  void Merge(const TermVector& other, double scale = 1.0);

  /// Subtracts `other` and drops coefficients that reach <= 0 (within eps).
  /// Used when snippets are removed from a story.
  void Subtract(const TermVector& other);

  /// Coefficient of `term`, 0 if absent.
  double ValueOf(TermId term) const;

  /// Number of nonzero coefficients.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  const std::vector<Entry>& entries() const { return entries_; }

  /// Sum of all coefficients.
  double Sum() const;

  /// Euclidean norm.
  double Norm() const;

  /// Dot product with another sparse vector (O(n1 + n2) merge walk).
  double Dot(const TermVector& other) const;

  /// Cosine similarity; 0 when either vector is empty or zero.
  double Cosine(const TermVector& other) const;

  /// Weighted (generalised) Jaccard similarity:
  /// sum(min(a_i,b_i)) / sum(max(a_i,b_i)); 0 when both empty.
  double WeightedJaccard(const TermVector& other) const;

  /// Unweighted Jaccard over the supports (nonzero term sets).
  double SetJaccard(const TermVector& other) const;

  /// Top-k entries by weight (descending, ties by id ascending).
  std::vector<Entry> TopK(size_t k) const;

  bool operator==(const TermVector& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace storypivot::text

#endif  // STORYPIVOT_TEXT_TERM_VECTOR_H_
