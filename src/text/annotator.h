#ifndef STORYPIVOT_TEXT_ANNOTATOR_H_
#define STORYPIVOT_TEXT_ANNOTATOR_H_

#include <string_view>

#include "text/gazetteer.h"
#include "text/term_vector.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace storypivot::text {

/// The structured content extracted from one piece of text: an entity
/// histogram and a stemmed-keyword histogram. This is the "content" of an
/// information snippet in the paper's data model (§2.1).
struct Annotation {
  /// Entity mention counts (TermIds from the entity vocabulary).
  TermVector entities;
  /// Stemmed, stopword-filtered keyword counts (TermIds from the keyword
  /// vocabulary).
  TermVector keywords;
  /// Total number of word tokens in the input.
  size_t num_tokens = 0;
};

/// Turns raw document text into an `Annotation` — the StoryPivot
/// replacement for the paper's black-box EventRegistry + OpenCalais
/// extraction pipeline: tokenize, match gazetteer entities, stopword-filter
/// and Porter-stem the remaining words into keywords.
class AnnotationPipeline {
 public:
  /// Both the gazetteer and the keyword vocabulary must outlive the
  /// pipeline.
  AnnotationPipeline(const Gazetteer* gazetteer,
                     Vocabulary* keyword_vocabulary);

  AnnotationPipeline(const AnnotationPipeline&) = delete;
  AnnotationPipeline& operator=(const AnnotationPipeline&) = delete;

  /// Annotates a piece of text. Entity mention tokens are consumed and do
  /// not additionally appear as keywords.
  Annotation Annotate(std::string_view input) const;

 private:
  const Gazetteer* gazetteer_;
  Vocabulary* keyword_vocabulary_;
  Tokenizer tokenizer_;
};

}  // namespace storypivot::text

#endif  // STORYPIVOT_TEXT_ANNOTATOR_H_
