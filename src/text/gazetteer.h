#ifndef STORYPIVOT_TEXT_GAZETTEER_H_
#define STORYPIVOT_TEXT_GAZETTEER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace storypivot::text {

/// A detected entity mention in a token stream.
struct EntityMention {
  /// Id of the canonical entity in the entity vocabulary.
  TermId entity = kInvalidTermId;
  /// Index of the first matched token.
  size_t token_begin = 0;
  /// One past the last matched token.
  size_t token_end = 0;
};

/// Dictionary-based named-entity recogniser. Entities are registered with a
/// canonical name plus any number of aliases; each alias is a multi-word
/// phrase. Recognition scans a token stream and greedily takes the longest
/// alias match at each position (a standard gazetteer NER strategy — this
/// substitutes for the paper's OpenCalais annotator).
class Gazetteer {
 public:
  /// The gazetteer interns canonical names into `entity_vocabulary`, which
  /// must outlive the gazetteer.
  explicit Gazetteer(Vocabulary* entity_vocabulary);

  Gazetteer(const Gazetteer&) = delete;
  Gazetteer& operator=(const Gazetteer&) = delete;

  /// Registers an entity under its canonical name; the canonical name is
  /// also an alias. Returns the entity's TermId.
  TermId AddEntity(std::string_view canonical_name);

  /// Registers an additional alias for an existing entity id.
  void AddAlias(TermId entity, std::string_view alias);

  /// Finds all non-overlapping mentions in `tokens` (longest match first,
  /// scanning left to right).
  std::vector<EntityMention> FindMentions(
      const std::vector<Token>& tokens) const;

  /// Number of registered aliases.
  size_t num_aliases() const { return num_aliases_; }

  /// Every registered alias as (entity id, normalised alias text), in
  /// registration order. Replaying these through AddAlias on a gazetteer
  /// whose vocabulary holds the same entities reproduces this gazetteer
  /// exactly (including same-length tie-breaking, which follows
  /// registration order) — the hook snapshots and the write-ahead log use
  /// to persist extraction state.
  const std::vector<std::pair<TermId, std::string>>& aliases() const {
    return alias_log_;
  }

  const Vocabulary& vocabulary() const { return *vocabulary_; }

 private:
  struct Phrase {
    std::vector<std::string> tokens;  // Lowercased alias tokens.
    TermId entity = kInvalidTermId;
  };

  Vocabulary* vocabulary_;
  // First alias token -> candidate phrases, longest first.
  std::unordered_map<std::string, std::vector<Phrase>> index_;
  Tokenizer tokenizer_;
  size_t num_aliases_ = 0;
  // Registration-order journal of (entity, normalised alias) for
  // serialisation; see aliases().
  std::vector<std::pair<TermId, std::string>> alias_log_;
};

}  // namespace storypivot::text

#endif  // STORYPIVOT_TEXT_GAZETTEER_H_
