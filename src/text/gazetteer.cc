#include "text/gazetteer.h"

#include <algorithm>

#include "util/logging.h"

namespace storypivot::text {

Gazetteer::Gazetteer(Vocabulary* entity_vocabulary)
    : vocabulary_(entity_vocabulary) {
  SP_CHECK(entity_vocabulary != nullptr);
}

TermId Gazetteer::AddEntity(std::string_view canonical_name) {
  TermId id = vocabulary_->Intern(canonical_name);
  AddAlias(id, canonical_name);
  return id;
}

void Gazetteer::AddAlias(TermId entity, std::string_view alias) {
  std::vector<Token> tokens = tokenizer_.Tokenize(alias);
  if (tokens.empty()) return;
  Phrase phrase;
  phrase.entity = entity;
  phrase.tokens.reserve(tokens.size());
  for (Token& t : tokens) phrase.tokens.push_back(std::move(t.text));
  // Journal the normalised form: re-tokenising it yields these exact
  // tokens, so replaying the journal reproduces the index.
  std::string normalised;
  for (const std::string& t : phrase.tokens) {
    if (!normalised.empty()) normalised += ' ';
    normalised += t;
  }
  alias_log_.emplace_back(entity, std::move(normalised));
  std::string head = phrase.tokens.front();
  std::vector<Phrase>& bucket = index_[head];
  bucket.push_back(std::move(phrase));
  // Keep longest phrases first so scanning takes the longest match.
  std::stable_sort(bucket.begin(), bucket.end(),
                   [](const Phrase& a, const Phrase& b) {
                     return a.tokens.size() > b.tokens.size();
                   });
  ++num_aliases_;
}

std::vector<EntityMention> Gazetteer::FindMentions(
    const std::vector<Token>& tokens) const {
  std::vector<EntityMention> mentions;
  size_t i = 0;
  while (i < tokens.size()) {
    auto it = index_.find(tokens[i].text);
    if (it == index_.end()) {
      ++i;
      continue;
    }
    bool matched = false;
    for (const Phrase& phrase : it->second) {
      size_t len = phrase.tokens.size();
      if (i + len > tokens.size()) continue;
      bool all_equal = true;
      for (size_t k = 1; k < len; ++k) {
        if (tokens[i + k].text != phrase.tokens[k]) {
          all_equal = false;
          break;
        }
      }
      if (!all_equal) continue;
      EntityMention mention;
      mention.entity = phrase.entity;
      mention.token_begin = i;
      mention.token_end = i + len;
      mentions.push_back(mention);
      i += len;
      matched = true;
      break;
    }
    if (!matched) ++i;
  }
  return mentions;
}

}  // namespace storypivot::text
