#ifndef STORYPIVOT_TEXT_VOCABULARY_H_
#define STORYPIVOT_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace storypivot::text {

/// Dense integer id of an interned term. Ids are assigned sequentially
/// starting at 0 and are stable for the lifetime of the Vocabulary.
using TermId = uint32_t;

/// Sentinel for "not interned".
inline constexpr TermId kInvalidTermId = 0xffffffffu;

/// Bidirectional string <-> TermId interner. StoryPivot keeps two
/// vocabularies per engine: one for entities, one for description keywords.
class Vocabulary {
 public:
  Vocabulary() = default;

  // Vocabularies are shared by reference; copying one is almost always a
  // bug, so it is disallowed. Moves are fine.
  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;

  /// Returns the id for `term`, interning it if necessary.
  TermId Intern(std::string_view term);

  /// Returns the id for `term`, or kInvalidTermId if it was never interned.
  TermId Lookup(std::string_view term) const;

  /// Returns the string for an id. Requires a valid id from this vocabulary.
  const std::string& TermOf(TermId id) const;

  /// Number of distinct interned terms.
  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
};

}  // namespace storypivot::text

#endif  // STORYPIVOT_TEXT_VOCABULARY_H_
