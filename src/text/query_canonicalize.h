#ifndef STORYPIVOT_TEXT_QUERY_CANONICALIZE_H_
#define STORYPIVOT_TEXT_QUERY_CANONICALIZE_H_

#include <string_view>

#include "text/gazetteer.h"
#include "text/vocabulary.h"

namespace storypivot::text {

/// Resolves a user-typed entity query to the canonical entity TermId the
/// ingest pipeline would have produced for the same surface form — the
/// query-side mirror of AnnotationPipeline (queries and snippets must
/// agree on canonicalization, or alias queries silently miss).
///
/// Resolution order:
///   1. exact vocabulary match (canonical names typed verbatim);
///   2. gazetteer alias match over the tokenized query ("MH17" finds the
///      entity whose alias list contains mh17), longest mention wins;
///   3. case-insensitive vocabulary scan ("ukraine" -> "Ukraine"; linear
///      in the vocabulary, acceptable at query rates).
///
/// Returns kInvalidTermId when nothing matches.
[[nodiscard]] TermId CanonicalizeEntityQuery(const Gazetteer& gazetteer,
                                             const Vocabulary& vocabulary,
                                             std::string_view query);

/// Resolves a user-typed keyword query to the TermId of its indexed form.
/// The ingest pipeline stores keywords lowercased and Porter-stemmed, so
/// a raw Lookup of the surface form misses ("bombing" never matches the
/// stored stem "bomb"). Resolution order:
///   1. exact vocabulary match (already-stemmed queries, and vocabularies
///      imported unstemmed keep working);
///   2. lowercased match;
///   3. Porter stem of the lowercased query.
///
/// Returns kInvalidTermId when nothing matches.
[[nodiscard]] TermId CanonicalizeKeywordQuery(const Vocabulary& vocabulary,
                                              std::string_view query);

}  // namespace storypivot::text

#endif  // STORYPIVOT_TEXT_QUERY_CANONICALIZE_H_
