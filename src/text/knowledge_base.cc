#include "text/knowledge_base.h"

#include <algorithm>

namespace storypivot::text {

void KnowledgeBase::Add(KnowledgeEntry entry) {
  std::string name = entry.name;
  // Drop stale reverse links if the entry is being replaced.
  auto old = entries_.find(name);
  if (old != entries_.end()) {
    for (const std::string& related : old->second.related) {
      auto it = reverse_.find(related);
      if (it != reverse_.end()) std::erase(it->second, name);
    }
  }
  for (const std::string& related : entry.related) {
    reverse_[related].push_back(name);
  }
  entries_[name] = std::move(entry);
}

const KnowledgeEntry* KnowledgeBase::Find(std::string_view name) const {
  auto it = entries_.find(std::string(name));
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const KnowledgeEntry*> KnowledgeBase::FindByType(
    std::string_view type) const {
  std::vector<const KnowledgeEntry*> out;
  for (const auto& [name, entry] : entries_) {
    if (entry.type == type) out.push_back(&entry);
  }
  std::sort(out.begin(), out.end(),
            [](const KnowledgeEntry* a, const KnowledgeEntry* b) {
              return a->name < b->name;
            });
  return out;
}

std::vector<const KnowledgeEntry*> KnowledgeBase::Neighbors(
    std::string_view name) const {
  std::vector<std::string> names;
  if (const KnowledgeEntry* entry = Find(name)) {
    names.insert(names.end(), entry->related.begin(), entry->related.end());
  }
  auto it = reverse_.find(std::string(name));
  if (it != reverse_.end()) {
    names.insert(names.end(), it->second.begin(), it->second.end());
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  std::vector<const KnowledgeEntry*> out;
  for (const std::string& n : names) {
    if (n == name) continue;
    if (const KnowledgeEntry* entry = Find(n)) out.push_back(entry);
  }
  return out;
}

KnowledgeBase KnowledgeBase::WithEmbeddedWorldFacts() {
  KnowledgeBase kb;
  kb.Add({"Ukraine", "country",
          "Eastern European country; scene of the 2014 crisis and the "
          "MH17 downing.",
          {"Russia", "European Union", "Donetsk"}});
  kb.Add({"Russia", "country",
          "Largest country by area; party to the 2014 Ukraine conflict "
          "and target of Western sanctions.",
          {"Ukraine", "United Nations"}});
  kb.Add({"Malaysia", "country",
          "Southeast Asian country; flag state of Malaysia Airlines.",
          {"Malaysia Airlines"}});
  kb.Add({"Malaysia Airlines", "company",
          "Flag carrier of Malaysia; operator of flight MH17, downed over "
          "Ukraine on 2014-07-17.",
          {"Malaysia", "Boeing"}});
  kb.Add({"Netherlands", "country",
          "Home country of most MH17 victims; led the crash investigation.",
          {"Amsterdam", "European Union"}});
  kb.Add({"Amsterdam", "city",
          "Capital of the Netherlands; departure airport of flight MH17.",
          {"Netherlands"}});
  kb.Add({"Donetsk", "city",
          "City in eastern Ukraine near the MH17 crash site.",
          {"Ukraine"}});
  kb.Add({"Boeing", "company",
          "US aircraft manufacturer; MH17 was a Boeing 777.",
          {"United States"}});
  kb.Add({"United Nations", "organization",
          "Intergovernmental organisation; its civil-aviation authority "
          "and human-rights council appear in the 2014 coverage.",
          {}});
  kb.Add({"European Union", "organization",
          "Political and economic union of European states; imposed "
          "sanctions on Russia in July 2014.",
          {}});
  kb.Add({"United States", "country",
          "North American country; joined the EU in expanding sanctions.",
          {"European Union"}});
  kb.Add({"Israel", "country",
          "Middle Eastern country; subject of a UN war-crimes inquiry over "
          "the 2014 Gaza conflict.",
          {"Gaza", "United Nations"}});
  kb.Add({"Gaza", "city",
          "Palestinian territory; scene of the 2014 conflict.",
          {"Israel"}});
  kb.Add({"Google", "company",
          "US internet search company; under EU antitrust review in 2014.",
          {"European Union", "Yelp", "United States"}});
  kb.Add({"Yelp", "company",
          "US local-review platform; antitrust complainant against Google.",
          {"Google"}});
  kb.Add({"NATO", "organization",
          "North Atlantic military alliance.",
          {"United States", "European Union"}});
  kb.Add({"World Bank", "organization",
          "International financial institution.",
          {"United Nations"}});
  kb.Add({"Red Cross", "organization",
          "International humanitarian movement.",
          {}});
  return kb;
}

}  // namespace storypivot::text
