#ifndef STORYPIVOT_TEXT_KNOWLEDGE_BASE_H_
#define STORYPIVOT_TEXT_KNOWLEDGE_BASE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace storypivot::text {

/// One knowledge-base entry about an entity.
struct KnowledgeEntry {
  std::string name;
  /// Coarse type: "country", "organization", "person", "company", "city".
  std::string type;
  /// One-sentence background description.
  std::string description;
  /// Names of related entities (capital, membership, parent org, ...).
  std::vector<std::string> related;
};

/// A small DBpedia-style knowledge base: background facts about entities
/// that the demo surfaces next to stories ("Connecting STORYPIVOT to
/// knowledge bases explicitly helps experts and casual users to obtain
/// more information on the context of stories", §3). Entries can be added
/// programmatically; `WithEmbeddedWorldFacts` preloads facts about the
/// real-world entities used by the corpus generator and the MH17 corpus.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  /// A knowledge base preloaded with facts about the embedded world
  /// entities (countries, major organisations, MH17 actors).
  static KnowledgeBase WithEmbeddedWorldFacts();

  /// Adds or replaces an entry (keyed case-sensitively by name).
  void Add(KnowledgeEntry entry);

  /// Looks up an entity by canonical name; nullptr if unknown.
  [[nodiscard]] const KnowledgeEntry* Find(std::string_view name) const;

  /// Entities of the given type.
  std::vector<const KnowledgeEntry*> FindByType(std::string_view type) const;

  /// Entities related to `name` (one hop, both directions).
  std::vector<const KnowledgeEntry*> Neighbors(std::string_view name) const;

  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::string, KnowledgeEntry> entries_;
  /// Reverse relation index: name -> names listing it as related.
  std::unordered_map<std::string, std::vector<std::string>> reverse_;
};

}  // namespace storypivot::text

#endif  // STORYPIVOT_TEXT_KNOWLEDGE_BASE_H_
