#ifndef STORYPIVOT_TEXT_TFIDF_H_
#define STORYPIVOT_TEXT_TFIDF_H_

#include <cstdint>
#include <vector>

#include "text/term_vector.h"
#include "text/vocabulary.h"

namespace storypivot::text {

/// Incrementally tracks document frequencies so that TF-IDF weights can be
/// computed in a streaming setting. Supports removal, which StoryPivot
/// needs when documents are deleted from the system.
class DocumentFrequency {
 public:
  DocumentFrequency() = default;

  /// Records one document whose distinct terms are the support of `terms`.
  void AddDocument(const TermVector& terms);

  /// Removes a previously added document. The caller must pass the same
  /// term support that was added.
  void RemoveDocument(const TermVector& terms);

  /// Number of documents seen (adds minus removes).
  int64_t num_documents() const { return num_documents_; }

  /// Document frequency of `term` (0 if unseen).
  int64_t FrequencyOf(TermId term) const;

  /// Smoothed inverse document frequency:
  ///   idf(t) = ln((N + 1) / (df(t) + 1)) + 1.
  /// Always >= 1 - epsilon even for ubiquitous terms, and well-defined for
  /// unseen terms.
  double Idf(TermId term) const;

 private:
  std::vector<int64_t> df_;  // Indexed by TermId.
  int64_t num_documents_ = 0;
};

/// Options for TF-IDF weighting.
struct TfIdfOptions {
  /// Use 1 + ln(tf) instead of raw tf (sublinear scaling).
  bool sublinear_tf = true;
  /// L2-normalise the resulting vector.
  bool l2_normalize = true;
};

/// Computes a TF-IDF weighted copy of a raw term-count vector using the
/// statistics accumulated in `df`.
TermVector TfIdfWeighted(const TermVector& counts, const DocumentFrequency& df,
                         const TfIdfOptions& options = {});

}  // namespace storypivot::text

#endif  // STORYPIVOT_TEXT_TFIDF_H_
