#include "text/tfidf.h"

#include <cmath>

#include "util/logging.h"

namespace storypivot::text {

void DocumentFrequency::AddDocument(const TermVector& terms) {
  ++num_documents_;
  for (const auto& [term, weight] : terms.entries()) {
    if (weight <= 0.0) continue;
    if (term >= df_.size()) df_.resize(term + 1, 0);
    ++df_[term];
  }
}

void DocumentFrequency::RemoveDocument(const TermVector& terms) {
  SP_CHECK(num_documents_ > 0);
  --num_documents_;
  for (const auto& [term, weight] : terms.entries()) {
    if (weight <= 0.0) continue;
    if (term < df_.size() && df_[term] > 0) --df_[term];
  }
}

int64_t DocumentFrequency::FrequencyOf(TermId term) const {
  if (term >= df_.size()) return 0;
  return df_[term];
}

double DocumentFrequency::Idf(TermId term) const {
  double n = static_cast<double>(num_documents_);
  double df = static_cast<double>(FrequencyOf(term));
  return std::log((n + 1.0) / (df + 1.0)) + 1.0;
}

TermVector TfIdfWeighted(const TermVector& counts,
                         const DocumentFrequency& df,
                         const TfIdfOptions& options) {
  std::vector<TermVector::Entry> weighted;
  weighted.reserve(counts.size());
  for (const auto& [term, count] : counts.entries()) {
    if (count <= 0.0) continue;
    double tf = options.sublinear_tf ? 1.0 + std::log(count) : count;
    weighted.push_back({term, tf * df.Idf(term)});
  }
  TermVector out = TermVector::FromEntries(std::move(weighted));
  if (options.l2_normalize) {
    double norm = out.Norm();
    if (norm > 0.0) {
      std::vector<TermVector::Entry> scaled;
      scaled.reserve(out.size());
      for (const auto& [term, w] : out.entries()) {
        scaled.push_back({term, w / norm});
      }
      out = TermVector::FromEntries(std::move(scaled));
    }
  }
  return out;
}

}  // namespace storypivot::text
