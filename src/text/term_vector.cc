#include "text/term_vector.h"

#include <algorithm>
#include <cmath>

namespace storypivot::text {
namespace {
constexpr double kEps = 1e-12;
}  // namespace

TermVector TermVector::FromEntries(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  TermVector out;
  for (const Entry& e : entries) {
    if (!out.entries_.empty() && out.entries_.back().first == e.first) {
      out.entries_.back().second += e.second;
    } else {
      out.entries_.push_back(e);
    }
  }
  // Drop zeros that may result from summing.
  std::erase_if(out.entries_,
                [](const Entry& e) { return std::abs(e.second) <= kEps; });
  return out;
}

void TermVector::Add(TermId term, double weight) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const Entry& e, TermId t) { return e.first < t; });
  if (it != entries_.end() && it->first == term) {
    it->second += weight;
    if (std::abs(it->second) <= kEps) entries_.erase(it);
  } else if (std::abs(weight) > kEps) {
    entries_.insert(it, {term, weight});
  }
}

void TermVector::Merge(const TermVector& other, double scale) {
  if (other.entries_.empty() || scale == 0.0) return;
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() &&
         entries_[i].first < other.entries_[j].first)) {
      merged.push_back(entries_[i++]);
    } else if (i >= entries_.size() ||
               other.entries_[j].first < entries_[i].first) {
      merged.push_back({other.entries_[j].first,
                        other.entries_[j].second * scale});
      ++j;
    } else {
      double v = entries_[i].second + other.entries_[j].second * scale;
      if (std::abs(v) > kEps) merged.push_back({entries_[i].first, v});
      ++i;
      ++j;
    }
  }
  entries_ = std::move(merged);
}

void TermVector::Subtract(const TermVector& other) {
  Merge(other, -1.0);
  std::erase_if(entries_, [](const Entry& e) { return e.second <= kEps; });
}

double TermVector::ValueOf(TermId term) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const Entry& e, TermId t) { return e.first < t; });
  if (it != entries_.end() && it->first == term) return it->second;
  return 0.0;
}

double TermVector::Sum() const {
  double s = 0.0;
  for (const Entry& e : entries_) s += e.second;
  return s;
}

double TermVector::Norm() const {
  double s = 0.0;
  for (const Entry& e : entries_) s += e.second * e.second;
  return std::sqrt(s);
}

double TermVector::Dot(const TermVector& other) const {
  double s = 0.0;
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].first < other.entries_[j].first) {
      ++i;
    } else if (other.entries_[j].first < entries_[i].first) {
      ++j;
    } else {
      s += entries_[i].second * other.entries_[j].second;
      ++i;
      ++j;
    }
  }
  return s;
}

double TermVector::Cosine(const TermVector& other) const {
  double na = Norm();
  double nb = other.Norm();
  if (na <= kEps || nb <= kEps) return 0.0;
  return Dot(other) / (na * nb);
}

double TermVector::WeightedJaccard(const TermVector& other) const {
  double min_sum = 0.0, max_sum = 0.0;
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() &&
         entries_[i].first < other.entries_[j].first)) {
      max_sum += entries_[i++].second;
    } else if (i >= entries_.size() ||
               other.entries_[j].first < entries_[i].first) {
      max_sum += other.entries_[j++].second;
    } else {
      min_sum += std::min(entries_[i].second, other.entries_[j].second);
      max_sum += std::max(entries_[i].second, other.entries_[j].second);
      ++i;
      ++j;
    }
  }
  if (max_sum <= kEps) return 0.0;
  return min_sum / max_sum;
}

double TermVector::SetJaccard(const TermVector& other) const {
  size_t inter = 0;
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].first < other.entries_[j].first) {
      ++i;
    } else if (other.entries_[j].first < entries_[i].first) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  size_t uni = entries_.size() + other.entries_.size() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

std::vector<TermVector::Entry> TermVector::TopK(size_t k) const {
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace storypivot::text
