#ifndef STORYPIVOT_TEXT_STOPWORDS_H_
#define STORYPIVOT_TEXT_STOPWORDS_H_

#include <string_view>
#include <vector>

namespace storypivot::text {

/// Returns true if `word` (expected lowercase) is an English stopword.
/// The embedded list covers determiners, pronouns, prepositions,
/// conjunctions, auxiliaries and a handful of news boilerplate words.
[[nodiscard]] bool IsStopword(std::string_view word);

/// Returns the full embedded stopword list (sorted, lowercase).
const std::vector<std::string_view>& StopwordList();

}  // namespace storypivot::text

#endif  // STORYPIVOT_TEXT_STOPWORDS_H_
