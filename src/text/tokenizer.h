#ifndef STORYPIVOT_TEXT_TOKENIZER_H_
#define STORYPIVOT_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace storypivot::text {

/// A single token produced by the tokenizer.
struct Token {
  /// Normalised token text (lowercased if the tokenizer lowercases).
  std::string text;
  /// Byte offset of the first character in the original input.
  size_t offset = 0;
  /// True if the original token started with an uppercase letter. Useful
  /// as a weak named-entity signal for the gazetteer.
  bool capitalized = false;
};

/// Options controlling tokenization.
struct TokenizerOptions {
  /// Lowercase all token text (original capitalisation is still recorded
  /// in Token::capitalized).
  bool lowercase = true;
  /// Drop tokens consisting only of digits.
  bool drop_numbers = false;
  /// Drop tokens shorter than this many characters.
  size_t min_length = 1;
};

/// Splits raw text into word tokens. A token is a maximal run of ASCII
/// letters/digits; apostrophes inside a word are kept together and the
/// common English possessive suffix ("'s") is stripped, so "Russia's"
/// tokenizes as "russia".
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  /// Tokenizes `input` into tokens in document order.
  std::vector<Token> Tokenize(std::string_view input) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace storypivot::text

#endif  // STORYPIVOT_TEXT_TOKENIZER_H_
