#include "text/query_canonicalize.h"

#include <vector>

#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/strings.h"

namespace storypivot::text {

TermId CanonicalizeEntityQuery(const Gazetteer& gazetteer,
                               const Vocabulary& vocabulary,
                               std::string_view query) {
  TermId exact = vocabulary.Lookup(query);
  if (exact != kInvalidTermId) return exact;

  Tokenizer tokenizer;
  std::vector<Token> tokens = tokenizer.Tokenize(query);
  if (tokens.empty()) return kInvalidTermId;
  std::vector<EntityMention> mentions = gazetteer.FindMentions(tokens);
  if (!mentions.empty()) {
    // Longest mention wins; FindMentions already prefers longest-first at
    // each position, so the widest span among the results is the best
    // reading of the query.
    const EntityMention* best = &mentions.front();
    for (const EntityMention& mention : mentions) {
      if (mention.token_end - mention.token_begin >
          best->token_end - best->token_begin) {
        best = &mention;
      }
    }
    return best->entity;
  }

  // Case-insensitive scan, lowest id wins so the result is deterministic.
  std::string lowered = ToLower(query);
  for (TermId id = 0; id < vocabulary.size(); ++id) {
    if (ToLower(vocabulary.TermOf(id)) == lowered) return id;
  }
  return kInvalidTermId;
}

TermId CanonicalizeKeywordQuery(const Vocabulary& vocabulary,
                                std::string_view query) {
  TermId exact = vocabulary.Lookup(query);
  if (exact != kInvalidTermId) return exact;

  std::string lowered = ToLower(query);
  TermId lower = vocabulary.Lookup(lowered);
  if (lower != kInvalidTermId) return lower;

  return vocabulary.Lookup(PorterStem(lowered));
}

}  // namespace storypivot::text
