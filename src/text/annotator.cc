#include "text/annotator.h"

#include <vector>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "util/logging.h"

namespace storypivot::text {

AnnotationPipeline::AnnotationPipeline(const Gazetteer* gazetteer,
                                       Vocabulary* keyword_vocabulary)
    : gazetteer_(gazetteer), keyword_vocabulary_(keyword_vocabulary) {
  SP_CHECK(gazetteer_ != nullptr);
  SP_CHECK(keyword_vocabulary_ != nullptr);
}

Annotation AnnotationPipeline::Annotate(std::string_view input) const {
  Annotation out;
  std::vector<Token> tokens = tokenizer_.Tokenize(input);
  out.num_tokens = tokens.size();

  std::vector<EntityMention> mentions = gazetteer_->FindMentions(tokens);
  std::vector<bool> consumed(tokens.size(), false);
  std::vector<TermVector::Entry> entity_entries;
  entity_entries.reserve(mentions.size());
  for (const EntityMention& m : mentions) {
    entity_entries.push_back({m.entity, 1.0});
    for (size_t i = m.token_begin; i < m.token_end; ++i) consumed[i] = true;
  }
  out.entities = TermVector::FromEntries(std::move(entity_entries));

  std::vector<TermVector::Entry> keyword_entries;
  keyword_entries.reserve(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (consumed[i]) continue;
    const std::string& word = tokens[i].text;
    if (word.size() < 2) continue;
    if (IsStopword(word)) continue;
    std::string stem = PorterStem(word);
    if (stem.empty()) continue;
    keyword_entries.push_back({keyword_vocabulary_->Intern(stem), 1.0});
  }
  out.keywords = TermVector::FromEntries(std::move(keyword_entries));
  return out;
}

}  // namespace storypivot::text
