#ifndef STORYPIVOT_DATAGEN_GDELT_EXPORT_H_
#define STORYPIVOT_DATAGEN_GDELT_EXPORT_H_

#include <string>
#include <vector>

#include "datagen/corpus.h"
#include "model/snippet.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace storypivot::datagen {

/// Serialises a corpus to a GDELT-flavoured TSV: one event record per line
/// with source, event date, actor/entity list, description keywords, URL
/// and the ground-truth story label. The inverse of `ImportTsv`.
///
/// Columns:
///   id, source_name, event_date (YYYY-MM-DD), entities (';'-joined),
///   keywords (';'-joined stems with ':count'), description, url, truth
std::string ExportTsv(const Corpus& corpus);

/// Writes `ExportTsv(corpus)` to `path`.
[[nodiscard]] Status ExportTsvToFile(const Corpus& corpus,
                                     const std::string& path);

/// Parsed form of an imported TSV corpus: snippets plus the vocabularies
/// reconstructed from the term strings.
struct ImportedCorpus {
  std::unique_ptr<text::Vocabulary> entity_vocabulary;
  std::unique_ptr<text::Vocabulary> keyword_vocabulary;
  std::vector<SourceInfo> sources;
  std::vector<Snippet> snippets;
};

/// Parses TSV content produced by ExportTsv. Term ids are re-interned, so
/// they need not match the exporting process's ids, but names round-trip.
[[nodiscard]] Result<ImportedCorpus> ImportTsv(const std::string& contents);

}  // namespace storypivot::datagen

#endif  // STORYPIVOT_DATAGEN_GDELT_EXPORT_H_
