#ifndef STORYPIVOT_DATAGEN_GDELT_EXPORT_H_
#define STORYPIVOT_DATAGEN_GDELT_EXPORT_H_

#include <string>
#include <vector>

#include "datagen/corpus.h"
#include "model/snippet.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace storypivot::datagen {

/// Serialises a corpus to a GDELT-flavoured TSV: one event record per line
/// with source, event date, actor/entity list, description keywords, URL
/// and the ground-truth story label. The inverse of `ImportTsv`.
///
/// Columns:
///   id, source_name, event_date (YYYY-MM-DD), entities (';'-joined),
///   keywords (';'-joined stems with ':count'), description, url, truth
std::string ExportTsv(const Corpus& corpus);

/// Writes `ExportTsv(corpus)` to `path`.
[[nodiscard]] Status ExportTsvToFile(const Corpus& corpus,
                                     const std::string& path);

/// Parsed form of an imported TSV corpus: snippets plus the vocabularies
/// reconstructed from the term strings.
struct ImportedCorpus {
  std::unique_ptr<text::Vocabulary> entity_vocabulary;
  std::unique_ptr<text::Vocabulary> keyword_vocabulary;
  std::vector<SourceInfo> sources;
  std::vector<Snippet> snippets;
};

/// Parses TSV content produced by ExportTsv. Term ids are re-interned, so
/// they need not match the exporting process's ids, but names round-trip.
/// STRICT: the first malformed row fails the whole import.
[[nodiscard]] Result<ImportedCorpus> ImportTsv(const std::string& contents);

/// One quarantined input row: the 1-based line in the TSV and why it
/// was skipped.
struct ImportSkipped {
  size_t line = 0;
  std::string reason;
};

/// Per-batch quarantine report produced by `ImportTsvPermissive`.
struct ImportReport {
  /// Data rows seen (header excluded).
  size_t rows_seen = 0;
  size_t rows_imported = 0;
  std::vector<ImportSkipped> skipped;
};

/// PERMISSIVE variant of `ImportTsv` (DESIGN.md §12): malformed rows —
/// wrong field count, bad id, bad date, torn quoting — are skipped,
/// counted and reported in `*report` with their line numbers instead of
/// failing the file. Vocabularies and sources only absorb rows that
/// import, so a quarantined row leaves no trace in the corpus. Still
/// fails outright on inputs with no usable structure (empty file).
[[nodiscard]] Result<ImportedCorpus> ImportTsvPermissive(
    const std::string& contents, ImportReport* report);

}  // namespace storypivot::datagen

#endif  // STORYPIVOT_DATAGEN_GDELT_EXPORT_H_
