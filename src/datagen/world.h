#ifndef STORYPIVOT_DATAGEN_WORLD_H_
#define STORYPIVOT_DATAGEN_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/time.h"
#include "text/gazetteer.h"
#include "text/vocabulary.h"
#include "util/rng.h"

namespace storypivot::datagen {

/// Parameters of the synthetic news world.
struct WorldConfig {
  uint64_t seed = 7;
  /// Number of distinct entities (countries, orgs, people, synthesised).
  int num_entities = 200;
  /// Entities are partitioned into communities; stories draw their actors
  /// from a single community, so stories within a community share entities
  /// (the confusion that story *evolution* handling must survive).
  int num_communities = 25;
  /// Topic variations created per embedded domain archetype.
  int topics_per_domain = 2;
};

/// One topic: a weighted keyword pool derived from a domain archetype.
struct Topic {
  int domain = 0;
  /// Stemmed keyword TermIds (keyword vocabulary).
  std::vector<text::TermId> words;
  /// Original (unstemmed) surface forms for rendering raw text.
  std::vector<std::string> surfaces;
  /// Zipf-ish sampling weights, parallel to `words`.
  std::vector<double> weights;
};

/// The synthetic world: entity universe with communities, and topic
/// universe with keyword pools. All terms are interned into the supplied
/// vocabularies — the same vocabularies later used by the engine, so that
/// fast-path generated snippets and raw-text pipeline output agree.
class WorldModel {
 public:
  /// `entity_vocabulary` and `keyword_vocabulary` must outlive the world.
  WorldModel(const WorldConfig& config, text::Vocabulary* entity_vocabulary,
             text::Vocabulary* keyword_vocabulary);

  WorldModel(const WorldModel&) = delete;
  WorldModel& operator=(const WorldModel&) = delete;

  /// Entity display names, indexed by entity TermId.
  const std::vector<std::string>& entity_names() const {
    return entity_names_;
  }

  /// Communities of entity TermIds.
  const std::vector<std::vector<text::TermId>>& communities() const {
    return communities_;
  }

  const std::vector<Topic>& topics() const { return topics_; }

  /// Globally shared filler-word ids (cross-domain noise pool).
  const std::vector<text::TermId>& filler_words() const {
    return filler_words_;
  }
  const std::vector<std::string>& filler_surfaces() const {
    return filler_surfaces_;
  }

  /// Registers every world entity in `gazetteer` so that raw rendered text
  /// round-trips through the annotation pipeline.
  void PopulateGazetteer(text::Gazetteer* gazetteer) const;

 private:
  std::vector<std::string> entity_names_;
  std::vector<std::vector<text::TermId>> communities_;
  std::vector<Topic> topics_;
  std::vector<text::TermId> filler_words_;
  std::vector<std::string> filler_surfaces_;
};

/// One phase of a ground-truth story: an active entity cast and a keyword
/// pool. Consecutive episodes share core entities but drift in peripheral
/// entities and vocabulary, modelling story evolution (§2.2: "story
/// evolution means that characteristics of a story change over time").
struct Episode {
  Timestamp begin = 0;
  Timestamp end = 0;
  std::vector<text::TermId> entities;
  std::vector<text::TermId> word_pool;
  std::vector<std::string> word_surfaces;
  std::vector<double> word_weights;
};

/// A ground-truth real-world story.
struct TruthStory {
  int64_t id = -1;
  int community = 0;
  int topic = 0;
  Timestamp begin = 0;
  Timestamp end = 0;
  std::vector<Episode> episodes;
  /// Relative share of world events that belong to this story.
  double popularity = 1.0;
};

/// A ground-truth event: one real-world occurrence inside a story, which
/// sources then (noisily, partially, with delay) report as snippets.
struct TruthEvent {
  int64_t story = -1;
  size_t episode_index = 0;
  Timestamp time = 0;
  /// Entities involved in this particular event.
  std::vector<text::TermId> entities;
};

}  // namespace storypivot::datagen

#endif  // STORYPIVOT_DATAGEN_WORLD_H_
