#include "datagen/mh17.h"

#include "model/time.h"

namespace storypivot::datagen {
namespace {

Document Doc(SourceId source, std::string url, std::string title,
             std::vector<std::string> paragraphs, Timestamp ts,
             int64_t truth, std::string event_type) {
  Document d;
  d.source = source;
  d.url = std::move(url);
  d.title = std::move(title);
  d.paragraphs = std::move(paragraphs);
  d.timestamp = ts;
  d.truth_story = truth;
  d.event_type = std::move(event_type);
  return d;
}

}  // namespace

Mh17Corpus MakeMh17Corpus() {
  Mh17Corpus corpus;
  corpus.sources.push_back({0, "New York Times"});
  corpus.sources.push_back({1, "Wall Street Journal"});

  corpus.entities = {
      {"Ukraine", {"Ukrainian"}},
      {"Russia", {"Russian", "Moscow"}},
      {"Malaysia Airlines", {"Malaysia Airlines Flight 17", "MH17"}},
      {"Malaysia", {"Malaysian"}},
      {"Netherlands", {"Dutch", "the Netherlands"}},
      {"United Nations", {"UN", "U.N."}},
      {"United States", {"US", "U.S.", "American", "Washington"}},
      {"European Union", {"EU", "E.U.", "Brussels"}},
      {"Israel", {"Israeli"}},
      {"Gaza", {}},
      {"Google", {"Google Inc"}},
      {"Yelp", {"Yelp Inc"}},
      {"Amsterdam", {}},
      {"Donetsk", {"Donezk"}},
      {"Boeing", {"Boeing 777"}},
  };

  const SourceId kNyt = 0;
  const SourceId kWsj = 1;

  // ---- Story 0: the MH17 downing, investigation, sanctions, report.
  corpus.documents.push_back(Doc(
      kWsj, "online.wsj.com/doc3.html",
      "Jetliner Explodes over Ukraine",
      {"A Malaysia Airlines Boeing 777 with 298 people aboard exploded, "
       "crashed and burned in eastern Ukraine on Thursday near Donetsk.",
       "The jetliner was flying over territory controlled by pro-Russia "
       "separatists and appears to have been blown out of the sky by a "
       "missile, aviation officials said."},
      MakeTimestamp(2014, 7, 17, 16, 20), 0, "Accident"));
  corpus.documents.push_back(Doc(
      kNyt, "nytimes.com/doc1.html",
      "Passenger Jet Felled over Ukraine",
      {"The United States government has concluded that the passenger jet "
       "felled over Ukraine was shot down by a surface missile launched "
       "from rebel territory near Donetsk.",
       "All 298 passengers and crew of the Malaysia Airlines flight were "
       "killed in the crash, many of them Dutch citizens travelling from "
       "Amsterdam."},
      MakeTimestamp(2014, 7, 17, 21, 5), 0, "Accident"));
  corpus.documents.push_back(Doc(
      kNyt, "nytimes.com/doc2.html",
      "Ukraine Asks United Nations to Support Crash Investigation",
      {"Officials leading the criminal investigation into the crash of "
       "Malaysia Airlines Flight 17 said Friday that the plane's wreckage "
       "had been tampered with.",
       "Ukraine asked the United Nations civil aviation authority to help "
       "secure the crash site so investigators can recover evidence and "
       "the flight recorders."},
      MakeTimestamp(2014, 7, 18, 11, 40), 0, "Investigation"));
  corpus.documents.push_back(Doc(
      kWsj, "online.wsj.com/doc5.html",
      "Evidence of Russian Links to Jet's Downing",
      {"International investigations into the downing of the Malaysia "
       "Airlines jet over Ukraine point to a missile system moved across "
       "the Russian border, investigators said.",
       "Ukraine asked the United Nations civil aviation authority to "
       "review radar data from the day of the crash."},
      MakeTimestamp(2014, 7, 19, 9, 15), 0, "Investigation"));
  corpus.documents.push_back(Doc(
      kNyt, "nytimes.com/doc0.html",
      "Sanctions Expanded against Russia over Conflict",
      {"The day after the European Union and the United States announced "
       "expanded sanctions against Russia over the conflict in Ukraine, "
       "markets fell across the region.",
       "The sanctions follow the downing of the Malaysia Airlines plane "
       "and target banking, energy and defense sectors."},
      MakeTimestamp(2014, 7, 30, 8, 0), 0, "Diplomacy"));
  corpus.documents.push_back(Doc(
      kWsj, "online.wsj.com/doc6.html",
      "Victims of Ukraine Crash Arrive in the Netherlands",
      {"The remains of victims of the Malaysia Airlines crash arrived in "
       "the Netherlands on Wednesday, where Dutch officials led a national "
       "day of mourning.",
       "Forensic teams in Amsterdam began the work of identifying the "
       "passengers recovered from the wreckage in Ukraine."},
      MakeTimestamp(2014, 7, 23, 14, 30), 0, "Accident"));
  corpus.documents.push_back(Doc(
      kNyt, "nytimes.com/doc7.html",
      "Dutch Report: Jet Broke Up after Being Hit by Objects",
      {"A preliminary report by Dutch investigators said the Malaysia "
       "Airlines plane that crashed in Ukraine broke up in the air after "
       "being hit by numerous high-energy objects, consistent with a "
       "missile strike.",
       "The report, released in Amsterdam, stopped short of naming who "
       "shot the plane down, citing the ongoing investigation."},
      MakeTimestamp(2014, 9, 12, 10, 0), 0, "Investigation"));
  corpus.documents.push_back(Doc(
      kWsj, "online.wsj.com/doc8.html",
      "Investigators Release First Findings on Ukraine Crash",
      {"The first official report into the downing of the Malaysia "
       "Airlines jet over Ukraine concluded the plane was shot down, "
       "Dutch investigators said, matching radar and wreckage evidence.",
       "The Netherlands leads the international investigation because most "
       "of the victims were Dutch."},
      MakeTimestamp(2014, 9, 12, 13, 45), 0, "Investigation"));

  // ---- Story 1: UN war-crimes inquiry in the Israel conflict (s1 only;
  // shares "investigation" vocabulary and the UN entity with story 0 —
  // this is the v4 confusion shown in Fig. 5).
  corpus.documents.push_back(Doc(
      kNyt, "nytimes.com/doc4.html",
      "United Nations Opens Inquiry into War Crimes Allegations",
      {"The United Nations human rights council voted to open an "
       "investigation into allegations of war crimes committed during the "
       "conflict in Gaza between Israel and Palestinian militants.",
       "Israel rejected the investigation as one-sided while human rights "
       "groups called for investigators to be given access."},
      MakeTimestamp(2014, 7, 23, 9, 30), 1, "Justice"));
  corpus.documents.push_back(Doc(
      kNyt, "nytimes.com/doc9.html",
      "Rights Investigators Named for Gaza Inquiry",
      {"The United Nations named the members of the commission that will "
       "investigate alleged war crimes in the Gaza conflict, drawing "
       "criticism from Israel.",
       "Human rights advocates said the inquiry should examine actions by "
       "all parties to the conflict."},
      MakeTimestamp(2014, 8, 11, 15, 0), 1, "Justice"));

  // ---- Story 2: Google/Yelp antitrust (WSJ only; Fig. 3 doc4).
  corpus.documents.push_back(Doc(
      kWsj, "online.wsj.com/doc4.html",
      "Yelp Says Google Promotes Own Content in Search",
      {"Google Inc rival Yelp Inc says the search giant is promoting its "
       "own content at the expense of users, as Google battles an "
       "antitrust review in Brussels.",
       "Yelp filed data with European Union regulators arguing that "
       "Google's search algorithm favors Google services."},
      MakeTimestamp(2014, 7, 29, 12, 0), 2, "Technology"));
  corpus.documents.push_back(Doc(
      kWsj, "online.wsj.com/doc10.html",
      "European Union Widens Google Antitrust Review",
      {"European Union regulators widened their antitrust review of Google "
       "after complaints from Yelp and other companies about search "
       "rankings.",
       "The review examines whether Google abused its dominance of "
       "internet search in Europe."},
      MakeTimestamp(2014, 9, 3, 11, 20), 2, "Technology"));

  // ---- Story 3: doctors shortage (s1 only; Fig. 4 story c3').
  corpus.documents.push_back(Doc(
      kNyt, "nytimes.com/doc11.html",
      "Hospitals Warn of Doctors Shortage",
      {"Medical associations in the United States warned of a growing "
       "shortage of doctors in rural hospitals, with civil health "
       "officials proposing new incentives.",
       "The shortage affects emergency medicine and primary care, "
       "hospital administrators said."},
      MakeTimestamp(2014, 8, 20, 9, 0), 3, "Health"));

  return corpus;
}

void PopulateMh17Gazetteer(const Mh17Corpus& corpus,
                           text::Gazetteer* gazetteer) {
  for (const auto& [canonical, aliases] : corpus.entities) {
    text::TermId id = gazetteer->AddEntity(canonical);
    for (const std::string& alias : aliases) {
      gazetteer->AddAlias(id, alias);
    }
  }
}

}  // namespace storypivot::datagen
