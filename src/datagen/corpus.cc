#include "datagen/corpus.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "datagen/word_lists.h"
#include "util/logging.h"
#include "util/strings.h"

namespace storypivot::datagen {
namespace {

constexpr std::string_view kOutletNames[] = {
    "New York Times",    "Wall Street Journal", "The Guardian",
    "Le Monde",          "Der Spiegel",         "El Pais",
    "Asahi Shimbun",     "Times of India",      "Globe and Mail",
    "Sydney Herald",     "Kyiv Post",           "Moscow Gazette",
    "Cairo Courier",     "Lagos Ledger",        "Rio Record",
    "Nordic Dispatch",   "Alpine Tribune",      "Pacific Observer",
    "Atlantic Review",   "Baltic Bulletin",
};

struct SourceSpec {
  std::string name;
  /// Coverage multiplier per domain index.
  std::vector<double> domain_affinity;
  double delay_mean_secs = 0;
  double jitter_secs = 0;
};

/// CAMEO-flavoured event-type label for a domain archetype (the second
/// field of the paper's tuple format).
std::string EventTypeOfDomain(int domain) {
  const auto& domains = Domains();
  if (domain < 0 || domain >= static_cast<int>(domains.size())) return "";
  std::string name(domains[domain].name);
  if (!name.empty() && name[0] >= 'a' && name[0] <= 'z') {
    name[0] = static_cast<char>(name[0] - 'a' + 'A');
  }
  return name;
}

/// Samples an index from `cum` (inclusive prefix sums of weights).
size_t WeightedSample(Pcg32& rng, const std::vector<double>& cum) {
  SP_CHECK(!cum.empty());
  double u = rng.NextDouble() * cum.back();
  auto it = std::lower_bound(cum.begin(), cum.end(), u);
  if (it == cum.end()) return cum.size() - 1;
  return static_cast<size_t>(it - cum.begin());
}

std::vector<double> PrefixSums(const std::vector<double>& weights) {
  std::vector<double> cum(weights.size());
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    total += weights[i];
    cum[i] = total;
  }
  return cum;
}

}  // namespace

CorpusConfig GdeltScalePreset() {
  CorpusConfig config;
  config.seed = 2014;
  config.num_sources = 50;
  config.num_entities = 500;
  config.num_communities = 60;
  config.num_stories = 400;
  config.start_time = MakeTimestamp(2014, 6, 1);
  config.end_time = MakeTimestamp(2014, 12, 1);
  config.target_num_snippets = 10'000'000;  // The paper's card; scale down.
  return config;
}

CorpusGenerator::CorpusGenerator(CorpusConfig config)
    : config_(std::move(config)) {
  SP_CHECK(config_.num_sources > 0);
  SP_CHECK(config_.num_stories > 0);
  SP_CHECK(config_.end_time > config_.start_time);
}

Corpus CorpusGenerator::Generate() {
  Corpus corpus;
  corpus.entity_vocabulary = std::make_unique<text::Vocabulary>();
  corpus.keyword_vocabulary = std::make_unique<text::Vocabulary>();

  WorldConfig world_config;
  world_config.seed = config_.seed;
  world_config.num_entities = config_.num_entities;
  world_config.num_communities = config_.num_communities;
  world_config.topics_per_domain = config_.topics_per_domain;
  corpus.world = std::make_unique<WorldModel>(world_config,
                                              corpus.entity_vocabulary.get(),
                                              corpus.keyword_vocabulary.get());
  const WorldModel& world = *corpus.world;

  Pcg32 rng(config_.seed, /*stream=*/23);

  // --- Sources.
  std::vector<SourceSpec> specs(config_.num_sources);
  size_t num_domains = 0;
  for (const Topic& t : world.topics()) {
    num_domains = std::max<size_t>(num_domains, t.domain + 1);
  }
  for (int s = 0; s < config_.num_sources; ++s) {
    SourceSpec& spec = specs[s];
    if (s < static_cast<int>(std::size(kOutletNames))) {
      spec.name = std::string(kOutletNames[s]);
    } else {
      spec.name = StrFormat("Outlet %d", s);
    }
    spec.domain_affinity.resize(num_domains);
    for (double& a : spec.domain_affinity) {
      a = std::clamp(1.0 + config_.coverage_bias * (2.0 * rng.NextDouble() -
                                                    1.0),
                     0.05, 2.0);
    }
    // Delay varies by source: local outlets are fast, international slow.
    double factor = 0.3 + 2.4 * rng.NextDouble();
    spec.delay_mean_secs =
        config_.mean_report_delay_hours * kSecondsPerHour * factor;
    spec.jitter_secs = config_.timestamp_jitter_hours * kSecondsPerHour;

    SourceInfo info;
    info.id = static_cast<SourceId>(s);
    info.name = spec.name;
    corpus.sources.push_back(std::move(info));
  }

  // --- Ground-truth stories with drifting episodes.
  Timestamp horizon = config_.end_time - config_.start_time;
  for (int i = 0; i < config_.num_stories; ++i) {
    TruthStory story;
    story.id = i;
    story.community =
        static_cast<int>(rng.NextBounded(
            static_cast<uint32_t>(world.communities().size())));
    story.topic = static_cast<int>(
        rng.NextBounded(static_cast<uint32_t>(world.topics().size())));
    Timestamp duration = static_cast<Timestamp>(std::min<double>(
        rng.NextExponential(config_.mean_story_duration_days) *
                kSecondsPerDay +
            2 * kSecondsPerDay,
        static_cast<double>(horizon)));
    story.begin = config_.start_time +
                  rng.NextInRange(0, std::max<Timestamp>(
                                         1, horizon - duration));
    story.end = story.begin + duration;

    const Topic& topic = world.topics()[story.topic];
    const std::vector<text::TermId>& community =
        world.communities()[story.community];

    // Core cast: three entities that persist across every episode.
    std::vector<text::TermId> cast = community;
    rng.Shuffle(cast);
    size_t core_n = std::min<size_t>(3, cast.size());

    // Shuffle a private copy of the topic words once per story; episode e
    // then takes a sliding window over it so adjacent episodes overlap
    // (~60%) while distant episodes barely do — story evolution.
    std::vector<size_t> word_order(topic.words.size());
    std::iota(word_order.begin(), word_order.end(), 0u);
    rng.Shuffle(word_order);

    int num_episodes =
        1 + static_cast<int>(rng.NextBounded(
                static_cast<uint32_t>(config_.max_episodes)));
    Timestamp ep_len = std::max<Timestamp>(1, duration / num_episodes);
    constexpr size_t kEpisodeWords = 10;
    constexpr size_t kEpisodeStride = 4;
    for (int e = 0; e < num_episodes; ++e) {
      Episode ep;
      ep.begin = story.begin + e * ep_len;
      ep.end = (e == num_episodes - 1) ? story.end : ep.begin + ep_len;
      // Entities: the core plus two episode-specific peripherals.
      ep.entities.assign(cast.begin(), cast.begin() + core_n);
      for (size_t k = 0; k < 2 && core_n + k < cast.size(); ++k) {
        size_t idx = (core_n + e * 2 + k) % cast.size();
        if (idx < core_n) continue;  // Wrapped onto the core.
        ep.entities.push_back(cast[idx]);
      }
      // Keyword pool: sliding window over the story's word order.
      for (size_t k = 0; k < kEpisodeWords && !word_order.empty(); ++k) {
        size_t idx = word_order[(e * kEpisodeStride + k) % word_order.size()];
        ep.word_pool.push_back(topic.words[idx]);
        ep.word_surfaces.push_back(topic.surfaces[idx]);
        ep.word_weights.push_back(topic.weights[idx]);
      }
      story.episodes.push_back(std::move(ep));
    }
    story.popularity =
        1.0 / std::pow(static_cast<double>(i + 1),
                       config_.story_popularity_skew);
    corpus.truth_stories.push_back(std::move(story));
  }

  // --- Events. Expected reports per event ~= num_sources * coverage_base,
  // so size the event count to hit the snippet target.
  double expected_reports =
      std::max(0.2, config_.num_sources * config_.coverage_base);
  int num_events = std::max(
      1, static_cast<int>(std::lround(config_.target_num_snippets /
                                      expected_reports)));
  std::vector<double> story_cum;
  {
    std::vector<double> pops;
    pops.reserve(corpus.truth_stories.size());
    for (const TruthStory& s : corpus.truth_stories) {
      pops.push_back(s.popularity);
    }
    story_cum = PrefixSums(pops);
  }

  std::vector<TruthEvent> events;
  events.reserve(num_events);
  for (int i = 0; i < num_events; ++i) {
    const TruthStory& story =
        corpus.truth_stories[WeightedSample(rng, story_cum)];
    TruthEvent event;
    event.story = story.id;
    event.time = story.begin +
                 rng.NextInRange(0, std::max<Timestamp>(
                                        1, story.end - story.begin - 1));
    // Locate the containing episode.
    event.episode_index = story.episodes.size() - 1;
    for (size_t e = 0; e < story.episodes.size(); ++e) {
      if (event.time < story.episodes[e].end) {
        event.episode_index = e;
        break;
      }
    }
    const Episode& ep = story.episodes[event.episode_index];
    // Entities for this event: 2-3 of the core + up to 1 peripheral.
    size_t take = std::min<size_t>(ep.entities.size(),
                                   2 + rng.NextBounded(2));
    for (size_t k = 0; k < take; ++k) event.entities.push_back(ep.entities[k]);
    if (ep.entities.size() > 3 && rng.NextBernoulli(0.7)) {
      event.entities.push_back(
          ep.entities[3 + rng.NextBounded(
                              static_cast<uint32_t>(ep.entities.size() - 3))]);
    }
    events.push_back(std::move(event));
  }

  // --- Reporting: every source covers each event with a biased coin; a
  // covered event yields one snippet with source-specific timestamp jitter,
  // publication delay, entity noise and keyword paraphrasing.
  struct Pending {
    Snippet snippet;
    Timestamp arrival;
    Document document;
  };
  std::vector<Pending> pending;
  pending.reserve(static_cast<size_t>(num_events * expected_reports * 1.2));

  const auto& entity_names = world.entity_names();
  const auto& filler = world.filler_words();
  const auto& filler_surfaces = world.filler_surfaces();

  for (const TruthEvent& event : events) {
    const TruthStory& story = corpus.truth_stories[event.story];
    const Episode& ep = story.episodes[event.episode_index];
    std::vector<double> word_cum = PrefixSums(ep.word_weights);
    int domain = world.topics()[story.topic].domain;

    // Index into `pending` of this event's first report (for syndication
    // copies). An index, not a pointer: push_back reallocates.
    ptrdiff_t first_report_index = -1;
    for (int s = 0; s < config_.num_sources; ++s) {
      const SourceSpec& spec = specs[s];
      double p = config_.coverage_base * spec.domain_affinity[domain];
      if (!rng.NextBernoulli(p)) continue;

      Pending out;
      Snippet& snip = out.snippet;
      snip.source = static_cast<SourceId>(s);
      snip.truth_story = event.story;
      snip.event_type = EventTypeOfDomain(domain);
      Timestamp jitter = rng.NextInRange(
          -static_cast<Timestamp>(spec.jitter_secs),
          static_cast<Timestamp>(spec.jitter_secs));
      snip.timestamp = event.time + jitter;
      out.arrival = event.time + static_cast<Timestamp>(
                                     rng.NextExponential(
                                         spec.delay_mean_secs));

      // Syndication: run the first report's copy verbatim (same content
      // and event timestamp; only source and arrival differ).
      if (first_report_index >= 0 &&
          rng.NextBernoulli(config_.syndication_rate)) {
        const Snippet& first_report = pending[first_report_index].snippet;
        snip.timestamp = first_report.timestamp;
        snip.entities = first_report.entities;
        snip.keywords = first_report.keywords;
        snip.description = first_report.description;
        snip.document_url =
            StrFormat("http://%s.example.com/%d-%d", "wire",
                      static_cast<int>(pending.size()), s);
        pending.push_back(std::move(out));
        continue;
      }

      // Entities with drop/add noise.
      std::vector<text::TermVector::Entry> ents;
      for (text::TermId e : event.entities) {
        if (rng.NextBernoulli(config_.entity_noise)) continue;  // Dropped.
        double count = rng.NextBernoulli(0.3) ? 2.0 : 1.0;
        ents.push_back({e, count});
      }
      if (rng.NextBernoulli(config_.entity_noise)) {
        const auto& community = world.communities()[story.community];
        ents.push_back(
            {community[rng.NextBounded(
                 static_cast<uint32_t>(community.size()))],
             1.0});
      }
      if (ents.empty() && !event.entities.empty()) {
        ents.push_back({event.entities.front(), 1.0});
      }
      snip.entities = text::TermVector::FromEntries(std::move(ents));

      // Keywords: paraphrase by re-sampling from the episode pool.
      std::vector<text::TermVector::Entry> kws;
      std::vector<std::string_view> kw_surfaces;
      for (int k = 0; k < config_.keywords_per_snippet; ++k) {
        if (!filler.empty() && rng.NextBernoulli(config_.keyword_noise)) {
          size_t f = rng.NextBounded(static_cast<uint32_t>(filler.size()));
          kws.push_back({filler[f], 1.0});
          kw_surfaces.push_back(filler_surfaces[f]);
        } else if (!ep.word_pool.empty()) {
          size_t w = WeightedSample(rng, word_cum);
          kws.push_back({ep.word_pool[w], 1.0});
          kw_surfaces.push_back(ep.word_surfaces[w]);
        }
      }
      snip.keywords = text::TermVector::FromEntries(std::move(kws));

      // Human-readable description and (optionally) a raw document.
      std::string entity_str;
      for (size_t k = 0; k < event.entities.size() && k < 2; ++k) {
        if (!entity_str.empty()) entity_str += ", ";
        entity_str += entity_names[event.entities[k]];
      }
      std::string kw_str;
      for (size_t k = 0; k < kw_surfaces.size() && k < 3; ++k) {
        if (!kw_str.empty()) kw_str += " ";
        kw_str += std::string(kw_surfaces[k]);
      }
      snip.description = entity_str + ": " + kw_str;
      snip.document_url =
          StrFormat("http://%s.example.com/%d-%d", "src",
                    static_cast<int>(pending.size()), s);

      if (config_.emit_raw_text) {
        Document& doc = out.document;
        doc.source = snip.source;
        doc.url = snip.document_url;
        doc.timestamp = snip.timestamp;
        doc.truth_story = event.story;
        doc.title = snip.description;
        std::string body;
        for (size_t k = 0; k < kw_surfaces.size(); ++k) {
          if (k > 0) body += " ";
          body += std::string(kw_surfaces[k]);
          if (k + 1 < event.entities.size()) {
            body += " " + entity_names[event.entities[k + 1]];
          }
        }
        body += ".";
        doc.paragraphs.push_back(entity_names[event.entities.front()] +
                                 " " + body);
      }
      pending.push_back(std::move(out));
      if (first_report_index < 0) {
        first_report_index = static_cast<ptrdiff_t>(pending.size()) - 1;
      }
    }
  }

  // --- Order by arrival (publication) and assign ids in arrival order.
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.snippet.timestamp < b.snippet.timestamp;
            });
  corpus.snippets.reserve(pending.size());
  corpus.arrivals.reserve(pending.size());
  if (config_.emit_raw_text) corpus.documents.reserve(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    pending[i].snippet.id = static_cast<SnippetId>(i);
    corpus.arrivals.push_back(pending[i].arrival);
    corpus.snippets.push_back(std::move(pending[i].snippet));
    if (config_.emit_raw_text) {
      corpus.documents.push_back(std::move(pending[i].document));
    }
  }
  return corpus;
}

}  // namespace storypivot::datagen
