#ifndef STORYPIVOT_DATAGEN_CORPUS_H_
#define STORYPIVOT_DATAGEN_CORPUS_H_

#include <memory>
#include <string>
#include <vector>

#include "datagen/world.h"
#include "model/document.h"
#include "model/snippet.h"
#include "model/time.h"
#include "text/vocabulary.h"

namespace storypivot::datagen {

/// Parameters of a generated corpus. The defaults produce a mid-sized
/// workload; `GdeltScalePreset()` mirrors the dataset card of the paper's
/// Fig. 7 (50 sources, 500 entities, June 1 - Dec 1 2014).
struct CorpusConfig {
  uint64_t seed = 42;

  // World shape.
  int num_sources = 10;
  int num_entities = 200;
  int num_communities = 25;
  int topics_per_domain = 2;

  // Story shape.
  int num_stories = 40;
  Timestamp start_time = MakeTimestamp(2014, 6, 1);
  Timestamp end_time = MakeTimestamp(2014, 12, 1);
  double mean_story_duration_days = 35.0;
  int max_episodes = 4;
  /// Zipf exponent over stories: head stories get most events.
  double story_popularity_skew = 0.8;

  // Reporting shape.
  /// Total snippets to aim for (across all sources).
  int target_num_snippets = 5000;
  /// Base probability that a source reports a given event.
  double coverage_base = 0.45;
  /// Strength of per-source, per-domain coverage bias in [0,1].
  double coverage_bias = 0.5;
  /// Mean delay between an event and a source publishing it, in hours.
  double mean_report_delay_hours = 18.0;
  /// Probability of dropping/adding an entity, per entity slot.
  double entity_noise = 0.08;
  /// Probability that a keyword slot is replaced by cross-domain filler.
  double keyword_noise = 0.12;
  /// Keywords sampled per snippet.
  int keywords_per_snippet = 8;
  /// Per-source disagreement about the event time, in hours (uniform ±).
  double timestamp_jitter_hours = 4.0;
  /// Probability that a source runs *syndicated wire copy* of an event —
  /// an exact duplicate of the first report's content — instead of
  /// independently paraphrasing it. Models agency copy shared across
  /// outlets; detected downstream by core/dedup.
  double syndication_rate = 0.0;

  /// Also render raw document text for every snippet (slower; exercises
  /// the full annotation pipeline end-to-end).
  bool emit_raw_text = false;
};

/// Returns the configuration matching the dataset card shown in the
/// paper's statistics module (Fig. 7): 50 sources, 500 entities,
/// 2014-06-01..2014-12-01. `target_num_snippets` is the paper's 10M in
/// spirit; callers scale it down to their budget.
CorpusConfig GdeltScalePreset();

/// A generated corpus: annotated snippets with ground-truth labels, plus
/// the world and vocabulary objects needed to interpret them.
struct Corpus {
  std::unique_ptr<text::Vocabulary> entity_vocabulary;
  std::unique_ptr<text::Vocabulary> keyword_vocabulary;
  std::unique_ptr<WorldModel> world;

  std::vector<SourceInfo> sources;

  /// Snippets ordered by *arrival* time (publication), which is how a
  /// streaming engine would see them. Snippet::timestamp holds the event
  /// time and is typically earlier; the two orders differ (out-of-order
  /// arrivals, §2.4).
  std::vector<Snippet> snippets;
  /// Arrival (publication) time, parallel to `snippets`.
  std::vector<Timestamp> arrivals;

  /// Raw rendered documents (one per snippet), only when
  /// CorpusConfig::emit_raw_text was set; parallel to `snippets`.
  std::vector<Document> documents;

  std::vector<TruthStory> truth_stories;

  /// Ground-truth labels keyed by snippet index (== Snippet::truth_story).
  size_t num_truth_stories() const { return truth_stories.size(); }
};

/// Generates synthetic multi-source news corpora with ground truth.
/// Deterministic for a fixed config (including seed).
class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusConfig config);

  /// Generates a fresh corpus.
  Corpus Generate();

 private:
  CorpusConfig config_;
};

}  // namespace storypivot::datagen

#endif  // STORYPIVOT_DATAGEN_CORPUS_H_
