#include "datagen/word_lists.h"

namespace storypivot::datagen {
namespace {

// NOTE: all lists are function-local static references to heap objects that
// are intentionally never destroyed (trivially-destructible-global rule).

template <typename T>
const T& Leak(T* value) {
  return *value;
}

}  // namespace

const std::vector<std::string_view>& CountryNames() {
  static const auto& list = Leak(new std::vector<std::string_view>{
      "Ukraine",       "Russia",        "Malaysia",      "Netherlands",
      "Germany",       "France",        "United States", "United Kingdom",
      "China",         "Japan",         "India",         "Brazil",
      "Australia",     "Canada",        "Italy",         "Spain",
      "Poland",        "Turkey",        "Greece",        "Egypt",
      "Israel",        "Iran",          "Iraq",          "Syria",
      "Lebanon",       "Jordan",        "Saudi Arabia",  "Qatar",
      "Nigeria",       "Kenya",         "South Africa",  "Ethiopia",
      "Mexico",        "Argentina",     "Chile",         "Colombia",
      "Venezuela",     "Peru",          "Sweden",        "Norway",
      "Finland",       "Denmark",       "Belgium",       "Austria",
      "Switzerland",   "Portugal",      "Ireland",       "Hungary",
      "Romania",       "Bulgaria",      "Serbia",        "Croatia",
      "Indonesia",     "Thailand",      "Vietnam",       "Philippines",
      "South Korea",   "North Korea",   "Pakistan",      "Afghanistan",
  });
  return list;
}

const std::vector<std::string_view>& OrganizationNames() {
  static const auto& list = Leak(new std::vector<std::string_view>{
      "United Nations",        "European Union",
      "NATO",                  "World Bank",
      "Red Cross",             "Malaysia Airlines",
      "International Monetary Fund",
      "World Health Organization",
      "OPEC",                  "African Union",
      "Amnesty International", "Greenpeace",
      "Interpol",              "World Trade Organization",
      "OSCE",                  "UNICEF",
      "Doctors Without Borders",
      "Arab League",           "ASEAN",
      "G20",                   "Federal Reserve",
      "European Central Bank", "Securities Commission",
      "Olympic Committee",     "FIFA",
  });
  return list;
}

const std::vector<std::string_view>& PersonFirstNames() {
  static const auto& list = Leak(new std::vector<std::string_view>{
      "Andrei",  "Maria",  "John",   "Wei",    "Fatima", "Olga",
      "Pierre",  "Hans",   "Yuki",   "Carlos", "Amara",  "Viktor",
      "Elena",   "David",  "Sofia",  "Ahmed",  "Ingrid", "Pavel",
      "Lucia",   "Mikhail","Anna",   "James",  "Chen",   "Leila",
  });
  return list;
}

const std::vector<std::string_view>& PersonLastNames() {
  static const auto& list = Leak(new std::vector<std::string_view>{
      "Petrov",   "Kovac",    "Miller",  "Zhang",    "Haddad",  "Novak",
      "Dubois",   "Schmidt",  "Tanaka",  "Garcia",   "Okafor",  "Ivanov",
      "Popescu",  "Cohen",    "Rossi",   "Hassan",   "Larsen",  "Sokolov",
      "Moreno",   "Volkov",   "Keller",  "Walker",   "Liu",     "Nasser",
  });
  return list;
}

const std::vector<std::string_view>& NameSyllables() {
  static const auto& list = Leak(new std::vector<std::string_view>{
      "va", "do", "ri", "ka", "len", "mo", "sa", "tu", "ber", "no",
      "ze", "mi", "ra", "del", "go", "pa", "shi", "lo", "ter", "an",
  });
  return list;
}

const std::vector<DomainWords>& Domains() {
  static const auto& list = Leak(new std::vector<DomainWords>{
      {"conflict",
       {"troops", "offensive", "ceasefire", "shelling", "militia",
        "separatists", "airstrike", "casualties", "frontline", "artillery",
        "insurgents", "checkpoint", "convoy", "escalation", "rebels",
        "mobilization", "skirmish", "bombardment", "truce", "withdrawal",
        "hostilities", "incursion", "stronghold", "barricade", "combat"}},
      {"diplomacy",
       {"summit", "negotiations", "treaty", "ambassador", "sanctions",
        "resolution", "delegation", "accord", "mediation", "envoy",
        "communique", "bilateral", "talks", "agreement", "protocol",
        "ratification", "consulate", "dialogue", "concessions", "ministers",
        "memorandum", "alliance", "embassy", "ultimatum", "compromise"}},
      {"economy",
       {"markets", "inflation", "currency", "exports", "tariffs",
        "recession", "investors", "stocks", "bonds", "deficit",
        "growth", "unemployment", "trade", "banking", "forecast",
        "earnings", "stimulus", "austerity", "devaluation", "commodities",
        "futures", "liquidity", "debt", "budget", "subsidies"}},
      {"disaster",
       {"earthquake", "flood", "wildfire", "hurricane", "evacuation",
        "rescue", "survivors", "wreckage", "collapse", "aftershock",
        "landslide", "emergency", "shelter", "damages", "relief",
        "typhoon", "drought", "tsunami", "debris", "casualty",
        "aid", "reconstruction", "epidemic", "quarantine", "outbreak"}},
      {"aviation",
       {"airliner", "crash", "flight", "wreckage", "investigators",
        "blackbox", "missile", "radar", "cockpit", "debris",
        "airspace", "altitude", "passengers", "crew", "runway",
        "takeoff", "mayday", "transponder", "turbulence", "fuselage",
        "airport", "aviation", "downing", "recovery", "salvage"}},
      {"politics",
       {"election", "parliament", "coalition", "referendum", "ballot",
        "campaign", "incumbent", "opposition", "legislation", "impeachment",
        "cabinet", "constituency", "polls", "turnout", "manifesto",
        "senate", "congress", "decree", "veto", "amendment",
        "lawmakers", "primaries", "electorate", "gerrymander", "caucus"}},
      {"justice",
       {"tribunal", "indictment", "verdict", "prosecution", "testimony",
        "warcrimes", "investigation", "evidence", "defendant", "acquittal",
        "appeal", "sentencing", "extradition", "custody", "allegations",
        "subpoena", "plaintiff", "injunction", "litigation", "probe",
        "corruption", "bribery", "fraud", "embezzlement", "perjury"}},
      {"energy",
       {"pipeline", "gas", "crude", "refinery", "barrels",
        "drilling", "reserves", "supply", "embargo", "exports",
        "renewables", "grid", "blackout", "nuclear", "reactor",
        "extraction", "offshore", "petroleum", "shale", "turbines",
        "megawatts", "transmission", "utilities", "solar", "coal"}},
      {"technology",
       {"startup", "software", "platform", "antitrust", "algorithm",
        "search", "privacy", "data", "regulators", "acquisition",
        "patent", "smartphone", "internet", "cybersecurity", "breach",
        "encryption", "servers", "cloud", "innovation", "silicon",
        "browser", "advertising", "monopoly", "merger", "valuation"}},
      {"health",
       {"doctors", "hospital", "vaccine", "patients", "medical",
        "shortage", "clinic", "virus", "infection", "treatment",
        "epidemic", "symptoms", "diagnosis", "pharmaceutical", "dosage",
        "immunization", "pandemic", "mortality", "nurses", "surgery",
        "therapy", "antibiotics", "screening", "wards", "triage"}},
      {"sports",
       {"championship", "tournament", "league", "transfer", "stadium",
        "goalkeeper", "striker", "medal", "qualifier", "playoffs",
        "coach", "penalty", "doping", "federation", "athletes",
        "relegation", "fixture", "derby", "injury", "contract",
        "season", "title", "record", "victory", "defeat"}},
      {"science",
       {"researchers", "satellite", "probe", "laboratory", "experiment",
        "spacecraft", "telescope", "genome", "particle", "discovery",
        "climate", "emissions", "glacier", "specimen", "orbit",
        "mission", "observatory", "fossil", "expedition", "samples",
        "asteroid", "microbes", "physics", "quantum", "sequencing"}},
  });
  return list;
}

const std::vector<std::string_view>& FillerWords() {
  static const auto& list = Leak(new std::vector<std::string_view>{
      "officials", "reported", "announced", "sources", "statement",
      "response",  "situation", "developments", "authorities", "spokesman",
      "capital",   "region",    "crisis",  "meeting", "president",
      "minister",  "government","leaders", "week",    "month",
  });
  return list;
}

}  // namespace storypivot::datagen
