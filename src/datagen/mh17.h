#ifndef STORYPIVOT_DATAGEN_MH17_H_
#define STORYPIVOT_DATAGEN_MH17_H_

#include <string>
#include <vector>

#include "model/document.h"
#include "text/gazetteer.h"

namespace storypivot::datagen {

/// The paper's running example as a small hand-curated raw-text corpus:
/// the July 2014 downing of Malaysia Airlines flight MH17 over Ukraine as
/// covered by two sources (the New York Times, s1, and the Wall Street
/// Journal, sn), plus the unrelated side stories visible in Figs. 3-5
/// (a UN war-crimes inquiry in the Israel conflict, a Google/Yelp
/// antitrust complaint, and a doctors-shortage report).
///
/// Ground-truth story labels:
///   0 = MH17 downing & investigation (incl. the sanctions angle, Fig. 4)
///   1 = UN war-crimes inquiry (s1 only)
///   2 = Google/Yelp antitrust (WSJ only)
///   3 = doctors shortage (s1 only)
struct Mh17Corpus {
  std::vector<SourceInfo> sources;  // [0] = NYT, [1] = WSJ.
  std::vector<Document> documents;  // Ordered by timestamp.
  /// Canonical entity names the gazetteer needs, with aliases.
  std::vector<std::pair<std::string, std::vector<std::string>>> entities;
};

/// Builds the embedded MH17 demonstration corpus.
Mh17Corpus MakeMh17Corpus();

/// Registers all MH17 corpus entities (and aliases) in `gazetteer`.
void PopulateMh17Gazetteer(const Mh17Corpus& corpus,
                           text::Gazetteer* gazetteer);

}  // namespace storypivot::datagen

#endif  // STORYPIVOT_DATAGEN_MH17_H_
