#include "datagen/world.h"

#include <algorithm>
#include <string>

#include "datagen/word_lists.h"
#include "text/porter_stemmer.h"
#include "util/logging.h"

namespace storypivot::datagen {
namespace {

std::string Capitalize(std::string s) {
  if (!s.empty() && s[0] >= 'a' && s[0] <= 'z') {
    s[0] = static_cast<char>(s[0] - 'a' + 'A');
  }
  return s;
}

// Synthesises a pseudo-name from syllables, e.g. "Vakari".
std::string SynthName(Pcg32& rng, int syllables) {
  const auto& pool = NameSyllables();
  std::string out;
  for (int i = 0; i < syllables; ++i) {
    out += pool[rng.NextBounded(static_cast<uint32_t>(pool.size()))];
  }
  return Capitalize(out);
}

}  // namespace

WorldModel::WorldModel(const WorldConfig& config,
                       text::Vocabulary* entity_vocabulary,
                       text::Vocabulary* keyword_vocabulary) {
  SP_CHECK(entity_vocabulary != nullptr);
  SP_CHECK(keyword_vocabulary != nullptr);
  SP_CHECK(config.num_entities > 0);
  SP_CHECK(config.num_communities > 0);
  Pcg32 gen(config.seed, /*stream=*/11);

  // --- Entities: real country + org names first, then persons, then
  // synthetic names until num_entities is reached.
  entity_names_.reserve(config.num_entities);
  auto add_entity = [&](std::string name) {
    text::TermId id = entity_vocabulary->Intern(name);
    // Ids must be dense and in insertion order for entity_names_ indexing.
    SP_CHECK(id == entity_names_.size());
    entity_names_.push_back(std::move(name));
  };
  for (std::string_view name : CountryNames()) {
    if (static_cast<int>(entity_names_.size()) >= config.num_entities) break;
    add_entity(std::string(name));
  }
  for (std::string_view name : OrganizationNames()) {
    if (static_cast<int>(entity_names_.size()) >= config.num_entities) break;
    add_entity(std::string(name));
  }
  const auto& firsts = PersonFirstNames();
  const auto& lasts = PersonLastNames();
  for (size_t i = 0;
       static_cast<int>(entity_names_.size()) < config.num_entities &&
       i < firsts.size() * lasts.size();
       ++i) {
    std::string name = std::string(firsts[i % firsts.size()]) + " " +
                       std::string(lasts[(i * 7 + i / firsts.size()) %
                                         lasts.size()]);
    // Person-name combinations can collide; skip duplicates.
    if (entity_vocabulary->Lookup(name) != text::kInvalidTermId) continue;
    add_entity(std::move(name));
  }
  while (static_cast<int>(entity_names_.size()) < config.num_entities) {
    std::string name = SynthName(gen, 2 + static_cast<int>(
                                            gen.NextBounded(2)));
    if (gen.NextBernoulli(0.4)) {
      name.push_back(' ');
      name += SynthName(gen, 2);
    }
    if (entity_vocabulary->Lookup(name) != text::kInvalidTermId) continue;
    add_entity(std::move(name));
  }

  // --- Communities: a random partition into num_communities groups, each
  // entity assigned round-robin after a shuffle.
  std::vector<text::TermId> ids(entity_names_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<text::TermId>(i);
  gen.Shuffle(ids);
  communities_.assign(config.num_communities, {});
  for (size_t i = 0; i < ids.size(); ++i) {
    communities_[i % config.num_communities].push_back(ids[i]);
  }

  // --- Topics: `topics_per_domain` variations per embedded domain. A
  // variation samples 18 of the domain's 25 words with random Zipf-ish
  // weights, so two topics of the same domain overlap but are not equal.
  const auto& domains = Domains();
  for (size_t d = 0; d < domains.size(); ++d) {
    for (int v = 0; v < config.topics_per_domain; ++v) {
      Topic topic;
      topic.domain = static_cast<int>(d);
      std::vector<std::string_view> pool(domains[d].words);
      gen.Shuffle(pool);
      size_t take = std::min<size_t>(18, pool.size());
      for (size_t i = 0; i < take; ++i) {
        std::string surface(pool[i]);
        std::string stem = text::PorterStem(surface);
        topic.words.push_back(keyword_vocabulary->Intern(stem));
        topic.surfaces.push_back(std::move(surface));
        topic.weights.push_back(1.0 / static_cast<double>(i + 1));
      }
      topics_.push_back(std::move(topic));
    }
  }

  // --- Filler words (shared noise vocabulary).
  for (std::string_view w : FillerWords()) {
    std::string surface(w);
    filler_words_.push_back(
        keyword_vocabulary->Intern(text::PorterStem(surface)));
    filler_surfaces_.push_back(std::move(surface));
  }
}

void WorldModel::PopulateGazetteer(text::Gazetteer* gazetteer) const {
  SP_CHECK(gazetteer != nullptr);
  for (const std::string& name : entity_names_) {
    gazetteer->AddEntity(name);
  }
}

}  // namespace storypivot::datagen
