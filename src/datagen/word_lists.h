#ifndef STORYPIVOT_DATAGEN_WORD_LISTS_H_
#define STORYPIVOT_DATAGEN_WORD_LISTS_H_

#include <string_view>
#include <vector>

namespace storypivot::datagen {

/// A news domain archetype: a label plus a pool of domain-typical content
/// words. Ground-truth stories draw their keyword distributions from one
/// domain pool, which gives distinct stories distinct vocabularies while
/// stories from the same domain still overlap realistically.
struct DomainWords {
  std::string_view name;
  std::vector<std::string_view> words;
};

/// Real-world country and region names used as entity seeds.
const std::vector<std::string_view>& CountryNames();

/// Real-world organisation names used as entity seeds.
const std::vector<std::string_view>& OrganizationNames();

/// First/last name fragments for synthesising person entities.
const std::vector<std::string_view>& PersonFirstNames();
const std::vector<std::string_view>& PersonLastNames();

/// Syllables for synthesising additional organisation/place names once the
/// real lists are exhausted.
const std::vector<std::string_view>& NameSyllables();

/// The embedded news-domain archetypes (conflict, diplomacy, economy, ...).
const std::vector<DomainWords>& Domains();

/// Generic news filler words that act as cross-domain noise.
const std::vector<std::string_view>& FillerWords();

}  // namespace storypivot::datagen

#endif  // STORYPIVOT_DATAGEN_WORD_LISTS_H_
