#include "datagen/gdelt_export.h"

#include <unordered_map>

#include "model/time.h"
#include "util/csv.h"
#include "util/strings.h"

namespace storypivot::datagen {
namespace {

std::string JoinTerms(const text::TermVector& terms,
                      const text::Vocabulary& vocab, bool with_counts) {
  std::string out;
  for (const auto& [id, count] : terms.entries()) {
    if (!out.empty()) out += ";";
    out += vocab.TermOf(id);
    if (with_counts) out += StrFormat(":%g", count);
  }
  return out;
}

}  // namespace

std::string ExportTsv(const Corpus& corpus) {
  DsvWriter writer('\t');
  writer.WriteRow({"id", "source", "event_type", "event_date", "entities",
                   "keywords", "description", "url", "truth"});
  for (const Snippet& s : corpus.snippets) {
    writer.WriteRow({
        StrFormat("%llu", static_cast<unsigned long long>(s.id)),
        corpus.sources[s.source].name,
        s.event_type,
        FormatDateTime(s.timestamp),
        JoinTerms(s.entities, *corpus.entity_vocabulary,
                  /*with_counts=*/false),
        JoinTerms(s.keywords, *corpus.keyword_vocabulary,
                  /*with_counts=*/true),
        s.description,
        s.document_url,
        StrFormat("%lld", static_cast<long long>(s.truth_story)),
    });
  }
  return writer.contents();
}

Status ExportTsvToFile(const Corpus& corpus, const std::string& path) {
  return WriteStringToFile(path, ExportTsv(corpus));
}

namespace {

/// Parses one data row into a snippet. Validation (field count, id,
/// date) happens BEFORE any shared state is touched, so a rejected row
/// leaves no trace in the vocabularies or source table — that is what
/// makes permissive-mode quarantine safe.
Status ImportRow(const std::vector<std::string>& row, ImportedCorpus* out,
                 std::unordered_map<std::string, SourceId>* source_ids) {
  if (row.size() != 9) {
    return Status::InvalidArgument(
        StrFormat("expected 9 fields, got %zu", row.size()));
  }
  Snippet s;
  int64_t id = 0;
  if (!ParseInt64(row[0], &id)) {
    return Status::InvalidArgument("bad id \"" + row[0] + "\"");
  }
  s.id = static_cast<SnippetId>(id);

  // Parse "YYYY-MM-DD HH:MM".
  const std::string& dt = row[3];
  int64_t y = 0, mo = 0, d = 0, h = 0, mi = 0;
  if (dt.size() < 16 || !ParseInt64(dt.substr(0, 4), &y) ||
      !ParseInt64(dt.substr(5, 2), &mo) ||
      !ParseInt64(dt.substr(8, 2), &d) ||
      !ParseInt64(dt.substr(11, 2), &h) ||
      !ParseInt64(dt.substr(14, 2), &mi)) {
    return Status::InvalidArgument("bad date \"" + dt + "\"");
  }
  s.timestamp = MakeTimestamp(static_cast<int>(y), static_cast<int>(mo),
                              static_cast<int>(d), static_cast<int>(h),
                              static_cast<int>(mi));

  // Row is valid; from here on we may mutate shared state.
  auto [it, inserted] = source_ids->try_emplace(
      row[1], static_cast<SourceId>(source_ids->size()));
  if (inserted) {
    SourceInfo info;
    info.id = it->second;
    info.name = row[1];
    out->sources.push_back(std::move(info));
  }
  s.source = it->second;
  s.event_type = row[2];

  if (!row[4].empty()) {
    std::vector<text::TermVector::Entry> ents;
    for (std::string_view name : Split(row[4], ';')) {
      ents.push_back({out->entity_vocabulary->Intern(name), 1.0});
    }
    s.entities = text::TermVector::FromEntries(std::move(ents));
  }
  if (!row[5].empty()) {
    std::vector<text::TermVector::Entry> kws;
    for (std::string_view item : Split(row[5], ';')) {
      size_t colon = item.rfind(':');
      double count = 1.0;
      std::string_view term = item;
      if (colon != std::string_view::npos) {
        if (!ParseDouble(item.substr(colon + 1), &count)) count = 1.0;
        term = item.substr(0, colon);
      }
      kws.push_back({out->keyword_vocabulary->Intern(term), count});
    }
    s.keywords = text::TermVector::FromEntries(std::move(kws));
  }
  s.description = row[6];
  s.document_url = row[7];
  int64_t truth = -1;
  if (!ParseInt64(row[8], &truth)) truth = -1;
  s.truth_story = truth;
  out->snippets.push_back(std::move(s));
  return Status::OK();
}

/// Shared import loop; `report == nullptr` selects strict mode.
Result<ImportedCorpus> ImportTsvImpl(const std::string& contents,
                                     ImportReport* report) {
  const bool permissive = report != nullptr;
  DsvReader reader('\t');
  PermissiveDsv parsed;
  if (permissive) {
    parsed = reader.ParsePermissive(contents);
    for (const DsvSkipped& sk : parsed.skipped) {
      report->skipped.push_back(ImportSkipped{sk.line, sk.reason});
    }
  } else {
    ASSIGN_OR_RETURN(parsed.rows, reader.Parse(contents));
  }
  if (parsed.rows.empty()) return Status::InvalidArgument("empty TSV");

  ImportedCorpus out;
  out.entity_vocabulary = std::make_unique<text::Vocabulary>();
  out.keyword_vocabulary = std::make_unique<text::Vocabulary>();
  std::unordered_map<std::string, SourceId> source_ids;

  if (permissive) {
    report->rows_seen = (parsed.rows.size() - 1) + parsed.skipped.size();
  }
  for (size_t r = 1; r < parsed.rows.size(); ++r) {
    Status row_status = ImportRow(parsed.rows[r], &out, &source_ids);
    if (row_status.ok()) {
      if (permissive) ++report->rows_imported;
      continue;
    }
    if (!permissive) {
      return Status::InvalidArgument(StrFormat("row %zu: ", r) +
                                     std::string(row_status.message()));
    }
    size_t line = r < parsed.row_lines.size() ? parsed.row_lines[r] : 0;
    report->skipped.push_back(
        ImportSkipped{line, std::string(row_status.message())});
  }
  return out;
}

}  // namespace

Result<ImportedCorpus> ImportTsv(const std::string& contents) {
  return ImportTsvImpl(contents, nullptr);
}

Result<ImportedCorpus> ImportTsvPermissive(const std::string& contents,
                                           ImportReport* report) {
  return ImportTsvImpl(contents, report);
}

}  // namespace storypivot::datagen
