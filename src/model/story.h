#ifndef STORYPIVOT_MODEL_STORY_H_
#define STORYPIVOT_MODEL_STORY_H_

#include <set>
#include <vector>

#include "model/ids.h"
#include "model/snippet.h"
#include "model/time.h"
#include "text/term_vector.h"

namespace storypivot {

/// A story: a set of semantically connected information snippets evolving
/// over time (§2). The struct maintains incremental aggregates — entity and
/// keyword histograms, the time span, and the contributing sources — so the
/// overview cards of Figs. 4-6 can be rendered and similarity against the
/// story can be computed without touching every member snippet.
class Story {
 public:
  Story() = default;
  explicit Story(StoryId id) : id_(id) {}

  StoryId id() const { return id_; }
  void set_id(StoryId id) { id_ = id; }

  /// Member snippet ids, kept sorted by (timestamp, id).
  const std::vector<SnippetId>& snippets() const { return snippets_; }

  size_t size() const { return snippets_.size(); }
  bool empty() const { return snippets_.empty(); }

  /// Sources that contributed at least one snippet.
  const std::set<SourceId>& sources() const { return sources_; }

  /// Aggregate entity histogram over all member snippets.
  const text::TermVector& entities() const { return entities_; }

  /// Aggregate keyword histogram over all member snippets.
  const text::TermVector& keywords() const { return keywords_; }

  /// Timestamp of the earliest member snippet. Undefined when empty.
  Timestamp start_time() const { return start_time_; }

  /// Timestamp of the latest member snippet. Undefined when empty.
  Timestamp end_time() const { return end_time_; }

  /// Adds a snippet and updates all aggregates. The snippet must not
  /// already be a member.
  void AddSnippet(const Snippet& snippet);

  /// Removes a snippet and updates aggregates. `snippet` must be a current
  /// member (same content as when added). Source membership and time span
  /// are recomputed lazily from `all` via RecomputeSpan when needed — to
  /// keep removal cheap the caller passes the surviving snippets.
  void RemoveSnippet(const Snippet& snippet,
                     const std::vector<const Snippet*>& survivors);

  /// True if `id` is a member (binary search over the sorted member list is
  /// not possible since the list is time-ordered; this is a linear scan and
  /// intended for small stories / tests).
  bool Contains(SnippetId id) const;

  /// Merges `other` into this story (set union of members + aggregates).
  void MergeFrom(const Story& other);

 private:
  void InsertSorted(SnippetId id, Timestamp ts);

  StoryId id_ = kInvalidStoryId;
  std::vector<SnippetId> snippets_;
  std::vector<Timestamp> snippet_times_;  // Parallel to snippets_.
  std::set<SourceId> sources_;
  text::TermVector entities_;
  text::TermVector keywords_;
  Timestamp start_time_ = 0;
  Timestamp end_time_ = 0;
};

}  // namespace storypivot

#endif  // STORYPIVOT_MODEL_STORY_H_
