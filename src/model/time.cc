#include "model/time.h"

#include "util/strings.h"

namespace storypivot {
namespace {

// Days from 1970-01-01 to year/month/day (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  int64_t era = (y >= 0 ? y : y - 399) / 400;
  unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0,146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  *d = doy - (153 * mp + 2) / 5 + 1;                       // [1, 31]
  *m = mp + (mp < 10 ? 3 : -9);                            // [1, 12]
  *y = static_cast<int>(yy + (*m <= 2));
}

}  // namespace

Timestamp TimestampFromCivil(const CivilDate& date) {
  return DaysFromCivil(date.year, date.month, date.day) * kSecondsPerDay;
}

Timestamp MakeTimestamp(int year, int month, int day, int hour, int minute,
                        int second) {
  return TimestampFromCivil({year, month, day}) + hour * kSecondsPerHour +
         minute * kSecondsPerMinute + second;
}

CivilDate CivilFromTimestamp(Timestamp ts) {
  int64_t days = ts / kSecondsPerDay;
  if (ts < 0 && ts % kSecondsPerDay != 0) --days;
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return {y, static_cast<int>(m), static_cast<int>(d)};
}

std::string FormatDate(Timestamp ts) {
  CivilDate c = CivilFromTimestamp(ts);
  return StrFormat("%04d-%02d-%02d", c.year, c.month, c.day);
}

std::string FormatDateTime(Timestamp ts) {
  int64_t days = ts / kSecondsPerDay;
  if (ts < 0 && ts % kSecondsPerDay != 0) --days;
  int64_t secs_of_day = ts - days * kSecondsPerDay;
  int hour = static_cast<int>(secs_of_day / kSecondsPerHour);
  int minute = static_cast<int>((secs_of_day % kSecondsPerHour) /
                                kSecondsPerMinute);
  return FormatDate(ts) + StrFormat(" %02d:%02d", hour, minute);
}

}  // namespace storypivot
