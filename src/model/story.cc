#include "model/story.h"

#include <algorithm>

#include "util/logging.h"

namespace storypivot {

void Story::InsertSorted(SnippetId id, Timestamp ts) {
  // Find insert position by (timestamp, id).
  size_t pos = snippets_.size();
  for (size_t i = snippets_.size(); i > 0; --i) {
    if (snippet_times_[i - 1] < ts ||
        (snippet_times_[i - 1] == ts && snippets_[i - 1] < id)) {
      pos = i;
      break;
    }
    pos = i - 1;
  }
  snippets_.insert(snippets_.begin() + pos, id);
  snippet_times_.insert(snippet_times_.begin() + pos, ts);
}

void Story::AddSnippet(const Snippet& snippet) {
  if (snippets_.empty()) {
    start_time_ = snippet.timestamp;
    end_time_ = snippet.timestamp;
  } else {
    start_time_ = std::min(start_time_, snippet.timestamp);
    end_time_ = std::max(end_time_, snippet.timestamp);
  }
  InsertSorted(snippet.id, snippet.timestamp);
  sources_.insert(snippet.source);
  entities_.Merge(snippet.entities);
  keywords_.Merge(snippet.keywords);
}

void Story::RemoveSnippet(const Snippet& snippet,
                          const std::vector<const Snippet*>& survivors) {
  auto it = std::find(snippets_.begin(), snippets_.end(), snippet.id);
  SP_CHECK(it != snippets_.end());
  size_t idx = static_cast<size_t>(it - snippets_.begin());
  snippets_.erase(it);
  snippet_times_.erase(snippet_times_.begin() + idx);
  entities_.Subtract(snippet.entities);
  keywords_.Subtract(snippet.keywords);
  // Recompute source set and span from the survivors.
  sources_.clear();
  if (survivors.empty()) {
    start_time_ = 0;
    end_time_ = 0;
    return;
  }
  start_time_ = survivors.front()->timestamp;
  end_time_ = survivors.front()->timestamp;
  for (const Snippet* s : survivors) {
    sources_.insert(s->source);
    start_time_ = std::min(start_time_, s->timestamp);
    end_time_ = std::max(end_time_, s->timestamp);
  }
}

bool Story::Contains(SnippetId id) const {
  return std::find(snippets_.begin(), snippets_.end(), id) !=
         snippets_.end();
}

void Story::MergeFrom(const Story& other) {
  for (size_t i = 0; i < other.snippets_.size(); ++i) {
    InsertSorted(other.snippets_[i], other.snippet_times_[i]);
  }
  if (!other.snippets_.empty()) {
    if (snippets_.size() == other.snippets_.size()) {
      // This story was empty before the merge.
      start_time_ = other.start_time_;
      end_time_ = other.end_time_;
    } else {
      start_time_ = std::min(start_time_, other.start_time_);
      end_time_ = std::max(end_time_, other.end_time_);
    }
  }
  sources_.insert(other.sources_.begin(), other.sources_.end());
  entities_.Merge(other.entities_);
  keywords_.Merge(other.keywords_);
}

}  // namespace storypivot
