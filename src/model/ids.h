#ifndef STORYPIVOT_MODEL_IDS_H_
#define STORYPIVOT_MODEL_IDS_H_

#include <cstdint>

namespace storypivot {

/// Identifies one information snippet. Assigned by the SnippetStore,
/// unique across all sources.
using SnippetId = uint64_t;

/// Identifies one data source (newspaper, blog, feed, ...).
using SourceId = uint32_t;

/// Identifies one story. Per-source stories and integrated (aligned)
/// stories draw from the same id space of the owning engine.
using StoryId = uint64_t;

inline constexpr SnippetId kInvalidSnippetId = ~0ull;
inline constexpr SourceId kInvalidSourceId = ~0u;
inline constexpr StoryId kInvalidStoryId = ~0ull;

}  // namespace storypivot

#endif  // STORYPIVOT_MODEL_IDS_H_
