#ifndef STORYPIVOT_MODEL_TIME_H_
#define STORYPIVOT_MODEL_TIME_H_

#include <cstdint>
#include <string>

namespace storypivot {

/// Event timestamps are UTC seconds since the Unix epoch (like GDELT's
/// day-level timestamps, but at second resolution so reporting delays can
/// be modelled).
using Timestamp = int64_t;

inline constexpr Timestamp kSecondsPerMinute = 60;
inline constexpr Timestamp kSecondsPerHour = 3600;
inline constexpr Timestamp kSecondsPerDay = 86400;

/// A calendar date (proleptic Gregorian, UTC).
struct CivilDate {
  int year = 1970;
  int month = 1;  // 1-12
  int day = 1;    // 1-31

  bool operator==(const CivilDate&) const = default;
};

/// Converts a civil date to the timestamp of its UTC midnight.
/// Uses the days-from-civil algorithm, valid far beyond any news archive.
Timestamp TimestampFromCivil(const CivilDate& date);

/// Convenience overload.
Timestamp MakeTimestamp(int year, int month, int day, int hour = 0,
                        int minute = 0, int second = 0);

/// Converts a timestamp back to its UTC civil date.
CivilDate CivilFromTimestamp(Timestamp ts);

/// Formats as "YYYY-MM-DD".
std::string FormatDate(Timestamp ts);

/// Formats as "YYYY-MM-DD HH:MM".
std::string FormatDateTime(Timestamp ts);

}  // namespace storypivot

#endif  // STORYPIVOT_MODEL_TIME_H_
