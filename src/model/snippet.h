#ifndef STORYPIVOT_MODEL_SNIPPET_H_
#define STORYPIVOT_MODEL_SNIPPET_H_

#include <string>

#include "model/ids.h"
#include "model/time.h"
#include "text/term_vector.h"

namespace storypivot {

/// An information snippet — the elemental unit of information in
/// StoryPivot (§2.1). A snippet is extracted from a document of a data
/// source, carries the timestamp at which the described real-world event
/// occurred, and has content in the form of entity and keyword histograms,
/// e.g. <NYT, Accident, {Ukraine, Malaysian Airlines}, "Plane Crash",
/// 07/17/2014>.
struct Snippet {
  SnippetId id = kInvalidSnippetId;
  SourceId source = kInvalidSourceId;
  /// When the described event occurred in the real world.
  Timestamp timestamp = 0;
  /// URL (or other identifier) of the document the snippet came from.
  std::string document_url;
  /// CAMEO-style type of the described real-world event ("Accident",
  /// "Conflict", "Diplomacy", ...) — the second field of the paper's
  /// example tuple <NYT, Accident, {Ukraine, Malaysian Airlines}, "Plane
  /// Crash", 07/17/2014>. Empty when the extractor provides none.
  std::string event_type;
  /// A short human-readable description (the raw excerpt or its headline).
  std::string description;
  /// Entity mention counts (entity-vocabulary TermIds).
  text::TermVector entities;
  /// Stemmed keyword counts (keyword-vocabulary TermIds).
  text::TermVector keywords;
  /// Ground-truth story label for evaluation; -1 when unknown. Never used
  /// by the detection algorithms themselves.
  int64_t truth_story = -1;
};

}  // namespace storypivot

#endif  // STORYPIVOT_MODEL_SNIPPET_H_
