#ifndef STORYPIVOT_MODEL_DOCUMENT_H_
#define STORYPIVOT_MODEL_DOCUMENT_H_

#include <string>
#include <vector>

#include "model/ids.h"
#include "model/time.h"

namespace storypivot {

/// A raw news document prior to extraction (Fig. 1a / Fig. 3 in the paper):
/// a titled text from one source, which the extraction pipeline breaks into
/// one snippet per paragraph (plus one for the title context).
struct Document {
  SourceId source = kInvalidSourceId;
  std::string url;
  std::string title;
  /// Paragraphs of body text. Each paragraph becomes one snippet.
  std::vector<std::string> paragraphs;
  /// CAMEO-style type of the reported event ("Accident", "Conflict", ...).
  std::string event_type;
  /// Event time attributed to the document's content.
  Timestamp timestamp = 0;
  /// Optional ground-truth story label for every snippet of this document.
  int64_t truth_story = -1;
};

/// Metadata about a registered data source.
struct SourceInfo {
  SourceId id = kInvalidSourceId;
  std::string name;
};

}  // namespace storypivot

#endif  // STORYPIVOT_MODEL_DOCUMENT_H_
