#ifndef STORYPIVOT_EVAL_DIAGNOSTICS_H_
#define STORYPIVOT_EVAL_DIAGNOSTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"

namespace storypivot::eval {

/// How one ground-truth story fared through detection: was it kept whole
/// (one cluster), fragmented (split over several), or contaminated
/// (merged with other stories)?
struct StoryDiagnostic {
  int64_t truth_story = -1;
  /// Snippets carrying this truth label.
  size_t num_snippets = 0;
  /// Distinct predicted clusters covering those snippets.
  size_t num_clusters = 0;
  /// Fraction of the snippets inside the largest covering cluster
  /// (1.0 = not fragmented).
  double max_cluster_share = 0.0;
  /// Fraction of the largest covering cluster that belongs to *other*
  /// truth stories (0.0 = pure).
  double contamination = 0.0;
  /// The truth story it is most contaminated with, or -1.
  int64_t dominant_confusion = -1;
};

/// Aggregate fragmentation/contamination report over an alignment.
struct DiagnosticReport {
  std::vector<StoryDiagnostic> stories;  // Sorted by truth story id.
  /// Predicted clusters containing exactly one truth label.
  size_t pure_clusters = 0;
  /// Predicted clusters mixing several truth labels.
  size_t mixed_clusters = 0;

  /// Stories that were split over more than `threshold` clusters.
  size_t NumFragmented(size_t threshold = 1) const;
  /// Stories whose main cluster is more than `threshold` foreign.
  size_t NumContaminated(double threshold = 0.1) const;

  /// Renders an aligned text table of the worst offenders.
  std::string ToString(size_t max_rows = 20) const;
};

/// Diagnoses the engine's current alignment against the ground-truth
/// labels carried by its snippets (Snippet::truth_story >= 0). The engine
/// must hold a fresh alignment. Snippets without truth labels are
/// ignored.
DiagnosticReport DiagnoseAlignment(const StoryPivotEngine& engine);

}  // namespace storypivot::eval

#endif  // STORYPIVOT_EVAL_DIAGNOSTICS_H_
