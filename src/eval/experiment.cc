#include "eval/experiment.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace storypivot::eval {

QualityScores ScoreEngine(const StoryPivotEngine& engine) {
  QualityScores out;

  // --- Story identification: within-source pair counts, micro-averaged.
  PairCounts si_counts;
  double bcubed_p_weighted = 0.0, bcubed_r_weighted = 0.0;
  size_t bcubed_n = 0;
  // Evaluation scores every story by construction.  // splint: allow(full-scan)
  for (const StorySet* partition : engine.partitions()) {  // splint: allow(full-scan)
    std::vector<int64_t> truth, predicted;
    partition->snippet_times().ForEach([&](Timestamp, SnippetId sid) {
      const Snippet* snippet = engine.store().Find(sid);
      SP_CHECK(snippet != nullptr);
      if (snippet->truth_story < 0) return;
      truth.push_back(snippet->truth_story);
      predicted.push_back(static_cast<int64_t>(partition->StoryOf(sid)));
    });
    if (truth.empty()) continue;
    si_counts += CountPairs(truth, predicted);
    PrfScores b = BCubed(truth, predicted);
    bcubed_p_weighted += b.precision * static_cast<double>(truth.size());
    bcubed_r_weighted += b.recall * static_cast<double>(truth.size());
    bcubed_n += truth.size();
  }
  out.si_pairwise = si_counts.ToScores();
  if (bcubed_n > 0) {
    out.si_bcubed.precision = bcubed_p_weighted / bcubed_n;
    out.si_bcubed.recall = bcubed_r_weighted / bcubed_n;
    double p = out.si_bcubed.precision, r = out.si_bcubed.recall;
    out.si_bcubed.f1 = (p + r) > 0 ? 2 * p * r / (p + r) : 0.0;
  }

  // --- Story alignment: global labels from integrated stories.
  if (engine.has_alignment()) {
    const AlignmentResult& alignment = engine.alignment();
    std::vector<int64_t> truth, predicted;
    engine.store().ForEach([&](const Snippet& snippet) {
      if (snippet.truth_story < 0) return;
      auto it = alignment.integrated_of.find(snippet.id);
      if (it == alignment.integrated_of.end()) return;
      truth.push_back(snippet.truth_story);
      predicted.push_back(static_cast<int64_t>(it->second));
    });
    if (!truth.empty()) {
      out.sa_pairwise = PairwiseF(truth, predicted);
      out.sa_bcubed = BCubed(truth, predicted);
      out.sa_nmi = NormalizedMutualInformation(truth, predicted);
      out.sa_ari = AdjustedRandIndex(truth, predicted);
    }
  }
  return out;
}

ExperimentRow RunExperiment(const ExperimentConfig& config) {
  datagen::CorpusGenerator generator(config.corpus);
  datagen::Corpus corpus = generator.Generate();

  StoryPivotEngine engine(config.engine);
  SP_CHECK(engine
               .ImportVocabularies(*corpus.entity_vocabulary,
                                   *corpus.keyword_vocabulary)
               .ok());
  for (const SourceInfo& source : corpus.sources) {
    SourceId id = engine.RegisterSource(source.name);
    SP_CHECK(id == source.id);
  }

  ExperimentRow row;
  row.label = config.label;
  row.num_sources = corpus.sources.size();
  row.truth_stories = corpus.num_truth_stories();

  // Ingest in arrival order (the streaming order).
  for (Snippet& snippet : corpus.snippets) {
    Snippet copy = snippet;
    copy.id = kInvalidSnippetId;  // Engine assigns ids.
    Result<SnippetId> added = engine.AddSnippet(std::move(copy));
    SP_CHECK(added.ok());
  }
  row.num_events = corpus.snippets.size();
  row.ingest_time_ms = engine.stats().identify_time_ms;
  row.per_event_ms =
      row.num_events == 0 ? 0.0 : row.ingest_time_ms / row.num_events;

  if (config.run_alignment) {
    engine.Align();
    row.align_time_ms = engine.stats().align_time_ms;
  }
  if (config.run_refinement) {
    engine.Refine();
    row.refine_time_ms = engine.stats().refine_time_ms;
  }
  row.comparisons = engine.similarity().num_comparisons();

  QualityScores scores = ScoreEngine(engine);
  row.si_pairwise = scores.si_pairwise;
  row.si_bcubed = scores.si_bcubed;
  row.sa_pairwise = scores.sa_pairwise;
  row.sa_bcubed = scores.sa_bcubed;
  row.sa_nmi = scores.sa_nmi;
  row.sa_ari = scores.sa_ari;

  row.stories_per_source_total = engine.TotalStories();
  if (engine.has_alignment()) {
    row.integrated_stories = engine.alignment().stories.size();
  }
  return row;
}

std::string FormatRows(const std::vector<ExperimentRow>& rows) {
  std::string out;
  out += StrFormat(
      "%-26s %8s %9s %10s %9s %9s %7s %7s %7s %7s %7s %7s\n", "label",
      "events", "ingest_ms", "ms/event", "align_ms", "cmp(M)", "SI-F1",
      "SI-B3", "SA-F1", "SA-B3", "NMI", "stories");
  for (const ExperimentRow& row : rows) {
    out += StrFormat(
        "%-26s %8zu %9.1f %10.4f %9.1f %9.2f %7.3f %7.3f %7.3f %7.3f %7.3f "
        "%7zu\n",
        row.label.c_str(), row.num_events, row.ingest_time_ms,
        row.per_event_ms, row.align_time_ms,
        static_cast<double>(row.comparisons) / 1e6, row.si_pairwise.f1,
        row.si_bcubed.f1, row.sa_pairwise.f1, row.sa_bcubed.f1, row.sa_nmi,
        row.stories_per_source_total);
  }
  return out;
}

}  // namespace storypivot::eval
