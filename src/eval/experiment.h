#ifndef STORYPIVOT_EVAL_EXPERIMENT_H_
#define STORYPIVOT_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "eval/metrics.h"

namespace storypivot::eval {

/// One complete experiment: a generated corpus run through an engine
/// configuration, measured for performance and quality — one data point of
/// the paper's statistics module (Fig. 7).
struct ExperimentConfig {
  datagen::CorpusConfig corpus;
  EngineConfig engine;
  bool run_alignment = true;
  bool run_refinement = true;
  /// Human-readable label for result tables, e.g. "temporal w=7d".
  std::string label;
};

/// Measured outcomes of one experiment run.
struct ExperimentRow {
  std::string label;
  size_t num_events = 0;  // Snippets ingested.
  size_t num_sources = 0;

  // Performance (Fig. 7 left panel).
  double ingest_time_ms = 0.0;    // Total story-identification time.
  double per_event_ms = 0.0;      // ingest_time_ms / num_events.
  double align_time_ms = 0.0;
  double refine_time_ms = 0.0;
  uint64_t comparisons = 0;       // Pairwise similarity evaluations.

  // Quality (Fig. 7 right panel).
  /// Story identification quality: pairwise F over within-source pairs,
  /// micro-averaged across sources.
  PrfScores si_pairwise;
  PrfScores si_bcubed;
  /// Story alignment quality: global pairwise F over all snippets using
  /// integrated story labels.
  PrfScores sa_pairwise;
  PrfScores sa_bcubed;
  double sa_nmi = 0.0;
  double sa_ari = 0.0;

  // Structure.
  size_t stories_per_source_total = 0;
  size_t integrated_stories = 0;
  size_t truth_stories = 0;
};

/// Runs one experiment end to end: generate -> ingest (timed) -> align ->
/// refine -> score. Deterministic given the config.
[[nodiscard]] ExperimentRow RunExperiment(const ExperimentConfig& config);

/// Scores the engine's current state against ground truth labels carried
/// by the snippets (Snippet::truth_story >= 0 required). Usable on
/// externally-driven engines too (e.g. streaming benches).
struct QualityScores {
  PrfScores si_pairwise;
  PrfScores si_bcubed;
  PrfScores sa_pairwise;
  PrfScores sa_bcubed;
  double sa_nmi = 0.0;
  double sa_ari = 0.0;
};
[[nodiscard]] QualityScores ScoreEngine(const StoryPivotEngine& engine);

/// Renders rows as an aligned text table (the statistics module's tabular
/// view).
[[nodiscard]] std::string FormatRows(const std::vector<ExperimentRow>& rows);

}  // namespace storypivot::eval

#endif  // STORYPIVOT_EVAL_EXPERIMENT_H_
