#include "eval/metrics.h"

#include <cmath>
#include <map>
#include <unordered_map>
#include <utility>

#include "util/logging.h"

namespace storypivot::eval {
namespace {

uint64_t Choose2(uint64_t n) { return n < 2 ? 0 : n * (n - 1) / 2; }

struct Contingency {
  /// (truth label, predicted label) -> count.
  std::map<std::pair<int64_t, int64_t>, uint64_t> cells;
  std::unordered_map<int64_t, uint64_t> truth_sizes;
  std::unordered_map<int64_t, uint64_t> predicted_sizes;
  size_t n = 0;
};

Contingency BuildContingency(const std::vector<int64_t>& truth,
                             const std::vector<int64_t>& predicted) {
  SP_CHECK(truth.size() == predicted.size());
  Contingency c;
  c.n = truth.size();
  for (size_t i = 0; i < truth.size(); ++i) {
    ++c.cells[{truth[i], predicted[i]}];
    ++c.truth_sizes[truth[i]];
    ++c.predicted_sizes[predicted[i]];
  }
  return c;
}

double SafeDiv(double a, double b) { return b == 0.0 ? 0.0 : a / b; }

double F1(double p, double r) { return SafeDiv(2.0 * p * r, p + r); }

double Entropy(const std::unordered_map<int64_t, uint64_t>& sizes,
               size_t n) {
  if (n == 0) return 0.0;
  double h = 0.0;
  for (const auto& [label, count] : sizes) {
    double p = static_cast<double>(count) / static_cast<double>(n);
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

double MutualInformation(const Contingency& c) {
  if (c.n == 0) return 0.0;
  double n = static_cast<double>(c.n);
  double mi = 0.0;
  for (const auto& [cell, count] : c.cells) {
    double p_xy = static_cast<double>(count) / n;
    double p_x =
        static_cast<double>(c.truth_sizes.at(cell.first)) / n;
    double p_y =
        static_cast<double>(c.predicted_sizes.at(cell.second)) / n;
    if (p_xy > 0.0) mi += p_xy * std::log(p_xy / (p_x * p_y));
  }
  return mi;
}

}  // namespace

PairCounts& PairCounts::operator+=(const PairCounts& other) {
  true_positive += other.true_positive;
  false_positive += other.false_positive;
  false_negative += other.false_negative;
  return *this;
}

PrfScores PairCounts::ToScores() const {
  PrfScores out;
  out.precision = SafeDiv(static_cast<double>(true_positive),
                          static_cast<double>(true_positive + false_positive));
  out.recall = SafeDiv(static_cast<double>(true_positive),
                       static_cast<double>(true_positive + false_negative));
  out.f1 = F1(out.precision, out.recall);
  return out;
}

PairCounts CountPairs(const std::vector<int64_t>& truth,
                      const std::vector<int64_t>& predicted) {
  Contingency c = BuildContingency(truth, predicted);
  uint64_t together_both = 0;
  for (const auto& [cell, count] : c.cells) together_both += Choose2(count);
  uint64_t together_predicted = 0;
  for (const auto& [label, count] : c.predicted_sizes) {
    together_predicted += Choose2(count);
  }
  uint64_t together_truth = 0;
  for (const auto& [label, count] : c.truth_sizes) {
    together_truth += Choose2(count);
  }
  PairCounts out;
  out.true_positive = together_both;
  out.false_positive = together_predicted - together_both;
  out.false_negative = together_truth - together_both;
  return out;
}

PrfScores PairwiseF(const std::vector<int64_t>& truth,
                    const std::vector<int64_t>& predicted) {
  return CountPairs(truth, predicted).ToScores();
}

PrfScores BCubed(const std::vector<int64_t>& truth,
                 const std::vector<int64_t>& predicted) {
  Contingency c = BuildContingency(truth, predicted);
  if (c.n == 0) return {};
  // For element i in truth cluster T and predicted cluster P with overlap
  // o = |T cap P|: precision_i = o / |P|, recall_i = o / |T|. Summing per
  // cell: each cell of size o contributes o * (o/|P|) to the precision sum.
  double precision_sum = 0.0;
  double recall_sum = 0.0;
  for (const auto& [cell, count] : c.cells) {
    double o = static_cast<double>(count);
    precision_sum +=
        o * o / static_cast<double>(c.predicted_sizes.at(cell.second));
    recall_sum += o * o / static_cast<double>(c.truth_sizes.at(cell.first));
  }
  PrfScores out;
  out.precision = precision_sum / static_cast<double>(c.n);
  out.recall = recall_sum / static_cast<double>(c.n);
  out.f1 = F1(out.precision, out.recall);
  return out;
}

double NormalizedMutualInformation(const std::vector<int64_t>& truth,
                                   const std::vector<int64_t>& predicted) {
  Contingency c = BuildContingency(truth, predicted);
  double h_t = Entropy(c.truth_sizes, c.n);
  double h_p = Entropy(c.predicted_sizes, c.n);
  if (h_t == 0.0 && h_p == 0.0) return 1.0;  // Both single clusters.
  double mi = MutualInformation(c);
  return SafeDiv(2.0 * mi, h_t + h_p);
}

double AdjustedRandIndex(const std::vector<int64_t>& truth,
                         const std::vector<int64_t>& predicted) {
  Contingency c = BuildContingency(truth, predicted);
  if (c.n < 2) return 1.0;
  double sum_cells = 0.0;
  for (const auto& [cell, count] : c.cells) {
    sum_cells += static_cast<double>(Choose2(count));
  }
  double sum_truth = 0.0;
  for (const auto& [label, count] : c.truth_sizes) {
    sum_truth += static_cast<double>(Choose2(count));
  }
  double sum_pred = 0.0;
  for (const auto& [label, count] : c.predicted_sizes) {
    sum_pred += static_cast<double>(Choose2(count));
  }
  double total = static_cast<double>(Choose2(c.n));
  double expected = sum_truth * sum_pred / total;
  double max_index = 0.5 * (sum_truth + sum_pred);
  if (max_index == expected) return 1.0;
  return (sum_cells - expected) / (max_index - expected);
}

VMeasureScores VMeasure(const std::vector<int64_t>& truth,
                        const std::vector<int64_t>& predicted) {
  Contingency c = BuildContingency(truth, predicted);
  VMeasureScores out;
  double h_t = Entropy(c.truth_sizes, c.n);
  double h_p = Entropy(c.predicted_sizes, c.n);
  double mi = MutualInformation(c);
  // Conditional entropies via H(X|Y) = H(X) - I(X;Y).
  double h_t_given_p = h_t - mi;
  double h_p_given_t = h_p - mi;
  out.homogeneity = h_t == 0.0 ? 1.0 : 1.0 - h_t_given_p / h_t;
  out.completeness = h_p == 0.0 ? 1.0 : 1.0 - h_p_given_t / h_p;
  out.v_measure = F1(out.homogeneity, out.completeness);
  return out;
}

}  // namespace storypivot::eval
