#ifndef STORYPIVOT_EVAL_METRICS_H_
#define STORYPIVOT_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace storypivot::eval {

/// Precision / recall / F1 triple.
struct PrfScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Raw pair-counting statistics of a clustering vs the ground truth, so
/// that counts from several evaluation scopes (e.g. one per source) can be
/// micro-averaged before computing ratios.
struct PairCounts {
  /// Pairs clustered together in both prediction and truth.
  uint64_t true_positive = 0;
  /// Pairs together in the prediction but not in the truth.
  uint64_t false_positive = 0;
  /// Pairs together in the truth but not in the prediction.
  uint64_t false_negative = 0;

  PairCounts& operator+=(const PairCounts& other);
  PrfScores ToScores() const;
};

/// Counts co-clustered pairs. `truth` and `predicted` are parallel label
/// vectors (arbitrary label values; equal label = same cluster).
/// O(n) via the contingency table.
[[nodiscard]] PairCounts CountPairs(const std::vector<int64_t>& truth,
                      const std::vector<int64_t>& predicted);

/// Pairwise precision/recall/F1 — the F-measure of the paper's Fig. 7.
[[nodiscard]] PrfScores PairwiseF(const std::vector<int64_t>& truth,
                    const std::vector<int64_t>& predicted);

/// B-cubed precision/recall/F1 (Bagga & Baldwin) — element-weighted,
/// fairer on skewed story sizes.
[[nodiscard]] PrfScores BCubed(const std::vector<int64_t>& truth,
                 const std::vector<int64_t>& predicted);

/// Normalised mutual information in [0, 1] (arithmetic-mean normaliser).
[[nodiscard]] double NormalizedMutualInformation(const std::vector<int64_t>& truth,
                                   const std::vector<int64_t>& predicted);

/// Adjusted Rand index in [-1, 1] (1 = perfect, ~0 = random).
[[nodiscard]] double AdjustedRandIndex(const std::vector<int64_t>& truth,
                         const std::vector<int64_t>& predicted);

/// Homogeneity, completeness and their harmonic mean (V-measure).
struct VMeasureScores {
  double homogeneity = 0.0;
  double completeness = 0.0;
  double v_measure = 0.0;
};
VMeasureScores VMeasure(const std::vector<int64_t>& truth,
                        const std::vector<int64_t>& predicted);

}  // namespace storypivot::eval

#endif  // STORYPIVOT_EVAL_METRICS_H_
