#include "eval/diagnostics.h"

#include <algorithm>
#include <map>

#include "util/logging.h"
#include "util/strings.h"

namespace storypivot::eval {

size_t DiagnosticReport::NumFragmented(size_t threshold) const {
  size_t count = 0;
  for (const StoryDiagnostic& d : stories) {
    if (d.num_clusters > threshold) ++count;
  }
  return count;
}

size_t DiagnosticReport::NumContaminated(double threshold) const {
  size_t count = 0;
  for (const StoryDiagnostic& d : stories) {
    if (d.contamination > threshold) ++count;
  }
  return count;
}

std::string DiagnosticReport::ToString(size_t max_rows) const {
  std::string out;
  out += StrFormat("%8s %9s %9s %11s %13s %10s\n", "truth", "snippets",
                   "clusters", "main-share", "contamination", "mixed-with");
  // Worst first: fragmented and contaminated stories on top.
  std::vector<const StoryDiagnostic*> ordered;
  for (const StoryDiagnostic& d : stories) ordered.push_back(&d);
  std::sort(ordered.begin(), ordered.end(),
            [](const StoryDiagnostic* a, const StoryDiagnostic* b) {
              double badness_a = a->contamination +
                                 (1.0 - a->max_cluster_share);
              double badness_b = b->contamination +
                                 (1.0 - b->max_cluster_share);
              if (badness_a != badness_b) return badness_a > badness_b;
              return a->truth_story < b->truth_story;
            });
  size_t rows = std::min(max_rows, ordered.size());
  for (size_t i = 0; i < rows; ++i) {
    const StoryDiagnostic& d = *ordered[i];
    out += StrFormat("%8lld %9zu %9zu %10.0f%% %12.0f%% %10lld\n",
                     static_cast<long long>(d.truth_story), d.num_snippets,
                     d.num_clusters, 100.0 * d.max_cluster_share,
                     100.0 * d.contamination,
                     static_cast<long long>(d.dominant_confusion));
  }
  out += StrFormat(
      "clusters: %zu pure, %zu mixed; stories fragmented: %zu, "
      "contaminated(>10%%): %zu\n",
      pure_clusters, mixed_clusters, NumFragmented(), NumContaminated());
  return out;
}

DiagnosticReport DiagnoseAlignment(const StoryPivotEngine& engine) {
  SP_CHECK(engine.has_alignment());
  const AlignmentResult& alignment = engine.alignment();
  DiagnosticReport report;

  // truth -> (cluster -> count) and cluster -> (truth -> count).
  std::map<int64_t, std::map<size_t, size_t>> clusters_of_truth;
  std::map<size_t, std::map<int64_t, size_t>> truths_of_cluster;
  engine.store().ForEach([&](const Snippet& snippet) {
    if (snippet.truth_story < 0) return;
    auto it = alignment.integrated_of.find(snippet.id);
    if (it == alignment.integrated_of.end()) return;
    ++clusters_of_truth[snippet.truth_story][it->second];
    ++truths_of_cluster[it->second][snippet.truth_story];
  });

  for (const auto& [cluster, truths] : truths_of_cluster) {
    if (truths.size() == 1) {
      ++report.pure_clusters;
    } else {
      ++report.mixed_clusters;
    }
  }

  for (const auto& [truth, clusters] : clusters_of_truth) {
    StoryDiagnostic d;
    d.truth_story = truth;
    d.num_clusters = clusters.size();
    size_t main_cluster = 0;
    size_t main_count = 0;
    for (const auto& [cluster, count] : clusters) {
      d.num_snippets += count;
      if (count > main_count) {
        main_count = count;
        main_cluster = cluster;
      }
    }
    d.max_cluster_share =
        d.num_snippets == 0
            ? 0.0
            : static_cast<double>(main_count) /
                  static_cast<double>(d.num_snippets);
    // Contamination of the main cluster by other truth labels.
    const std::map<int64_t, size_t>& members =
        truths_of_cluster.at(main_cluster);
    size_t cluster_total = 0;
    size_t foreign = 0;
    int64_t dominant = -1;
    size_t dominant_count = 0;
    for (const auto& [other_truth, count] : members) {
      cluster_total += count;
      if (other_truth == truth) continue;
      foreign += count;
      if (count > dominant_count) {
        dominant_count = count;
        dominant = other_truth;
      }
    }
    d.contamination =
        cluster_total == 0
            ? 0.0
            : static_cast<double>(foreign) /
                  static_cast<double>(cluster_total);
    d.dominant_confusion = dominant;
    report.stories.push_back(d);
  }
  return report;
}

}  // namespace storypivot::eval
