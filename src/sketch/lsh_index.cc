#include "sketch/lsh_index.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"

namespace storypivot {

LshIndex::LshIndex(size_t bands, size_t rows_per_band)
    : bands_(bands), rows_per_band_(rows_per_band), buckets_(bands) {
  SP_CHECK(bands > 0);
  SP_CHECK(rows_per_band > 0);
}

std::vector<uint64_t> LshIndex::BandKeys(
    const MinHashSignature& signature) const {
  SP_CHECK(signature.num_hashes() >= bands_ * rows_per_band_);
  std::vector<uint64_t> keys(bands_);
  const std::vector<uint64_t>& slots = signature.slots();
  for (size_t b = 0; b < bands_; ++b) {
    uint64_t key = SplitMix64(b + 1);
    for (size_t r = 0; r < rows_per_band_; ++r) {
      key = HashCombine(key, slots[b * rows_per_band_ + r]);
    }
    keys[b] = key;
  }
  return keys;
}

void LshIndex::Insert(uint64_t id, const MinHashSignature& signature) {
  Remove(id);
  std::vector<uint64_t> keys = BandKeys(signature);
  for (size_t b = 0; b < bands_; ++b) {
    buckets_[b][keys[b]].push_back(id);
  }
  keys_by_id_.emplace(id, std::move(keys));
}

void LshIndex::Remove(uint64_t id) {
  auto it = keys_by_id_.find(id);
  if (it == keys_by_id_.end()) return;
  for (size_t b = 0; b < bands_; ++b) {
    auto bucket_it = buckets_[b].find(it->second[b]);
    if (bucket_it == buckets_[b].end()) continue;
    std::erase(bucket_it->second, id);
    if (bucket_it->second.empty()) buckets_[b].erase(bucket_it);
  }
  keys_by_id_.erase(it);
}

std::vector<uint64_t> LshIndex::Query(
    const MinHashSignature& signature) const {
  std::vector<uint64_t> keys = BandKeys(signature);
  std::vector<uint64_t> out;
  for (size_t b = 0; b < bands_; ++b) {
    auto bucket_it = buckets_[b].find(keys[b]);
    if (bucket_it == buckets_[b].end()) continue;
    out.insert(out.end(), bucket_it->second.begin(),
               bucket_it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace storypivot
