#ifndef STORYPIVOT_SKETCH_LSH_INDEX_H_
#define STORYPIVOT_SKETCH_LSH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sketch/minhash.h"

namespace storypivot {

/// Banded locality-sensitive hashing index over MinHash signatures.
/// Signatures with Jaccard similarity s collide in at least one band with
/// probability 1 - (1 - s^rows)^bands; the default 16 bands x 4 rows gives
/// a steep S-curve around s ~= 0.5^(1/4) ~= 0.5, matching the engine's
/// alignment thresholds. Used to find candidate stories across sources
/// without comparing all pairs (§2.3: "one of the main challenges here is
/// combining stories across data sources efficiently").
class LshIndex {
 public:
  /// `bands * rows_per_band` must not exceed the signature size used with
  /// this index.
  LshIndex(size_t bands = 16, size_t rows_per_band = 4);

  LshIndex(const LshIndex&) = delete;
  LshIndex& operator=(const LshIndex&) = delete;
  LshIndex(LshIndex&&) = default;
  LshIndex& operator=(LshIndex&&) = default;

  /// Inserts an item. Re-inserting an id (e.g. after its signature
  /// changed) first removes the old version.
  void Insert(uint64_t id, const MinHashSignature& signature);

  /// Removes an item; no-op if absent.
  void Remove(uint64_t id);

  /// Distinct ids sharing at least one band bucket with `signature`
  /// (possibly including ids whose true similarity is low — callers
  /// verify). The probe itself is included if it was inserted.
  std::vector<uint64_t> Query(const MinHashSignature& signature) const;

  size_t size() const { return keys_by_id_.size(); }
  size_t bands() const { return bands_; }
  size_t rows_per_band() const { return rows_per_band_; }

 private:
  std::vector<uint64_t> BandKeys(const MinHashSignature& signature) const;

  size_t bands_;
  size_t rows_per_band_;
  /// Per band: bucket key -> member ids.
  std::vector<std::unordered_map<uint64_t, std::vector<uint64_t>>> buckets_;
  /// id -> its band keys (for removal).
  std::unordered_map<uint64_t, std::vector<uint64_t>> keys_by_id_;
};

}  // namespace storypivot

#endif  // STORYPIVOT_SKETCH_LSH_INDEX_H_
