#include "sketch/minhash.h"

#include <limits>

#include "util/hash.h"
#include "util/logging.h"

namespace storypivot {
namespace {
constexpr uint64_t kEmptySlot = std::numeric_limits<uint64_t>::max();
}  // namespace

MinHashSignature::MinHashSignature(size_t num_hashes)
    : slots_(num_hashes, kEmptySlot) {
  SP_CHECK(num_hashes > 0);
}

uint64_t TagEntityTerm(text::TermId id) {
  return (uint64_t{1} << 40) | id;
}

uint64_t TagKeywordTerm(text::TermId id) {
  return (uint64_t{2} << 40) | id;
}

MinHashSignature MinHashSignature::FromContent(
    const text::TermVector& entities, const text::TermVector& keywords,
    size_t num_hashes) {
  MinHashSignature sig(num_hashes);
  for (const auto& [term, weight] : entities.entries()) {
    if (weight > 0.0) sig.AddElement(TagEntityTerm(term));
  }
  for (const auto& [term, weight] : keywords.entries()) {
    if (weight > 0.0) sig.AddElement(TagKeywordTerm(term));
  }
  return sig;
}

void MinHashSignature::AddElement(uint64_t element) {
  for (size_t i = 0; i < slots_.size(); ++i) {
    uint64_t h = HashWithSeed(element, i);
    if (h < slots_[i]) slots_[i] = h;
  }
}

void MinHashSignature::Merge(const MinHashSignature& other) {
  SP_CHECK(slots_.size() == other.slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (other.slots_[i] < slots_[i]) slots_[i] = other.slots_[i];
  }
}

double MinHashSignature::EstimateJaccard(
    const MinHashSignature& other) const {
  SP_CHECK(slots_.size() == other.slots_.size());
  if (IsEmpty() || other.IsEmpty()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] == other.slots_[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(slots_.size());
}

bool MinHashSignature::IsEmpty() const {
  for (uint64_t slot : slots_) {
    if (slot != kEmptySlot) return false;
  }
  return true;
}

}  // namespace storypivot
