#ifndef STORYPIVOT_SKETCH_MINHASH_H_
#define STORYPIVOT_SKETCH_MINHASH_H_

#include <cstdint>
#include <vector>

#include "text/term_vector.h"

namespace storypivot {

/// A MinHash signature: a fixed-size, unified, mergeable summary of a
/// snippet's or story's term sets — the "sketch" of §2.4 that makes
/// similarity comparisons between stories and snippets cheap. The expected
/// estimation error of Jaccard similarity is ~1/sqrt(k) for k hash
/// functions.
class MinHashSignature {
 public:
  /// Creates an empty signature (all slots at +infinity).
  explicit MinHashSignature(size_t num_hashes = 64);

  /// Creates the signature of the combined term sets. Entities and
  /// keywords live in separate vocabularies, so they are disambiguated by
  /// a domain tag before hashing.
  static MinHashSignature FromContent(const text::TermVector& entities,
                                      const text::TermVector& keywords,
                                      size_t num_hashes = 64);

  /// Folds one element (already domain-tagged) into the signature.
  void AddElement(uint64_t element);

  /// Merges another signature (set union) — element-wise minimum.
  /// Signatures must have equal size.
  void Merge(const MinHashSignature& other);

  /// Estimated Jaccard similarity of the underlying sets: fraction of
  /// agreeing slots.
  double EstimateJaccard(const MinHashSignature& other) const;

  /// True if no element was ever added.
  bool IsEmpty() const;

  size_t num_hashes() const { return slots_.size(); }
  const std::vector<uint64_t>& slots() const { return slots_; }

  bool operator==(const MinHashSignature& other) const {
    return slots_ == other.slots_;
  }

 private:
  std::vector<uint64_t> slots_;
};

/// Domain tags distinguishing entity terms from keyword terms inside one
/// signature.
uint64_t TagEntityTerm(text::TermId id);
uint64_t TagKeywordTerm(text::TermId id);

}  // namespace storypivot

#endif  // STORYPIVOT_SKETCH_MINHASH_H_
