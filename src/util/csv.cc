#include "util/csv.h"

#include "util/strings.h"

namespace storypivot {
namespace {

bool NeedsQuoting(std::string_view field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

void DsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) buffer_.push_back(delimiter_);
    const std::string& f = fields[i];
    if (NeedsQuoting(f, delimiter_)) {
      buffer_.push_back('"');
      for (char c : f) {
        if (c == '"') buffer_.push_back('"');
        buffer_.push_back(c);
      }
      buffer_.push_back('"');
    } else {
      buffer_.append(f);
    }
  }
  buffer_.push_back('\n');
}

Status DsvWriter::Flush(const std::string& path) const {
  return WriteStringToFile(path, buffer_);
}

namespace {

/// Shared parse loop. Strict mode fails the whole input on the first
/// malformed construct; permissive mode quarantines the offending row
/// into `out->skipped` and keeps going.
Status ParseDsv(std::string_view contents, char delimiter, bool permissive,
                PermissiveDsv* out) {
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_started = false;
  size_t line = 1;          // 1-based input line for error messages.
  size_t quote_line = 0;    // Line where the open quote started.
  size_t row_line = 1;      // Line where the current row started.
  size_t i = 0;
  while (i < contents.size()) {
    char c = contents[i];
    if (c == '\n') ++line;
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < contents.size() && contents[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      quote_line = line;
      if (!row_started) row_line = line;
      row_started = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      if (!row_started) row_line = line;
      row.push_back(std::move(field));
      field.clear();
      row_started = true;
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      if (row_started || !field.empty()) {
        row.push_back(std::move(field));
        field.clear();
        out->rows.push_back(std::move(row));
        out->row_lines.push_back(row_line);
        row.clear();
        row_started = false;
      }
      // Swallow \r\n pairs.
      if (c == '\r' && i + 1 < contents.size() && contents[i + 1] == '\n') {
        ++i;
      }
      ++i;
      continue;
    }
    if (!row_started) row_line = line;
    field.push_back(c);
    row_started = true;
    ++i;
  }
  if (in_quotes) {
    if (!permissive) {
      return Status::InvalidArgument(StrFormat(
          "line %zu: unterminated quoted field", quote_line));
    }
    // The unterminated quote swallowed everything to end-of-input;
    // quarantine the row it started in and drop the partial fields.
    out->skipped.push_back(DsvSkipped{
        quote_line, StrFormat("unterminated quoted field (row dropped, "
                              "quote opened on line %zu)",
                              quote_line)});
    return Status::OK();
  }
  if (row_started || !field.empty()) {
    row.push_back(std::move(field));
    out->rows.push_back(std::move(row));
    out->row_lines.push_back(row_line);
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<std::string>>> DsvReader::Parse(
    std::string_view contents) const {
  PermissiveDsv out;
  RETURN_IF_ERROR(ParseDsv(contents, delimiter_, /*permissive=*/false, &out));
  return std::move(out.rows);
}

PermissiveDsv DsvReader::ParsePermissive(std::string_view contents) const {
  PermissiveDsv out;
  // Permissive parsing cannot fail: every malformed construct lands in
  // `skipped` instead.
  SP_CHECK_OK(ParseDsv(contents, delimiter_, /*permissive=*/true, &out));
  return out;
}

Result<std::vector<std::vector<std::string>>> DsvReader::ReadFile(
    const std::string& path) const {
  ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  Result<std::vector<std::vector<std::string>>> rows = Parse(contents);
  if (!rows.ok()) {
    // Re-wrap with the path so the error locates both file and line.
    return Status(rows.status().code(),
                  path + ": " + rows.status().message());
  }
  return rows;
}

}  // namespace storypivot
