#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace storypivot {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

namespace {
template <typename Parts>
std::string JoinImpl(const Parts& parts, std::string_view sep) {
  std::string out;
  size_t total = 0;
  for (const auto& p : parts) total += p.size() + sep.size();
  out.reserve(total);
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty() || text.size() > 31) return false;
  char buf[32];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  long long value = std::strtoll(buf, &end, 10);
  if (errno == ERANGE || end != buf + text.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty() || text.size() > 63) return false;
  char buf[64];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(buf, &end);
  if (errno == ERANGE || end != buf + text.size()) return false;
  *out = value;
  return true;
}

}  // namespace storypivot
