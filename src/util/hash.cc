#include "util/hash.h"

namespace storypivot {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

uint64_t HashWithSeed(uint64_t x, uint64_t seed) {
  return SplitMix64(x ^ SplitMix64(seed * 0xff51afd7ed558ccdULL + 1));
}

}  // namespace storypivot
