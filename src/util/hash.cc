#include "util/hash.h"

namespace storypivot {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

uint64_t HashWithSeed(uint64_t x, uint64_t seed) {
  return SplitMix64(x ^ SplitMix64(seed * 0xff51afd7ed558ccdULL + 1));
}

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

const Crc32Table& TheCrc32Table() {
  static const Crc32Table& table = *new Crc32Table();
  return table;
}

}  // namespace

uint32_t ExtendCrc32(uint32_t crc, std::string_view data) {
  const Crc32Table& table = TheCrc32Table();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table.entries[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::string_view data) { return ExtendCrc32(0, data); }

}  // namespace storypivot
