#ifndef STORYPIVOT_UTIL_CSV_H_
#define STORYPIVOT_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/fs.h"  // IWYU pragma: export — historical home of file IO.
#include "util/status.h"

namespace storypivot {

/// Writes rows of fields as delimiter-separated lines. Fields containing
/// the delimiter, a quote, or a newline are quoted and inner quotes doubled
/// (RFC-4180 style, generalised to any single-char delimiter).
class DsvWriter {
 public:
  explicit DsvWriter(char delimiter = '\t') : delimiter_(delimiter) {}

  /// Appends one row to the in-memory buffer.
  void WriteRow(const std::vector<std::string>& fields);

  /// The accumulated file contents.
  const std::string& contents() const { return buffer_; }

  /// Writes the buffer to `path`, replacing any existing file.
  [[nodiscard]] Status Flush(const std::string& path) const;

 private:
  char delimiter_;
  std::string buffer_;
};

/// One input row skipped by permissive parsing, with the 1-based line
/// where the row started and why it was dropped.
struct DsvSkipped {
  size_t line = 0;
  std::string reason;
};

/// Result of `DsvReader::ParsePermissive`: the rows that parsed, the
/// 1-based start line of each (for downstream per-line diagnostics),
/// and the quarantined rows.
struct PermissiveDsv {
  std::vector<std::vector<std::string>> rows;
  std::vector<size_t> row_lines;
  std::vector<DsvSkipped> skipped;
};

/// Parses delimiter-separated content produced by DsvWriter (or plain
/// TSV/CSV without quotes).
class DsvReader {
 public:
  explicit DsvReader(char delimiter = '\t') : delimiter_(delimiter) {}

  /// Parses the full `contents` into rows of fields. Errors carry the
  /// 1-based line number of the offending input.
  [[nodiscard]] Result<std::vector<std::vector<std::string>>> Parse(
      std::string_view contents) const;

  /// PERMISSIVE parse: instead of failing the whole input on a
  /// malformed row, the row is quarantined — skipped, counted and
  /// reported with its line number — and parsing continues. Feeds the
  /// ingest quarantine path (DESIGN.md §12); pair with `--strict` in
  /// the CLI for the fail-fast behaviour of `Parse`.
  [[nodiscard]] PermissiveDsv ParsePermissive(
      std::string_view contents) const;

  /// Reads and parses the file at `path`. Errors are prefixed with the
  /// path so they survive propagation up the stack.
  [[nodiscard]] Result<std::vector<std::vector<std::string>>> ReadFile(
      const std::string& path) const;

 private:
  char delimiter_;
};

// ReadFileToString / WriteStringToFile moved to util/fs.h (re-exported by
// the include above); WriteStringToFile is now atomic.

}  // namespace storypivot

#endif  // STORYPIVOT_UTIL_CSV_H_
