#ifndef STORYPIVOT_UTIL_CSV_H_
#define STORYPIVOT_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/fs.h"  // IWYU pragma: export — historical home of file IO.
#include "util/status.h"

namespace storypivot {

/// Writes rows of fields as delimiter-separated lines. Fields containing
/// the delimiter, a quote, or a newline are quoted and inner quotes doubled
/// (RFC-4180 style, generalised to any single-char delimiter).
class DsvWriter {
 public:
  explicit DsvWriter(char delimiter = '\t') : delimiter_(delimiter) {}

  /// Appends one row to the in-memory buffer.
  void WriteRow(const std::vector<std::string>& fields);

  /// The accumulated file contents.
  const std::string& contents() const { return buffer_; }

  /// Writes the buffer to `path`, replacing any existing file.
  [[nodiscard]] Status Flush(const std::string& path) const;

 private:
  char delimiter_;
  std::string buffer_;
};

/// Parses delimiter-separated content produced by DsvWriter (or plain
/// TSV/CSV without quotes).
class DsvReader {
 public:
  explicit DsvReader(char delimiter = '\t') : delimiter_(delimiter) {}

  /// Parses the full `contents` into rows of fields. Errors carry the
  /// 1-based line number of the offending input.
  [[nodiscard]] Result<std::vector<std::vector<std::string>>> Parse(
      std::string_view contents) const;

  /// Reads and parses the file at `path`. Errors are prefixed with the
  /// path so they survive propagation up the stack.
  [[nodiscard]] Result<std::vector<std::vector<std::string>>> ReadFile(
      const std::string& path) const;

 private:
  char delimiter_;
};

// ReadFileToString / WriteStringToFile moved to util/fs.h (re-exported by
// the include above); WriteStringToFile is now atomic.

}  // namespace storypivot

#endif  // STORYPIVOT_UTIL_CSV_H_
