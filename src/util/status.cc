#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace storypivot {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDegraded:
      return "Degraded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace internal_status {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result<T>::value() on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

void DieStatusNotOk(const Status& status, const char* file, int line) {
  std::fprintf(stderr, "%s:%d: SP_CHECK_OK failed: %s\n", file, line,
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace storypivot
