#include "util/failpoint.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/sync.h"

namespace storypivot::failpoint {
namespace {

/// Every injected error message starts with this, so `IsInjected` can
/// tell injected faults from real environmental failures.
constexpr const char kInjectedPrefix[] = "injected fault at ";

struct ArmedSite {
  Trigger trigger;
  Pcg32 rng;
  SiteStats stats;
  bool armed = false;
  bool exhausted = false;  // A fired one-shot never fires again.
};

/// Registry state lives behind the singleton, not in the header: the
/// header stays cheap to include and the atomic fast path is the only
/// thing callers ever touch when nothing is armed.
struct RegistryState {
  /// A LEAF of the lock hierarchy: no other lock is ever acquired while
  /// holding it (armed-site bookkeeping only — never calls out), so
  /// SP_FAILPOINT sites stay safe to drop into any locked region.
  // lockcheck: name=failpoint.Registry.mu
  Mutex mu;
  std::unordered_map<std::string, ArmedSite> sites SP_GUARDED_BY(mu);
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();
  return *state;
}

Status InjectedError(std::string_view site, const Trigger& trigger) {
  std::string msg(kInjectedPrefix);
  msg += site;
  if (!trigger.note.empty()) {
    msg += " (";
    msg += trigger.note;
    msg += ")";
  }
  if (trigger.transient) {
    msg += " ";
    msg += kTransientMarker;
  }
  return Status::IoError(std::move(msg));
}

}  // namespace

Trigger OneShot(uint64_t on_evaluation, bool transient) {
  Trigger trigger;
  trigger.kind = Trigger::Kind::kOneShot;
  trigger.n = std::max<uint64_t>(on_evaluation, 1);
  trigger.transient = transient;
  return trigger;
}

Trigger EveryNth(uint64_t n, bool transient) {
  Trigger trigger;
  trigger.kind = Trigger::Kind::kEveryNth;
  trigger.n = std::max<uint64_t>(n, 1);
  trigger.transient = transient;
  return trigger;
}

Trigger Probability(double p, uint64_t seed, bool transient) {
  Trigger trigger;
  trigger.kind = Trigger::Kind::kProbability;
  trigger.probability = p;
  trigger.seed = seed;
  trigger.transient = transient;
  return trigger;
}

Registry& Registry::Instance() {
  static Registry* instance = new Registry();
  return *instance;
}

void Registry::Arm(std::string_view site, Trigger trigger) {
  trigger.n = std::max<uint64_t>(trigger.n, 1);
  RegistryState& state = State();
  MutexLock lock(state.mu);
  ArmedSite& armed = state.sites[std::string(site)];
  if (!armed.armed) armed_sites_.fetch_add(1, std::memory_order_relaxed);
  // The site name is the RNG stream, so several sites armed with the
  // same schedule seed still draw independent sequences.
  armed.rng = Pcg32(trigger.seed, Crc32(site));
  armed.trigger = std::move(trigger);
  armed.stats = SiteStats{};
  armed.armed = true;
  armed.exhausted = false;
}

void Registry::Disarm(std::string_view site) {
  RegistryState& state = State();
  MutexLock lock(state.mu);
  auto it = state.sites.find(std::string(site));
  if (it == state.sites.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_sites_.fetch_sub(1, std::memory_order_relaxed);
}

void Registry::DisarmAll() {
  RegistryState& state = State();
  MutexLock lock(state.mu);
  for (auto& [name, site] : state.sites) {
    if (site.armed) armed_sites_.fetch_sub(1, std::memory_order_relaxed);
    site.armed = false;
  }
  state.sites.clear();
}

Status Registry::EvaluateSlow(std::string_view site) {
  RegistryState& state = State();
  MutexLock lock(state.mu);
  auto it = state.sites.find(std::string(site));
  if (it == state.sites.end() || !it->second.armed) return Status::OK();
  ArmedSite& armed = it->second;
  ++armed.stats.evaluations;
  bool fire = false;
  switch (armed.trigger.kind) {
    case Trigger::Kind::kProbability:
      fire = armed.rng.NextBernoulli(armed.trigger.probability);
      break;
    case Trigger::Kind::kEveryNth:
      fire = armed.stats.evaluations % armed.trigger.n == 0;
      break;
    case Trigger::Kind::kOneShot:
      fire = !armed.exhausted && armed.stats.evaluations == armed.trigger.n;
      if (fire) armed.exhausted = true;
      break;
  }
  if (!fire) return Status::OK();
  ++armed.stats.fires;
  return InjectedError(site, armed.trigger);
}

bool Registry::Fired(std::string_view site, Status* error) {
  Status status = Evaluate(site);
  if (status.ok()) return false;
  *error = std::move(status);
  return true;
}

SiteStats Registry::Stats(std::string_view site) const {
  RegistryState& state = State();
  MutexLock lock(state.mu);
  auto it = state.sites.find(std::string(site));
  if (it == state.sites.end()) return SiteStats{};
  return it->second.stats;
}

std::vector<std::string> Registry::ArmedSites() const {
  RegistryState& state = State();
  MutexLock lock(state.mu);
  std::vector<std::string> names;
  for (const auto& [name, site] : state.sites) {
    if (site.armed) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool IsInjected(const Status& status) {
  if (status.ok()) return false;
  return status.message().find(kInjectedPrefix) != std::string::npos;
}

}  // namespace storypivot::failpoint
