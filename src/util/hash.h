#ifndef STORYPIVOT_UTIL_HASH_H_
#define STORYPIVOT_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace storypivot {

/// 64-bit FNV-1a hash of a byte string. Stable across platforms and runs;
/// used for vocabulary interning and sketch seeding.
uint64_t Fnv1a64(std::string_view data);

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function.
/// Useful for deriving independent hash functions from an index.
uint64_t SplitMix64(uint64_t x);

/// Combines two 64-bit hashes (boost::hash_combine style, 64-bit constants).
uint64_t HashCombine(uint64_t a, uint64_t b);

/// Hashes a 64-bit integer with the i-th derived hash function. All
/// `HashWithSeed(x, i)` for distinct `i` behave as independent hashes,
/// which MinHash sketches rely on.
uint64_t HashWithSeed(uint64_t x, uint64_t seed);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/gzip variant) of a
/// byte string. Used to frame write-ahead-log records: unlike the hashes
/// above it is a standard, externally-checkable checksum, so logs can be
/// validated by other tooling.
uint32_t Crc32(std::string_view data);

/// Extends a running CRC-32 with more bytes. `Crc32(ab)` ==
/// `ExtendCrc32(Crc32(a), b)`.
uint32_t ExtendCrc32(uint32_t crc, std::string_view data);

}  // namespace storypivot

#endif  // STORYPIVOT_UTIL_HASH_H_
