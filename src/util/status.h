#ifndef STORYPIVOT_UTIL_STATUS_H_
#define STORYPIVOT_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace storypivot {

/// Error categories used across the StoryPivot libraries. The project is
/// built without exceptions; fallible operations return a `Status` or a
/// `Result<T>` instead (RocksDB-style error handling).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  /// The component survives but is read-only: a permanent IO fault put
  /// it into degraded mode, mutations are rejected until recovery (see
  /// DurableEngine::Reopen, DESIGN.md §12).
  kDegraded,
  /// Load shedding: the serving tier rejected the request at admission
  /// (queue full). Retrying later can succeed — the caller should back
  /// off, not escalate (DESIGN.md §14).
  kUnavailable,
  /// The request's deadline expired before a worker could execute it.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. `Status` is cheap to copy in the
/// success case (no allocation) and carries a message otherwise.
///
/// The class is `[[nodiscard]]`: with exceptions disabled, an ignored
/// `Status` return is a silently swallowed error, so discarding one is a
/// compile error under `-Werror=unused-result`. Use `RETURN_IF_ERROR` to
/// propagate, or `IgnoreError()` when failure is genuinely acceptable.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Degraded(std::string msg) {
    return Status(StatusCode::kDegraded, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`. Accessing the
/// value of an errored result aborts the process (there are no exceptions),
/// so callers must check `ok()` first. Like `Status`, the type is
/// `[[nodiscard]]`; use `ASSIGN_OR_RETURN` to unwrap-or-propagate.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value, so functions can `return value;`.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    AbortIfError();
    return value_;
  }
  [[nodiscard]] T& value() & {
    AbortIfError();
    return value_;
  }
  [[nodiscard]] T&& value() && {
    AbortIfError();
    return std::move(value_);
  }

 private:
  void AbortIfError() const;

  Status status_;
  T value_{};
};

namespace internal_status {
[[noreturn]] void DieBadResultAccess(const Status& status);
[[noreturn]] void DieStatusNotOk(const Status& status, const char* file,
                                 int line);

inline const Status& ToStatus(const Status& status) { return status; }
template <typename T>
const Status& ToStatus(const Result<T>& result) {
  return result.status();
}
}  // namespace internal_status

template <typename T>
void Result<T>::AbortIfError() const {
  if (!status_.ok()) internal_status::DieBadResultAccess(status_);
}

/// Explicitly discards a `Status` or `Result<T>` whose failure is
/// acceptable. Prefer this over a bare `(void)` cast: it is greppable and
/// states intent.
template <typename T>
void IgnoreError(T&&) {}

}  // namespace storypivot

// --- Error-propagation macros ----------------------------------------------
//
// The project compiles with -fno-exceptions, so every fallible call must
// thread a Status/Result back to its caller by hand. These macros make the
// happy path read linearly:
//
//   Status Load(const std::string& path) {
//     ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
//     RETURN_IF_ERROR(ParseInto(contents, &state_));
//     return Status::OK();
//   }
//
// Both macros work inside any function whose return type is `Status` or a
// `Result<T>` (which converts implicitly from `Status`).

#define SP_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define SP_STATUS_MACROS_CONCAT_(x, y) SP_STATUS_MACROS_CONCAT_INNER_(x, y)

/// Evaluates `expr` (a `Status` or `Result<T>` expression) and returns its
/// error status from the current function if it is not OK. A `Result`'s
/// value is discarded on the success path.
#define RETURN_IF_ERROR(expr)                                         \
  do {                                                                \
    ::storypivot::Status sp_status_tmp_ =                             \
        ::storypivot::internal_status::ToStatus((expr));              \
    if (!sp_status_tmp_.ok()) return sp_status_tmp_;                  \
  } while (false)

/// Evaluates `rexpr` (a `Result<T>` expression); on success moves the value
/// into `lhs` (which may be a declaration such as `auto v` or an existing
/// lvalue), otherwise returns the error status from the current function.
#define ASSIGN_OR_RETURN(lhs, rexpr)                                     \
  SP_ASSIGN_OR_RETURN_IMPL_(                                             \
      SP_STATUS_MACROS_CONCAT_(sp_result_tmp_, __LINE__), lhs, rexpr)

#define SP_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

/// Aborts the process with the status message when `expr` (a `Status` or
/// `Result<T>` expression) is not OK. For call sites where failure means a
/// programming error, e.g. inserting into a store that was just checked.
#define SP_CHECK_OK(expr)                                                \
  do {                                                                   \
    const auto& sp_check_ok_tmp_ = (expr);                               \
    if (!::storypivot::internal_status::ToStatus(sp_check_ok_tmp_)       \
             .ok()) {                                                    \
      ::storypivot::internal_status::DieStatusNotOk(                     \
          ::storypivot::internal_status::ToStatus(sp_check_ok_tmp_),     \
          __FILE__, __LINE__);                                           \
    }                                                                    \
  } while (false)

#endif  // STORYPIVOT_UTIL_STATUS_H_
