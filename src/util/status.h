#ifndef STORYPIVOT_UTIL_STATUS_H_
#define STORYPIVOT_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace storypivot {

/// Error categories used across the StoryPivot libraries. The project is
/// built without exceptions; fallible operations return a `Status` or a
/// `Result<T>` instead (RocksDB-style error handling).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. `Status` is cheap to copy in the
/// success case (no allocation) and carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`. Accessing the
/// value of an errored result aborts the process (there are no exceptions),
/// so callers must check `ok()` first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value, so functions can `return value;`.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return value_;
  }
  T& value() & {
    AbortIfError();
    return value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(value_);
  }

 private:
  void AbortIfError() const;

  Status status_;
  T value_{};
};

namespace internal_status {
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void Result<T>::AbortIfError() const {
  if (!status_.ok()) internal_status::DieBadResultAccess(status_);
}

}  // namespace storypivot

#endif  // STORYPIVOT_UTIL_STATUS_H_
