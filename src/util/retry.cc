#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/failpoint.h"
#include "util/strings.h"

namespace storypivot {

bool IsTransient(const Status& status) {
  if (status.ok()) return false;
  if (status.code() != StatusCode::kIoError) return false;
  return status.message().find(failpoint::kTransientMarker) !=
         std::string::npos;
}

RetryPolicy::RetryPolicy(RetryOptions options) : options_(options) {
  options_.max_attempts = std::max(options_.max_attempts, 1);
  if (options_.backoff_multiplier < 1.0) options_.backoff_multiplier = 1.0;
}

void RetryPolicy::set_sleep_fn(SleepFn fn) { sleep_ = std::move(fn); }

Status RetryPolicy::Run(const char* what, const std::function<Status()>& op,
                        const std::function<Status()>& before_retry) {
  ++stats_.runs;
  uint64_t backoff_us = options_.initial_backoff_us;
  Status status;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (attempt > 1) {
      stats_.backoff_us += backoff_us;
      if (sleep_) {
        sleep_(backoff_us);
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      }
      backoff_us = std::min<uint64_t>(
          static_cast<uint64_t>(static_cast<double>(backoff_us) *
                                options_.backoff_multiplier),
          options_.max_backoff_us);
      if (before_retry) {
        Status restored = before_retry();
        if (!restored.ok()) {
          return Status(restored.code(),
                        StrFormat("%s: retry aborted, could not restore "
                                  "state before attempt %d: ",
                                  what, attempt) +
                            restored.message());
        }
      }
      ++stats_.retries;
    }
    ++stats_.attempts;
    status = op();
    if (status.ok()) return status;
    if (!IsTransient(status)) return status;
  }
  ++stats_.exhausted;
  return Status(status.code(),
                StrFormat("%s: still failing after %d attempts: ", what,
                          options_.max_attempts) +
                    status.message());
}

}  // namespace storypivot
