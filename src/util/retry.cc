#include "util/retry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "util/failpoint.h"
#include "util/strings.h"

namespace storypivot {

bool IsTransient(const Status& status) {
  if (status.ok()) return false;
  if (status.code() != StatusCode::kIoError) return false;
  return status.message().find(failpoint::kTransientMarker) !=
         std::string::npos;
}

namespace {
/// Per-policy seed when the caller passed jitter_seed == 0. Policies
/// must NOT share a jitter schedule — synchronized schedules are the
/// exact storm the jitter exists to break up — so each auto-seeded
/// policy draws a distinct stream.
uint64_t NextAutoSeed() {
  static std::atomic<uint64_t> counter{0x9e3779b97f4a7c15ULL};
  return counter.fetch_add(0x9e3779b97f4a7c15ULL,
                           std::memory_order_relaxed);
}
}  // namespace

RetryPolicy::RetryPolicy(RetryOptions options)
    : options_(options),
      jitter_rng_(options.jitter_seed != 0 ? options.jitter_seed
                                           : NextAutoSeed()) {
  options_.max_attempts = std::max(options_.max_attempts, 1);
  if (options_.backoff_multiplier < 1.0) options_.backoff_multiplier = 1.0;
  if (options_.initial_backoff_us == 0) options_.initial_backoff_us = 1;
  options_.max_backoff_us =
      std::max(options_.max_backoff_us, options_.initial_backoff_us);
}

void RetryPolicy::set_sleep_fn(SleepFn fn) { sleep_ = std::move(fn); }

uint64_t RetryPolicy::NextBackoff(uint64_t prev) {
  if (!options_.jitter) {
    if (prev == 0) return options_.initial_backoff_us;
    return std::min<uint64_t>(
        static_cast<uint64_t>(static_cast<double>(prev) *
                              options_.backoff_multiplier),
        options_.max_backoff_us);
  }
  // Decorrelated jitter: uniform in [initial, 3 * previous], capped.
  // The lower bound keeps a floor under the wait; the 3x upper bound
  // grows the *spread* (not just the mean) each round, so colliding
  // retriers separate quickly.
  const uint64_t lo = options_.initial_backoff_us;
  const uint64_t hi =
      std::min<uint64_t>(std::max<uint64_t>(3 * std::max(prev, lo), lo),
                         options_.max_backoff_us);
  return static_cast<uint64_t>(jitter_rng_.NextInRange(
      static_cast<int64_t>(lo), static_cast<int64_t>(hi)));
}

Status RetryPolicy::Run(const char* what, const std::function<Status()>& op,
                        const std::function<Status()>& before_retry) {
  ++stats_.runs;
  uint64_t backoff_us = 0;  // Last slept backoff; 0 before first retry.
  Status status;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (attempt > 1) {
      backoff_us = NextBackoff(backoff_us);
      stats_.backoff_us += backoff_us;
      if (sleep_) {
        sleep_(backoff_us);
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      }
      // Count the retry once its backoff is slept — even when
      // before_retry then aborts the run, the wait happened, and
      // stats_.backoff_us must stay the sum over stats_.retries.
      ++stats_.retries;
      if (before_retry) {
        Status restored = before_retry();
        if (!restored.ok()) {
          return Status(restored.code(),
                        StrFormat("%s: retry aborted, could not restore "
                                  "state before attempt %d: ",
                                  what, attempt) +
                            restored.message());
        }
      }
    }
    ++stats_.attempts;
    status = op();
    if (status.ok()) return status;
    if (!IsTransient(status)) return status;
  }
  ++stats_.exhausted;
  return Status(status.code(),
                StrFormat("%s: still failing after %d attempts: ", what,
                          options_.max_attempts) +
                    status.message());
}

}  // namespace storypivot
