#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace storypivot {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  Next();
  state_ += seed;
  Next();
}

uint32_t Pcg32::Next() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint32_t Pcg32::NextBounded(uint32_t bound) {
  SP_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    uint32_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Pcg32::NextInRange(int64_t lo, int64_t hi) {
  SP_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range: combine two draws.
    return static_cast<int64_t>((static_cast<uint64_t>(Next()) << 32) |
                                Next());
  }
  // Combine two 32-bit draws for a 64-bit value, then reduce.
  uint64_t r = (static_cast<uint64_t>(Next()) << 32) | Next();
  return lo + static_cast<int64_t>(r % span);
}

double Pcg32::NextDouble() {
  // 53 random bits -> [0, 1).
  uint64_t hi = Next();
  uint64_t lo = Next();
  uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

bool Pcg32::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Pcg32::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  has_spare_ = true;
  return u * mul;
}

double Pcg32::NextExponential(double mean) {
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) u = 1e-12;
  return -mean * std::log(u);
}

uint32_t Pcg32::NextZipf(uint32_t n, double s) {
  ZipfDistribution dist(n, s);
  return dist.Sample(*this);
}

ZipfDistribution::ZipfDistribution(uint32_t n, double s) {
  SP_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (uint32_t k = 0; k < n; ++k) cdf_[k] /= total;
  cdf_[n - 1] = 1.0;  // Guard against floating point drift.
}

uint32_t ZipfDistribution::Sample(Pcg32& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<uint32_t>(cdf_.size() - 1);
  return static_cast<uint32_t>(it - cdf_.begin());
}

}  // namespace storypivot
