#ifndef STORYPIVOT_UTIL_THREAD_POOL_H_
#define STORYPIVOT_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace storypivot {

/// A bounded, work-stealing-free thread pool: a fixed set of workers
/// draining one shared FIFO queue, with a cap on queued tasks so a fast
/// producer cannot build an unbounded backlog (Submit blocks at the cap).
///
/// With `num_threads <= 1` the pool spawns no workers and every task runs
/// inline on the caller's thread, so the serial and parallel paths of a
/// caller share one code path. Tasks must not call back into the pool
/// (no nested ParallelFor) and, with -fno-exceptions, must not fail.
///
/// Shutdown semantics (DESIGN.md §13): `Shutdown()` stops intake, drains
/// every already-queued task, and joins the workers; the destructor calls
/// it when the caller did not. A `Submit` that observes the pool shutting
/// down runs its task INLINE on the submitting thread instead of
/// enqueueing — so every task passed to Submit runs exactly once, even
/// when Submit races Shutdown (the caller must still keep the pool object
/// alive for the duration of every Submit call, as with any object).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (none when <= 1). `max_queued` bounds
  /// the number of tasks waiting in the queue.
  explicit ThreadPool(size_t num_threads, size_t max_queued = 4096);

  /// Calls Shutdown() if the caller has not.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Degree of parallelism: worker count, or 1 for an inline pool.
  /// (`workers_` is immutable after construction, so this is safe to
  /// call from any thread without the lock.)
  size_t num_threads() const {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// Enqueues a task; blocks while the queue is at capacity. Runs the
  /// task inline when the pool has no workers or is shutting down.
  void Submit(std::function<void()> task) SP_EXCLUDES(mu_);

  /// Non-blocking Submit for admission control: returns false (and does
  /// NOT take ownership of running the task) when the queue is at
  /// capacity, instead of waiting for space. Like Submit, runs the task
  /// inline (and returns true) when the pool has no workers or is
  /// shutting down — rejection only ever means "queue full".
  [[nodiscard]] bool TrySubmit(std::function<void()> task) SP_EXCLUDES(mu_);

  /// Runs `body(chunk, begin, end)` over `num_chunks` contiguous chunks
  /// of [0, n) and blocks until all chunks completed. Chunk boundaries
  /// depend only on (n, num_chunks) — never on thread count or timing —
  /// so per-chunk outputs indexed by `chunk` merge deterministically.
  /// Must be called from outside the pool (not from a worker task).
  void ParallelFor(size_t n, size_t num_chunks,
                   const std::function<void(size_t chunk, size_t begin,
                                            size_t end)>& body)
      SP_EXCLUDES(mu_);

  /// Blocks until every previously submitted task has finished.
  void Wait() SP_EXCLUDES(mu_);

  /// Stops intake (subsequent or racing Submits run their task inline),
  /// drains the queue, and joins all workers. Idempotent from the
  /// owning thread (the destructor relies on that); must not be called
  /// from two threads concurrently or from inside a task.
  void Shutdown() SP_EXCLUDES(mu_);

 private:
  void WorkerLoop() SP_EXCLUDES(mu_);

  const size_t max_queued_;
  /// Lock hierarchy (tools/lockcheck.py): a leaf — no other lock is
  /// ever acquired while holding it (tasks run with it released).
  // lockcheck: name=ThreadPool.mu_
  Mutex mu_;
  CondVar work_available_;  // Signals waiting workers.
  CondVar queue_not_full_;  // Signals blocked producers.
  CondVar all_done_;        // Signals Wait().
  std::deque<std::function<void()>> queue_ SP_GUARDED_BY(mu_);
  /// Queued plus currently running tasks.
  size_t in_flight_ SP_GUARDED_BY(mu_) = 0;
  bool stop_ SP_GUARDED_BY(mu_) = false;
  /// Written only by the constructor and Shutdown's joins; read-only
  /// everywhere else, so unguarded reads of `workers_.empty()` are safe.
  std::vector<std::thread> workers_;
};

}  // namespace storypivot

#endif  // STORYPIVOT_UTIL_THREAD_POOL_H_
