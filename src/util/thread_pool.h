#ifndef STORYPIVOT_UTIL_THREAD_POOL_H_
#define STORYPIVOT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace storypivot {

/// A bounded, work-stealing-free thread pool: a fixed set of workers
/// draining one shared FIFO queue, with a cap on queued tasks so a fast
/// producer cannot build an unbounded backlog (Submit blocks at the cap).
///
/// With `num_threads <= 1` the pool spawns no workers and every task runs
/// inline on the caller's thread, so the serial and parallel paths of a
/// caller share one code path. Tasks must not call back into the pool
/// (no nested ParallelFor) and, with -fno-exceptions, must not fail.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (none when <= 1). `max_queued` bounds
  /// the number of tasks waiting in the queue.
  explicit ThreadPool(size_t num_threads, size_t max_queued = 4096);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Degree of parallelism: worker count, or 1 for an inline pool.
  size_t num_threads() const {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// Enqueues a task; blocks while the queue is at capacity. Runs the
  /// task inline when the pool has no workers.
  void Submit(std::function<void()> task);

  /// Runs `body(chunk, begin, end)` over `num_chunks` contiguous chunks
  /// of [0, n) and blocks until all chunks completed. Chunk boundaries
  /// depend only on (n, num_chunks) — never on thread count or timing —
  /// so per-chunk outputs indexed by `chunk` merge deterministically.
  /// Must be called from outside the pool (not from a worker task).
  void ParallelFor(size_t n, size_t num_chunks,
                   const std::function<void(size_t chunk, size_t begin,
                                            size_t end)>& body);

  /// Blocks until every previously submitted task has finished.
  void Wait();

 private:
  void WorkerLoop();

  const size_t max_queued_;
  std::mutex mu_;
  std::condition_variable work_available_;  // Signals waiting workers.
  std::condition_variable queue_not_full_;  // Signals blocked producers.
  std::condition_variable all_done_;        // Signals Wait().
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // Queued plus currently running tasks.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace storypivot

#endif  // STORYPIVOT_UTIL_THREAD_POOL_H_
