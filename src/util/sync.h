#ifndef STORYPIVOT_UTIL_SYNC_H_
#define STORYPIVOT_UTIL_SYNC_H_

#include <condition_variable>  // splint: allow(raw-sync)
#include <mutex>               // splint: allow(raw-sync)

namespace storypivot {

/// Annotated synchronization primitives (DESIGN.md §13).
///
/// Every lock in this codebase goes through the wrappers below instead
/// of the raw std:: primitives (enforced by splint's `raw-sync` rule),
/// for two machine-checked guarantees:
///
///   1. CLANG CAPABILITY ANALYSIS — the wrappers carry Clang
///      thread-safety attributes, so under Clang with
///      `-Werror=thread-safety` (CMake option STORYPIVOT_THREAD_SAFETY,
///      pinned ON in the clang CI leg) an access to an `SP_GUARDED_BY`
///      field without its mutex held, an unbalanced Lock/Unlock, or a
///      call that violates an `SP_REQUIRES` contract is a COMPILE
///      ERROR. On non-Clang compilers every annotation macro expands to
///      nothing and the wrappers are zero-overhead shims over std::.
///
///   2. LOCK-ORDER LINTING — every `Mutex` / `SerialSection`
///      declaration carries a `// lockcheck:` annotation naming it and
///      declaring which locks may already be held when it is acquired
///      (`after=`). `tools/lockcheck.py` (CTest target lint.lockcheck)
///      builds the declared hierarchy, verifies it is ACYCLIC, and
///      cross-checks every lexically nested acquisition site against
///      it — the deadlock-shaped discipline the per-function Clang
///      analysis cannot see.
///
/// `SP_NO_THREAD_SAFETY_ANALYSIS` is the escape hatch of last resort;
/// every use must carry a written justification (DESIGN.md §13 rule R4).

// --- Annotation macros -----------------------------------------------------
//
// The standard Clang thread-safety macro set (named after the
// "capability" attribute spelling; see the Clang Thread Safety Analysis
// docs). No-ops everywhere but Clang.

#if defined(__clang__)
#define SP_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define SP_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (e.g. a mutex or a thread role).
#define SP_CAPABILITY(x) SP_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define SP_SCOPED_CAPABILITY SP_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field attribute: reads and writes require holding the capability.
#define SP_GUARDED_BY(x) SP_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer-field attribute: dereferences require holding the capability
/// (the pointer itself may be read freely).
#define SP_PT_GUARDED_BY(x) SP_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Declaration-site lock-order hints (also parsed by tools/lockcheck.py
/// alongside the `// lockcheck:` comments).
#define SP_ACQUIRED_BEFORE(...) \
  SP_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define SP_ACQUIRED_AFTER(...) \
  SP_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Function attribute: the caller must hold the capability (exclusively
/// / shared) for the duration of the call.
#define SP_REQUIRES(...) \
  SP_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define SP_REQUIRES_SHARED(...) \
  SP_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the capability and holds it on return.
#define SP_ACQUIRE(...) \
  SP_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define SP_ACQUIRE_SHARED(...) \
  SP_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function attribute: releases a capability the caller holds.
#define SP_RELEASE(...) \
  SP_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define SP_RELEASE_SHARED(...) \
  SP_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the capability iff the returned value
/// equals the first argument.
#define SP_TRY_ACQUIRE(...) \
  SP_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function attribute: the caller must NOT hold the capability (the
/// function acquires it itself; documents self-deadlock hazards).
#define SP_EXCLUDES(...) \
  SP_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function attribute: asserts (to the analysis only — no runtime
/// effect in our wrappers) that the capability is held from here on.
#define SP_ASSERT_CAPABILITY(...) \
  SP_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(__VA_ARGS__))

/// Function attribute: the function returns a reference to the given
/// capability (lets accessors participate in capability expressions).
#define SP_RETURN_CAPABILITY(x) \
  SP_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Turns the analysis OFF for one function. Escape hatch of last
/// resort: every use MUST carry a written justification on the
/// preceding line (DESIGN.md §13 rule R4; grep for uses when auditing).
#define SP_NO_THREAD_SAFETY_ANALYSIS \
  SP_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

// --- Wrappers --------------------------------------------------------------

class CondVar;

/// An annotated exclusive mutex. Prefer the scoped `MutexLock`; call
/// Lock()/Unlock() directly only where a scope cannot express the
/// critical section. Non-recursive: re-acquiring on the same thread
/// deadlocks (and is flagged by both analyzers).
class SP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SP_ACQUIRE() { mu_.lock(); }
  void Unlock() SP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() SP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis this thread holds the mutex when the fact is
  /// invisible to it (e.g. across a virtual-call boundary). No runtime
  /// check — pair with a comment explaining why it is true.
  void AssertHeld() const SP_ASSERT_CAPABILITY() {}

 private:
  friend class CondVar;  // Wait() needs the native handle.
  std::mutex mu_;  // splint: allow(raw-sync)
};

/// Scoped (RAII) lock on a Mutex — the default way to hold one.
class SP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SP_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SP_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// An annotated condition variable. Wait() atomically releases the
/// mutex, blocks, and reacquires it before returning; from the
/// analysis's point of view the capability is held across the call
/// (which is exactly the caller-visible contract).
class CondVar {
 public:
  CondVar() = default;
  ~CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One wakeup-and-recheck step; spurious wakeups happen, so callers
  /// loop on their predicate (or use the predicate overload below).
  void Wait(Mutex& mu) SP_REQUIRES(mu);

  /// Blocks until `pred()` holds. The predicate runs with `mu` held, so
  /// it may read `SP_GUARDED_BY(mu)` state — but note that Clang
  /// analyzes a lambda as its own function: prefer a plain
  /// `while (!cond) cv.Wait(mu);` loop in annotated code so guarded
  /// reads stay inside the function that visibly holds the lock.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) SP_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Notify does not require the mutex; holding it is allowed too.
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // splint: allow(raw-sync)
};

/// A ZERO-COST PHANTOM CAPABILITY — a "thread role" in Clang
/// thread-safety terms — modelling a single-writer SERIAL SECTION
/// rather than a runtime lock. Several layers of this codebase (the
/// engine, the WAL, the durable engine, the search index) are
/// single-writer by design: mutations are serialized by the caller, and
/// const reads are safe only in the absence of writers (DESIGN.md §9).
/// No mutex exists to annotate, but the DISCIPLINE is still machine-
/// checkable: fields that only the serial section may touch are marked
/// `SP_GUARDED_BY(serial_)`, serial-only functions are marked
/// `SP_REQUIRES(serial_)`, and every function that is part of the
/// serial section states so with `serial_.AssertInSection()`.
///
/// Under Clang this makes it a COMPILE ERROR for code that has not
/// declared itself part of the serial section — e.g. a parallel-path
/// worker, or a future reader thread — to touch serial-only state or to
/// invoke a serial-only hook (the engine's IngestObserver callbacks are
/// the canonical example). At runtime the class is empty: asserting is
/// a no-op, and nothing is ever locked.
class SP_CAPABILITY("role") SerialSection {
 public:
  SerialSection() = default;
  ~SerialSection() = default;

  SerialSection(const SerialSection&) = delete;
  SerialSection& operator=(const SerialSection&) = delete;

  /// Declares (to the analysis only) that the calling context is part
  /// of this serial section: no other thread is concurrently mutating
  /// the state this role guards. Callable from const methods — reads
  /// are part of the section whenever no writer runs, which is the
  /// documented single-writer reader contract.
  void AssertInSection() const SP_ASSERT_CAPABILITY() {}
};

}  // namespace storypivot

#endif  // STORYPIVOT_UTIL_SYNC_H_
