#ifndef STORYPIVOT_UTIL_STRINGS_H_
#define STORYPIVOT_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace storypivot {

/// Splits `text` on the single character `sep`. Empty fields are kept, so
/// Split("a,,b", ',') == {"a", "", "b"} and Split("", ',') == {""}.
std::vector<std::string_view> Split(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string. The format string is checked
/// by the compiler.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a signed 64-bit integer; returns false on malformed input or
/// overflow. Leading/trailing whitespace is not accepted.
bool ParseInt64(std::string_view text, int64_t* out);

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view text, double* out);

}  // namespace storypivot

#endif  // STORYPIVOT_UTIL_STRINGS_H_
