#ifndef STORYPIVOT_UTIL_STRINGS_H_
#define STORYPIVOT_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace storypivot {

/// Splits `text` on the single character `sep`. Empty fields are kept, so
/// Split("a,,b", ',') == {"a", "", "b"} and Split("", ',') == {""}.
[[nodiscard]] std::vector<std::string_view> Split(std::string_view text,
                                                  char sep);

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string Join(const std::vector<std::string>& parts,
                               std::string_view sep);
[[nodiscard]] std::string Join(const std::vector<std::string_view>& parts,
                               std::string_view sep);

/// Removes ASCII whitespace from both ends.
[[nodiscard]] std::string_view Trim(std::string_view text);

/// ASCII lowercase copy.
[[nodiscard]] std::string ToLower(std::string_view text);

[[nodiscard]] bool StartsWith(std::string_view text, std::string_view prefix);
[[nodiscard]] bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string. The format string is checked
/// by the compiler.
[[nodiscard]] std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a signed 64-bit integer; returns false on malformed input or
/// overflow. Leading/trailing whitespace is not accepted. The result is
/// meaningless if the return value is ignored, hence [[nodiscard]].
[[nodiscard]] bool ParseInt64(std::string_view text, int64_t* out);

/// Parses a double; returns false on malformed input.
[[nodiscard]] bool ParseDouble(std::string_view text, double* out);

}  // namespace storypivot

#endif  // STORYPIVOT_UTIL_STRINGS_H_
