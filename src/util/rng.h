#ifndef STORYPIVOT_UTIL_RNG_H_
#define STORYPIVOT_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace storypivot {

/// Deterministic PCG32 random number generator (O'Neill 2014, pcg-xsh-rr).
/// Used everywhere in StoryPivot so that data generation, sketching and
/// experiments are exactly reproducible from a seed.
class Pcg32 {
 public:
  /// Seeds the generator. Distinct `stream` values yield independent
  /// sequences for the same `seed`.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Returns the next 32 random bits.
  uint32_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection sampling, so the distribution is exactly uniform.
  uint32_t NextBounded(uint32_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Returns a sample from a standard normal distribution (Box-Muller).
  double NextGaussian();

  /// Returns a sample from an exponential distribution with the given mean.
  double NextExponential(double mean);

  /// Returns a sample from a Zipf distribution over {0, .., n-1} with
  /// exponent `s` (s >= 0; s == 0 degenerates to uniform).
  /// Implemented via inverse-CDF over precomputable weights; O(log n) after
  /// the first call per (n, s) via an internal cached table is *not* kept —
  /// callers needing many Zipf draws should use `ZipfDistribution`.
  uint32_t NextZipf(uint32_t n, double s);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBounded(static_cast<uint32_t>(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_;
  uint64_t inc_;
  // Box-Muller spare value.
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Precomputed Zipf sampler: draws from {0..n-1} with P(k) proportional to
/// 1/(k+1)^s. O(log n) per draw via binary search on the CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(uint32_t n, double s);

  uint32_t Sample(Pcg32& rng) const;

  uint32_t n() const { return static_cast<uint32_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace storypivot

#endif  // STORYPIVOT_UTIL_RNG_H_
