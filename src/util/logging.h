#ifndef STORYPIVOT_UTIL_LOGGING_H_
#define STORYPIVOT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace storypivot {

/// Severity levels for the project logger, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted to stderr. Defaults to kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits one line to stderr on destruction.
/// Use via the SP_LOG macro rather than directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace storypivot

/// Logs a message at the given severity, e.g.
///   SP_LOG(kInfo) << "processed " << n << " snippets";
#define SP_LOG(level)                                                  \
  ::storypivot::internal_logging::LogMessage(                          \
      ::storypivot::LogLevel::level, __FILE__, __LINE__)               \
      .stream()

/// Aborts the process with a message if `cond` is false. Active in all
/// build types; use for internal invariants, not for user input.
#define SP_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::storypivot::internal_logging::LogMessage(                           \
          ::storypivot::LogLevel::kError, __FILE__, __LINE__)               \
              .stream()                                                     \
          << "SP_CHECK failed: " #cond;                                     \
      ::storypivot::internal_logging::AbortAfterCheckFailure();             \
    }                                                                       \
  } while (false)

namespace storypivot::internal_logging {
[[noreturn]] void AbortAfterCheckFailure();
}  // namespace storypivot::internal_logging

#endif  // STORYPIVOT_UTIL_LOGGING_H_
