#include "util/sync.h"

namespace storypivot {

// Out of line so the header never names std::unique_lock (the adopt/
// release dance below is an implementation detail of bridging our
// annotated Mutex to std::condition_variable, not part of the API).
void CondVar::Wait(Mutex& mu) {
  // The caller holds mu (SP_REQUIRES); adopt it, let the condition
  // variable release-and-reacquire it, then release ownership back to
  // the caller without unlocking. From the analysis's point of view the
  // capability is held across the call, matching the contract.
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);  // splint: allow(raw-sync)
  cv_.wait(lock);
  lock.release();
}

}  // namespace storypivot
