#ifndef STORYPIVOT_UTIL_RETRY_H_
#define STORYPIVOT_UTIL_RETRY_H_

#include <cstdint>
#include <functional>

#include "util/rng.h"
#include "util/status.h"

namespace storypivot {

/// Transient-vs-permanent classification (DESIGN.md §12). A transient
/// error is one where retrying the SAME operation can plausibly succeed
/// — the canonical producer is a failpoint armed with
/// `Trigger::transient`, whose injected kIoError carries the
/// `[transient]` marker. Real environmental errors default to PERMANENT:
/// misclassifying a permanent fault as transient only costs bounded
/// retry latency, while the reverse would skip recoverable work, so the
/// conservative default is to escalate.
[[nodiscard]] bool IsTransient(const Status& status);

struct RetryOptions {
  /// Total tries including the first (>= 1). 1 disables retrying.
  int max_attempts = 4;
  /// Backoff before the first retry.
  uint64_t initial_backoff_us = 100;
  /// Backoff growth factor per retry (jitter off only).
  double backoff_multiplier = 2.0;
  /// Backoff ceiling.
  uint64_t max_backoff_us = 50'000;
  /// Decorrelated jitter (default ON). Pure exponential backoff makes N
  /// writers that hit the same transient fault retry in lockstep —
  /// every wave lands on the contended resource at the same instant.
  /// With jitter the k-th backoff is drawn uniformly from
  /// [initial_backoff_us, 3 * previous_backoff], capped at
  /// max_backoff_us ("decorrelated jitter"), so concurrent retriers
  /// spread out. Set false to restore the deterministic exponential
  /// schedule (some tests assert it).
  bool jitter = true;
  /// Seed for the jitter RNG. 0 (the default) derives a distinct seed
  /// per policy instance — the whole point is that policies do NOT
  /// share a schedule. Tests pass a nonzero seed to make the jittered
  /// schedule reproducible.
  uint64_t jitter_seed = 0;
};

/// Bounded exponential backoff around a fallible operation. Only
/// TRANSIENT failures (see `IsTransient`) are retried; permanent errors
/// and success return immediately. The clock is injectable: tests and
/// benches install a recording `SleepFn` so retry schedules are
/// asserted, not slept through.
///
/// Not thread-safe (stats are plain counters); give each writer its own
/// policy, matching the WAL's single-writer discipline.
class RetryPolicy {
 public:
  /// Sleeps for the given backoff. The default implementation really
  /// sleeps (std::this_thread::sleep_for).
  using SleepFn = std::function<void(uint64_t micros)>;

  explicit RetryPolicy(RetryOptions options = {});

  /// Replaces the sleep implementation; pass nullptr to restore the
  /// real-sleep default.
  void set_sleep_fn(SleepFn fn);

  /// Runs `op` up to `max_attempts` times. Before each RE-attempt,
  /// sleeps the current backoff and then calls `before_retry` (when
  /// provided) — the hook restores invariants a failed attempt may have
  /// broken, e.g. truncating away a partial append. A failing
  /// `before_retry` aborts the loop with its error: retrying on a
  /// corrupted base is worse than surfacing the fault.
  ///
  /// `what` names the operation in escalated error messages.
  [[nodiscard]] Status Run(const char* what,
                           const std::function<Status()>& op,
                           const std::function<Status()>& before_retry = {});

  /// Cumulative counters across every `Run` on this policy.
  struct Stats {
    uint64_t runs = 0;
    uint64_t attempts = 0;
    uint64_t retries = 0;
    /// Backoff requested from the sleep fn, microseconds.
    uint64_t backoff_us = 0;
    /// Runs that still failed after max_attempts transient failures.
    uint64_t exhausted = 0;
  };

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const RetryOptions& options() const { return options_; }

 private:
  /// Next backoff: exponential when jitter is off, decorrelated-jitter
  /// draw otherwise. `prev` is the backoff just slept (0 before the
  /// first retry of a Run).
  [[nodiscard]] uint64_t NextBackoff(uint64_t prev);

  RetryOptions options_;
  SleepFn sleep_;
  Stats stats_;
  Pcg32 jitter_rng_;
};

}  // namespace storypivot

#endif  // STORYPIVOT_UTIL_RETRY_H_
