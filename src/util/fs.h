#ifndef STORYPIVOT_UTIL_FS_H_
#define STORYPIVOT_UTIL_FS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace storypivot {

/// Error-checked file IO. Every write in the project goes through this
/// header (splint's `raw-file-write` rule bans std::ofstream / fopen
/// elsewhere) so that durability guarantees hold repo-wide:
///
///   * `WriteStringToFile` is ATOMIC: it writes `path.tmp`, fsyncs, then
///     renames over `path` and fsyncs the directory. Readers observe
///     either the old file or the complete new file — never a torn one.
///   * `AppendFile` is the write-ahead-log primitive: an append-only fd
///     with explicit `Sync()` so callers control the fsync policy.
///
/// All functions report failures as Status (kIoError) with the path in
/// the message; nothing is silently swallowed.

/// Reads the entire file into a string.
[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path);

/// Atomically replaces `path` with `contents` (temp file + fsync +
/// rename + directory fsync). The temp file `path.tmp` is unlinked on
/// any failure.
[[nodiscard]] Status WriteStringToFile(const std::string& path,
                                       std::string_view contents);

/// True when `path` exists (any file type).
[[nodiscard]] bool FileExists(const std::string& path);

/// Size of a regular file in bytes.
[[nodiscard]] Result<uint64_t> FileSize(const std::string& path);

/// Deletes a file; NotFound if it does not exist.
[[nodiscard]] Status RemoveFile(const std::string& path);

/// Renames `from` to `to` (atomic within a filesystem).
[[nodiscard]] Status RenameFile(const std::string& from,
                                const std::string& to);

/// Truncates a file to `size` bytes (used by WAL recovery to drop a torn
/// tail record).
[[nodiscard]] Status TruncateFile(const std::string& path, uint64_t size);

/// Creates `path` and all missing parents (mkdir -p semantics).
[[nodiscard]] Status CreateDirectories(const std::string& path);

/// Removes an EMPTY directory (rmdir semantics); NotFound when missing.
[[nodiscard]] Status RemoveDirectory(const std::string& path);

/// Names (not paths) of the entries in `path`, sorted, excluding "." and
/// "..".
[[nodiscard]] Result<std::vector<std::string>> ListDirectory(
    const std::string& path);

/// fsyncs a directory so that renames/creates/unlinks inside it are
/// durable.
[[nodiscard]] Status SyncDirectory(const std::string& path);

/// An append-only file handle with explicit durability control — the
/// primitive under the write-ahead log. Not thread-safe; the WAL's
/// single-writer discipline matches the engine's.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens `path` for appending, creating it when absent. `size()`
  /// reflects the existing length.
  [[nodiscard]] Status Open(const std::string& path);

  /// Appends all of `data`; short writes are retried until complete.
  /// On failure `size()` is NOT advanced, so the file may hold torn
  /// bytes past `size()` — call `Rewind()` to drop them before retrying
  /// or continuing.
  [[nodiscard]] Status Append(std::string_view data);

  /// Truncates the file back to `size()`, discarding whatever a failed
  /// `Append` partially wrote. The WAL calls this before retrying an
  /// append (and after a final failure), so a failed append never
  /// leaves torn bytes mid-log where they would masquerade as a torn
  /// tail and hide later records from recovery.
  [[nodiscard]] Status Rewind();

  /// Truncates the file to `new_size` (<= size()) and adjusts `size()`.
  /// The WAL uses this to WITHDRAW a completely written record whose
  /// fsync failed: the caller is told the append failed, so the record
  /// must not survive into recovery.
  [[nodiscard]] Status TruncateTo(uint64_t new_size);

  /// fdatasyncs everything appended so far.
  [[nodiscard]] Status Sync();

  /// Syncs and closes. Safe to call twice; the destructor closes (without
  /// syncing) if the caller did not.
  [[nodiscard]] Status Close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

  /// Current file size (existing bytes + everything appended).
  [[nodiscard]] uint64_t size() const { return size_; }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  uint64_t size_ = 0;
  std::string path_;
};

}  // namespace storypivot

#endif  // STORYPIVOT_UTIL_FS_H_
