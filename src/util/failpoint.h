#ifndef STORYPIVOT_UTIL_FAILPOINT_H_
#define STORYPIVOT_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace storypivot::failpoint {

/// Deterministic, seedable fault injection (DESIGN.md §12).
///
/// An injection SITE is a named place in production code — e.g.
/// "fs.append.write" — marked with `SP_FAILPOINT("fs.append.write")`.
/// Sites are inert until a test or bench ARMS them with a `Trigger`;
/// an armed site that fires makes the enclosing function return an
/// injected `kIoError` Status, exactly as if the underlying syscall had
/// failed.
///
/// Determinism: probability triggers draw from a per-site Pcg32 seeded
/// from the trigger's `seed`, and every-Nth/one-shot triggers count site
/// evaluations — so a fixed (schedule, workload) pair replays the same
/// faults at the same points, every run, on every machine. The chaos
/// harness depends on this.
///
/// Cost: sites compile to NOTHING unless the `STORYPIVOT_FAILPOINTS`
/// macro is defined (CMake option of the same name, ON by default in
/// this repo's presets; `tests/compile_fail/failpoint_noop.cc` proves
/// the OFF expansion is empty). When compiled in but disarmed, a site
/// costs one relaxed atomic load (see bench_faults).

/// How an armed site decides to fire.
struct Trigger {
  enum class Kind {
    /// Fires independently with probability `probability` per evaluation.
    kProbability,
    /// Fires on every `n`-th evaluation (n, 2n, 3n, ...).
    kEveryNth,
    /// Fires exactly once, on the `n`-th evaluation (1-based).
    kOneShot,
  };

  Kind kind = Kind::kOneShot;
  /// Fire probability for kProbability (clamped to [0,1]).
  double probability = 0.0;
  /// Cadence for kEveryNth / target evaluation for kOneShot (>= 1).
  uint64_t n = 1;
  /// Marks injected errors as TRANSIENT (retry-able) vs permanent; see
  /// `IsTransient` in util/retry.h.
  bool transient = false;
  /// Seed for the per-site RNG (kProbability only). The site name is
  /// hashed in as the stream, so distinct sites armed with one seed
  /// still draw independent sequences.
  uint64_t seed = 0;
  /// Free-form tag included in the injected message, e.g. "ENOSPC".
  std::string note;
};

/// Convenience constructors for the common trigger shapes.
[[nodiscard]] Trigger OneShot(uint64_t on_evaluation = 1,
                              bool transient = false);
[[nodiscard]] Trigger EveryNth(uint64_t n, bool transient = false);
[[nodiscard]] Trigger Probability(double p, uint64_t seed,
                                  bool transient = false);

/// Evaluation/fire counters for one site, for assertions and reports.
struct SiteStats {
  uint64_t evaluations = 0;
  uint64_t fires = 0;
};

/// Process-wide registry of armed failpoints. Thread-safe: arming is
/// protected by an annotated `Mutex` (util/sync.h) that is a LEAF of
/// the lock hierarchy (DESIGN.md §13) — it never wraps another lock, so
/// SP_FAILPOINT sites are safe inside any locked region — and the
/// disarmed fast path is a single relaxed atomic load, so leaving sites
/// compiled in does not perturb the engine's parallel sections.
class Registry {
 public:
  static Registry& Instance();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Arms `site` with `trigger`, replacing any existing trigger and
  /// resetting the site's counters.
  void Arm(std::string_view site, Trigger trigger);

  /// Disarms one site (keeps its stats readable until the next Arm).
  void Disarm(std::string_view site);

  /// Disarms every site and clears all stats. Tests call this in
  /// SetUp/TearDown so schedules never leak across test cases.
  void DisarmAll();

  /// Evaluates `site`: OK when disarmed or the trigger does not fire,
  /// otherwise the injected error. This is what `SP_FAILPOINT` calls.
  [[nodiscard]] Status Evaluate(std::string_view site) {
    if (armed_sites_.load(std::memory_order_relaxed) == 0) {
      return Status::OK();
    }
    return EvaluateSlow(site);
  }

  /// Evaluate-with-custom-handling: returns true when `site` fires and
  /// stores the injected error in `*error`. For call sites that need
  /// bespoke failure behaviour (e.g. a partial write) rather than an
  /// early return. This is what `SP_FAILPOINT_FIRED` calls.
  [[nodiscard]] bool Fired(std::string_view site, Status* error);

  /// Counters for `site` (zeros when never armed).
  [[nodiscard]] SiteStats Stats(std::string_view site) const;

  /// Names of the currently armed sites, sorted.
  [[nodiscard]] std::vector<std::string> ArmedSites() const;

 private:
  Registry() = default;

  [[nodiscard]] Status EvaluateSlow(std::string_view site);

  // Number of currently armed sites; the disarmed fast path reads only
  // this. The count is maintained under mu_ (declared in the .cc).
  std::atomic<int> armed_sites_{0};
};

/// True when `status` was produced by a failpoint (its message carries
/// the injection marker). Lets tests distinguish injected faults from
/// real environmental failures.
[[nodiscard]] bool IsInjected(const Status& status);

/// Marker embedded in transient injected errors; util/retry.h keys its
/// transient-vs-permanent classification on it.
inline constexpr std::string_view kTransientMarker = "[transient]";

}  // namespace storypivot::failpoint

// --- Site macros -----------------------------------------------------------
//
// Production code marks injection sites with these. Both expand to
// nothing when STORYPIVOT_FAILPOINTS is off — `lint.failpoint_noop`
// compiles them inside constexpr functions to prove it.

#ifdef STORYPIVOT_FAILPOINTS

/// Evaluates the named site; when its armed trigger fires, returns the
/// injected error Status from the enclosing function (which must return
/// `Status` or a `Result<T>`).
#define SP_FAILPOINT(site)                                              \
  do {                                                                  \
    ::storypivot::Status sp_failpoint_status_ =                         \
        ::storypivot::failpoint::Registry::Instance().Evaluate(site);   \
    if (!sp_failpoint_status_.ok()) return sp_failpoint_status_;        \
  } while (false)

/// Boolean form: true when the site fires, with the injected error
/// stored through `error_ptr` (a `Status*`). For sites that fail in a
/// custom way instead of returning immediately.
#define SP_FAILPOINT_FIRED(site, error_ptr) \
  (::storypivot::failpoint::Registry::Instance().Fired((site), (error_ptr)))

#else  // !STORYPIVOT_FAILPOINTS

#define SP_FAILPOINT(site)   \
  do {                       \
    static_cast<void>(site); \
  } while (false)

#define SP_FAILPOINT_FIRED(site, error_ptr) \
  (static_cast<void>(site), static_cast<void>(error_ptr), false)

#endif  // STORYPIVOT_FAILPOINTS

#endif  // STORYPIVOT_UTIL_FAILPOINT_H_
