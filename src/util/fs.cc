#include "util/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace storypivot {
namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// Directory component of `path` ("." when there is none), for syncing
/// the parent after a rename.
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAllTo(int fd, std::string_view data, const std::string& path) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("cannot write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return IoError("cannot open for reading", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IoError("read error", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return IoError("cannot open for writing", tmp);
  Status written = WriteAllTo(fd, contents, tmp);
  if (written.ok() && ::fsync(fd) != 0) written = IoError("fsync", tmp);
  if (::close(fd) != 0 && written.ok()) written = IoError("close", tmp);
  if (written.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    written = IoError("rename", path);
  }
  if (!written.ok()) {
    ::unlink(tmp.c_str());  // Best effort; the error is already recorded.
    return written;
  }
  return SyncDirectory(DirName(path));
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return IoError("cannot stat", path);
  return static_cast<uint64_t>(st.st_size);
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return IoError("cannot unlink", path);
  }
  return Status::OK();
}

Status RemoveDirectory(const std::string& path) {
  if (::rmdir(path.c_str()) != 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such directory: " + path);
    }
    return IoError("cannot rmdir", path);
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return IoError("cannot rename to " + to + " from", from);
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return IoError("cannot truncate", path);
  }
  return Status::OK();
}

Status CreateDirectories(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    prefix.assign(path, 0, slash);
    pos = slash + 1;
    if (prefix.empty()) continue;  // Leading '/'.
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return IoError("cannot mkdir", prefix);
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDirectory(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return IoError("cannot open directory", path);
  std::vector<std::string> names;
  errno = 0;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(std::move(name));
    errno = 0;
  }
  bool had_error = errno != 0;
  ::closedir(dir);
  if (had_error) return IoError("cannot read directory", path);
  std::sort(names.begin(), names.end());
  return names;
}

Status SyncDirectory(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return IoError("cannot open directory", path);
  Status status;
  if (::fsync(fd) != 0) status = IoError("fsync directory", path);
  ::close(fd);
  return status;
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendFile::Open(const std::string& path) {
  if (fd_ >= 0) {
    return Status::FailedPrecondition("AppendFile already open: " + path_);
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                  0644);
  if (fd < 0) return IoError("cannot open for append", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return IoError("cannot stat", path);
  }
  fd_ = fd;
  size_ = static_cast<uint64_t>(st.st_size);
  path_ = path;
  return Status::OK();
}

Status AppendFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("AppendFile not open");
  RETURN_IF_ERROR(WriteAllTo(fd_, data, path_));
  size_ += data.size();
  return Status::OK();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("AppendFile not open");
  if (::fdatasync(fd_) != 0) return IoError("fdatasync", path_);
  return Status::OK();
}

Status AppendFile::Close() {
  if (fd_ < 0) return Status::OK();
  Status status = Sync();
  if (::close(fd_) != 0 && status.ok()) status = IoError("close", path_);
  fd_ = -1;
  size_ = 0;
  path_.clear();
  return status;
}

}  // namespace storypivot
