#include "util/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/failpoint.h"
#include "util/strings.h"

namespace storypivot {
namespace {

Status IoError(const std::string& what, const std::string& path) {
  // strerror_r, not strerror: IO errors can surface concurrently from
  // pool workers, and strerror's shared buffer is a data race
  // (clang-tidy concurrency-mt-unsafe).
  char buf[256];
  const char* msg = "unknown error";
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  msg = strerror_r(errno, buf, sizeof(buf));  // GNU: returns the string.
#else
  if (strerror_r(errno, buf, sizeof(buf)) == 0) msg = buf;  // POSIX.
#endif
  return Status::IoError(what + " " + path + ": " + msg);
}

/// Directory component of `path` ("." when there is none), for syncing
/// the parent after a rename.
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// `fail_site` injects a clean failure before any byte is written;
/// `partial_site` injects a SHORT write — half the remaining bytes land
/// on disk and the error reports how many, the shape of a real ENOSPC.
Status WriteAllTo(int fd, std::string_view data, const std::string& path,
                  const char* fail_site, const char* partial_site) {
  SP_FAILPOINT(fail_site);
  size_t done = 0;
  while (done < data.size()) {
    Status injected;
    if (SP_FAILPOINT_FIRED(partial_site, &injected)) {
      const size_t chunk = (data.size() - done) / 2;
      const ssize_t wrote =
          chunk == 0 ? 0 : ::write(fd, data.data() + done, chunk);
      if (wrote > 0) done += static_cast<size_t>(wrote);
      return Status(injected.code(),
                    injected.message() +
                        StrFormat(" (short write: %zu of %zu bytes to ",
                                  done, data.size()) +
                        path + ")");
    }
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (done > 0) {
        return IoError(StrFormat("short write (%zu of %zu bytes), cannot "
                                 "write rest to",
                                 done, data.size()),
                       path);
      }
      return IoError("cannot write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  SP_FAILPOINT("fs.read.open");
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return IoError("cannot open for reading", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IoError("read error", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  SP_FAILPOINT("fs.write.open");
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return IoError("cannot open for writing", tmp);
  Status written =
      WriteAllTo(fd, contents, tmp, "fs.write.write", "fs.write.partial");
  if (written.ok() && !SP_FAILPOINT_FIRED("fs.write.fsync", &written) &&
      ::fsync(fd) != 0) {
    written = IoError("fsync", tmp);
  }
  if (::close(fd) != 0 && written.ok()) written = IoError("close", tmp);
  if (written.ok() && !SP_FAILPOINT_FIRED("fs.write.rename", &written) &&
      ::rename(tmp.c_str(), path.c_str()) != 0) {
    written = IoError("rename", path);
  }
  if (!written.ok()) {
    ::unlink(tmp.c_str());  // Best effort; the error is already recorded.
    return written;
  }
  return SyncDirectory(DirName(path));
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  SP_FAILPOINT("fs.stat");
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return IoError("cannot stat", path);
  return static_cast<uint64_t>(st.st_size);
}

Status RemoveFile(const std::string& path) {
  SP_FAILPOINT("fs.remove");
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return IoError("cannot unlink", path);
  }
  return Status::OK();
}

Status RemoveDirectory(const std::string& path) {
  if (::rmdir(path.c_str()) != 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such directory: " + path);
    }
    return IoError("cannot rmdir", path);
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  SP_FAILPOINT("fs.rename");
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return IoError("cannot rename to " + to + " from", from);
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  SP_FAILPOINT("fs.truncate");
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return IoError("cannot truncate", path);
  }
  return Status::OK();
}

Status CreateDirectories(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  SP_FAILPOINT("fs.mkdir");
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    prefix.assign(path, 0, slash);
    pos = slash + 1;
    if (prefix.empty()) continue;  // Leading '/'.
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return IoError("cannot mkdir", prefix);
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDirectory(const std::string& path) {
  SP_FAILPOINT("fs.list");
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return IoError("cannot open directory", path);
  std::vector<std::string> names;
  errno = 0;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(std::move(name));
    errno = 0;
  }
  bool had_error = errno != 0;
  ::closedir(dir);
  if (had_error) return IoError("cannot read directory", path);
  std::sort(names.begin(), names.end());
  return names;
}

Status SyncDirectory(const std::string& path) {
  SP_FAILPOINT("fs.dir.sync");
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return IoError("cannot open directory", path);
  Status status;
  if (::fsync(fd) != 0) status = IoError("fsync directory", path);
  ::close(fd);
  return status;
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendFile::Open(const std::string& path) {
  if (fd_ >= 0) {
    return Status::FailedPrecondition("AppendFile already open: " + path_);
  }
  SP_FAILPOINT("fs.append.open");
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                  0644);
  if (fd < 0) return IoError("cannot open for append", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return IoError("cannot stat", path);
  }
  fd_ = fd;
  size_ = static_cast<uint64_t>(st.st_size);
  path_ = path;
  return Status::OK();
}

Status AppendFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("AppendFile not open");
  RETURN_IF_ERROR(
      WriteAllTo(fd_, data, path_, "fs.append.write", "fs.append.partial"));
  size_ += data.size();
  return Status::OK();
}

Status AppendFile::Rewind() {
  if (fd_ < 0) return Status::FailedPrecondition("AppendFile not open");
  SP_FAILPOINT("fs.append.rewind");
  if (::ftruncate(fd_, static_cast<off_t>(size_)) != 0) {
    return IoError("cannot truncate partial append from", path_);
  }
  return Status::OK();
}

Status AppendFile::TruncateTo(uint64_t new_size) {
  if (fd_ < 0) return Status::FailedPrecondition("AppendFile not open");
  if (new_size > size_) {
    return Status::InvalidArgument(
        StrFormat("TruncateTo %llu past size %llu of ",
                  static_cast<unsigned long long>(new_size),
                  static_cast<unsigned long long>(size_)) +
        path_);
  }
  SP_FAILPOINT("fs.append.rewind");
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return IoError("cannot truncate append file", path_);
  }
  size_ = new_size;
  return Status::OK();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("AppendFile not open");
  SP_FAILPOINT("fs.append.sync");
  if (::fdatasync(fd_) != 0) return IoError("fdatasync", path_);
  return Status::OK();
}

Status AppendFile::Close() {
  if (fd_ < 0) return Status::OK();
  Status status = Sync();
  if (::close(fd_) != 0 && status.ok()) status = IoError("close", path_);
  fd_ = -1;
  size_ = 0;
  path_.clear();
  return status;
}

}  // namespace storypivot
