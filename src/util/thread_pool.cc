#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace storypivot {

ThreadPool::ThreadPool(size_t num_threads, size_t max_queued)
    : max_queued_(std::max<size_t>(1, max_queued)) {
  if (num_threads <= 1) return;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_available_.NotifyAll();
  // Producers blocked at the queue cap must wake to observe stop_ and
  // fall back to inline execution (see Submit) — otherwise a full queue
  // at shutdown would strand them.
  queue_not_full_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  bool run_inline = false;
  {
    MutexLock lock(mu_);
    while (!stop_ && queue_.size() >= max_queued_) queue_not_full_.Wait(mu_);
    if (stop_) {
      // Shutting down: workers may already have drained the queue and
      // exited, so an enqueued task could never run. Run it inline
      // instead — every submitted task runs exactly once.
      run_inline = true;
    } else {
      queue_.push_back(std::move(task));
      ++in_flight_;
    }
  }
  if (run_inline) {
    task();
    return;
  }
  work_available_.NotifyOne();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return true;
  }
  bool run_inline = false;
  {
    MutexLock lock(mu_);
    if (stop_) {
      run_inline = true;  // Same exactly-once guarantee as Submit.
    } else if (queue_.size() >= max_queued_) {
      return false;
    } else {
      queue_.push_back(std::move(task));
      ++in_flight_;
    }
  }
  if (run_inline) {
    task();
    return true;
  }
  work_available_.NotifyOne();
  return true;
}

void ThreadPool::ParallelFor(
    size_t n, size_t num_chunks,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& body) {
  if (n == 0) return;
  num_chunks = std::clamp<size_t>(num_chunks, 1, n);
  // Boundaries depend only on (n, num_chunks): chunk c covers
  // [c*n/num_chunks, (c+1)*n/num_chunks).
  auto bound = [n, num_chunks](size_t c) { return c * n / num_chunks; };
  if (workers_.empty() || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) body(c, bound(c), bound(c + 1));
    return;
  }
  // Locals, so no SP_GUARDED_BY (the analysis only tracks member
  // declarations); `remaining` is protected by done_mu by construction.
  // lockcheck: name=ThreadPool.ParallelFor.done_mu
  Mutex done_mu;
  CondVar done_cv;
  size_t remaining = num_chunks;
  for (size_t c = 0; c < num_chunks; ++c) {
    Submit([&body, &done_mu, &done_cv, &remaining, bound, c] {
      body(c, bound(c), bound(c + 1));
      // Notify while holding the lock: the waiter owns done_cv on its
      // stack and destroys it as soon as it observes remaining == 0, so
      // an unlocked notify could touch a dead condition variable.
      MutexLock lock(done_mu);
      if (--remaining == 0) done_cv.NotifyAll();
    });
  }
  MutexLock lock(done_mu);
  while (remaining != 0) done_cv.Wait(done_mu);
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) work_available_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_not_full_.NotifyOne();
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace storypivot
