#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace storypivot {

ThreadPool::ThreadPool(size_t num_threads, size_t max_queued)
    : max_queued_(std::max<size_t>(1, max_queued)) {
  if (num_threads <= 1) return;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_not_full_.wait(lock, [this] { return queue_.size() < max_queued_; });
    SP_CHECK(!stop_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::ParallelFor(
    size_t n, size_t num_chunks,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& body) {
  if (n == 0) return;
  num_chunks = std::clamp<size_t>(num_chunks, 1, n);
  // Boundaries depend only on (n, num_chunks): chunk c covers
  // [c*n/num_chunks, (c+1)*n/num_chunks).
  auto bound = [n, num_chunks](size_t c) { return c * n / num_chunks; };
  if (workers_.empty() || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) body(c, bound(c), bound(c + 1));
    return;
  }
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = num_chunks;
  for (size_t c = 0; c < num_chunks; ++c) {
    Submit([&body, &done_mu, &done_cv, &remaining, bound, c] {
      body(c, bound(c), bound(c + 1));
      // Notify while holding the lock: the waiter owns done_cv on its
      // stack and destroys it as soon as it observes remaining == 0, so
      // an unlocked notify could touch a dead condition variable.
      std::unique_lock<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_not_full_.notify_one();
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace storypivot
