#ifndef STORYPIVOT_UTIL_TIMER_H_
#define STORYPIVOT_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace storypivot {

/// Monotonic wall-clock stopwatch used by the benchmark harness and the
/// engine's built-in performance counters.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart(), in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }

  /// Elapsed time in milliseconds (fractional).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  /// Elapsed time in seconds (fractional).
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace storypivot

#endif  // STORYPIVOT_UTIL_TIMER_H_
