#include "search/story_view.h"

#include <algorithm>

namespace storypivot::search {

StoryCorpus CorpusView(const StoryPivotEngine& engine) {
  StoryCorpus corpus;
  corpus.partitions = engine.partitions();
  corpus.total_stories = engine.TotalStories();
  const StoryPivotEngine::IdCounters counters = engine.id_counters();
  corpus.next_story = counters.next_story;
  corpus.partition_of.assign(counters.next_source, nullptr);
  for (const StorySet* part : corpus.partitions) {
    if (part->source() < corpus.partition_of.size()) {
      corpus.partition_of[part->source()] = part;
    }
  }
  return corpus;
}

std::vector<std::pair<SourceId, StoryId>> ResolvePostingsToStories(
    const std::vector<Posting>* postings, const StoryCorpus& corpus) {
  std::vector<std::pair<SourceId, StoryId>> out;
  if (postings == nullptr) return out;
  out.reserve(postings->size());
  for (const Posting& posting : *postings) {
    const StorySet* partition = corpus.partition(posting.source);
    if (partition == nullptr) continue;
    const StoryId story = partition->StoryOf(posting.snippet);
    if (story == kInvalidStoryId) continue;
    out.emplace_back(posting.source, story);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::pair<SourceId, StoryId>> StoriesIntersecting(
    const StoryCorpus& corpus, Timestamp begin, Timestamp end) {
  std::vector<std::pair<SourceId, StoryId>> out;
  for (const StorySet* partition : corpus.partitions) {
    for (const auto& [id, story] : partition->stories()) {
      if (story.start_time() <= end && story.end_time() >= begin) {
        out.emplace_back(partition->source(), id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace storypivot::search
