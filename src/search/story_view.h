#ifndef STORYPIVOT_SEARCH_STORY_VIEW_H_
#define STORYPIVOT_SEARCH_STORY_VIEW_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/story_set.h"
#include "model/ids.h"
#include "model/time.h"
#include "search/postings_index.h"

namespace storypivot::search {

/// The exact slice of engine state ranked and boolean queries read — the
/// seam that lets the same query code run against a live engine and
/// against a frozen snapshot (serve/, DESIGN.md §14). A corpus is a
/// VIEW: it borrows the partitions it points at and is only valid while
/// they are (for a live engine, until the next mutation; for a
/// ReadSnapshot, for the snapshot's lifetime).
struct StoryCorpus {
  /// All partitions, ordered by source id (what engine.partitions()
  /// returns).
  std::vector<const StorySet*> partitions;
  /// Dense source-id -> partition directory (nullptr gaps), sized
  /// next_source — the per-posting hot-path lookup.
  std::vector<const StorySet*> partition_of;
  /// Total stories across partitions (BM25's N denominator input).
  size_t total_stories = 0;
  /// Engine-wide story id bound, sizing dense per-story directories.
  StoryId next_story = 0;

  [[nodiscard]] const StorySet* partition(SourceId source) const {
    return source < partition_of.size() ? partition_of[source] : nullptr;
  }
};

/// Builds the corpus view of a live engine. Single-writer read: callers
/// must hold the engine's serial role (DESIGN.md §13), and the view is
/// invalidated by the next mutation.
[[nodiscard]] StoryCorpus CorpusView(const StoryPivotEngine& engine);

/// Resolves a postings list to the distinct (source, story) pairs its
/// snippets currently belong to, sorted ascending. Snippets whose source
/// or story assignment is gone resolve to nothing (postings are
/// snippet-granular; story membership is resolved at read time —
/// DESIGN.md §11). `postings` may be nullptr (empty result).
[[nodiscard]] std::vector<std::pair<SourceId, StoryId>>
ResolvePostingsToStories(const std::vector<Posting>* postings,
                         const StoryCorpus& corpus);

/// Distinct (source, story) pairs whose story span intersects the
/// inclusive window [begin, end], sorted ascending. Walks the story
/// partitions directly — postings cannot answer span intersection (a
/// story's span can cover a window none of its snippets falls into).
[[nodiscard]] std::vector<std::pair<SourceId, StoryId>> StoriesIntersecting(
    const StoryCorpus& corpus, Timestamp begin, Timestamp end);

}  // namespace storypivot::search

#endif  // STORYPIVOT_SEARCH_STORY_VIEW_H_
