#ifndef STORYPIVOT_SEARCH_SEARCH_ENGINE_H_
#define STORYPIVOT_SEARCH_SEARCH_ENGINE_H_

#include <string_view>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/query.h"
#include "search/postings_index.h"
#include "search/query_pipeline.h"
#include "search/ranker.h"
#include "util/sync.h"

namespace storypivot::search {

/// The search subsystem's facade: an incrementally maintained
/// PostingsIndex plus the ranked (BM25 top-k) and boolean (StoryIndex)
/// query entry points over it (DESIGN.md §11).
///
/// Attaching (construction) registers the object as the engine's
/// IngestObserver — the engine must have no other observer — and bulk-
/// builds the index from the live snippet store. The build is iteration-
/// order independent (postings lists are sorted, statistics are sums), so
/// an index rebuilt after DurableEngine recovery is identical to one
/// maintained live; that is why recovery needs no index snapshot
/// (rebuild-on-recover, DESIGN.md §11.4). Detaching happens in the
/// destructor. The engine must outlive this object.
///
/// Threading: mirrors the engine's single-writer model, machine-checked
/// via the `writer_` serial role (DESIGN.md §13). The engine invokes the
/// observer hooks only from serial sections (including the AddSnippets
/// parallel batch path, which notifies in arrival order from its serial
/// epilogue) — the hooks assert the role, so the analysis rejects any
/// new code path mutating the index outside it. Queries are safe
/// concurrently with each other in the absence of writers.
class SearchEngine final : public IngestObserver, public StoryIndex {
 public:
  /// Attaches to `engine` and indexes its current snippets.
  explicit SearchEngine(StoryPivotEngine* engine);
  ~SearchEngine() override;

  SearchEngine(const SearchEngine&) = delete;
  SearchEngine& operator=(const SearchEngine&) = delete;

  // IngestObserver — engine callbacks, not for direct use.
  void OnSnippetAdded(const Snippet& snippet) override;
  void OnSnippetRemoved(const Snippet& snippet) override;
  /// Recovery re-attach (DurableEngine::Reopen): reseats onto the
  /// rebuilt engine and rebuilds the index from its snippet store —
  /// the rebuild is bit-identical to an index maintained live
  /// (rebuild-on-recover, DESIGN.md §11.4).
  void OnEngineReplaced(StoryPivotEngine* engine) override;

  // StoryIndex — the boolean lookups StoryQuery::Find* routes through.
  // Each resolves postings to the snippets' *current* stories at call
  // time, deduplicated and sorted by (source, story).
  [[nodiscard]] std::vector<std::pair<SourceId, StoryId>> StoriesWithEntity(
      text::TermId term) const override;
  [[nodiscard]] std::vector<std::pair<SourceId, StoryId>> StoriesWithKeyword(
      text::TermId term) const override;
  [[nodiscard]] std::vector<std::pair<SourceId, StoryId>>
  StoriesWithEventType(std::string_view event_type) const override;
  [[nodiscard]] std::vector<std::pair<SourceId, StoryId>> StoriesInTimeRange(
      Timestamp begin, Timestamp end) const override;

  /// Canonicalizes a free-text query (see ParseQuery).
  [[nodiscard]] ParsedQuery Parse(std::string_view query) const;

  /// Parses and ranks in one step.
  [[nodiscard]] std::vector<StoryHit> Search(
      std::string_view query, const SearchOptions& options = {}) const;

  /// Ranks an already-parsed query through the index (RankStories).
  [[nodiscard]] std::vector<StoryHit> Search(
      const ParsedQuery& query, const SearchOptions& options = {}) const;

  /// Index-free reference ranking (RankStoriesScan); bit-identical to
  /// Search. Exposed for equivalence tests and benchmarking.
  [[nodiscard]] std::vector<StoryHit> SearchScan(
      const ParsedQuery& query, const SearchOptions& options = {}) const;

  [[nodiscard]] const PostingsIndex& index() const {
    writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
    return index_;
  }
  [[nodiscard]] const StoryPivotEngine& engine() const { return *engine_; }

 private:
  [[nodiscard]] std::vector<std::pair<SourceId, StoryId>> ResolveStories(
      const std::vector<Posting>* postings) const;

  /// Bulk-builds `index_` from the engine's live snippet store (the
  /// constructor and OnEngineReplaced share it).
  void BuildIndexFromStore() SP_REQUIRES(writer_);

  /// Phantom capability for the single-writer serial section the index
  /// shares with the engine (DESIGN.md §13). Observer hooks and query
  /// entry points assert it; only hook-driven code may mutate `index_`.
  // lockcheck: name=SearchEngine.writer_ role
  SerialSection writer_;
  /// Points at the engine this object observes; reseated only by
  /// OnEngineReplaced (recovery rebuilt the engine object).
  StoryPivotEngine* engine_;
  PostingsIndex index_ SP_GUARDED_BY(writer_);
};

}  // namespace storypivot::search

#endif  // STORYPIVOT_SEARCH_SEARCH_ENGINE_H_
