#ifndef STORYPIVOT_SEARCH_POSTINGS_INDEX_H_
#define STORYPIVOT_SEARCH_POSTINGS_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cow/cow_box.h"
#include "cow/persistent_map.h"
#include "model/ids.h"
#include "model/snippet.h"
#include "model/time.h"
#include "text/vocabulary.h"

namespace storypivot::search {

/// The fields a term can be posted under. Entity and keyword terms carry
/// the engine vocabularies' TermIds; event types are indexed by their
/// string (they have no engine vocabulary, and string keys keep the index
/// independent of rebuild iteration order).
enum class Field : uint8_t { kEntity = 0, kKeyword = 1, kEventType = 2 };

/// One posting: a snippet containing the term. Postings carry the source
/// and timestamp so queries can resolve the snippet's current story
/// (source -> partition -> StoryOf) and apply time-range filters without
/// touching the snippet store.
struct Posting {
  SnippetId snippet = kInvalidSnippetId;
  SourceId source = kInvalidSourceId;
  Timestamp timestamp = 0;
  /// Term frequency within the snippet (annotation weights are small
  /// integers, so sums over postings are exact in double).
  double tf = 0.0;
};

/// Snippet-granular inverted index over entity terms, keyword terms and
/// event types, maintained incrementally as snippets enter and leave the
/// engine (DESIGN.md §11).
///
/// Layout: term -> postings list sorted by snippet id. One posting per
/// (term, snippet), so a list's length IS the term's snippet document
/// frequency. Postings are snippet-granular on purpose: story merges and
/// splits move snippets between stories without touching term content,
/// so the index needs no merge/split maintenance at all — story-level
/// views resolve the live snippet -> story assignment at query time,
/// which also makes the index state a pure function of the set of live
/// snippets (deterministic across thread counts, insertion orders and
/// crash/rebuild cycles).
///
/// Posting lists are CowBox'd vectors hung off persistent (HAMT) maps,
/// so Freeze() is an O(1) structural share and a post/unpost after a
/// freeze copies only the touched list plus a trie path — the serving
/// tier's O(delta) capture rides on this (DESIGN.md §15).
class PostingsIndex {
 public:
  PostingsIndex() = default;

  PostingsIndex(const PostingsIndex&) = delete;
  PostingsIndex& operator=(const PostingsIndex&) = delete;
  PostingsIndex(PostingsIndex&&) = default;
  PostingsIndex& operator=(PostingsIndex&&) = default;

  /// Posts the snippet's entity terms, keyword terms and event type.
  void AddSnippet(const Snippet& snippet);

  /// Removes every posting of the snippet. The snippet must carry the
  /// same content it was added with.
  void RemoveSnippet(const Snippet& snippet);

  /// Postings of a vocabulary term, sorted by snippet id; nullptr when
  /// the term was never posted. `field` must be kEntity or kKeyword.
  [[nodiscard]] const std::vector<Posting>* Postings(
      Field field, text::TermId term) const;

  /// Postings of an event type, sorted by snippet id; nullptr if unseen.
  [[nodiscard]] const std::vector<Posting>* EventTypePostings(
      std::string_view event_type) const;

  /// Event types currently posted, in lexicographic order, with their
  /// document frequencies.
  [[nodiscard]] std::vector<std::pair<std::string, size_t>> EventTypes()
      const;

  /// Number of snippets containing the term (postings-list length).
  [[nodiscard]] size_t DocumentFrequency(Field field,
                                         text::TermId term) const;
  [[nodiscard]] size_t EventTypeFrequency(std::string_view event_type) const;

  /// Live snippets indexed.
  [[nodiscard]] size_t num_documents() const { return num_documents_; }

  /// Total content length (sum of entity + keyword weights) over all
  /// live snippets; with TotalStories() this yields the average story
  /// length BM25 normalizes against.
  [[nodiscard]] double total_length() const { return total_length_; }

  /// Total live postings across all fields (cost indicator).
  [[nodiscard]] size_t num_postings() const { return num_postings_; }

  /// Number of distinct terms posted per field.
  [[nodiscard]] size_t num_terms(Field field) const;

  /// O(1) frozen copy sharing every posting list with this index; the
  /// copy is immune to later writes (copy-on-write). Copying is still
  /// disallowed so accidental index copies stay compile errors.
  [[nodiscard]] PostingsIndex Freeze() const;

  /// Honest deep copy — freshly allocated posting lists, nothing
  /// shared. Kept for the deep-capture baseline
  /// (serve/ReadSnapshot::CaptureDeep, DESIGN.md §15).
  [[nodiscard]] PostingsIndex Clone() const;

 private:
  using PostingList = cow::CowBox<std::vector<Posting>>;
  using TermPostings = cow::PersistentMap<text::TermId, PostingList>;
  /// Heterogeneous string hashing so lookups take string_view; the HAMT
  /// iterates in hash order, so EventTypes() sorts explicitly.
  using EventPostings =
      cow::PersistentMap<std::string, PostingList,
                         std::hash<std::string_view>>;

  void Post(PostingList* list, const Posting& posting);
  void Unpost(TermPostings* postings, text::TermId term, SnippetId snippet);

  TermPostings entity_postings_;
  TermPostings keyword_postings_;
  EventPostings event_postings_;
  size_t num_documents_ = 0;
  size_t num_postings_ = 0;
  double total_length_ = 0.0;
};

}  // namespace storypivot::search

#endif  // STORYPIVOT_SEARCH_POSTINGS_INDEX_H_
