#include "search/ranker.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <utility>

#include "core/story_set.h"
#include "model/story.h"
#include "storage/snippet_store.h"
#include "util/logging.h"
#include "util/strings.h"

namespace storypivot::search {

namespace {

/// The shared scoring kernel. Both evaluation paths call exactly this
/// function with exactly the same operand values, which is what makes
/// their scores bit-identical.
double Bm25(double tf, double dl, double avgdl, double idf,
            const Bm25Params& params) {
  const double norm =
      params.k1 *
      (1.0 - params.b + params.b * (avgdl > 0.0 ? dl / avgdl : 0.0));
  return idf * (tf * (params.k1 + 1.0)) / (tf + norm);
}

/// A query term prepared for scoring: idf resolved, upper bound computed.
struct ScoredTerm {
  Field field = Field::kKeyword;
  text::TermId term = text::kInvalidTermId;
  std::string event_type;
  double idf = 0.0;
  /// MaxScore bound: BM25's tf saturation caps a term's contribution at
  /// idf * (k1 + 1) for any tf and any dl (norm > 0 since b < 1).
  double ub = 0.0;
};

/// Computes idf and bounds from (df, N) and orders terms by descending
/// bound — the processing order MaxScore pruning wants. Terms with df == 0
/// are dropped (they can contribute nothing); `dropped` reports whether
/// any were, which empties conjunctive queries. The sort tie-break is
/// total, so both evaluation paths order identical inputs identically.
std::vector<ScoredTerm> PrepareTerms(const ParsedQuery& query,
                                     const std::vector<size_t>& df, size_t n,
                                     const Bm25Params& params, bool* dropped) {
  *dropped = false;
  std::vector<ScoredTerm> terms;
  terms.reserve(query.terms.size());
  for (size_t i = 0; i < query.terms.size(); ++i) {
    if (df[i] == 0) {
      *dropped = true;
      continue;
    }
    ScoredTerm term;
    term.field = query.terms[i].field;
    term.term = query.terms[i].term;
    term.event_type = query.terms[i].event_type;
    term.idf = std::log(1.0 + (static_cast<double>(n - df[i]) + 0.5) /
                                  (static_cast<double>(df[i]) + 0.5));
    term.ub = term.idf * (params.k1 + 1.0);
    terms.push_back(std::move(term));
  }
  std::sort(terms.begin(), terms.end(),
            [](const ScoredTerm& a, const ScoredTerm& b) {
              if (a.ub != b.ub) return a.ub > b.ub;
              if (a.field != b.field) return a.field < b.field;
              if (a.term != b.term) return a.term < b.term;
              return a.event_type < b.event_type;
            });
  return terms;
}

double StoryLength(const Story& story) {
  return story.entities().Sum() + story.keywords().Sum();
}

/// Final deterministic order: score descending, then story id ascending.
/// Story ids are unique across the whole engine, so this is total.
void SortAndTruncate(std::vector<StoryHit>* hits, size_t k) {
  std::sort(hits->begin(), hits->end(),
            [](const StoryHit& a, const StoryHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.story < b.story;
            });
  if (hits->size() > k) hits->resize(k);
}

bool InWindow(const SearchOptions& options, Timestamp ts) {
  return !options.filter_time || (ts >= options.from && ts <= options.to);
}

}  // namespace

Status ValidateSearchOptions(const SearchOptions& options) {
  if (options.filter_time && options.from > options.to) {
    return Status::InvalidArgument(
        StrFormat("inverted time range: from (%lld) > to (%lld); the "
                  "[from, to] filter is inclusive, so this window matches "
                  "nothing",
                  static_cast<long long>(options.from),
                  static_cast<long long>(options.to)));
  }
  return Status::OK();
}

std::vector<StoryHit> RankStories(const PostingsIndex& index,
                                  const StoryPivotEngine& engine,
                                  const ParsedQuery& query,
                                  const SearchOptions& options) {
  return RankStories(index, CorpusView(engine), query, options);
}

std::vector<StoryHit> RankStories(const PostingsIndex& index,
                                  const StoryCorpus& corpus,
                                  const ParsedQuery& query,
                                  const SearchOptions& options,
                                  const GlobalSearchStats* global) {
  if (query.empty() || options.k == 0) return {};
  const size_t num_stories =
      global != nullptr ? global->total_stories : corpus.total_stories;
  if (num_stories == 0) return {};

  // Resolve each term's postings list; list length is its snippet df —
  // unless corpus-wide stats were supplied, which take precedence so all
  // shards derive identical idfs and bounds.
  std::vector<const std::vector<Posting>*> lists;
  std::vector<size_t> df;
  lists.reserve(query.terms.size());
  df.reserve(query.terms.size());
  for (const QueryTerm& term : query.terms) {
    const std::vector<Posting>* list =
        term.field == Field::kEventType
            ? index.EventTypePostings(term.event_type)
            : index.Postings(term.field, term.term);
    lists.push_back(list);
    df.push_back(list == nullptr ? 0 : list->size());
  }
  if (global != nullptr) {
    SP_CHECK(global->df.size() == query.terms.size());
    df = global->df;
  }

  bool dropped = false;
  const size_t num_documents =
      global != nullptr ? global->num_documents : index.num_documents();
  std::vector<ScoredTerm> terms =
      PrepareTerms(query, df, num_documents, options.bm25, &dropped);
  if (terms.empty()) return {};
  if (options.mode == MatchMode::kAll && dropped) return {};

  const double total_length =
      global != nullptr ? global->total_length : index.total_length();
  const double avgdl = total_length / static_cast<double>(num_stories);

  struct Candidate {
    SourceId source = kInvalidSourceId;
    StoryId story = kInvalidStoryId;
    double score = 0.0;
    uint32_t matched = 0;
    /// tf accumulator for the term currently being walked.
    double tf = 0.0;
    int last_term = -1;
    /// Story length, resolved lazily the first time the story is scored.
    double dl = -1.0;
  };
  std::vector<Candidate> candidates;
  // Dense candidate directory: story ids are assigned from one engine-wide
  // counter, so a flat array beats a hash map on the per-posting hot path.
  // The partition directory comes prefilled with the corpus.
  constexpr uint32_t kNoCandidate = UINT32_MAX;
  std::vector<uint32_t> candidate_of(corpus.next_story, kNoCandidate);
  auto partition = [&](SourceId source) { return corpus.partition(source); };

  double remaining_ub = 0.0;
  for (const ScoredTerm& term : terms) remaining_ub += term.ub;

  // Term-at-a-time evaluation, best (highest-bound) term first. Once the
  // bounds of the unprocessed terms cannot lift a fresh story past the
  // current k-th best score, new candidates stop being admitted; stories
  // already admitted keep accumulating so their final scores stay exact.
  bool allow_new = true;
  std::vector<size_t> touched;
  std::vector<double> scores_scratch;
  for (size_t i = 0; i < terms.size(); ++i) {
    const ScoredTerm& term = terms[i];
    const std::vector<Posting>* list =
        term.field == Field::kEventType
            ? index.EventTypePostings(term.event_type)
            : index.Postings(term.field, term.term);
    if (list == nullptr) {
      // Possible only under global stats: the term exists corpus-wide
      // (df > 0) but has no postings on this shard. Walking an empty
      // list keeps the bound bookkeeping identical on every shard. (A
      // story lives wholly on one shard, so under kAll a shard without
      // the term correctly ends up empty-handed.)
      SP_CHECK(global != nullptr);
      static const std::vector<Posting>& empty = *new std::vector<Posting>();
      list = &empty;
    }
    touched.clear();
    for (const Posting& posting : *list) {
      if (!InWindow(options, posting.timestamp)) continue;
      const StorySet* part = partition(posting.source);
      if (part == nullptr) continue;
      const StoryId story = part->StoryOf(posting.snippet);
      if (story == kInvalidStoryId || story >= candidate_of.size()) continue;
      uint32_t slot = candidate_of[story];
      if (slot == kNoCandidate) {
        if (!allow_new) continue;
        slot = static_cast<uint32_t>(candidates.size());
        candidate_of[story] = slot;
        Candidate candidate;
        candidate.source = posting.source;
        candidate.story = story;
        candidates.push_back(candidate);
      }
      Candidate& candidate = candidates[slot];
      if (candidate.last_term != static_cast<int>(i)) {
        candidate.last_term = static_cast<int>(i);
        candidate.tf = 0.0;
        touched.push_back(slot);
      }
      candidate.tf += posting.tf;
    }
    for (size_t ci : touched) {
      Candidate& candidate = candidates[ci];
      if (candidate.dl < 0.0) {
        const StorySet* part = partition(candidate.source);
        const Story* story = part->FindStory(candidate.story);
        SP_CHECK(story != nullptr);
        candidate.dl = StoryLength(*story);
      }
      candidate.score +=
          Bm25(candidate.tf, candidate.dl, avgdl, term.idf, options.bm25);
      ++candidate.matched;
    }
    remaining_ub -= term.ub;
    if (options.mode == MatchMode::kAll) {
      // Conjunctive: every match must appear under the first (rarest-
      // bounded) term too, so later terms never admit anyone new.
      allow_new = false;
    } else if (allow_new && candidates.size() >= options.k &&
               remaining_ub > 0.0) {
      scores_scratch.clear();
      scores_scratch.reserve(candidates.size());
      for (const Candidate& candidate : candidates) {
        scores_scratch.push_back(candidate.score);
      }
      std::nth_element(scores_scratch.begin(),
                       scores_scratch.begin() + (options.k - 1),
                       scores_scratch.end(), std::greater<double>());
      const double theta = scores_scratch[options.k - 1];
      // Scores only grow, so theta lower-bounds the final k-th best; a
      // story not yet admitted can reach at most remaining_ub.
      if (remaining_ub < theta) allow_new = false;
    }
  }

  std::vector<StoryHit> hits;
  hits.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    if (options.mode == MatchMode::kAll &&
        candidate.matched != static_cast<uint32_t>(terms.size())) {
      continue;
    }
    StoryHit hit;
    hit.source = candidate.source;
    hit.story = candidate.story;
    hit.score = candidate.score;
    hit.matched_terms = candidate.matched;
    hits.push_back(hit);
  }
  SortAndTruncate(&hits, options.k);
  return hits;
}

std::vector<StoryHit> MergeTopK(std::vector<std::vector<StoryHit>> per_shard,
                                size_t k) {
  std::vector<StoryHit> merged;
  size_t total = 0;
  for (const std::vector<StoryHit>& hits : per_shard) total += hits.size();
  merged.reserve(total);
  for (std::vector<StoryHit>& hits : per_shard) {
    merged.insert(merged.end(), hits.begin(), hits.end());
  }
  SortAndTruncate(&merged, k);
  return merged;
}

std::vector<StoryHit> RankStoriesScan(const StoryPivotEngine& engine,
                                      const ParsedQuery& query,
                                      const SearchOptions& options) {
  if (query.empty() || options.k == 0) return {};
  const size_t num_stories = engine.TotalStories();
  if (num_stories == 0) return {};

  // Document frequencies the hard way: one pass over the snippet store.
  std::vector<size_t> df(query.terms.size(), 0);
  size_t num_documents = 0;
  engine.store().ForEach([&](const Snippet& snippet) {
    ++num_documents;
    for (size_t i = 0; i < query.terms.size(); ++i) {
      const QueryTerm& term = query.terms[i];
      switch (term.field) {
        case Field::kEntity:
          if (snippet.entities.ValueOf(term.term) > 0.0) ++df[i];
          break;
        case Field::kKeyword:
          if (snippet.keywords.ValueOf(term.term) > 0.0) ++df[i];
          break;
        case Field::kEventType:
          if (snippet.event_type == term.event_type) ++df[i];
          break;
      }
    }
  });

  bool dropped = false;
  std::vector<ScoredTerm> terms =
      PrepareTerms(query, df, num_documents, options.bm25, &dropped);
  if (terms.empty()) return {};
  if (options.mode == MatchMode::kAll && dropped) return {};

  double total_length = 0.0;
  for (const StorySet* part : engine.partitions()) {
    for (const auto& [id, story] : part->stories()) {
      total_length += StoryLength(story);
    }
  }
  const double avgdl = total_length / static_cast<double>(num_stories);

  // Term frequency of `term` within the story. Without a time filter,
  // entity/keyword tfs come straight off the story aggregates (the same
  // exact-integer sums the postings walk produces); event types and
  // filtered queries walk the member snippets.
  auto story_tf = [&](const Story& story, const ScoredTerm& term) {
    if (!options.filter_time) {
      if (term.field == Field::kEntity) {
        return story.entities().ValueOf(term.term);
      }
      if (term.field == Field::kKeyword) {
        return story.keywords().ValueOf(term.term);
      }
    }
    double tf = 0.0;
    for (SnippetId id : story.snippets()) {
      const Snippet* snippet = engine.store().Find(id);
      SP_CHECK(snippet != nullptr);
      if (!InWindow(options, snippet->timestamp)) continue;
      switch (term.field) {
        case Field::kEntity:
          tf += snippet->entities.ValueOf(term.term);
          break;
        case Field::kKeyword:
          tf += snippet->keywords.ValueOf(term.term);
          break;
        case Field::kEventType:
          if (snippet->event_type == term.event_type) tf += 1.0;
          break;
      }
    }
    return tf;
  };

  std::vector<StoryHit> hits;
  for (const StorySet* part : engine.partitions()) {
    for (const auto& [id, story] : part->stories()) {
      const double dl = StoryLength(story);
      double score = 0.0;
      uint32_t matched = 0;
      for (const ScoredTerm& term : terms) {
        const double tf = story_tf(story, term);
        if (tf <= 0.0) continue;
        score += Bm25(tf, dl, avgdl, term.idf, options.bm25);
        ++matched;
      }
      if (matched == 0) continue;
      if (options.mode == MatchMode::kAll &&
          matched != static_cast<uint32_t>(terms.size())) {
        continue;
      }
      StoryHit hit;
      hit.source = part->source();
      hit.story = id;
      hit.score = score;
      hit.matched_terms = matched;
      hits.push_back(hit);
    }
  }
  SortAndTruncate(&hits, options.k);
  return hits;
}

}  // namespace storypivot::search
