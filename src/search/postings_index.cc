#include "search/postings_index.h"

#include <algorithm>

#include "util/logging.h"

namespace storypivot::search {

namespace {

/// lower_bound over a postings list sorted by snippet id.
std::vector<Posting>::iterator FindPosting(std::vector<Posting>* list,
                                           SnippetId snippet) {
  return std::lower_bound(
      list->begin(), list->end(), snippet,
      [](const Posting& p, SnippetId id) { return p.snippet < id; });
}

}  // namespace

void PostingsIndex::Post(std::vector<Posting>* list,
                         const Posting& posting) {
  auto it = FindPosting(list, posting.snippet);
  SP_CHECK(it == list->end() || it->snippet != posting.snippet);
  list->insert(it, posting);
  ++num_postings_;
}

void PostingsIndex::Unpost(TermPostings* postings, text::TermId term,
                           SnippetId snippet) {
  auto entry = postings->find(term);
  SP_CHECK(entry != postings->end());
  auto it = FindPosting(&entry->second, snippet);
  SP_CHECK(it != entry->second.end() && it->snippet == snippet);
  entry->second.erase(it);
  --num_postings_;
  if (entry->second.empty()) postings->erase(entry);
}

void PostingsIndex::AddSnippet(const Snippet& snippet) {
  Posting posting;
  posting.snippet = snippet.id;
  posting.source = snippet.source;
  posting.timestamp = snippet.timestamp;
  for (const auto& [term, tf] : snippet.entities.entries()) {
    posting.tf = tf;
    Post(&entity_postings_[term], posting);
  }
  for (const auto& [term, tf] : snippet.keywords.entries()) {
    posting.tf = tf;
    Post(&keyword_postings_[term], posting);
  }
  if (!snippet.event_type.empty()) {
    posting.tf = 1.0;
    Post(&event_postings_[snippet.event_type], posting);
  }
  ++num_documents_;
  total_length_ += snippet.entities.Sum() + snippet.keywords.Sum();
}

void PostingsIndex::RemoveSnippet(const Snippet& snippet) {
  for (const auto& [term, tf] : snippet.entities.entries()) {
    Unpost(&entity_postings_, term, snippet.id);
  }
  for (const auto& [term, tf] : snippet.keywords.entries()) {
    Unpost(&keyword_postings_, term, snippet.id);
  }
  if (!snippet.event_type.empty()) {
    auto entry = event_postings_.find(snippet.event_type);
    SP_CHECK(entry != event_postings_.end());
    auto it = FindPosting(&entry->second, snippet.id);
    SP_CHECK(it != entry->second.end() && it->snippet == snippet.id);
    entry->second.erase(it);
    --num_postings_;
    if (entry->second.empty()) event_postings_.erase(entry);
  }
  SP_CHECK(num_documents_ > 0);
  --num_documents_;
  total_length_ -= snippet.entities.Sum() + snippet.keywords.Sum();
}

const std::vector<Posting>* PostingsIndex::Postings(
    Field field, text::TermId term) const {
  SP_CHECK(field == Field::kEntity || field == Field::kKeyword);
  const TermPostings& postings =
      field == Field::kEntity ? entity_postings_ : keyword_postings_;
  auto it = postings.find(term);
  return it == postings.end() ? nullptr : &it->second;
}

const std::vector<Posting>* PostingsIndex::EventTypePostings(
    std::string_view event_type) const {
  auto it = event_postings_.find(event_type);
  return it == event_postings_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, size_t>> PostingsIndex::EventTypes()
    const {
  std::vector<std::pair<std::string, size_t>> out;
  out.reserve(event_postings_.size());
  for (const auto& [type, postings] : event_postings_) {
    out.push_back({type, postings.size()});
  }
  return out;
}

size_t PostingsIndex::DocumentFrequency(Field field,
                                        text::TermId term) const {
  const std::vector<Posting>* postings = Postings(field, term);
  return postings == nullptr ? 0 : postings->size();
}

size_t PostingsIndex::EventTypeFrequency(std::string_view event_type) const {
  const std::vector<Posting>* postings = EventTypePostings(event_type);
  return postings == nullptr ? 0 : postings->size();
}

size_t PostingsIndex::num_terms(Field field) const {
  switch (field) {
    case Field::kEntity:
      return entity_postings_.size();
    case Field::kKeyword:
      return keyword_postings_.size();
    case Field::kEventType:
      return event_postings_.size();
  }
  return 0;
}

PostingsIndex PostingsIndex::Clone() const {
  PostingsIndex copy;
  copy.entity_postings_ = entity_postings_;
  copy.keyword_postings_ = keyword_postings_;
  copy.event_postings_ = event_postings_;
  copy.num_documents_ = num_documents_;
  copy.num_postings_ = num_postings_;
  copy.total_length_ = total_length_;
  return copy;
}

}  // namespace storypivot::search
