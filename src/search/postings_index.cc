#include "search/postings_index.h"

#include <algorithm>

#include "util/logging.h"

namespace storypivot::search {

namespace {

/// lower_bound over a postings list sorted by snippet id.
std::vector<Posting>::iterator FindPosting(std::vector<Posting>* list,
                                           SnippetId snippet) {
  return std::lower_bound(
      list->begin(), list->end(), snippet,
      [](const Posting& p, SnippetId id) { return p.snippet < id; });
}

}  // namespace

void PostingsIndex::Post(PostingList* box, const Posting& posting) {
  std::vector<Posting>* list = box->Mutate();
  auto it = FindPosting(list, posting.snippet);
  SP_CHECK(it == list->end() || it->snippet != posting.snippet);
  list->insert(it, posting);
  ++num_postings_;
}

void PostingsIndex::Unpost(TermPostings* postings, text::TermId term,
                           SnippetId snippet) {
  PostingList* box = postings->FindMutable(term);
  SP_CHECK(box != nullptr);
  std::vector<Posting>* list = box->Mutate();
  auto it = FindPosting(list, snippet);
  SP_CHECK(it != list->end() && it->snippet == snippet);
  list->erase(it);
  --num_postings_;
  if (list->empty()) postings->Erase(term);
}

void PostingsIndex::AddSnippet(const Snippet& snippet) {
  Posting posting;
  posting.snippet = snippet.id;
  posting.source = snippet.source;
  posting.timestamp = snippet.timestamp;
  for (const auto& [term, tf] : snippet.entities.entries()) {
    posting.tf = tf;
    Post(&entity_postings_.GetOrInsert(term), posting);
  }
  for (const auto& [term, tf] : snippet.keywords.entries()) {
    posting.tf = tf;
    Post(&keyword_postings_.GetOrInsert(term), posting);
  }
  if (!snippet.event_type.empty()) {
    posting.tf = 1.0;
    Post(&event_postings_.GetOrInsert(snippet.event_type), posting);
  }
  ++num_documents_;
  total_length_ += snippet.entities.Sum() + snippet.keywords.Sum();
}

void PostingsIndex::RemoveSnippet(const Snippet& snippet) {
  for (const auto& [term, tf] : snippet.entities.entries()) {
    Unpost(&entity_postings_, term, snippet.id);
  }
  for (const auto& [term, tf] : snippet.keywords.entries()) {
    Unpost(&keyword_postings_, term, snippet.id);
  }
  if (!snippet.event_type.empty()) {
    PostingList* box =
        event_postings_.FindMutable(std::string_view(snippet.event_type));
    SP_CHECK(box != nullptr);
    std::vector<Posting>* list = box->Mutate();
    auto it = FindPosting(list, snippet.id);
    SP_CHECK(it != list->end() && it->snippet == snippet.id);
    list->erase(it);
    --num_postings_;
    if (list->empty()) {
      event_postings_.Erase(std::string_view(snippet.event_type));
    }
  }
  SP_CHECK(num_documents_ > 0);
  --num_documents_;
  total_length_ -= snippet.entities.Sum() + snippet.keywords.Sum();
}

const std::vector<Posting>* PostingsIndex::Postings(
    Field field, text::TermId term) const {
  SP_CHECK(field == Field::kEntity || field == Field::kKeyword);
  const TermPostings& postings =
      field == Field::kEntity ? entity_postings_ : keyword_postings_;
  const PostingList* list = postings.Find(term);
  return list == nullptr ? nullptr : &list->read();
}

const std::vector<Posting>* PostingsIndex::EventTypePostings(
    std::string_view event_type) const {
  const PostingList* list = event_postings_.Find(event_type);
  return list == nullptr ? nullptr : &list->read();
}

std::vector<std::pair<std::string, size_t>> PostingsIndex::EventTypes()
    const {
  std::vector<std::pair<std::string, size_t>> out;
  out.reserve(event_postings_.size());
  event_postings_.ForEach(
      [&out](const std::string& type, const PostingList& postings) {
        out.push_back({type, postings.read().size()});
      });
  // The HAMT iterates in hash order; enumeration promises lexicographic.
  std::sort(out.begin(), out.end());
  return out;
}

size_t PostingsIndex::DocumentFrequency(Field field,
                                        text::TermId term) const {
  const std::vector<Posting>* postings = Postings(field, term);
  return postings == nullptr ? 0 : postings->size();
}

size_t PostingsIndex::EventTypeFrequency(std::string_view event_type) const {
  const std::vector<Posting>* postings = EventTypePostings(event_type);
  return postings == nullptr ? 0 : postings->size();
}

size_t PostingsIndex::num_terms(Field field) const {
  switch (field) {
    case Field::kEntity:
      return entity_postings_.size();
    case Field::kKeyword:
      return keyword_postings_.size();
    case Field::kEventType:
      return event_postings_.size();
  }
  return 0;
}

PostingsIndex PostingsIndex::Freeze() const {
  PostingsIndex frozen;
  frozen.entity_postings_ = entity_postings_;    // O(1) structural shares.
  frozen.keyword_postings_ = keyword_postings_;
  frozen.event_postings_ = event_postings_;
  frozen.num_documents_ = num_documents_;
  frozen.num_postings_ = num_postings_;
  frozen.total_length_ = total_length_;
  return frozen;
}

PostingsIndex PostingsIndex::Clone() const {
  const auto deep = [](const PostingList& list) { return list.DeepCopy(); };
  PostingsIndex copy;
  copy.entity_postings_ = entity_postings_.Materialize(deep);
  copy.keyword_postings_ = keyword_postings_.Materialize(deep);
  copy.event_postings_ = event_postings_.Materialize(deep);
  copy.num_documents_ = num_documents_;
  copy.num_postings_ = num_postings_;
  copy.total_length_ = total_length_;
  return copy;
}

}  // namespace storypivot::search
