#include "search/search_engine.h"

#include <algorithm>

#include "core/story_set.h"
#include "util/logging.h"

namespace storypivot::search {

SearchEngine::SearchEngine(StoryPivotEngine* engine) : engine_(engine) {
  SP_CHECK(engine_ != nullptr);
  // One observer per engine: silently stacking indexes would leave the
  // earlier one stale.
  SP_CHECK(engine_->ingest_observer() == nullptr);
  // The lambda is a separate function to the thread-safety analysis, so
  // it re-asserts the serial role the constructing thread holds.
  engine_->store().ForEach([this](const Snippet& snippet) {
    writer_.AssertInSection();
    index_.AddSnippet(snippet);
  });
  engine_->set_ingest_observer(this);
}

SearchEngine::~SearchEngine() {
  if (engine_->ingest_observer() == this) {
    engine_->set_ingest_observer(nullptr);
  }
}

void SearchEngine::OnSnippetAdded(const Snippet& snippet) {
  // The engine fires observer hooks only from serial sections
  // (NotifyAdded is SP_REQUIRES(serial_)), so the role holds here.
  writer_.AssertInSection();
  index_.AddSnippet(snippet);
}

void SearchEngine::OnSnippetRemoved(const Snippet& snippet) {
  writer_.AssertInSection();
  index_.RemoveSnippet(snippet);
}

std::vector<std::pair<SourceId, StoryId>> SearchEngine::ResolveStories(
    const std::vector<Posting>* postings) const {
  std::vector<std::pair<SourceId, StoryId>> out;
  if (postings == nullptr) return out;
  out.reserve(postings->size());
  // Source ids are dense; a prefilled directory keeps the per-posting
  // partition lookup off the hash path.
  std::vector<const StorySet*> partition_of;
  for (const StorySet* part : engine_->partitions()) {
    if (part->source() >= partition_of.size()) {
      partition_of.resize(part->source() + 1, nullptr);
    }
    partition_of[part->source()] = part;
  }
  for (const Posting& posting : *postings) {
    const StorySet* partition = posting.source < partition_of.size()
                                    ? partition_of[posting.source]
                                    : nullptr;
    if (partition == nullptr) continue;
    const StoryId story = partition->StoryOf(posting.snippet);
    if (story == kInvalidStoryId) continue;
    out.emplace_back(posting.source, story);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::pair<SourceId, StoryId>> SearchEngine::StoriesWithEntity(
    text::TermId term) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return ResolveStories(index_.Postings(Field::kEntity, term));
}

std::vector<std::pair<SourceId, StoryId>> SearchEngine::StoriesWithKeyword(
    text::TermId term) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return ResolveStories(index_.Postings(Field::kKeyword, term));
}

std::vector<std::pair<SourceId, StoryId>> SearchEngine::StoriesWithEventType(
    std::string_view event_type) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return ResolveStories(index_.EventTypePostings(event_type));
}

std::vector<std::pair<SourceId, StoryId>> SearchEngine::StoriesInTimeRange(
    Timestamp begin, Timestamp end) const {
  // Postings cannot answer span intersection (a story's span can cover a
  // window none of its snippets falls into), so this walks the story
  // partitions directly — O(1) per story against the maintained spans,
  // with the Find* win coming from k-bounded overview materialization.
  std::vector<std::pair<SourceId, StoryId>> out;
  for (const StorySet* partition : engine_->partitions()) {
    for (const auto& [id, story] : partition->stories()) {
      if (story.start_time() <= end && story.end_time() >= begin) {
        out.emplace_back(partition->source(), id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

ParsedQuery SearchEngine::Parse(std::string_view query) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return ParseQuery(*engine_, index_, query);
}

std::vector<StoryHit> SearchEngine::Search(
    std::string_view query, const SearchOptions& options) const {
  return Search(Parse(query), options);
}

std::vector<StoryHit> SearchEngine::Search(
    const ParsedQuery& query, const SearchOptions& options) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return RankStories(index_, *engine_, query, options);
}

std::vector<StoryHit> SearchEngine::SearchScan(
    const ParsedQuery& query, const SearchOptions& options) const {
  return RankStoriesScan(*engine_, query, options);
}

}  // namespace storypivot::search
