#include "search/search_engine.h"

#include <algorithm>

#include "core/story_set.h"
#include "search/story_view.h"
#include "util/logging.h"

namespace storypivot::search {

SearchEngine::SearchEngine(StoryPivotEngine* engine) : engine_(engine) {
  SP_CHECK(engine_ != nullptr);
  // One observer per engine: silently stacking indexes would leave the
  // earlier one stale.
  SP_CHECK(engine_->ingest_observer() == nullptr);
  writer_.AssertInSection();  // The constructing thread is the writer.
  BuildIndexFromStore();
  engine_->set_ingest_observer(this);
}

SearchEngine::~SearchEngine() {
  if (engine_->ingest_observer() == this) {
    engine_->set_ingest_observer(nullptr);
  }
}

void SearchEngine::OnSnippetAdded(const Snippet& snippet) {
  // The engine fires observer hooks only from serial sections
  // (NotifyAdded is SP_REQUIRES(serial_)), so the role holds here.
  writer_.AssertInSection();
  index_.AddSnippet(snippet);
}

void SearchEngine::OnSnippetRemoved(const Snippet& snippet) {
  writer_.AssertInSection();
  index_.RemoveSnippet(snippet);
}

void SearchEngine::OnEngineReplaced(StoryPivotEngine* engine) {
  // Recovery rebuilt the engine object (DurableEngine::Reopen); the old
  // one is about to be destroyed, so reseat before touching anything.
  writer_.AssertInSection();
  SP_CHECK(engine != nullptr);
  engine_ = engine;
  index_ = PostingsIndex();
  BuildIndexFromStore();
}

void SearchEngine::BuildIndexFromStore() {
  // The lambda is a separate function to the thread-safety analysis, so
  // it re-asserts the serial role the calling thread holds.
  engine_->store().ForEach([this](const Snippet& snippet) {
    writer_.AssertInSection();
    index_.AddSnippet(snippet);
  });
}

std::vector<std::pair<SourceId, StoryId>> SearchEngine::ResolveStories(
    const std::vector<Posting>* postings) const {
  // The corpus view carries the dense partition directory that keeps
  // the per-posting lookup off the hash path (story_view.h).
  return ResolvePostingsToStories(postings, CorpusView(*engine_));
}

std::vector<std::pair<SourceId, StoryId>> SearchEngine::StoriesWithEntity(
    text::TermId term) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return ResolveStories(index_.Postings(Field::kEntity, term));
}

std::vector<std::pair<SourceId, StoryId>> SearchEngine::StoriesWithKeyword(
    text::TermId term) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return ResolveStories(index_.Postings(Field::kKeyword, term));
}

std::vector<std::pair<SourceId, StoryId>> SearchEngine::StoriesWithEventType(
    std::string_view event_type) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return ResolveStories(index_.EventTypePostings(event_type));
}

std::vector<std::pair<SourceId, StoryId>> SearchEngine::StoriesInTimeRange(
    Timestamp begin, Timestamp end) const {
  // Span intersection walks the partitions (see StoriesIntersecting) —
  // the Find* win comes from k-bounded overview materialization.
  return StoriesIntersecting(CorpusView(*engine_), begin, end);
}

ParsedQuery SearchEngine::Parse(std::string_view query) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return ParseQuery(*engine_, index_, query);
}

std::vector<StoryHit> SearchEngine::Search(
    std::string_view query, const SearchOptions& options) const {
  return Search(Parse(query), options);
}

std::vector<StoryHit> SearchEngine::Search(
    const ParsedQuery& query, const SearchOptions& options) const {
  writer_.AssertInSection();  // Single-writer read (DESIGN.md §13).
  return RankStories(index_, *engine_, query, options);
}

std::vector<StoryHit> SearchEngine::SearchScan(
    const ParsedQuery& query, const SearchOptions& options) const {
  return RankStoriesScan(*engine_, query, options);
}

}  // namespace storypivot::search
