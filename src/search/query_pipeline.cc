#include "search/query_pipeline.h"

#include <utility>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "util/strings.h"

namespace storypivot::search {

namespace {

/// Case-insensitive entity-vocabulary match; lowest id wins.
text::TermId EntityTermOfToken(const text::Vocabulary& vocabulary,
                               const std::string& token) {
  text::TermId exact = vocabulary.Lookup(token);
  if (exact != text::kInvalidTermId) return exact;
  for (text::TermId id = 0; id < vocabulary.size(); ++id) {
    if (ToLower(vocabulary.TermOf(id)) == token) return id;
  }
  return text::kInvalidTermId;
}

/// Case-insensitive event-type match against the types the index has
/// seen; lexicographically smallest canonical form wins (EventTypes()
/// enumerates in order).
std::string EventTypeOfToken(const PostingsIndex& index,
                             const std::string& token) {
  if (index.EventTypePostings(token) != nullptr) return token;
  for (const auto& [type, df] : index.EventTypes()) {
    if (ToLower(type) == token) return type;
  }
  return {};
}

}  // namespace

ParsedQuery ParseQuery(const StoryPivotEngine& engine,
                       const PostingsIndex& index, std::string_view query) {
  return ParseQuery(engine.gazetteer(), engine.entity_vocabulary(),
                    engine.keyword_vocabulary(), index, query);
}

ParsedQuery ParseQuery(const text::Gazetteer& gazetteer,
                       const text::Vocabulary& entities,
                       const text::Vocabulary& keywords,
                       const PostingsIndex& index, std::string_view query) {
  ParsedQuery out;
  text::Tokenizer tokenizer;
  std::vector<text::Token> tokens = tokenizer.Tokenize(query);
  if (tokens.empty()) return out;

  auto add_term = [&out](QueryTerm term) {
    for (const QueryTerm& existing : out.terms) {
      if (existing.field != term.field) continue;
      if (term.field == Field::kEventType
              ? existing.event_type == term.event_type
              : existing.term == term.term) {
        return;  // Duplicate resolution.
      }
    }
    out.terms.push_back(std::move(term));
  };

  // Multi-token entity aliases first: the gazetteer consumes its tokens,
  // exactly as AnnotationPipeline does on ingest.
  std::vector<bool> consumed(tokens.size(), false);
  for (const text::EntityMention& mention : gazetteer.FindMentions(tokens)) {
    QueryTerm term;
    term.field = Field::kEntity;
    term.term = mention.entity;
    for (size_t i = mention.token_begin; i < mention.token_end; ++i) {
      if (!term.surface.empty()) term.surface += ' ';
      term.surface += tokens[i].text;
      consumed[i] = true;
    }
    add_term(std::move(term));
  }

  for (size_t i = 0; i < tokens.size(); ++i) {
    if (consumed[i]) continue;
    const std::string& word = tokens[i].text;

    text::TermId entity = EntityTermOfToken(entities, word);
    if (entity != text::kInvalidTermId) {
      add_term({Field::kEntity, entity, {}, word});
      continue;
    }

    if (!text::IsStopword(word)) {
      // Exact and stemmed keyword forms, mirroring ingest stemming.
      text::TermId keyword = keywords.Lookup(word);
      if (keyword == text::kInvalidTermId) {
        keyword = keywords.Lookup(text::PorterStem(word));
      }
      if (keyword != text::kInvalidTermId) {
        add_term({Field::kKeyword, keyword, {}, word});
        continue;
      }
    } else {
      continue;  // Unmatched stopwords are dropped silently.
    }

    std::string event_type = EventTypeOfToken(index, word);
    if (!event_type.empty()) {
      add_term({Field::kEventType, text::kInvalidTermId,
                std::move(event_type), word});
      continue;
    }

    out.unmatched.push_back(word);
  }
  return out;
}

}  // namespace storypivot::search
