#ifndef STORYPIVOT_SEARCH_QUERY_PIPELINE_H_
#define STORYPIVOT_SEARCH_QUERY_PIPELINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "search/postings_index.h"
#include "text/gazetteer.h"
#include "text/vocabulary.h"

namespace storypivot::search {

/// One resolved query term: which field it searches and, for vocabulary
/// fields, the canonical TermId ingest would have produced.
struct QueryTerm {
  Field field = Field::kKeyword;
  /// Canonical term id (kEntity / kKeyword fields).
  text::TermId term = text::kInvalidTermId;
  /// Canonical event type (kEventType field).
  std::string event_type;
  /// The query text this term came from, for display/diagnostics.
  std::string surface;
};

/// A free-text query after canonicalization: resolved terms (deduplicated,
/// in resolution order) plus the tokens that matched nothing (reported so
/// callers can surface "ignored: ..." instead of silently dropping them).
struct ParsedQuery {
  std::vector<QueryTerm> terms;
  std::vector<std::string> unmatched;

  [[nodiscard]] bool empty() const { return terms.empty(); }
};

/// Canonicalizes a free-text query through the same text path ingest
/// uses, fixing the historical alias/stem mismatch between queries and
/// indexed content (DESIGN.md §11):
///
///   1. tokenize (lowercasing, like AnnotationPipeline);
///   2. gazetteer alias mentions become entity terms ("MH17" resolves to
///      its canonical entity), consuming their tokens;
///   3. each remaining token is tried as an entity name
///      (case-insensitive), then — stopwords excluded — as a keyword via
///      Porter stemming, then as an event type known to `index`
///      (case-insensitive);
///   4. anything left lands in `unmatched`.
///
/// Duplicate resolutions collapse to one term.
[[nodiscard]] ParsedQuery ParseQuery(const StoryPivotEngine& engine,
                                     const PostingsIndex& index,
                                     std::string_view query);

/// Same canonicalization over explicit text-state components instead of
/// a live engine — the entry point snapshot readers (serve/ReadSnapshot)
/// use. The engine overload forwards here with the engine's gazetteer
/// and vocabularies, so the two are identical on equal state by
/// construction.
[[nodiscard]] ParsedQuery ParseQuery(const text::Gazetteer& gazetteer,
                                     const text::Vocabulary& entities,
                                     const text::Vocabulary& keywords,
                                     const PostingsIndex& index,
                                     std::string_view query);

}  // namespace storypivot::search

#endif  // STORYPIVOT_SEARCH_QUERY_PIPELINE_H_
