#ifndef STORYPIVOT_SEARCH_RANKER_H_
#define STORYPIVOT_SEARCH_RANKER_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "model/ids.h"
#include "model/time.h"
#include "search/postings_index.h"
#include "search/query_pipeline.h"
#include "search/story_view.h"
#include "util/status.h"

namespace storypivot::search {

/// Okapi BM25 parameters (the standard defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// How multi-term queries combine.
enum class MatchMode : uint8_t {
  /// Disjunctive: a story matches if it contains any query term; terms it
  /// lacks simply contribute no score.
  kAny,
  /// Conjunctive: a story must contain every query term (anywhere among
  /// its snippets, within the time filter when one is set).
  kAll,
};

struct SearchOptions {
  /// Ranked results returned (the heap bound — overview cards are only
  /// materialized by callers for these k).
  size_t k = 10;
  MatchMode mode = MatchMode::kAny;
  /// When set, only snippets with from <= timestamp <= to contribute
  /// (inclusive bounds, matching TemporalIndex window semantics).
  bool filter_time = false;
  Timestamp from = 0;
  Timestamp to = 0;
  Bm25Params bm25;
};

/// One ranked story.
struct StoryHit {
  SourceId source = kInvalidSourceId;
  StoryId story = kInvalidStoryId;
  double score = 0.0;
  /// Distinct query terms the story matched.
  uint32_t matched_terms = 0;

  bool operator==(const StoryHit& other) const = default;
};

/// Ranks the stories matching `query` by story-level BM25, returning the
/// top k (score descending, ties by ascending story id — story ids are
/// engine-unique, so the order is total and deterministic).
///
/// Scoring model (DESIGN.md §11): the ranked document is the story;
/// tf(t, S) sums the term frequencies of S's member snippets (exact —
/// annotation weights are small integers), the story length dl(S) is the
/// sum of S's aggregate entity+keyword weights, and idf comes from
/// snippet-level document frequencies (incrementally maintained, stable
/// under story merges/splits). Evaluation is term-at-a-time over the
/// postings lists with a MaxScore-style bound: per-term contributions
/// are capped by idf*(k1+1) (tf saturation), so once the k-th best
/// accumulated score exceeds the summed bounds of the unprocessed terms,
/// stories not yet seen are provably outside the top k and are never
/// admitted — no per-story state is materialized for them.
[[nodiscard]] std::vector<StoryHit> RankStories(
    const PostingsIndex& index, const StoryPivotEngine& engine,
    const ParsedQuery& query, const SearchOptions& options = {});

/// Corpus-wide statistics for scatter-gather evaluation over a sharded
/// engine (DESIGN.md §16). When supplied, every BM25 operand that
/// depends on the corpus — per-term document frequencies (hence idf and
/// the MaxScore bounds), the document count, and the average story
/// length — comes from here instead of the local shard's index, so all
/// shards score with identical constants. Each shard then returns its
/// local top k and MergeTopK() produces exactly the list a single
/// unsharded engine would have returned: scores are bit-identical
/// (identical operands through the one shared kernel) and the global
/// top k is always a subset of the union of per-shard top k's.
struct GlobalSearchStats {
  /// Parallel to ParsedQuery::terms: corpus-wide snippet df per term.
  std::vector<size_t> df;
  /// Corpus-wide snippet count.
  size_t num_documents = 0;
  /// Sum of StoryLength over every story of every shard.
  double total_length = 0.0;
  /// Corpus-wide story count.
  size_t total_stories = 0;
};

/// Same ranking over an explicit StoryCorpus view instead of a live
/// engine — the entry point snapshot readers (serve/ReadSnapshot) use.
/// The engine overload is exactly `RankStories(index, CorpusView(engine),
/// ...)`, so the two are bit-identical on equal state by construction.
/// `global`, when non-null, substitutes corpus-wide statistics for the
/// local ones (see GlobalSearchStats); terms with global df > 0 but no
/// local postings simply contribute nothing here.
[[nodiscard]] std::vector<StoryHit> RankStories(
    const PostingsIndex& index, const StoryCorpus& corpus,
    const ParsedQuery& query, const SearchOptions& options = {},
    const GlobalSearchStats* global = nullptr);

/// Merges per-shard top-k lists into the global top k under the same
/// total order RankStories emits (score descending, story id ascending).
[[nodiscard]] std::vector<StoryHit> MergeTopK(
    std::vector<std::vector<StoryHit>> per_shard, size_t k);

/// Validates a SearchOptions before evaluation. Today's single rule: an
/// inverted time window (`filter_time && from > to`) is rejected with
/// kInvalidArgument — the inclusive [from, to] filter would match
/// nothing, and silently returning an empty result is indistinguishable
/// from "no stories in range" (the same contract TemporalIndex windows
/// follow). Callers surfacing user input (CLI, serve) must check this
/// before ranking.
[[nodiscard]] Status ValidateSearchOptions(const SearchOptions& options);

/// Reference implementation without the index: scans every story of
/// every partition (and the snippet store, for document frequencies and
/// time filtering). Bit-identical results to RankStories — the
/// equivalence tests and the bench_search baseline rely on it.
[[nodiscard]] std::vector<StoryHit> RankStoriesScan(
    const StoryPivotEngine& engine, const ParsedQuery& query,
    const SearchOptions& options = {});

}  // namespace storypivot::search

#endif  // STORYPIVOT_SEARCH_RANKER_H_
