#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/snapshot.h"
#include "datagen/corpus.h"
#include "persist/checkpoint.h"
#include "persist/durable_engine.h"
#include "persist/wal.h"
#include "util/fs.h"
#include "util/logging.h"

namespace storypivot {
namespace {

using persist::Checkpointer;
using persist::DurabilityOptions;
using persist::DurableEngine;
using persist::FsyncPolicy;
using persist::SegmentScan;
using persist::WriteAheadLog;

::testing::AssertionResult IsOk(const Status& status) {
  if (status.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << status.ToString();
}
template <typename T>
::testing::AssertionResult IsOk(const Result<T>& result) {
  return IsOk(result.status());
}

#define ASSERT_OK(expr) ASSERT_TRUE(IsOk((expr)))

/// Returns an empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/sp_persist_" + name;
  if (FileExists(dir)) {
    Result<std::vector<std::string>> names = ListDirectory(dir);
    SP_CHECK_OK(names.status());
    for (const std::string& entry : names.value()) {
      SP_CHECK_OK(RemoveFile(dir + "/" + entry));
    }
  }
  SP_CHECK_OK(CreateDirectories(dir));
  return dir;
}

// --- Recorded operation streams --------------------------------------------
//
// A TestOp is one engine mutation in data form, so the same stream can be
// applied both to a DurableEngine (producing a WAL) and to a plain
// StoryPivotEngine (producing the reference state a recovery must match).

enum class TestOpKind {
  kImport,
  kRegisterSource,
  kAddEntity,
  kAddAlias,
  kAddSnippet,
  kAddSnippets,
  kAddDocument,
  kRemoveSnippet,
  kRemoveDocument,
  kRemoveSource,
  kRefine,
  kAlign,
};

struct TestOp {
  TestOpKind kind;
  std::string text;  // Source name, entity name, alias, or document url.
  uint32_t id32 = 0;
  uint64_t id64 = 0;
  Snippet snippet;
  std::vector<Snippet> batch;
  Document document;
  const text::Vocabulary* entities = nullptr;
  const text::Vocabulary* keywords = nullptr;
};

Status Apply(const TestOp& op, DurableEngine* engine) {
  switch (op.kind) {
    case TestOpKind::kImport:
      return engine->ImportVocabularies(*op.entities, *op.keywords);
    case TestOpKind::kRegisterSource:
      return engine->RegisterSource(op.text).status();
    case TestOpKind::kAddEntity:
      return engine->AddGazetteerEntity(op.text).status();
    case TestOpKind::kAddAlias:
      return engine->AddGazetteerAlias(op.id32, op.text);
    case TestOpKind::kAddSnippet:
      return engine->AddSnippet(op.snippet).status();
    case TestOpKind::kAddSnippets:
      return engine->AddSnippets(op.batch).status();
    case TestOpKind::kAddDocument:
      return engine->AddDocument(op.document).status();
    case TestOpKind::kRemoveSnippet:
      return engine->RemoveSnippet(op.id64);
    case TestOpKind::kRemoveDocument:
      return engine->RemoveDocument(op.text);
    case TestOpKind::kRemoveSource:
      return engine->RemoveSource(op.id32);
    case TestOpKind::kRefine:
      return engine->Refine().status();
    case TestOpKind::kAlign:
      return engine->Align();
  }
  return Status::Internal("unhandled op");
}

Status Apply(const TestOp& op, StoryPivotEngine* engine) {
  switch (op.kind) {
    case TestOpKind::kImport:
      return engine->ImportVocabularies(*op.entities, *op.keywords);
    case TestOpKind::kRegisterSource:
      engine->RegisterSource(op.text);
      return Status::OK();
    case TestOpKind::kAddEntity:
      engine->gazetteer()->AddEntity(op.text);
      return Status::OK();
    case TestOpKind::kAddAlias:
      engine->gazetteer()->AddAlias(op.id32, op.text);
      return Status::OK();
    case TestOpKind::kAddSnippet:
      return engine->AddSnippet(op.snippet).status();
    case TestOpKind::kAddSnippets:
      return engine->AddSnippets(op.batch).status();
    case TestOpKind::kAddDocument:
      return engine->AddDocument(op.document).status();
    case TestOpKind::kRemoveSnippet:
      return engine->RemoveSnippet(op.id64);
    case TestOpKind::kRemoveDocument:
      return engine->RemoveDocument(op.text);
    case TestOpKind::kRemoveSource:
      return engine->RemoveSource(op.id32);
    case TestOpKind::kRefine:
      engine->Refine();
      return Status::OK();
    case TestOpKind::kAlign:
      engine->Align();
      return Status::OK();
  }
  return Status::Internal("unhandled op");
}

struct RecordedRun {
  datagen::Corpus corpus;
  std::vector<TestOp> ops;
};

/// Builds a deterministic stream of exactly `total_ops` mutations that
/// exercises every WalOp: vocabulary import, source registration,
/// gazetteer seeding, single and batched snippet adds, document ingestion
/// with text extraction, snippet/document/source removal, refinement, and
/// alignment.
RecordedRun MakeRun(size_t total_ops) {
  SP_CHECK(total_ops >= 20);
  RecordedRun run;
  datagen::CorpusConfig config;
  config.seed = 91;
  config.num_sources = 3;
  config.num_stories = 8;
  config.target_num_snippets = static_cast<int>(total_ops + 150);
  run.corpus = datagen::CorpusGenerator(config).Generate();
  std::vector<TestOp>& ops = run.ops;

  {
    TestOp op;
    op.kind = TestOpKind::kImport;
    op.entities = run.corpus.entity_vocabulary.get();
    op.keywords = run.corpus.keyword_vocabulary.get();
    ops.push_back(std::move(op));
  }
  for (const SourceInfo& source : run.corpus.sources) {
    TestOp op;
    op.kind = TestOpKind::kRegisterSource;
    op.text = source.name;
    ops.push_back(std::move(op));
  }
  for (const char* name : {"acme corp", "globex fund"}) {
    TestOp op;
    op.kind = TestOpKind::kAddEntity;
    op.text = name;
    ops.push_back(std::move(op));
  }
  {
    TestOp op;
    op.kind = TestOpKind::kAddAlias;
    op.id32 = 0;  // First imported entity term.
    op.text = "primordial entity";
    ops.push_back(std::move(op));
  }

  size_t next_snippet = 0;        // Cursor into corpus.snippets.
  uint64_t snippets_added = 0;    // Engine snippet ids are sequential.
  std::vector<uint64_t> removable;
  int docs_added = 0;
  int docs_removed = 0;
  auto take_snippet = [&](bool exclude_source_2) -> Snippet {
    while (exclude_source_2 &&
           next_snippet < run.corpus.snippets.size() &&
           run.corpus.snippets[next_snippet].source == 2) {
      ++next_snippet;
    }
    SP_CHECK(next_snippet < run.corpus.snippets.size());
    Snippet snippet = run.corpus.snippets[next_snippet++];
    snippet.id = kInvalidSnippetId;
    return snippet;
  };

  while (ops.size() < total_ops - 3) {
    const size_t i = ops.size();
    TestOp op;
    if (i % 67 == 0) {
      // Alignment advances the integrated-story-id cursor, so replay
      // must reproduce it mid-stream, not only at the end.
      op.kind = TestOpKind::kAlign;
    } else if (i % 53 == 0) {
      op.kind = TestOpKind::kRefine;
    } else if (i % 31 == 0 && snippets_added >= 40) {
      op.kind = TestOpKind::kAddDocument;
      op.document.source = static_cast<SourceId>(docs_added % 2);
      op.document.timestamp = MakeTimestamp(2014, 6, 1) + docs_added * 3600;
      op.document.url = "doc-" + std::to_string(docs_added);
      op.document.title = "acme corp quarterly report " +
                          std::to_string(docs_added);
      op.document.paragraphs = {
          "acme corp announced a merger with globex fund today",
          "analysts from globex fund expect the primordial entity to "
          "rally in quarter " + std::to_string(docs_added)};
      ++docs_added;
    } else if (i % 101 == 0 && docs_removed + 2 < docs_added) {
      op.kind = TestOpKind::kRemoveDocument;
      op.text = "doc-" + std::to_string(docs_removed);
      ++docs_removed;
    } else if (i % 23 == 0 && !removable.empty()) {
      op.kind = TestOpKind::kRemoveSnippet;
      op.id64 = removable.back();
      removable.pop_back();
    } else if (i % 13 == 0) {
      op.kind = TestOpKind::kAddSnippets;
      for (int j = 0; j < 4; ++j) {
        op.batch.push_back(take_snippet(/*exclude_source_2=*/false));
      }
      snippets_added += 4;
    } else {
      op.kind = TestOpKind::kAddSnippet;
      op.snippet = take_snippet(/*exclude_source_2=*/false);
      if (snippets_added < 30) removable.push_back(snippets_added);
      ++snippets_added;
    }
    ops.push_back(std::move(op));
  }
  {
    TestOp op;
    op.kind = TestOpKind::kRemoveSource;
    op.id32 = 2;
    ops.push_back(std::move(op));
  }
  {
    TestOp op;
    op.kind = TestOpKind::kRefine;
    ops.push_back(std::move(op));
  }
  {
    TestOp op;
    op.kind = TestOpKind::kAddSnippet;
    op.snippet = take_snippet(/*exclude_source_2=*/true);
    ops.push_back(std::move(op));
  }
  SP_CHECK(ops.size() == total_ops);
  return run;
}

DurabilityOptions FastOptions() {
  DurabilityOptions options;
  // No crash is simulated at the fsync level here (truncation plays the
  // role of lost writes), so skip per-record fsyncs for speed.
  options.wal.fsync = FsyncPolicy::kOnRotate;
  return options;
}

/// Runs `ops` through a DurableEngine in `dir` and returns the engine's
/// state fingerprint at close time.
uint64_t RecordRun(const std::string& dir, const RecordedRun& run,
                   DurabilityOptions options,
                   EngineConfig engine_config = {}) {
  Result<std::unique_ptr<DurableEngine>> opened =
      DurableEngine::Open(dir, options, engine_config);
  SP_CHECK_OK(opened.status());
  DurableEngine& engine = *opened.value();
  for (const TestOp& op : run.ops) SP_CHECK_OK(Apply(op, &engine));
  uint64_t fingerprint = EngineStateFingerprint(engine.engine());
  SP_CHECK_OK(engine.Close());
  return fingerprint;
}

// --- WAL framing -----------------------------------------------------------

TEST(WalTest, AppendReadBack) {
  const std::string dir = FreshDir("wal_roundtrip");
  persist::WalOptions options;
  options.fsync = FsyncPolicy::kEveryRecord;
  {
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(dir, options, 0);
    ASSERT_OK(wal.status());
    for (int i = 0; i < 5; ++i) {
      Result<uint64_t> lsn =
          wal.value()->Append("payload-" + std::to_string(i));
      ASSERT_OK(lsn.status());
      EXPECT_EQ(lsn.value(), static_cast<uint64_t>(i));
    }
    ASSERT_OK(wal.value()->Close());
  }
  Result<SegmentScan> scan = WriteAheadLog::ScanSegmentFile(dir, 0);
  ASSERT_OK(scan.status());
  EXPECT_FALSE(scan.value().torn_tail);
  ASSERT_EQ(scan.value().records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(scan.value().records[i].lsn, static_cast<uint64_t>(i));
    EXPECT_EQ(scan.value().records[i].payload,
              "payload-" + std::to_string(i));
  }
}

TEST(WalTest, EmptySegmentScansClean) {
  Result<SegmentScan> scan = WriteAheadLog::ScanSegment("", 7);
  ASSERT_OK(scan.status());
  EXPECT_TRUE(scan.value().records.empty());
  EXPECT_FALSE(scan.value().torn_tail);
  EXPECT_EQ(scan.value().valid_bytes, 0u);
}

TEST(WalTest, TornTailStopsScanWithoutError) {
  const std::string dir = FreshDir("wal_torn");
  persist::WalOptions options;
  {
    auto wal = WriteAheadLog::Open(dir, options, 0);
    ASSERT_OK(wal.status());
    ASSERT_OK(wal.value()->Append("first record").status());
    ASSERT_OK(wal.value()->Append("second record").status());
    ASSERT_OK(wal.value()->Close());
  }
  Result<std::string> bytes =
      ReadFileToString(dir + "/" + WriteAheadLog::SegmentName(0));
  ASSERT_OK(bytes.status());
  // Every strict prefix is a torn tail or a clean boundary — never an
  // error, because truncation cannot fabricate a complete frame.
  for (size_t len = 0; len < bytes.value().size(); ++len) {
    Result<SegmentScan> scan = WriteAheadLog::ScanSegment(
        std::string_view(bytes.value()).substr(0, len), 0);
    ASSERT_OK(scan.status()) << "at length " << len;
    EXPECT_LE(scan.value().records.size(), 2u);
    EXPECT_EQ(scan.value().torn_tail, len != scan.value().valid_bytes);
  }
}

TEST(WalTest, CorruptCompleteFrameIsHardError) {
  const std::string dir = FreshDir("wal_corrupt");
  persist::WalOptions options;
  {
    auto wal = WriteAheadLog::Open(dir, options, 0);
    ASSERT_OK(wal.status());
    ASSERT_OK(wal.value()->Append("first record").status());
    ASSERT_OK(wal.value()->Append("second record").status());
    ASSERT_OK(wal.value()->Close());
  }
  const std::string path = dir + "/" + WriteAheadLog::SegmentName(0);
  Result<std::string> bytes = ReadFileToString(path);
  ASSERT_OK(bytes.status());
  // Flip one payload byte of the FIRST record: a complete frame with a
  // bad CRC, i.e. corruption — a hard error, not a silent truncation.
  std::string corrupt = bytes.value();
  corrupt[20] = static_cast<char>(corrupt[20] ^ 0x5A);
  Result<SegmentScan> scan = WriteAheadLog::ScanSegment(corrupt, 0);
  EXPECT_FALSE(scan.ok());
  // The same applies to the final record when its frame is complete.
  corrupt = bytes.value();
  corrupt.back() = static_cast<char>(corrupt.back() ^ 0x5A);
  scan = WriteAheadLog::ScanSegment(corrupt, 0);
  EXPECT_FALSE(scan.ok());
}

TEST(WalTest, RotationProducesGaplessSegments) {
  const std::string dir = FreshDir("wal_rotate");
  persist::WalOptions options;
  options.segment_bytes = 64;  // Rotate roughly every record.
  {
    auto wal = WriteAheadLog::Open(dir, options, 0);
    ASSERT_OK(wal.status());
    for (int i = 0; i < 10; ++i) {
      ASSERT_OK(
          wal.value()->Append("record number " + std::to_string(i)).status());
    }
    ASSERT_OK(wal.value()->Close());
  }
  Result<std::vector<uint64_t>> segments = WriteAheadLog::ListSegments(dir);
  ASSERT_OK(segments.status());
  ASSERT_GT(segments.value().size(), 2u);
  uint64_t expected = 0;
  for (uint64_t start : segments.value()) {
    EXPECT_EQ(start, expected);
    Result<SegmentScan> scan = WriteAheadLog::ScanSegmentFile(dir, start);
    ASSERT_OK(scan.status());
    EXPECT_FALSE(scan.value().torn_tail);
    expected += scan.value().records.size();
  }
  EXPECT_EQ(expected, 10u);
}

// --- Checkpointer ----------------------------------------------------------

TEST(CheckpointTest, NamesRoundTrip) {
  EXPECT_EQ(Checkpointer::CheckpointName(42),
            "checkpoint-00000000000000000042.sp");
  Result<uint64_t> lsn =
      Checkpointer::ParseCheckpointName("checkpoint-00000000000000000042.sp");
  ASSERT_OK(lsn.status());
  EXPECT_EQ(lsn.value(), 42u);
  EXPECT_FALSE(Checkpointer::ParseCheckpointName("wal-0.log").ok());
  EXPECT_FALSE(Checkpointer::ParseCheckpointName("checkpoint-.sp").ok());
}

TEST(CheckpointTest, PrunesToKeepCount) {
  const std::string dir = FreshDir("ckpt_prune");
  Checkpointer checkpointer(dir, /*keep=*/2);
  StoryPivotEngine engine;
  ASSERT_OK(checkpointer.Write(engine, 10));
  ASSERT_OK(checkpointer.Write(engine, 20));
  ASSERT_OK(checkpointer.Write(engine, 30));
  Result<std::vector<uint64_t>> lsns = checkpointer.List();
  ASSERT_OK(lsns.status());
  EXPECT_EQ(lsns.value(), (std::vector<uint64_t>{20, 30}));
}

TEST(CheckpointTest, LoadNewestFallsBackPastCorruption) {
  const std::string dir = FreshDir("ckpt_fallback");
  Checkpointer checkpointer(dir, /*keep=*/2);
  StoryPivotEngine engine;
  engine.RegisterSource("survivor");
  ASSERT_OK(checkpointer.Write(engine, 10));
  engine.RegisterSource("casualty");
  ASSERT_OK(checkpointer.Write(engine, 20));
  // Corrupt the newest checkpoint in place.
  const std::string newest = dir + "/" + Checkpointer::CheckpointName(20);
  ASSERT_OK(WriteStringToFile(newest, "#storypivot-snapshot\tv2\ngarbage"));
  Result<Checkpointer::Loaded> loaded = checkpointer.LoadNewest({});
  ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded.value().covered_lsn, 10u);
  ASSERT_NE(loaded.value().engine, nullptr);
  EXPECT_EQ(loaded.value().engine->sources().size(), 1u);
}

// --- DurableEngine recovery ------------------------------------------------

TEST(DurableEngineTest, FreshDirectoryStartsEmpty) {
  const std::string dir = FreshDir("fresh");
  Result<std::unique_ptr<DurableEngine>> opened =
      DurableEngine::Open(dir, FastOptions());
  ASSERT_OK(opened.status());
  EXPECT_EQ(opened.value()->next_lsn(), 0u);
  EXPECT_EQ(opened.value()->engine().store().size(), 0u);
  ASSERT_OK(opened.value()->Close());
}

TEST(DurableEngineTest, CleanShutdownRecoversBitIdentical) {
  RecordedRun run = MakeRun(120);
  const std::string dir = FreshDir("clean_shutdown");
  const uint64_t recorded = RecordRun(dir, run, FastOptions());

  Result<std::unique_ptr<DurableEngine>> reopened =
      DurableEngine::Open(dir, FastOptions());
  ASSERT_OK(reopened.status());
  EXPECT_EQ(reopened.value()->next_lsn(), run.ops.size());
  EXPECT_EQ(EngineStateFingerprint(reopened.value()->engine()), recorded);
  // Bit-identical, not just fingerprint-identical.
  StoryPivotEngine reference;
  for (const TestOp& op : run.ops) ASSERT_OK(Apply(op, &reference));
  EXPECT_EQ(SaveSnapshot(reopened.value()->engine()),
            SaveSnapshot(reference));
  ASSERT_OK(reopened.value()->Close());
}

TEST(DurableEngineTest, CheckpointOnlyRecovery) {
  RecordedRun run = MakeRun(60);
  const std::string dir = FreshDir("ckpt_only");
  uint64_t recorded = 0;
  {
    auto opened = DurableEngine::Open(dir, FastOptions());
    ASSERT_OK(opened.status());
    for (const TestOp& op : run.ops) ASSERT_OK(Apply(op, &*opened.value()));
    ASSERT_OK(opened.value()->Checkpoint());
    recorded = EngineStateFingerprint(opened.value()->engine());
    ASSERT_OK(opened.value()->Close());
  }
  // The checkpoint covers everything; pre-checkpoint segments are gone.
  Result<std::vector<uint64_t>> segments = WriteAheadLog::ListSegments(dir);
  ASSERT_OK(segments.status());
  ASSERT_EQ(segments.value().size(), 1u);
  EXPECT_EQ(segments.value()[0], run.ops.size());
  // Recovery from checkpoint + empty tail.
  {
    auto reopened = DurableEngine::Open(dir, FastOptions());
    ASSERT_OK(reopened.status());
    EXPECT_EQ(reopened.value()->next_lsn(), run.ops.size());
    EXPECT_EQ(EngineStateFingerprint(reopened.value()->engine()), recorded);
    ASSERT_OK(reopened.value()->Close());
  }
  // Even with the (empty) active segment gone, the checkpoint suffices.
  ASSERT_OK(RemoveFile(
      dir + "/" + WriteAheadLog::SegmentName(run.ops.size())));
  auto reopened = DurableEngine::Open(dir, FastOptions());
  ASSERT_OK(reopened.status());
  EXPECT_EQ(reopened.value()->next_lsn(), run.ops.size());
  EXPECT_EQ(EngineStateFingerprint(reopened.value()->engine()), recorded);
  ASSERT_OK(reopened.value()->Close());
}

TEST(DurableEngineTest, CheckpointPlusTailRecovery) {
  RecordedRun run = MakeRun(100);
  const std::string dir = FreshDir("ckpt_tail");
  uint64_t recorded = 0;
  {
    auto opened = DurableEngine::Open(dir, FastOptions());
    ASSERT_OK(opened.status());
    for (size_t i = 0; i < run.ops.size(); ++i) {
      ASSERT_OK(Apply(run.ops[i], &*opened.value()));
      if (i == 59) {
        ASSERT_OK(opened.value()->Checkpoint());
      }
    }
    recorded = EngineStateFingerprint(opened.value()->engine());
    ASSERT_OK(opened.value()->Close());
  }
  auto reopened = DurableEngine::Open(dir, FastOptions());
  ASSERT_OK(reopened.status());
  EXPECT_EQ(reopened.value()->next_lsn(), run.ops.size());
  EXPECT_EQ(EngineStateFingerprint(reopened.value()->engine()), recorded);
  ASSERT_OK(reopened.value()->Close());
}

TEST(DurableEngineTest, AutoCheckpointTriggersAndRecovers) {
  RecordedRun run = MakeRun(90);
  const std::string dir = FreshDir("auto_ckpt");
  DurabilityOptions options = FastOptions();
  options.checkpoint_every_ops = 25;
  const uint64_t recorded = RecordRun(dir, run, options);
  Checkpointer checkpointer(dir);
  Result<std::vector<uint64_t>> checkpoints = checkpointer.List();
  ASSERT_OK(checkpoints.status());
  EXPECT_FALSE(checkpoints.value().empty());
  auto reopened = DurableEngine::Open(dir, options);
  ASSERT_OK(reopened.status());
  EXPECT_EQ(EngineStateFingerprint(reopened.value()->engine()), recorded);
  ASSERT_OK(reopened.value()->Close());
}

TEST(DurableEngineTest, CorruptNewestCheckpointFallsBackToOlderPlusTail) {
  RecordedRun run = MakeRun(100);
  const std::string dir = FreshDir("ckpt_corrupt_fallback");
  uint64_t recorded = 0;
  uint64_t second_checkpoint_lsn = 0;
  {
    auto opened = DurableEngine::Open(dir, FastOptions());
    ASSERT_OK(opened.status());
    for (size_t i = 0; i < run.ops.size(); ++i) {
      ASSERT_OK(Apply(run.ops[i], &*opened.value()));
      if (i == 39 || i == 69) {
        ASSERT_OK(opened.value()->Checkpoint());
      }
      if (i == 69) second_checkpoint_lsn = opened.value()->next_lsn();
    }
    recorded = EngineStateFingerprint(opened.value()->engine());
    ASSERT_OK(opened.value()->Close());
  }
  // Break the newest checkpoint after the fact (bit rot). Recovery must
  // fall back to the older checkpoint and replay the longer WAL tail —
  // which still exists, because segments are pruned only up to the
  // OLDEST retained checkpoint.
  ASSERT_OK(WriteStringToFile(
      dir + "/" + Checkpointer::CheckpointName(second_checkpoint_lsn),
      "#storypivot-snapshot\tv2\ngarbage"));
  auto reopened = DurableEngine::Open(dir, FastOptions());
  ASSERT_OK(reopened.status());
  EXPECT_EQ(reopened.value()->next_lsn(), run.ops.size());
  EXPECT_EQ(EngineStateFingerprint(reopened.value()->engine()), recorded);
  ASSERT_OK(reopened.value()->Close());
}

TEST(DurableEngineTest, RecoveryAcrossRotationBoundaries) {
  RecordedRun run = MakeRun(80);
  const std::string dir = FreshDir("rotation");
  DurabilityOptions options = FastOptions();
  options.wal.segment_bytes = 2048;  // Many small segments.
  const uint64_t recorded = RecordRun(dir, run, options);
  Result<std::vector<uint64_t>> segments = WriteAheadLog::ListSegments(dir);
  ASSERT_OK(segments.status());
  ASSERT_GT(segments.value().size(), 3u);
  auto reopened = DurableEngine::Open(dir, options);
  ASSERT_OK(reopened.status());
  EXPECT_EQ(reopened.value()->next_lsn(), run.ops.size());
  EXPECT_EQ(EngineStateFingerprint(reopened.value()->engine()), recorded);
  ASSERT_OK(reopened.value()->Close());
}

TEST(DurableEngineTest, MissingMiddleSegmentIsHardError) {
  RecordedRun run = MakeRun(80);
  const std::string dir = FreshDir("gap");
  DurabilityOptions options = FastOptions();
  options.wal.segment_bytes = 2048;
  (void)RecordRun(dir, run, options);
  Result<std::vector<uint64_t>> segments = WriteAheadLog::ListSegments(dir);
  ASSERT_OK(segments.status());
  ASSERT_GT(segments.value().size(), 3u);
  ASSERT_OK(RemoveFile(
      dir + "/" + WriteAheadLog::SegmentName(segments.value()[1])));
  EXPECT_FALSE(DurableEngine::Open(dir, options).ok());
}

TEST(DurableEngineTest, MidLogCorruptionFailsOpenLoudly) {
  RecordedRun run = MakeRun(40);
  const std::string dir = FreshDir("midlog_corrupt");
  (void)RecordRun(dir, run, FastOptions());
  const std::string path = dir + "/" + WriteAheadLog::SegmentName(0);
  Result<std::string> bytes = ReadFileToString(path);
  ASSERT_OK(bytes.status());
  // Flip a byte roughly in the middle of the log: it lands inside some
  // complete frame, which recovery must report — not truncate away.
  std::string corrupt = bytes.value();
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x5A);
  ASSERT_OK(WriteStringToFile(path, corrupt));
  Result<std::unique_ptr<DurableEngine>> reopened =
      DurableEngine::Open(dir, FastOptions());
  EXPECT_FALSE(reopened.ok());
}

TEST(DurableEngineTest, TornTailIsRepairedAndAppendable) {
  RecordedRun run = MakeRun(40);
  const std::string dir = FreshDir("torn_repair");
  (void)RecordRun(dir, run, FastOptions());
  const std::string path = dir + "/" + WriteAheadLog::SegmentName(0);
  Result<uint64_t> full_size = FileSize(path);
  ASSERT_OK(full_size.status());
  // Simulate a crash mid-append: half a frame head dangling at the end.
  {
    AppendFile file;
    ASSERT_OK(file.Open(path));
    ASSERT_OK(file.Append(std::string("\x40\x00\x00\x00\xde\xad", 6)));
    ASSERT_OK(file.Close());
  }
  auto reopened = DurableEngine::Open(dir, FastOptions());
  ASSERT_OK(reopened.status());
  EXPECT_EQ(reopened.value()->next_lsn(), run.ops.size());
  // The torn bytes were truncated away...
  Result<uint64_t> repaired_size = FileSize(path);
  ASSERT_OK(repaired_size.status());
  EXPECT_EQ(repaired_size.value(), full_size.value());
  // ...and the log accepts new appends that survive the next recovery.
  Result<SnippetId> added =
      reopened.value()->AddSnippet(run.ops.back().snippet);
  ASSERT_OK(added.status());
  const uint64_t fingerprint =
      EngineStateFingerprint(reopened.value()->engine());
  ASSERT_OK(reopened.value()->Close());
  auto again = DurableEngine::Open(dir, FastOptions());
  ASSERT_OK(again.status());
  EXPECT_EQ(EngineStateFingerprint(again.value()->engine()), fingerprint);
  ASSERT_OK(again.value()->Close());
}

TEST(DurableEngineTest, ClosedEngineRejectsMutationsWithoutApplying) {
  const std::string dir = FreshDir("closed");
  auto opened = DurableEngine::Open(dir, FastOptions());
  ASSERT_OK(opened.status());
  ASSERT_OK(opened.value()->RegisterSource("src").status());
  ASSERT_OK(opened.value()->Close());
  const size_t sources = opened.value()->engine().sources().size();
  EXPECT_FALSE(opened.value()->RegisterSource("late").ok());
  EXPECT_FALSE(opened.value()->RemoveSource(0).ok());
  EXPECT_FALSE(opened.value()->Checkpoint().ok());
  // The rejected mutation did NOT leak into the in-memory state.
  EXPECT_EQ(opened.value()->engine().sources().size(), sources);
}

TEST(DurableEngineTest, ReplayIsDeterministicAcrossThreadCounts) {
  RecordedRun run = MakeRun(120);
  const std::string dir = FreshDir("threads");
  EngineConfig single;
  single.num_threads = 1;
  const uint64_t recorded = RecordRun(dir, run, FastOptions(), single);
  EngineConfig parallel;
  parallel.num_threads = 4;
  auto reopened = DurableEngine::Open(dir, FastOptions(), parallel);
  ASSERT_OK(reopened.status());
  EXPECT_EQ(EngineStateFingerprint(reopened.value()->engine()), recorded);
  ASSERT_OK(reopened.value()->Close());
}

// --- The kill-point property -----------------------------------------------
//
// Record a 500-op run into a single WAL segment, then simulate a crash at
// EVERY byte offset of the log by truncating it there. At every offset the
// scan must yield a clean prefix (never a hard error), and recovering from
// each distinct prefix length must reproduce exactly the state of a fresh
// engine fed the same operation prefix.

TEST(DurableEngineTest, KillPointAtEveryByteOffset) {
  const size_t kOps = 500;
  RecordedRun run = MakeRun(kOps);
  const std::string dir = FreshDir("killpoint_record");
  DurabilityOptions options = FastOptions();
  options.wal.segment_bytes = 1ull << 30;  // Keep it to one segment.
  const uint64_t final_fingerprint = RecordRun(dir, run, options);

  Result<std::string> log =
      ReadFileToString(dir + "/" + WriteAheadLog::SegmentName(0));
  ASSERT_OK(log.status());
  const std::string& bytes = log.value();

  // Reference fingerprints: fp[k] = state after the first k operations.
  std::vector<uint64_t> fp(kOps + 1);
  StoryPivotEngine reference;
  fp[0] = EngineStateFingerprint(reference);
  for (size_t k = 0; k < kOps; ++k) {
    ASSERT_OK(Apply(run.ops[k], &reference));
    fp[k + 1] = EngineStateFingerprint(reference);
  }
  ASSERT_EQ(fp[kOps], final_fingerprint);

  const std::string crash_dir = FreshDir("killpoint_crash");
  const std::string crash_log =
      crash_dir + "/" + WriteAheadLog::SegmentName(0);
  size_t recoveries = 0;
  size_t last_prefix = static_cast<size_t>(-1);
  for (size_t len = 0; len <= bytes.size(); ++len) {
    Result<SegmentScan> scan =
        WriteAheadLog::ScanSegment(std::string_view(bytes).substr(0, len), 0);
    // Truncation can never look like corruption.
    ASSERT_OK(scan.status()) << "at offset " << len;
    const size_t prefix = scan.value().records.size();
    ASSERT_LE(prefix, kOps);
    ASSERT_EQ(scan.value().torn_tail, len != scan.value().valid_bytes);
    if (prefix == last_prefix) continue;
    ASSERT_EQ(prefix, last_prefix + 1) << "prefix skipped a record";
    last_prefix = prefix;
    // Full crash-recovery once per distinct surviving prefix: write the
    // truncated log into a fresh directory and recover from it.
    ASSERT_OK(WriteStringToFile(crash_log, bytes.substr(0, len)));
    Result<std::unique_ptr<DurableEngine>> recovered =
        DurableEngine::Open(crash_dir, options);
    ASSERT_OK(recovered.status()) << "at offset " << len;
    EXPECT_EQ(recovered.value()->next_lsn(), prefix);
    ASSERT_EQ(EngineStateFingerprint(recovered.value()->engine()), fp[prefix])
        << "recovered state diverges at prefix " << prefix;
    ASSERT_OK(recovered.value()->Close());
    ++recoveries;
  }
  EXPECT_EQ(recoveries, kOps + 1);
}

}  // namespace
}  // namespace storypivot
