#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "storage/bucketed_index.h"
#include "storage/inverted_index.h"
#include "storage/snippet_store.h"
#include "storage/temporal_index.h"
#include "util/rng.h"

namespace storypivot {
namespace {

// ----------------------------- TemporalIndex -------------------------------

TEST(TemporalIndexTest, InsertKeepsTimeOrder) {
  TemporalIndex index;
  index.Insert(30, 3);
  index.Insert(10, 1);
  index.Insert(20, 2);
  ASSERT_EQ(index.size(), 3u);
  EXPECT_EQ(index.entries()[0].second, 1u);
  EXPECT_EQ(index.entries()[2].second, 3u);
  EXPECT_EQ(index.min_time(), 10);
  EXPECT_EQ(index.max_time(), 30);
}

TEST(TemporalIndexTest, WindowQueryInclusive) {
  TemporalIndex index;
  for (Timestamp t = 0; t < 100; t += 10) {
    index.Insert(t, static_cast<SnippetId>(t));
  }
  std::vector<SnippetId> ids = index.IdsInWindow(20, 50);
  ASSERT_EQ(ids.size(), 4u);  // 20, 30, 40, 50.
  EXPECT_EQ(ids.front(), 20u);
  EXPECT_EQ(ids.back(), 50u);
  EXPECT_EQ(index.CountInWindow(20, 50), 4u);
}

TEST(TemporalIndexTest, EmptyWindow) {
  TemporalIndex index;
  index.Insert(100, 1);
  EXPECT_TRUE(index.IdsInWindow(0, 50).empty());
  EXPECT_TRUE(index.IdsInWindow(150, 200).empty());
  EXPECT_EQ(index.CountInWindow(0, 50), 0u);
}

TEST(TemporalIndexTest, DuplicateTimestampsAllKept) {
  TemporalIndex index;
  index.Insert(5, 1);
  index.Insert(5, 2);
  index.Insert(5, 3);
  EXPECT_EQ(index.CountInWindow(5, 5), 3u);
}

TEST(TemporalIndexTest, EraseSpecificEntry) {
  TemporalIndex index;
  index.Insert(5, 1);
  index.Insert(5, 2);
  EXPECT_TRUE(index.Erase(5, 1));
  EXPECT_FALSE(index.Erase(5, 1));   // Already gone.
  EXPECT_FALSE(index.Erase(99, 2));  // Wrong timestamp.
  ASSERT_EQ(index.size(), 1u);
  EXPECT_EQ(index.entries()[0].second, 2u);
}

TEST(TemporalIndexTest, WindowBoundariesExactlyInclusive) {
  // The identification window is [t - w, t + w] (§2.2): an entry sitting
  // exactly on either edge is inside; one tick beyond is outside.
  TemporalIndex index;
  index.Insert(100, 1);  // == lo
  index.Insert(150, 2);  // interior
  index.Insert(200, 3);  // == hi
  index.Insert(99, 4);   // lo - 1
  index.Insert(201, 5);  // hi + 1
  std::vector<SnippetId> ids = index.IdsInWindow(100, 200);
  EXPECT_EQ(ids, (std::vector<SnippetId>{1, 2, 3}));
  EXPECT_EQ(index.CountInWindow(100, 200), 3u);
  // A degenerate window lo == hi still matches the edge entry.
  EXPECT_EQ(index.IdsInWindow(100, 100), std::vector<SnippetId>{1});
  EXPECT_EQ(index.CountInWindow(200, 200), 1u);
  // An inverted window (lo > hi) matches nothing.
  EXPECT_TRUE(index.IdsInWindow(200, 100).empty());
  EXPECT_EQ(index.CountInWindow(200, 100), 0u);
}

TEST(TemporalIndexTest, CountAgreesWithIdsAcrossWindows) {
  // CountInWindow must agree with IdsInWindow().size() and with
  // ForEachInWindow for every window shape, including ties on the edges.
  TemporalIndex index;
  const Timestamp times[] = {5, 5, 5, 10, 10, 20, 25, 25, 40};
  SnippetId next = 0;
  for (Timestamp t : times) index.Insert(t, next++);
  const std::pair<Timestamp, Timestamp> windows[] = {
      {0, 100}, {5, 5},  {5, 10},  {6, 9},   {10, 25},
      {25, 25}, {26, 39}, {40, 40}, {41, 99}, {30, 10}};
  for (const auto& [lo, hi] : windows) {
    std::vector<SnippetId> ids = index.IdsInWindow(lo, hi);
    EXPECT_EQ(index.CountInWindow(lo, hi), ids.size())
        << "window [" << lo << ", " << hi << "]";
    size_t visited = 0;
    index.ForEachInWindow(lo, hi, [&](Timestamp ts, SnippetId) {
      EXPECT_GE(ts, lo);
      EXPECT_LE(ts, hi);
      ++visited;
    });
    EXPECT_EQ(visited, ids.size()) << "window [" << lo << ", " << hi << "]";
  }
}

TEST(TemporalIndexTest, ForEachVisitsInOrder) {
  TemporalIndex index;
  index.Insert(3, 30);
  index.Insert(1, 10);
  index.Insert(2, 20);
  std::vector<Timestamp> seen;
  index.ForEachInWindow(0, 10, [&](Timestamp ts, SnippetId) {
    seen.push_back(ts);
  });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), 3u);
}

// Property: the index agrees with a naive reference implementation under
// random out-of-order inserts and erases.
class TemporalIndexProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TemporalIndexProperty, MatchesNaiveReference) {
  Pcg32 rng(GetParam());
  TemporalIndex index;
  std::vector<std::pair<Timestamp, SnippetId>> reference;
  SnippetId next_id = 0;
  for (int step = 0; step < 500; ++step) {
    if (!reference.empty() && rng.NextBernoulli(0.3)) {
      size_t pick = rng.NextBounded(static_cast<uint32_t>(reference.size()));
      auto [ts, id] = reference[pick];
      EXPECT_TRUE(index.Erase(ts, id));
      reference.erase(reference.begin() + pick);
    } else {
      Timestamp ts = rng.NextInRange(0, 1000);
      SnippetId id = next_id++;
      index.Insert(ts, id);
      reference.push_back({ts, id});
    }
    if (step % 50 == 0) {
      Timestamp lo = rng.NextInRange(0, 1000);
      Timestamp hi = lo + rng.NextInRange(0, 300);
      std::set<SnippetId> expected;
      for (auto [ts, id] : reference) {
        if (ts >= lo && ts <= hi) expected.insert(id);
      }
      std::vector<SnippetId> got = index.IdsInWindow(lo, hi);
      EXPECT_EQ(std::set<SnippetId>(got.begin(), got.end()), expected);
      EXPECT_EQ(index.CountInWindow(lo, hi), expected.size());
    }
  }
  EXPECT_EQ(index.size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalIndexProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

// --------------------------- BucketedTemporalIndex -------------------------

TEST(BucketedIndexTest, BasicInsertEraseWindow) {
  BucketedTemporalIndex index(100);
  index.Insert(50, 1);
  index.Insert(150, 2);
  index.Insert(151, 3);
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.CountInWindow(0, 100), 1u);
  EXPECT_EQ(index.CountInWindow(150, 151), 2u);
  EXPECT_TRUE(index.Erase(150, 2));
  EXPECT_FALSE(index.Erase(150, 2));
  EXPECT_FALSE(index.Erase(151, 99));
  EXPECT_EQ(index.CountInWindow(0, 1000), 2u);
}

TEST(BucketedIndexTest, NegativeTimestampsBucketCorrectly) {
  BucketedTemporalIndex index(100);
  index.Insert(-1, 1);
  index.Insert(-100, 2);
  index.Insert(0, 3);
  EXPECT_EQ(index.CountInWindow(-100, -1), 2u);
  EXPECT_EQ(index.CountInWindow(0, 0), 1u);
  std::vector<SnippetId> ids = index.IdsInWindow(-150, 50);
  EXPECT_EQ(ids.size(), 3u);
}

TEST(BucketedIndexTest, EmptyBucketsAreReclaimed) {
  BucketedTemporalIndex index(10);
  for (SnippetId i = 0; i < 50; ++i) {
    index.Insert(static_cast<Timestamp>(i * 10), i);
  }
  size_t buckets = index.num_buckets();
  for (SnippetId i = 0; i < 50; ++i) {
    EXPECT_TRUE(index.Erase(static_cast<Timestamp>(i * 10), i));
  }
  EXPECT_EQ(index.num_buckets(), 0u);
  EXPECT_LT(index.num_buckets(), buckets);
  EXPECT_TRUE(index.empty());
}

// Property: the bucketed index returns exactly the same id sets as the
// sorted-vector TemporalIndex under random mixed workloads.
class IndexEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexEquivalence, MatchesSortedIndex) {
  Pcg32 rng(GetParam());
  TemporalIndex sorted;
  BucketedTemporalIndex bucketed(97);  // Deliberately odd bucket width.
  std::vector<std::pair<Timestamp, SnippetId>> live;
  SnippetId next_id = 0;
  for (int step = 0; step < 600; ++step) {
    if (!live.empty() && rng.NextBernoulli(0.3)) {
      size_t pick = rng.NextBounded(static_cast<uint32_t>(live.size()));
      auto [ts, id] = live[pick];
      EXPECT_TRUE(sorted.Erase(ts, id));
      EXPECT_TRUE(bucketed.Erase(ts, id));
      live.erase(live.begin() + pick);
    } else {
      Timestamp ts = rng.NextInRange(-500, 2000);
      SnippetId id = next_id++;
      sorted.Insert(ts, id);
      bucketed.Insert(ts, id);
      live.push_back({ts, id});
    }
    if (step % 40 == 0) {
      Timestamp lo = rng.NextInRange(-600, 2000);
      Timestamp hi = lo + rng.NextInRange(0, 800);
      std::vector<SnippetId> a = sorted.IdsInWindow(lo, hi);
      std::vector<SnippetId> b = bucketed.IdsInWindow(lo, hi);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "window [" << lo << "," << hi << "]";
      EXPECT_EQ(bucketed.CountInWindow(lo, hi), a.size());
    }
  }
  EXPECT_EQ(sorted.size(), bucketed.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalence,
                         ::testing::Values(7u, 8u, 9u, 10u));

// ------------------------------ SnippetStore -------------------------------

Snippet MakeSnippet(SnippetId id, const std::string& url) {
  Snippet s;
  s.id = id;
  s.source = 0;
  s.timestamp = 100;
  s.document_url = url;
  return s;
}

TEST(SnippetStoreTest, AssignsIdsWhenMissing) {
  SnippetStore store;
  Snippet s = MakeSnippet(kInvalidSnippetId, "u1");
  Result<SnippetId> id1 = store.Insert(s);
  Result<SnippetId> id2 = store.Insert(MakeSnippet(kInvalidSnippetId, "u2"));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(id1.value(), id2.value());
  EXPECT_EQ(store.size(), 2u);
}

TEST(SnippetStoreTest, ExplicitIdsRespectedAndDuplicatesRejected) {
  SnippetStore store;
  ASSERT_TRUE(store.Insert(MakeSnippet(7, "u")).ok());
  Result<SnippetId> dup = store.Insert(MakeSnippet(7, "u"));
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  // Auto ids continue above explicit ones.
  Result<SnippetId> next = store.Insert(MakeSnippet(kInvalidSnippetId, "v"));
  ASSERT_TRUE(next.ok());
  EXPECT_GT(next.value(), 7u);
}

TEST(SnippetStoreTest, FindAndRemove) {
  SnippetStore store;
  SnippetId id = store.Insert(MakeSnippet(kInvalidSnippetId, "u")).value();
  ASSERT_NE(store.Find(id), nullptr);
  EXPECT_EQ(store.Find(id)->document_url, "u");
  EXPECT_TRUE(store.Remove(id).ok());
  EXPECT_EQ(store.Find(id), nullptr);
  EXPECT_EQ(store.Remove(id).code(), StatusCode::kNotFound);
}

TEST(SnippetStoreTest, FindByDocumentTracksAllSnippets) {
  SnippetStore store;
  SnippetId a = store.Insert(MakeSnippet(kInvalidSnippetId, "doc1")).value();
  SnippetId b = store.Insert(MakeSnippet(kInvalidSnippetId, "doc1")).value();
  SP_CHECK_OK(store.Insert(MakeSnippet(kInvalidSnippetId, "doc2")));
  std::vector<SnippetId> ids = store.FindByDocument("doc1");
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_TRUE(std::count(ids.begin(), ids.end(), a) == 1);
  EXPECT_TRUE(std::count(ids.begin(), ids.end(), b) == 1);
  EXPECT_TRUE(store.FindByDocument("nope").empty());
  // Removal unlinks from the document map too.
  ASSERT_TRUE(store.Remove(a).ok());
  EXPECT_EQ(store.FindByDocument("doc1").size(), 1u);
}

TEST(SnippetStoreTest, ForEachVisitsAll) {
  SnippetStore store;
  for (int i = 0; i < 5; ++i) {
    SP_CHECK_OK(store.Insert(MakeSnippet(kInvalidSnippetId, "u")));
  }
  size_t count = 0;
  store.ForEach([&](const Snippet&) { ++count; });
  EXPECT_EQ(count, 5u);
}

// ------------------------------ InvertedIndex ------------------------------

TEST(InvertedIndexTest, CandidatesShareTerms) {
  InvertedIndex index;
  index.Add(1, text::TermVector::FromEntries({{10, 1.0}, {11, 1.0}}));
  index.Add(2, text::TermVector::FromEntries({{11, 1.0}}));
  index.Add(3, text::TermVector::FromEntries({{12, 1.0}}));
  auto candidates =
      index.Candidates(text::TermVector::FromEntries({{11, 1.0}}));
  EXPECT_EQ(candidates, (std::vector<SnippetId>{1, 2}));
}

TEST(InvertedIndexTest, CandidatesDeduplicated) {
  InvertedIndex index;
  index.Add(1, text::TermVector::FromEntries({{10, 1.0}, {11, 1.0}}));
  auto candidates = index.Candidates(
      text::TermVector::FromEntries({{10, 1.0}, {11, 1.0}}));
  EXPECT_EQ(candidates, (std::vector<SnippetId>{1}));
}

TEST(InvertedIndexTest, LazyRemoveHidesAndCompactReclaims) {
  InvertedIndex index;
  index.Add(1, text::TermVector::FromEntries({{10, 1.0}}));
  index.Add(2, text::TermVector::FromEntries({{10, 1.0}}));
  index.Remove(1);
  auto candidates =
      index.Candidates(text::TermVector::FromEntries({{10, 1.0}}));
  EXPECT_EQ(candidates, (std::vector<SnippetId>{2}));
  EXPECT_EQ(index.num_tombstones(), 1u);
  index.Compact();
  EXPECT_EQ(index.num_tombstones(), 0u);
  EXPECT_EQ(index.num_postings(), 1u);
  candidates = index.Candidates(text::TermVector::FromEntries({{10, 1.0}}));
  EXPECT_EQ(candidates, (std::vector<SnippetId>{2}));
}

TEST(InvertedIndexTest, ZeroWeightTermsIgnored) {
  InvertedIndex index;
  text::TermVector v;
  v.Add(10, 1.0);
  index.Add(1, v);
  // A probe with only unseen terms finds nothing.
  EXPECT_TRUE(
      index.Candidates(text::TermVector::FromEntries({{99, 1.0}})).empty());
}

}  // namespace
}  // namespace storypivot
