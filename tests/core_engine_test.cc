#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "core/query.h"
#include "datagen/corpus.h"
#include "model/time.h"
#include "util/logging.h"

namespace storypivot {
namespace {

Snippet MakeSnippet(SourceId source, Timestamp ts,
                    std::vector<std::pair<text::TermId, double>> entities,
                    std::vector<std::pair<text::TermId, double>> keywords,
                    const std::string& url = "", int64_t truth = -1) {
  Snippet s;
  s.source = source;
  s.timestamp = ts;
  s.entities = text::TermVector::FromEntries(std::move(entities));
  s.keywords = text::TermVector::FromEntries(std::move(keywords));
  s.document_url = url;
  s.truth_story = truth;
  return s;
}

TEST(EngineTest, RegisterAndNameSources) {
  StoryPivotEngine engine;
  SourceId nyt = engine.RegisterSource("New York Times");
  SourceId wsj = engine.RegisterSource("Wall Street Journal");
  EXPECT_NE(nyt, wsj);
  EXPECT_EQ(engine.SourceName(nyt), "New York Times");
  EXPECT_EQ(engine.SourceName(999), "<unknown>");
  EXPECT_EQ(engine.sources().size(), 2u);
}

TEST(EngineTest, AddSnippetToUnknownSourceFails) {
  StoryPivotEngine engine;
  Result<SnippetId> r = engine.AddSnippet(MakeSnippet(7, 0, {}, {}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, SnippetsClusterWithinSource) {
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  SnippetId a = engine
                    .AddSnippet(MakeSnippet(src, 0, {{0, 1.0}, {1, 1.0}},
                                            {{5, 1.0}}))
                    .value();
  SnippetId b = engine
                    .AddSnippet(MakeSnippet(src, kSecondsPerDay,
                                            {{0, 1.0}, {1, 1.0}}, {{5, 1.0}}))
                    .value();
  SnippetId c = engine
                    .AddSnippet(MakeSnippet(src, kSecondsPerDay,
                                            {{8, 1.0}, {9, 1.0}}, {{7, 1.0}}))
                    .value();
  const StorySet* partition = engine.partition(src);
  ASSERT_NE(partition, nullptr);
  EXPECT_EQ(partition->StoryOf(a), partition->StoryOf(b));
  EXPECT_NE(partition->StoryOf(a), partition->StoryOf(c));
  EXPECT_EQ(engine.TotalStories(), 2u);
  EXPECT_EQ(engine.stats().snippets_ingested, 3u);
}

TEST(EngineTest, AddDocumentExtractsSnippetsPerParagraph) {
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("NYT");
  engine.gazetteer()->AddEntity("Ukraine");
  Document doc;
  doc.source = src;
  doc.url = "http://x/doc1";
  doc.title = "Plane crash in Ukraine";
  doc.paragraphs = {"A plane crashed over Ukraine.",
                    "The crash investigation started."};
  doc.timestamp = MakeTimestamp(2014, 7, 17);
  Result<std::vector<SnippetId>> ids = engine.AddDocument(doc);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.value().size(), 2u);
  const Snippet* first = engine.store().Find(ids.value()[0]);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->description, doc.title);
  EXPECT_EQ(first->document_url, doc.url);
  // The entity was recognised via the gazetteer.
  text::TermId ukraine = engine.entity_vocabulary()->Lookup("Ukraine");
  ASSERT_NE(ukraine, text::kInvalidTermId);
  EXPECT_GT(first->entities.ValueOf(ukraine), 0.0);
}

TEST(EngineTest, RemoveDocumentRemovesItsSnippets) {
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(src, 0, {{0, 1.0}}, {{5, 1.0}}, "doc1")));
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(src, 10, {{0, 1.0}}, {{5, 1.0}}, "doc1")));
  SnippetId keep =
      engine.AddSnippet(MakeSnippet(src, 20, {{0, 1.0}}, {{5, 1.0}}, "doc2"))
          .value();
  EXPECT_EQ(engine.store().size(), 3u);
  ASSERT_TRUE(engine.RemoveDocument("doc1").ok());
  EXPECT_EQ(engine.store().size(), 1u);
  EXPECT_NE(engine.store().Find(keep), nullptr);
  EXPECT_EQ(engine.RemoveDocument("doc1").code(), StatusCode::kNotFound);
  // Document frequency was rolled back too.
  EXPECT_EQ(engine.document_frequency().num_documents(), 1);
}

TEST(EngineTest, RemoveSnippetSplitsBrokenStory) {
  // Chain a-b-c where only b connects a and c (content bridge).
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  SnippetId a =
      engine
          .AddSnippet(MakeSnippet(src, 0, {{0, 1.0}, {1, 1.0}},
                                  {{5, 1.0}, {6, 1.0}}))
          .value();
  SnippetId b =
      engine
          .AddSnippet(MakeSnippet(
              src, 20 * kSecondsPerDay,
              {{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}},
              {{5, 1.0}, {6, 1.0}, {7, 1.0}, {8, 1.0}}))
          .value();
  SnippetId c =
      engine
          .AddSnippet(MakeSnippet(src, 40 * kSecondsPerDay,
                                  {{2, 1.0}, {3, 1.0}}, {{7, 1.0}, {8, 1.0}}))
          .value();
  const StorySet* partition = engine.partition(src);
  // Precondition: all three in one story via the bridge (b is within the
  // default 7d window of neither a nor c — craft accordingly).
  if (partition->StoryOf(a) == partition->StoryOf(c)) {
    ASSERT_TRUE(engine.RemoveSnippet(b).ok());
    EXPECT_NE(partition->StoryOf(a), partition->StoryOf(c))
        << "removing the bridge must split the story";
  } else {
    // With the temporal window the three never merged; removal is benign.
    ASSERT_TRUE(engine.RemoveSnippet(b).ok());
  }
  EXPECT_EQ(engine.store().Find(b), nullptr);
}

TEST(EngineTest, RemoveSourceDropsEverything) {
  StoryPivotEngine engine;
  SourceId a = engine.RegisterSource("a");
  SourceId b = engine.RegisterSource("b");
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(a, 0, {{0, 1.0}}, {{5, 1.0}})));
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(b, 0, {{0, 1.0}}, {{5, 1.0}})));
  ASSERT_TRUE(engine.RemoveSource(a).ok());
  EXPECT_EQ(engine.partition(a), nullptr);
  EXPECT_EQ(engine.store().size(), 1u);
  EXPECT_EQ(engine.sources().size(), 1u);
  EXPECT_EQ(engine.RemoveSource(a).code(), StatusCode::kNotFound);
  // Alignment still works with the remaining source.
  engine.Align();
  EXPECT_EQ(engine.alignment().stories.size(), 1u);
}

TEST(EngineTest, RemoveSourcePurgesDirtyStoriesOfThatSource) {
  // Regression: RemoveSource used to leave `dirty_stories_` entries that
  // referenced the erased source's partition, so the next incremental
  // Align() touched stories that no longer existed.
  EngineConfig config;
  config.incremental_alignment = true;
  StoryPivotEngine engine(config);
  SourceId a = engine.RegisterSource("a");
  SourceId b = engine.RegisterSource("b");
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(a, 0, {{0, 1.0}}, {{5, 1.0}})));
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(b, 0, {{0, 1.0}}, {{5, 1.0}})));
  engine.Align();  // Clears the dirty list.
  // New mutations dirty stories in both sources.
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(a, 10, {{0, 1.0}}, {{5, 1.0}})));
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(b, 10, {{0, 1.0}}, {{5, 1.0}})));
  bool saw_a = false;
  for (const auto& [source, story] : engine.dirty_stories()) {
    saw_a = saw_a || source == a;
  }
  ASSERT_TRUE(saw_a) << "test precondition: source a must be dirty";
  ASSERT_TRUE(engine.RemoveSource(a).ok());
  for (const auto& [source, story] : engine.dirty_stories()) {
    EXPECT_NE(source, a) << "stale dirty entry for removed source";
  }
  // Source b's pending work survives and the next alignment is sound.
  EXPECT_FALSE(engine.dirty_stories().empty());
  const AlignmentResult& aligned = engine.Align();
  for (const IntegratedStory& story : aligned.stories) {
    for (const auto& [member_source, member_story] : story.members) {
      EXPECT_NE(member_source, a);
    }
  }
}

TEST(EngineTest, AddDocumentIsAllOrNothing) {
  // A document that cannot be ingested must leave zero trace: no
  // snippets, no document-frequency rows, no counted document.
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(src, 0, {{0, 1.0}}, {{5, 1.0}})));
  const int64_t df_before = engine.document_frequency().num_documents();
  Document doc;
  doc.source = src + 99;  // Unregistered.
  doc.url = "http://x/bad";
  doc.title = "t";
  doc.paragraphs = {"one", "two"};
  Result<std::vector<SnippetId>> ids = engine.AddDocument(doc);
  EXPECT_FALSE(ids.ok());
  EXPECT_EQ(engine.store().size(), 1u);
  EXPECT_EQ(engine.document_frequency().num_documents(), df_before);
  EXPECT_EQ(engine.stats().documents_ingested, 0u);
  EXPECT_TRUE(engine.store().FindByDocument("http://x/bad").empty());
}

TEST(EngineTest, AlignmentStalenessTracking) {
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(src, 0, {{0, 1.0}}, {{5, 1.0}})));
  EXPECT_FALSE(engine.has_alignment());
  engine.Align();
  EXPECT_TRUE(engine.has_alignment());
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(src, 10, {{9, 1.0}}, {{8, 1.0}})));
  EXPECT_FALSE(engine.has_alignment()) << "mutation invalidates alignment";
  engine.Align();
  EXPECT_TRUE(engine.has_alignment());
}

TEST(EngineTest, CrossSourceAlignmentEndToEnd) {
  StoryPivotEngine engine;
  SourceId nyt = engine.RegisterSource("NYT");
  SourceId wsj = engine.RegisterSource("WSJ");
  // Both sources report the same story.
  for (int d = 0; d < 3; ++d) {
    SP_CHECK_OK(engine
        .AddSnippet(MakeSnippet(nyt, d * kSecondsPerDay,
                                {{0, 1.0}, {1, 1.0}}, {{5, 1.0}, {6, 1.0}})));
    SP_CHECK_OK(engine
        .AddSnippet(MakeSnippet(wsj, d * kSecondsPerDay + kSecondsPerHour,
                                {{0, 1.0}, {1, 1.0}}, {{5, 1.0}, {6, 1.0}})));
  }
  const AlignmentResult& alignment = engine.Align();
  ASSERT_EQ(alignment.stories.size(), 1u);
  EXPECT_EQ(alignment.stories[0].merged.sources().size(), 2u);
  // All snippets have cross-source counterparts -> aligning.
  for (const auto& [sid, role] : alignment.roles) {
    EXPECT_EQ(role, SnippetRole::kAligning);
  }
}

TEST(EngineTest, RefineReturnsStatsAndKeepsAlignmentFresh) {
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(src, 0, {{0, 1.0}}, {{5, 1.0}})));
  RefinementStats stats = engine.Refine();
  EXPECT_GE(stats.snippets_moved, 0);
  EXPECT_TRUE(engine.has_alignment());
  EXPECT_EQ(engine.stats().refinements_run, 1u);
}

TEST(EngineTest, ImportVocabulariesPreservesIds) {
  text::Vocabulary entities, keywords;
  entities.Intern("Ukraine");
  entities.Intern("Russia");
  keywords.Intern("crash");
  StoryPivotEngine engine;
  ASSERT_TRUE(engine.ImportVocabularies(entities, keywords).ok());
  EXPECT_EQ(engine.entity_vocabulary()->Lookup("Ukraine"), 0u);
  EXPECT_EQ(engine.entity_vocabulary()->Lookup("Russia"), 1u);
  EXPECT_EQ(engine.keyword_vocabulary()->Lookup("crash"), 0u);
  // Importing again is idempotent.
  EXPECT_TRUE(engine.ImportVocabularies(entities, keywords).ok());
}

TEST(EngineTest, ImportVocabulariesDetectsConflicts) {
  text::Vocabulary entities, keywords;
  entities.Intern("Ukraine");
  StoryPivotEngine engine;
  engine.entity_vocabulary()->Intern("Russia");  // Now id 0 is taken.
  Status s = engine.ImportVocabularies(entities, keywords);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, OutOfOrderArrivalsJoinTheRightStory) {
  StoryPivotEngine engine;
  SourceId src = engine.RegisterSource("s");
  // Arrive: day 0, day 4, then a *late* report about day 2.
  SnippetId a = engine
                    .AddSnippet(MakeSnippet(src, 0, {{0, 1.0}, {1, 1.0}},
                                            {{5, 1.0}}))
                    .value();
  SnippetId b = engine
                    .AddSnippet(MakeSnippet(src, 4 * kSecondsPerDay,
                                            {{0, 1.0}, {1, 1.0}}, {{5, 1.0}}))
                    .value();
  SnippetId late = engine
                       .AddSnippet(MakeSnippet(src, 2 * kSecondsPerDay,
                                               {{0, 1.0}, {1, 1.0}},
                                               {{5, 1.0}}))
                       .value();
  const StorySet* partition = engine.partition(src);
  EXPECT_EQ(partition->StoryOf(late), partition->StoryOf(a));
  EXPECT_EQ(partition->StoryOf(late), partition->StoryOf(b));
}

// ------------------------------ StoryQuery ---------------------------------

class QueryFixture : public ::testing::Test {
 protected:
  QueryFixture() {
    src_ = engine_.RegisterSource("NYT");
    ua_ = engine_.entity_vocabulary()->Intern("Ukraine");
    ru_ = engine_.entity_vocabulary()->Intern("Russia");
    crash_ = engine_.keyword_vocabulary()->Intern("crash");
    vote_ = engine_.keyword_vocabulary()->Intern("vote");
    SP_CHECK_OK(engine_
        .AddSnippet(MakeSnippet(src_, MakeTimestamp(2014, 7, 17),
                                {{ua_, 1.0}, {ru_, 1.0}}, {{crash_, 2.0}})));
    SP_CHECK_OK(engine_
        .AddSnippet(MakeSnippet(src_, MakeTimestamp(2014, 7, 18),
                                {{ua_, 1.0}, {ru_, 1.0}}, {{crash_, 1.0}})));
    SP_CHECK_OK(engine_
        .AddSnippet(MakeSnippet(src_, MakeTimestamp(2014, 9, 1),
                                {{ru_, 1.0}}, {{vote_, 1.0}})));
  }

  StoryPivotEngine engine_;
  SourceId src_ = 0;
  text::TermId ua_ = 0, ru_ = 0, crash_ = 0, vote_ = 0;
};

TEST_F(QueryFixture, SourceStoriesSortedBySize) {
  StoryQuery query(&engine_);
  auto stories = query.SourceStories(src_);
  ASSERT_EQ(stories.size(), 2u);
  EXPECT_EQ(stories[0].num_snippets, 2u);
  EXPECT_EQ(stories[1].num_snippets, 1u);
  EXPECT_EQ(stories[0].source_names[0], "NYT");
}

TEST_F(QueryFixture, OverviewCardContents) {
  StoryQuery query(&engine_);
  auto stories = query.SourceStories(src_);
  const StoryOverview& big = stories[0];
  ASSERT_FALSE(big.top_entities.empty());
  EXPECT_EQ(big.top_entities[0].first, "Ukraine");
  ASSERT_FALSE(big.top_keywords.empty());
  EXPECT_EQ(big.top_keywords[0].first, "crash");
  EXPECT_DOUBLE_EQ(big.top_keywords[0].second, 3.0);
  EXPECT_EQ(big.start_time, MakeTimestamp(2014, 7, 17));
  EXPECT_EQ(big.end_time, MakeTimestamp(2014, 7, 18));
}

TEST_F(QueryFixture, FindByEntity) {
  StoryQuery query(&engine_);
  EXPECT_EQ(query.FindByEntity("Ukraine").size(), 1u);
  EXPECT_EQ(query.FindByEntity("Russia").size(), 2u);
  EXPECT_TRUE(query.FindByEntity("Atlantis").empty());
}

TEST_F(QueryFixture, FindByKeyword) {
  StoryQuery query(&engine_);
  EXPECT_EQ(query.FindByKeyword("crash").size(), 1u);
  EXPECT_EQ(query.FindByKeyword("vote").size(), 1u);
  EXPECT_TRUE(query.FindByKeyword("unrelated").empty());
}

TEST_F(QueryFixture, FindByEventType) {
  // Tag one snippet with a type and find its story through it.
  Snippet typed = MakeSnippet(src_, MakeTimestamp(2014, 10, 1),
                              {{ru_, 1.0}}, {{vote_, 1.0}});
  typed.event_type = "Politics";
  SP_CHECK_OK(engine_.AddSnippet(std::move(typed)));
  StoryQuery query(&engine_);
  auto hits = query.FindByEventType("Politics");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(query.FindByEventType("Sports").empty());
}

TEST_F(QueryFixture, FindInTimeRange) {
  StoryQuery query(&engine_);
  EXPECT_EQ(query
                .FindInTimeRange(MakeTimestamp(2014, 7, 1),
                                 MakeTimestamp(2014, 7, 31))
                .size(),
            1u);
  EXPECT_EQ(query
                .FindInTimeRange(MakeTimestamp(2014, 1, 1),
                                 MakeTimestamp(2014, 12, 31))
                .size(),
            2u);
  EXPECT_TRUE(query
                  .FindInTimeRange(MakeTimestamp(2015, 1, 1),
                                   MakeTimestamp(2015, 2, 1))
                  .empty());
}

TEST_F(QueryFixture, IntegratedStoriesAfterAlign) {
  engine_.Align();
  StoryQuery query(&engine_);
  auto integrated = query.IntegratedStories();
  EXPECT_EQ(integrated.size(), 2u);
  EXPECT_TRUE(integrated[0].integrated);
}

TEST_F(QueryFixture, SnippetViewsAreTimeOrdered) {
  StoryQuery query(&engine_);
  auto stories = query.SourceStories(src_);
  const StorySet* partition = engine_.partition(src_);
  const Story* story = partition->FindStory(stories[0].id);
  ASSERT_NE(story, nullptr);
  auto views = query.Snippets(*story);
  ASSERT_EQ(views.size(), 2u);
  EXPECT_LE(views[0].timestamp, views[1].timestamp);
  EXPECT_EQ(views[0].source_name, "NYT");
  ASSERT_FALSE(views[0].entities.empty());
}

// Determinism: the same ingest sequence yields identical clustering, for
// every identification mode and sketch setting.
struct ModeParam {
  IdentificationMode mode;
  bool sketches;
};

class EngineDeterminism : public ::testing::TestWithParam<ModeParam> {};

TEST_P(EngineDeterminism, SameInputSameStories) {
  datagen::CorpusConfig corpus_config;
  corpus_config.seed = 5;
  corpus_config.num_sources = 3;
  corpus_config.num_stories = 8;
  corpus_config.target_num_snippets = 300;
  datagen::Corpus corpus =
      datagen::CorpusGenerator(corpus_config).Generate();

  auto run = [&]() {
    EngineConfig config;
    config.mode = GetParam().mode;
    config.use_sketches = GetParam().sketches;
    auto engine = std::make_unique<StoryPivotEngine>(config);
    SP_CHECK(engine
                 ->ImportVocabularies(*corpus.entity_vocabulary,
                                      *corpus.keyword_vocabulary)
                 .ok());
    for (const SourceInfo& s : corpus.sources) {
      engine->RegisterSource(s.name);
    }
    for (const Snippet& snippet : corpus.snippets) {
      Snippet copy = snippet;
      SP_CHECK_OK(engine->AddSnippet(std::move(copy)));
    }
    // Canonical fingerprint: sorted (snippet id, story id) pairs per source.
    std::vector<std::pair<SnippetId, StoryId>> fingerprint;
    for (const StorySet* partition : engine->partitions()) {
      for (const auto& [ts, sid] : partition->snippet_times().entries()) {
        fingerprint.push_back({sid, partition->StoryOf(sid)});
      }
    }
    std::sort(fingerprint.begin(), fingerprint.end());
    return fingerprint;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, EngineDeterminism,
    ::testing::Values(ModeParam{IdentificationMode::kTemporal, false},
                      ModeParam{IdentificationMode::kTemporal, true},
                      ModeParam{IdentificationMode::kComplete, false}));

}  // namespace
}  // namespace storypivot
