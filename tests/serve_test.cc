// Serving-tier tests (DESIGN.md §14): snapshot capture fidelity, epoch
// publication/pinning/reclamation, the hot-query cache, admission
// control and deadlines, and the headline property — K concurrent
// readers pinned to an epoch see BYTE-IDENTICAL results no matter how
// hard the writer churns underneath them, and those results equal what
// the serial engine answered at the same acked prefix.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datagen/corpus.h"
#include "search/search_engine.h"
#include "serve/epoch_manager.h"
#include "serve/query_cache.h"
#include "serve/read_snapshot.h"
#include "serve/server.h"
#include "serve/serving_engine.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/sync.h"

namespace storypivot {
namespace {

using search::Field;
using search::ParsedQuery;
using search::SearchOptions;
using search::StoryHit;
using serve::EpochManager;
using serve::QueryCache;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::ReadSnapshot;
using serve::Server;
using serve::ServerOptions;
using serve::ServingEngine;

::testing::AssertionResult IsOk(const Status& status) {
  if (status.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << status.ToString();
}
template <typename T>
::testing::AssertionResult IsOk(const Result<T>& result) {
  return IsOk(result.status());
}
#define ASSERT_OK(expr) ASSERT_TRUE(IsOk((expr)))

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/sp_serve_" + name;
  if (FileExists(dir)) {
    Result<std::vector<std::string>> names = ListDirectory(dir);
    SP_CHECK_OK(names.status());
    for (const std::string& entry : names.value()) {
      SP_CHECK_OK(RemoveFile(dir + "/" + entry));
    }
  }
  SP_CHECK_OK(CreateDirectories(dir));
  return dir;
}

Snippet MakeSnippet(SourceId source, Timestamp ts,
                    std::vector<text::TermVector::Entry> entities,
                    std::vector<text::TermVector::Entry> keywords,
                    std::string event_type = {}) {
  Snippet snippet;
  snippet.id = kInvalidSnippetId;
  snippet.source = source;
  snippet.timestamp = ts;
  snippet.entities = text::TermVector::FromEntries(std::move(entities));
  snippet.keywords = text::TermVector::FromEntries(std::move(keywords));
  snippet.event_type = std::move(event_type);
  return snippet;
}

/// A small deterministic engine with named text state, so free-text
/// queries exercise the gazetteer/stemming clone path too.
struct LiveStack {
  std::unique_ptr<StoryPivotEngine> engine;
  std::unique_ptr<search::SearchEngine> searcher;
};

LiveStack BuildStack() {
  LiveStack stack;
  stack.engine = std::make_unique<StoryPivotEngine>();
  StoryPivotEngine& engine = *stack.engine;
  SourceId wire = engine.RegisterSource("wire");
  SourceId blog = engine.RegisterSource("blog");
  text::TermId ukraine = engine.gazetteer()->AddEntity("Ukraine");
  engine.gazetteer()->AddAlias(ukraine, "Kiev government");
  text::TermId airline = engine.gazetteer()->AddEntity("Malaysia Airlines");
  text::TermId crash = engine.keyword_vocabulary()->Intern("crash");
  text::TermId probe = engine.keyword_vocabulary()->Intern("investig");
  const Timestamp t0 = MakeTimestamp(2014, 7, 17);
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(
      wire, t0, {{ukraine, 1.0}, {airline, 2.0}}, {{crash, 2.0}},
      "Accident")));
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(
      wire, t0 + kSecondsPerDay, {{ukraine, 2.0}}, {{probe, 1.0}},
      "Accident")));
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(
      blog, t0 + 2 * kSecondsPerDay, {{airline, 1.0}},
      {{crash, 1.0}, {probe, 1.0}}, "Protest")));
  SP_CHECK_OK(engine.AddSnippet(MakeSnippet(
      blog, t0 + 200 * kSecondsPerDay, {{ukraine, 1.0}}, {{crash, 1.0}},
      "Conflict")));
  stack.searcher = std::make_unique<search::SearchEngine>(&engine);
  return stack;
}

// ----------------------------- ReadSnapshot --------------------------------

TEST(ReadSnapshotTest, MatchesTheLiveEngineBitForBit) {
  LiveStack live = BuildStack();
  std::unique_ptr<ReadSnapshot> snapshot =
      ReadSnapshot::Capture(*live.engine, live.searcher->index());

  const char* queries[] = {"Ukraine crash", "kiev government investigated",
                           "Malaysia Airlines accident", "zzznope crash"};
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    ParsedQuery live_parsed = live.searcher->Parse(text);
    ParsedQuery snap_parsed = snapshot->Parse(text);
    // Identical canonicalization (same gazetteer, vocabularies, index)…
    ASSERT_EQ(live_parsed.terms.size(), snap_parsed.terms.size());
    for (size_t i = 0; i < live_parsed.terms.size(); ++i) {
      EXPECT_EQ(live_parsed.terms[i].field, snap_parsed.terms[i].field);
      EXPECT_EQ(live_parsed.terms[i].term, snap_parsed.terms[i].term);
      EXPECT_EQ(live_parsed.terms[i].event_type,
                snap_parsed.terms[i].event_type);
    }
    EXPECT_EQ(live_parsed.unmatched, snap_parsed.unmatched);
    // …and identical ranking, including against the index-free scan.
    for (auto mode : {search::MatchMode::kAny, search::MatchMode::kAll}) {
      SearchOptions options;
      options.mode = mode;
      EXPECT_EQ(snapshot->Search(snap_parsed, options),
                live.searcher->Search(live_parsed, options));
      EXPECT_EQ(snapshot->Search(snap_parsed, options),
                live.searcher->SearchScan(live_parsed, options));
    }
  }

  // Boolean story lookups agree too.
  for (text::TermId term = 0; term < 2; ++term) {
    EXPECT_EQ(snapshot->StoriesWithEntity(term),
              live.searcher->StoriesWithEntity(term));
    EXPECT_EQ(snapshot->StoriesWithKeyword(term),
              live.searcher->StoriesWithKeyword(term));
  }
  EXPECT_EQ(snapshot->StoriesWithEventType("Accident"),
            live.searcher->StoriesWithEventType("Accident"));
  const Timestamp t0 = MakeTimestamp(2014, 7, 17);
  EXPECT_EQ(snapshot->StoriesInTimeRange(t0, t0 + 3 * kSecondsPerDay),
            live.searcher->StoriesInTimeRange(t0, t0 + 3 * kSecondsPerDay));
  EXPECT_EQ(snapshot->total_stories(), live.engine->TotalStories());
}

TEST(ReadSnapshotTest, IsImmuneToWritesAfterCapture) {
  LiveStack live = BuildStack();
  std::unique_ptr<ReadSnapshot> snapshot =
      ReadSnapshot::Capture(*live.engine, live.searcher->index());
  ParsedQuery parsed = snapshot->Parse("Ukraine crash");
  std::vector<StoryHit> before = snapshot->Search(parsed);
  ASSERT_FALSE(before.empty());

  // Pile new content onto the live engine; the frozen view must not
  // move (the whole point of epoch pinning).
  text::TermId ukraine = live.engine->entity_vocabulary()->Lookup("Ukraine");
  for (int i = 0; i < 10; ++i) {
    SP_CHECK_OK(live.engine->AddSnippet(MakeSnippet(
        0, MakeTimestamp(2014, 7, 17) + i * kSecondsPerHour,
        {{ukraine, 3.0}}, {}, "Accident")));
  }
  EXPECT_EQ(snapshot->Search(parsed), before);
  EXPECT_EQ(snapshot->index().num_documents(), 4u);

  // A fresh capture sees the new state — and matches the live ranker.
  std::unique_ptr<ReadSnapshot> fresh =
      ReadSnapshot::Capture(*live.engine, live.searcher->index());
  EXPECT_EQ(fresh->index().num_documents(), 14u);
  EXPECT_EQ(fresh->Search(fresh->Parse("Ukraine crash")),
            live.searcher->Search(live.searcher->Parse("Ukraine crash")));
}

// ----------------------------- EpochManager --------------------------------

TEST(EpochManagerTest, PublishPinAndReclaim) {
  LiveStack live = BuildStack();
  EpochManager epochs;
  EXPECT_EQ(epochs.current_epoch(), 0u);
  EXPECT_EQ(epochs.Pin(), nullptr);

  uint64_t first = epochs.Publish(
      ReadSnapshot::Capture(*live.engine, live.searcher->index()));
  EXPECT_EQ(first, 1u);
  std::shared_ptr<const ReadSnapshot> pinned = epochs.Pin();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->epoch(), 1u);

  // Publishing retires epoch 1, but the pin keeps it alive and intact.
  std::vector<StoryHit> at_one = pinned->Search(pinned->Parse("crash"));
  uint64_t second = epochs.Publish(
      ReadSnapshot::Capture(*live.engine, live.searcher->index()));
  EXPECT_EQ(second, 2u);
  EXPECT_EQ(epochs.current_epoch(), 2u);
  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_EQ(pinned->Search(pinned->Parse("crash")), at_one);

  EpochManager::Stats stats = epochs.GetStats();
  EXPECT_EQ(stats.published, 2u);
  EXPECT_EQ(stats.retired_live, 1u);  // Epoch 1, held by `pinned`.
  EXPECT_EQ(epochs.ReclaimExpired(), 0u);

  // Dropping the last pin drains epoch 1; the registry trims it.
  pinned.reset();
  EXPECT_EQ(epochs.ReclaimExpired(), 1u);
  stats = epochs.GetStats();
  EXPECT_EQ(stats.retired_live, 0u);
  EXPECT_EQ(stats.reclaimed, 1u);
  EXPECT_EQ(stats.current_epoch, 2u);
}

// ------------------------------ QueryCache ---------------------------------

TEST(QueryCacheTest, KeyCanonicalizesTermOrderAndSeparatesEpochs) {
  ParsedQuery ab;
  ab.terms.push_back({Field::kEntity, 3, {}, "a"});
  ab.terms.push_back({Field::kKeyword, 7, {}, "b"});
  ParsedQuery ba;
  ba.terms.push_back({Field::kKeyword, 7, {}, "b"});
  ba.terms.push_back({Field::kEntity, 3, {}, "a"});
  SearchOptions options;
  EXPECT_EQ(QueryCache::Key(5, ab, options), QueryCache::Key(5, ba, options));
  EXPECT_NE(QueryCache::Key(5, ab, options), QueryCache::Key(6, ab, options));

  // Every ranking-relevant option lands in the key.
  SearchOptions other = options;
  other.k = 3;
  EXPECT_NE(QueryCache::Key(5, ab, options), QueryCache::Key(5, ab, other));
  other = options;
  other.mode = search::MatchMode::kAll;
  EXPECT_NE(QueryCache::Key(5, ab, options), QueryCache::Key(5, ab, other));
  other = options;
  other.filter_time = true;
  other.from = 1;
  other.to = 2;
  EXPECT_NE(QueryCache::Key(5, ab, options), QueryCache::Key(5, ab, other));
  other = options;
  other.bm25.b = 0.5;
  EXPECT_NE(QueryCache::Key(5, ab, options), QueryCache::Key(5, ab, other));
}

TEST(QueryCacheTest, LruEvictsOldestAndCountsStats) {
  QueryCache cache(2);
  std::vector<StoryHit> one{{0, 1, 1.0, 1}};
  std::vector<StoryHit> two{{0, 2, 2.0, 1}};
  std::vector<StoryHit> three{{0, 3, 3.0, 1}};
  std::vector<StoryHit> out;

  cache.Insert("a", one);
  cache.Insert("b", two);
  ASSERT_TRUE(cache.Lookup("a", &out));  // "a" becomes most recent.
  EXPECT_EQ(out, one);
  cache.Insert("c", three);              // Evicts "b", the LRU entry.
  EXPECT_FALSE(cache.Lookup("b", &out));
  ASSERT_TRUE(cache.Lookup("a", &out));
  ASSERT_TRUE(cache.Lookup("c", &out));
  EXPECT_EQ(out, three);

  QueryCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);

  // Capacity 0 disables caching entirely.
  QueryCache disabled(0);
  disabled.Insert("a", one);
  EXPECT_FALSE(disabled.Lookup("a", &out));
}

// -------------------------------- Server -----------------------------------

TEST(ServerTest, RejectsInvalidOptionsAndMissingSnapshotAtAdmission) {
  EpochManager epochs;
  ServerOptions options;
  options.num_threads = 1;  // Inline: deterministic single-threaded path.
  Server server(&epochs, options);

  QueryRequest inverted;
  inverted.query = "crash";
  inverted.options.filter_time = true;
  inverted.options.from = 10;
  inverted.options.to = 5;
  Result<QueryResponse> response = server.Query(inverted);
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);

  QueryRequest plain;
  plain.query = "crash";
  response = server.Query(plain);
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);

  Server::Stats stats = server.GetStats();
  EXPECT_EQ(stats.rejected_invalid, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ServerTest, ShedsLoadWithUnavailableWhenTheQueueIsFull) {
  LiveStack live = BuildStack();
  EpochManager epochs;
  epochs.Publish(
      ReadSnapshot::Capture(*live.engine, live.searcher->index()));

  ServerOptions options;
  options.num_threads = 2;
  options.max_queued = 1;
  Server server(&epochs, options);

  // Stall both workers on a latch; with the 1-slot queue then occupied,
  // the next admission MUST be shed with kUnavailable.
  // lockcheck: name=serve_test.Sheds.mu
  Mutex mu;
  CondVar cv;
  int stalled = 0;
  bool release = false;
  server.set_before_execute([&] {
    MutexLock lock(mu);
    ++stalled;
    cv.NotifyAll();
    while (!release) cv.Wait(mu);
  });

  QueryRequest request;
  request.query = "crash";
  std::vector<std::thread> callers;
  std::atomic<int> ok{0};
  // Stage the first two callers one at a time: each must be DEQUEUED
  // (stalling its worker, emptying the 1-slot queue) before the next
  // submits, or the next submission would race into a full queue.
  for (int i = 0; i < 2; ++i) {
    callers.emplace_back([&] {
      Result<QueryResponse> response = server.Query(request);
      if (response.ok()) ++ok;
    });
    MutexLock lock(mu);
    while (stalled < i + 1) cv.Wait(mu);
  }
  // Both workers are stalled. Fill the single queue slot…
  callers.emplace_back([&] {
    Result<QueryResponse> response = server.Query(request);
    if (response.ok()) ++ok;
  });
  while (server.GetStats().admitted < 3) std::this_thread::yield();
  // …and the fourth query is rejected at admission, without blocking.
  Result<QueryResponse> shed = server.Query(request);
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);

  {
    MutexLock lock(mu);
    release = true;
    cv.NotifyAll();
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(ok.load(), 3);
  Server::Stats stats = server.GetStats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST(ServerTest, ExpiredDeadlineFailsFastWithDeadlineExceeded) {
  LiveStack live = BuildStack();
  EpochManager epochs;
  epochs.Publish(
      ReadSnapshot::Capture(*live.engine, live.searcher->index()));

  ServerOptions options;
  options.num_threads = 1;  // Inline, so the stall deterministically
                            // burns THIS query's deadline.
  Server server(&epochs, options);
  server.set_before_execute(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });

  QueryRequest request;
  request.query = "crash";
  request.deadline_ms = 1;
  Result<QueryResponse> response = server.Query(request);
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.GetStats().deadline_exceeded, 1u);

  // Without a deadline the same stall is merely slow, not fatal.
  request.deadline_ms = 0;
  ASSERT_OK(server.Query(request));
}

TEST(ServerTest, CachesWithinAnEpochAndMissesAcrossEpochs) {
  LiveStack live = BuildStack();
  EpochManager epochs;
  epochs.Publish(
      ReadSnapshot::Capture(*live.engine, live.searcher->index()));

  ServerOptions options;
  options.num_threads = 1;
  Server server(&epochs, options);
  QueryRequest request;
  request.query = "Ukraine crash zzznope";

  Result<QueryResponse> first = server.Query(request);
  ASSERT_OK(first);
  EXPECT_FALSE(first.value().from_cache);
  EXPECT_EQ(first.value().epoch, 1u);
  ASSERT_EQ(first.value().unmatched.size(), 1u);

  Result<QueryResponse> second = server.Query(request);
  ASSERT_OK(second);
  EXPECT_TRUE(second.value().from_cache);
  EXPECT_EQ(second.value().hits, first.value().hits);
  // Unmatched diagnostics come from the fresh parse even on a hit.
  EXPECT_EQ(second.value().unmatched, first.value().unmatched);

  // Surface variants that canonicalize identically share the entry.
  QueryRequest variant;
  variant.query = "crash Ukraine zzznope";
  Result<QueryResponse> third = server.Query(variant);
  ASSERT_OK(third);
  EXPECT_TRUE(third.value().from_cache);
  EXPECT_EQ(third.value().hits, first.value().hits);

  // A new epoch changes the key: the next lookup misses and recomputes
  // against the fresh snapshot.
  epochs.Publish(
      ReadSnapshot::Capture(*live.engine, live.searcher->index()));
  Result<QueryResponse> fourth = server.Query(request);
  ASSERT_OK(fourth);
  EXPECT_FALSE(fourth.value().from_cache);
  EXPECT_EQ(fourth.value().epoch, 2u);
}

// ------------------------- Full-stack determinism --------------------------

// The tentpole property (ISSUE satellite d): K reader threads pinned to
// epochs must see byte-identical results no matter how the writer
// churns, and every epoch's answer must equal what the serial engine
// answered at exactly that acked prefix. The writer records the serial
// answer right after each publish (it is the sole mutator, so nothing
// moves between the ack and the record); readers pin epochs at random
// times and replay the same query repeatedly.
TEST(ServingDeterminismTest, EpochPinnedReadsAreByteIdenticalUnderLoad) {
  const std::string dir = FreshDir("determinism");
  datagen::CorpusConfig config;
  config.seed = 99;
  config.num_sources = 3;
  config.num_stories = 8;
  config.target_num_snippets = 260;
  datagen::Corpus corpus = datagen::CorpusGenerator(config).Generate();

  Result<std::unique_ptr<ServingEngine>> opened =
      ServingEngine::Open(dir, ServerOptions{});
  ASSERT_OK(opened);
  ServingEngine& serving = *opened.value();
  ASSERT_OK(serving.durable().ImportVocabularies(
      *corpus.entity_vocabulary, *corpus.keyword_vocabulary));
  for (const SourceInfo& source : corpus.sources) {
    ASSERT_OK(serving.durable().RegisterSource(source.name));
  }
  // Seed half the corpus so epoch 1 already has content.
  const size_t half = corpus.snippets.size() / 2;
  std::vector<Snippet> warmup;
  for (size_t i = 0; i < half; ++i) {
    Snippet copy = corpus.snippets[i];
    copy.id = kInvalidSnippetId;
    warmup.push_back(std::move(copy));
  }
  ASSERT_OK(serving.durable().AddSnippets(std::move(warmup)));

  // TermIds are stable from here on (vocabularies fully imported), so
  // one ParsedQuery is valid at every epoch.
  ParsedQuery query;
  query.terms.push_back({Field::kEntity, 0, {}, "e0"});
  query.terms.push_back({Field::kEntity, 1, {}, "e1"});
  query.terms.push_back({Field::kKeyword, 0, {}, "k0"});
  SearchOptions options;
  options.k = 15;

  // expected[epoch] = the serial engine's answer at that acked prefix.
  std::map<uint64_t, std::vector<StoryHit>> expected;
  auto record = [&] {
    expected[serving.epochs().current_epoch()] =
        serving.search().Search(query, options);
  };
  record();

  std::atomic<bool> stop{false};
  constexpr int kReaders = 4;
  std::vector<std::map<uint64_t, std::vector<StoryHit>>> seen(kReaders);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const ReadSnapshot> snapshot =
            serving.epochs().Pin();
        if (snapshot == nullptr) continue;
        std::vector<StoryHit> hits = snapshot->Search(query, options);
        // Re-running on the pinned snapshot must be byte-identical,
        // writer churn notwithstanding.
        if (snapshot->Search(query, options) != hits) ++mismatches;
        auto [it, inserted] =
            seen[r].emplace(snapshot->epoch(), std::move(hits));
        // Revisiting an epoch (pinned earlier) must agree with what
        // this reader saw there the first time.
        if (!inserted && it->second != snapshot->Search(query, options)) {
          ++mismatches;
        }
      }
    });
  }

  // The writer streams the second half in batches; each ack publishes
  // a new epoch and records the serial answer for it.
  for (size_t i = half; i < corpus.snippets.size();) {
    std::vector<Snippet> chunk;
    for (size_t j = 0; j < 20 && i < corpus.snippets.size(); ++j, ++i) {
      Snippet copy = corpus.snippets[i];
      copy.id = kInvalidSnippetId;
      chunk.push_back(std::move(copy));
    }
    ASSERT_OK(serving.durable().AddSnippets(std::move(chunk)));
    record();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(mismatches.load(), 0);
  // Every epoch any reader served equals the serial engine's answer at
  // that acked prefix, byte for byte.
  size_t checked = 0;
  for (const auto& reader_seen : seen) {
    for (const auto& [epoch, hits] : reader_seen) {
      auto it = expected.find(epoch);
      ASSERT_NE(it, expected.end()) << "unexpected epoch " << epoch;
      EXPECT_EQ(hits, it->second) << "epoch " << epoch;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(serving.epochs().GetStats().current_epoch,
            expected.rbegin()->first);
}

// ServingEngine end-to-end: the commit hook publishes an epoch per
// acked op, Query serves epoch-consistent answers, and reopening the
// directory recovers into a servable state.
TEST(ServingEngineTest, PublishesPerOpAndRecoversIntoServableState) {
  const std::string dir = FreshDir("end_to_end");
  {
    ServerOptions options;
    options.num_threads = 1;
    Result<std::unique_ptr<ServingEngine>> opened =
        ServingEngine::Open(dir, options);
    ASSERT_OK(opened);
    ServingEngine& serving = *opened.value();
    EXPECT_EQ(serving.epochs().current_epoch(), 1u);  // Initial publish.

    ASSERT_OK(serving.durable().RegisterSource("wire"));
    EXPECT_EQ(serving.epochs().current_epoch(), 2u);
    Result<text::TermId> ukraine =
        serving.durable().AddGazetteerEntity("Ukraine");
    ASSERT_OK(ukraine);
    Snippet snippet = MakeSnippet(0, MakeTimestamp(2014, 7, 17),
                                  {{ukraine.value(), 2.0}}, {}, "Accident");
    ASSERT_OK(serving.durable().AddSnippet(std::move(snippet)));
    uint64_t epoch = serving.epochs().current_epoch();
    EXPECT_EQ(epoch, 4u);  // open + source + entity + snippet.

    QueryRequest request;
    request.query = "Ukraine";
    Result<QueryResponse> response = serving.Query(request);
    ASSERT_OK(response);
    EXPECT_EQ(response.value().epoch, epoch);
    ASSERT_EQ(response.value().hits.size(), 1u);
    ASSERT_OK(serving.durable().Close());
  }
  // Reopen the directory: recovery + initial publish must serve the
  // same answer without any re-ingest.
  Result<std::unique_ptr<ServingEngine>> reopened =
      ServingEngine::Open(dir, ServerOptions{});
  ASSERT_OK(reopened);
  QueryRequest request;
  request.query = "Ukraine";
  Result<QueryResponse> response = reopened.value()->Query(request);
  ASSERT_OK(response);
  ASSERT_EQ(response.value().hits.size(), 1u);
}

}  // namespace
}  // namespace storypivot
